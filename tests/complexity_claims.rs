//! Integration tests for the paper's Section 7.4 complexity claims,
//! cross-checking the analytic metrics crate against the executable
//! networks and the gate-delay simulator.

use brsmn::baselines::{ComplexityModel, CopyBenesMulticast, NetworkKind};
use brsmn::core::{metrics, FeedbackBrsmn, MulticastAssignment};
use brsmn::sim::{brsmn_routing_time, feedback_routing_time, rbn_sweep_latency};
use brsmn::topology::stage::{rbn_depth, rbn_switch_count};

#[test]
fn rbn_cost_is_half_n_log_n() {
    for m in 1..=14u32 {
        let n = 1usize << m;
        assert_eq!(rbn_switch_count(n), n / 2 * m as usize);
        assert_eq!(rbn_depth(n), m as usize);
    }
}

#[test]
fn brsmn_cost_theta_n_log2n() {
    // C(n) / (n·log² n) converges to 1/2.
    for m in [8u32, 12, 16, 20] {
        let n = 1usize << m;
        let ratio = metrics::brsmn_switches(n) as f64 / (n as f64 * (m * m) as f64);
        assert!((ratio - 0.5).abs() < 0.6 / m as f64, "m={m}: {ratio}");
    }
}

#[test]
fn depth_theta_log2n() {
    for m in [4u32, 8, 16] {
        let n = 1usize << m;
        assert_eq!(metrics::brsmn_depth(n), (m * m + m - 1) as u64);
    }
}

#[test]
fn routing_time_theta_log2n_measured() {
    // The measured gate-delay routing time divided by log² n stays within a
    // narrow constant band from n = 2^4 to n = 2^18.
    let mut ratios = Vec::new();
    for m in [4u32, 8, 12, 16, 18] {
        let n = 1usize << m;
        let t = brsmn_routing_time(n).total as f64;
        ratios.push(t / (m * m) as f64);
    }
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 3.0, "ratios {ratios:?}");
}

#[test]
fn sweep_latency_theta_log_n_measured() {
    // One distributed forward sweep is Θ(log n), the key enabler of the
    // log² n total (vs the log³ n of Lee–Oruç).
    for m in [4u32, 8, 12, 16] {
        let n = 1usize << m;
        let t = rbn_sweep_latency(n) as f64;
        let per_level = t / m as f64;
        assert!(per_level > 1.0 && per_level < 8.0, "m={m}: {per_level}");
    }
}

#[test]
fn feedback_execution_matches_analytic_depth() {
    // The running feedback engine's measured traversals equal the metrics
    // formula, for several sizes.
    for n in [4usize, 16, 128, 1024] {
        let asg = MulticastAssignment::empty(n).unwrap();
        let (_, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
        assert_eq!(stats.stage_traversals, metrics::feedback_depth_traversed(n));
        assert_eq!(stats.passes, metrics::feedback_passes(n));
    }
}

#[test]
fn feedback_routing_time_same_order_as_unfolded() {
    for m in [4u32, 10, 16] {
        let n = 1usize << m;
        let a = brsmn_routing_time(n).total as f64;
        let b = feedback_routing_time(n).total as f64;
        assert!(b / a < 2.0 && a / b < 2.0, "n={n}: {a} vs {b}");
    }
}

#[test]
fn table2_models_and_networks_consistent() {
    // The NewDesign model's cost equals the exact metrics value.
    for n in [16usize, 256, 4096] {
        let model = ComplexityModel::eval(NetworkKind::NewDesign, n);
        assert_eq!(model.cost_gates, metrics::brsmn_gates(n) as f64);
        let fb = ComplexityModel::eval(NetworkKind::Feedback, n);
        assert_eq!(fb.cost_gates, metrics::feedback_gates(n) as f64);
    }
}

#[test]
fn classical_composite_is_cheaper_hardware_but_slower_routing() {
    // The copy+Beneš composite is Θ(n log n) hardware (like the feedback
    // network) — its loss is routing time, not gates.
    for m in [6u32, 10] {
        let n = 1usize << m;
        let classical = CopyBenesMulticast::new(n).unwrap().switches() as f64;
        let unfolded = metrics::brsmn_switches(n) as f64;
        assert!(classical < unfolded, "n={n}");
        // Ratio classical/(n log n) flat.
        let norm = classical / (n as f64 * m as f64);
        assert!(norm > 1.0 && norm < 3.0, "n={n}: {norm}");
    }
}
