//! Extensibility check: the routing engines are generic over
//! [`brsmn::core::RoutePayload`], so user code can carry real message data
//! (here: byte buffers with checksums) through the fabric — every copy of a
//! multicast delivers intact data to exactly its own destinations.

use brsmn::core::{Brsmn, MulticastAssignment, RoutePayload};
use brsmn::switch::{Line, Tag};

/// A user payload: the destination set (for routing) plus actual data bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DataMsg {
    source: usize,
    dests: Vec<usize>,
    data: Vec<u8>,
}

impl DataMsg {
    fn checksum(&self) -> u32 {
        self.data
            .iter()
            .fold(0u32, |acc, &b| acc.wrapping_mul(31).wrapping_add(b as u32))
    }
}

impl RoutePayload for DataMsg {
    fn source(&self) -> usize {
        self.source
    }

    fn entry_tag(&self, lo: usize, size: usize) -> Tag {
        let mid = lo + size / 2;
        let has_low = self.dests.iter().any(|&d| d >= lo && d < mid);
        let has_high = self.dests.iter().any(|&d| d >= mid && d < lo + size);
        match (has_low, has_high) {
            (true, false) => Tag::Zero,
            (false, true) => Tag::One,
            (true, true) => Tag::Alpha,
            (false, false) => unreachable!("active message has destinations"),
        }
    }

    fn split(&self, lo: usize, size: usize) -> (Self, Self) {
        let mid = lo + size / 2;
        let (low, high): (Vec<usize>, Vec<usize>) = self.dests.iter().partition(|&&d| d < mid);
        (
            DataMsg {
                source: self.source,
                dests: low,
                data: self.data.clone(),
            },
            DataMsg {
                source: self.source,
                dests: high,
                data: self.data.clone(),
            },
        )
    }

    fn descend(self, _branch: Tag, _lo: usize, _size: usize) -> Self {
        self
    }

    fn delivered_ok(&self, o: usize) -> bool {
        self.dests == [o]
    }
}

#[test]
fn data_bytes_survive_multicast_fanout() {
    let n = 64usize;
    let net = Brsmn::new(n).unwrap();

    // Three senders with distinct payloads.
    let mut sets = vec![Vec::new(); n];
    sets[3] = (0..20).collect();
    sets[40] = vec![25, 31, 62];
    sets[63] = (32..48).collect();
    let asg = MulticastAssignment::from_sets(n, sets.clone()).unwrap();

    let payload_for = |src: usize| -> Vec<u8> {
        (0..256).map(|i| ((src * 37 + i) % 251) as u8).collect()
    };

    let lines: Vec<Line<DataMsg>> = (0..n)
        .map(|i| {
            if sets[i].is_empty() {
                Line::empty()
            } else {
                Line {
                    tag: Tag::Eps,
                    payload: Some(DataMsg {
                        source: i,
                        dests: sets[i].clone(),
                        data: payload_for(i),
                    }),
                }
            }
        })
        .collect();

    let out = net.route_lines(lines, None).unwrap();
    let mut delivered = 0usize;
    for (o, line) in out.iter().enumerate() {
        if let Some(msg) = &line.payload {
            let expect_src = asg.source_of_output(o).expect("covered output");
            assert_eq!(msg.source, expect_src, "output {o}");
            assert_eq!(msg.data, payload_for(expect_src), "data corrupted at {o}");
            assert_eq!(
                msg.checksum(),
                DataMsg {
                    source: expect_src,
                    dests: vec![o],
                    data: payload_for(expect_src)
                }
                .checksum()
            );
            delivered += 1;
        } else {
            assert!(asg.source_of_output(o).is_none(), "output {o} lost data");
        }
    }
    assert_eq!(delivered, asg.total_connections());
}

#[test]
fn feedback_engine_carries_custom_payloads_too() {
    use brsmn::core::FeedbackBrsmn;
    let n = 16usize;
    let net = FeedbackBrsmn::new(n).unwrap();
    let mut sets = vec![Vec::new(); n];
    sets[5] = (0..n).collect(); // broadcast
    let lines: Vec<Line<DataMsg>> = (0..n)
        .map(|i| {
            if i == 5 {
                Line {
                    tag: Tag::Eps,
                    payload: Some(DataMsg {
                        source: 5,
                        dests: (0..n).collect(),
                        data: b"hello, every output".to_vec(),
                    }),
                }
            } else {
                Line::empty()
            }
        })
        .collect();
    let (out, _) = net.route_lines(lines).unwrap();
    for (o, line) in out.iter().enumerate() {
        let msg = line.payload.as_ref().unwrap_or_else(|| panic!("output {o}"));
        assert_eq!(msg.data, b"hello, every output");
        assert_eq!(msg.dests, vec![o]);
    }
}
