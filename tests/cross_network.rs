//! Cross-crate integration: every network implementation in the workspace —
//! BRSMN (both engines), the feedback implementation, the classical
//! copy-then-route composite, and the crossbar — must realize the same
//! connection pattern for the same workload.

use brsmn::baselines::{CopyBenesMulticast, Crossbar};
use brsmn::core::{Brsmn, FeedbackBrsmn, MulticastAssignment};
use brsmn::workloads::{
    barrier_broadcast, even_conferences, matrix_row_broadcast, random_multicast,
    random_partial_permutation, random_permutation, replica_update, ring_shift, RandomSpec,
};

fn check_all(asg: &MulticastAssignment) {
    let n = asg.n();
    let reference = Crossbar::new(n).route(asg).unwrap();
    assert!(reference.realizes(asg));

    let brsmn = Brsmn::new(n).unwrap();
    assert_eq!(brsmn.route(asg).unwrap(), reference, "semantic vs crossbar");
    assert_eq!(
        brsmn.route_self_routing(asg).unwrap(),
        reference,
        "self-routing vs crossbar"
    );

    let (fb, _) = FeedbackBrsmn::new(n).unwrap().route(asg).unwrap();
    assert_eq!(fb, reference, "feedback vs crossbar");

    let (classical, _) = CopyBenesMulticast::new(n).unwrap().route(asg).unwrap();
    assert_eq!(classical, reference, "copy+Beneš vs crossbar");
}

#[test]
fn all_networks_agree_on_structured_patterns() {
    for asg in [
        barrier_broadcast(64, 17),
        even_conferences(64, 8),
        matrix_row_broadcast(8),
        replica_update(64, 5),
        ring_shift(64, 21),
    ] {
        check_all(&asg);
    }
}

#[test]
fn all_networks_agree_on_random_multicasts() {
    for seed in 0..10 {
        for n in [8usize, 32, 128] {
            check_all(&random_multicast(RandomSpec::dense(n), seed));
            check_all(&random_multicast(
                RandomSpec {
                    n,
                    load: 0.5,
                    source_fraction: 0.1,
                },
                seed,
            ));
        }
    }
}

#[test]
fn all_networks_agree_on_permutations() {
    for seed in 0..5 {
        check_all(&random_permutation(64, seed));
        check_all(&random_partial_permutation(64, 0.6, seed));
    }
}

#[test]
fn all_networks_agree_on_edge_cases() {
    // Empty traffic.
    check_all(&MulticastAssignment::empty(32).unwrap());
    // Smallest network.
    check_all(&MulticastAssignment::from_sets(2, vec![vec![0, 1], vec![]]).unwrap());
    check_all(&MulticastAssignment::from_sets(2, vec![vec![1], vec![0]]).unwrap());
    // One giant multicast plus scattered unicasts.
    let mut sets = vec![Vec::new(); 64];
    sets[7] = (0..48).collect();
    sets[50] = vec![55];
    sets[51] = vec![63];
    check_all(&MulticastAssignment::from_sets(64, sets).unwrap());
}

#[test]
fn large_scale_agreement() {
    let asg = random_multicast(RandomSpec::dense(2048), 424242);
    check_all(&asg);
}
