//! Cross-crate validation: the in-place line model that `brsmn-rbn` executes
//! is the *same network* as a conventionally wired reverse banyan — running
//! identical switch settings through both produces identical permutations.

use brsmn::rbn::{clone_split, plan_bitsort, RbnSettings};
use brsmn::switch::{Line, SwitchSetting, Tag};
use brsmn::topology::WiredNetwork;

/// Converts unicast-only `RbnSettings` into per-column crossing flags for
/// the wired model (column/switch indexing is shared by construction).
fn to_crossings(settings: &RbnSettings) -> Vec<Vec<bool>> {
    (0..settings.num_stages())
        .map(|j| {
            settings
                .stage(j)
                .iter()
                .map(|&s| {
                    assert!(s.is_unicast(), "wired comparison covers unicast settings");
                    s == SwitchSetting::Crossing
                })
                .collect()
        })
        .collect()
}

/// Runs `settings` through the executable fabric and returns the
/// input→output permutation.
fn fabric_mapping(settings: &RbnSettings) -> Vec<usize> {
    let n = settings.n();
    let lines: Vec<Line<usize>> = (0..n).map(|i| Line::with(Tag::Zero, i)).collect();
    let out = settings.run(lines, &mut clone_split).unwrap();
    let mut mapping = vec![0usize; n];
    for (pos, line) in out.iter().enumerate() {
        mapping[line.payload.unwrap()] = pos;
    }
    mapping
}

#[test]
fn bitsort_settings_agree_on_both_models() {
    for n in [4usize, 8, 16, 32] {
        let wired = WiredNetwork::inplace_rbn(n).unwrap();
        for seed in 0..12u64 {
            let gamma: Vec<bool> = (0..n)
                .map(|i| (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 62 & 1 == 1)
                .collect();
            let s = (seed as usize * 7) % n;
            let plan = plan_bitsort(&gamma, s);
            let via_fabric = fabric_mapping(&plan.settings);
            let via_wired = wired.mapping(&to_crossings(&plan.settings));
            assert_eq!(via_fabric, via_wired, "n={n} seed={seed}");
        }
    }
}

#[test]
fn random_unicast_settings_agree_exhaustively_n4() {
    // Every possible unicast setting combination of a 4×4 RBN (2 stages × 2
    // switches → 2^4 configurations).
    let n = 4usize;
    let wired = WiredNetwork::inplace_rbn(n).unwrap();
    for config in 0..16u32 {
        let mut settings = RbnSettings::identity(n);
        for j in 0..2usize {
            for k in 0..2usize {
                if config >> (j * 2 + k) & 1 == 1 {
                    settings.stage_mut(j)[k] = SwitchSetting::Crossing;
                }
            }
        }
        assert_eq!(
            fabric_mapping(&settings),
            wired.mapping(&to_crossings(&settings)),
            "config={config:04b}"
        );
    }
}

#[test]
fn random_unicast_settings_agree_sampled_n32() {
    let n = 32usize;
    let wired = WiredNetwork::inplace_rbn(n).unwrap();
    for seed in 0..20u64 {
        let mut settings = RbnSettings::identity(n);
        for j in 0..5usize {
            for k in 0..n / 2 {
                let h = (seed ^ (j as u64) << 11 ^ (k as u64) << 23)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                if h >> 63 == 1 {
                    settings.stage_mut(j)[k] = SwitchSetting::Crossing;
                }
            }
        }
        assert_eq!(
            fabric_mapping(&settings),
            wired.mapping(&to_crossings(&settings)),
            "seed={seed}"
        );
    }
}
