//! Backend conformance sweep: every [`RouterBackend`] in the workspace must
//! realize the same shared fixture set, and deliver the *same* source table
//! — the table is uniquely determined by the assignment, so any two correct
//! backends agree output-for-output. BRSMN-family backends must additionally
//! be **bit-identical** to the allocating reference planner
//! (`Brsmn::route_reference`), result struct and all.
//!
//! Fixtures cover dense, sparse and α-heavy random loads, a full broadcast,
//! a permutation, and the empty assignment, at n ∈ {8, 16, 64}.

use brsmn::baselines::{CopyBenesMulticast, Crossbar};
use brsmn::cluster::DistributedEngine;
use brsmn::core::{
    Brsmn, Engine, FeedbackBrsmn, MulticastAssignment, ReferenceRouter, RouterBackend,
    ShardedEngine,
};
use brsmn::workloads::{barrier_broadcast, random_multicast, random_permutation, RandomSpec};

/// The fixture families from the issue, all seeded and deterministic.
fn fixtures(n: usize) -> Vec<(&'static str, MulticastAssignment)> {
    // α-heavy: a handful of sources between them claim every output.
    let k = 4.min(n);
    let alpha_heavy = {
        let mut sets = vec![Vec::new(); n];
        for o in 0..n {
            sets[(o % k) * (n / k)].push(o);
        }
        MulticastAssignment::from_sets(n, sets).unwrap()
    };
    vec![
        ("dense", random_multicast(RandomSpec::dense(n), 0xC0FF + n as u64)),
        ("sparse", random_multicast(RandomSpec::sparse(n), 0xBEEF + n as u64)),
        ("alpha-heavy", alpha_heavy),
        ("broadcast", barrier_broadcast(n, n / 2)),
        ("permutation", random_permutation(n, 7 + n as u64)),
        ("empty", MulticastAssignment::empty(n).unwrap()),
    ]
}

/// Every backend under test for one network size.
fn backends(n: usize) -> Vec<Box<dyn RouterBackend>> {
    vec![
        Box::new(Brsmn::new(n).unwrap()),
        Box::new(ReferenceRouter::new(n).unwrap()),
        Box::new(FeedbackBrsmn::new(n).unwrap()),
        Box::new(Crossbar::new(n)),
        Box::new(CopyBenesMulticast::new(n).unwrap()),
        Box::new(Engine::new(n).unwrap()),
        Box::new(ShardedEngine::new(n, 3).unwrap()),
        Box::new(DistributedEngine::new(n, 3).unwrap()),
    ]
}

#[test]
fn every_backend_realizes_every_fixture() {
    for n in [8usize, 16, 64] {
        let reference = Brsmn::new(n).unwrap();
        for backend in backends(n) {
            assert_eq!(backend.size(), n, "{}", backend.name());
            for (label, asg) in fixtures(n) {
                let result = backend
                    .route_assignment(&asg)
                    .unwrap_or_else(|e| panic!("{} failed {label}@{n}: {e}", backend.name()));

                // The delivered source table must match the assignment
                // exactly: each output hears precisely its assigned source.
                assert!(
                    result.realizes(&asg),
                    "{} does not realize {label}@{n}",
                    backend.name()
                );
                for o in 0..n {
                    assert_eq!(
                        result.output_source(o),
                        asg.source_of_output(o),
                        "{}: {label}@{n} output {o} hears the wrong source",
                        backend.name()
                    );
                }

                // BRSMN-family backends agree with the reference planner
                // bit for bit — not just semantically.
                if backend.is_brsmn() {
                    let expected = reference.route_reference(&asg).unwrap();
                    assert_eq!(
                        result,
                        expected,
                        "{} diverged from route_reference on {label}@{n}",
                        backend.name()
                    );
                }
            }
        }
    }
}

/// Satellite of the distributed-control-plane issue: the cluster backend,
/// batch for batch, is **bit-identical** to `ShardedEngine` across the
/// whole fixture matrix — striping across simulated nodes and the per-node
/// plan caches cannot move an output bit, because settings are a pure
/// function of the assignment.
#[test]
fn distributed_matches_sharded_bit_for_bit() {
    for n in [8usize, 16, 64] {
        let sharded = ShardedEngine::new(n, 3).unwrap();
        let cluster = DistributedEngine::new(n, 3).unwrap();
        let frames: Vec<MulticastAssignment> =
            fixtures(n).into_iter().map(|(_, asg)| asg).collect();

        // Frame level, through the uniform backend interface.
        for (label, asg) in fixtures(n) {
            let a = cluster.route_assignment(&asg).unwrap();
            let b = sharded.route_assignment(&asg).unwrap();
            assert_eq!(a, b, "cluster vs sharded diverged on {label}@{n}");
        }

        // Batch level, where the round-robin striping actually engages.
        let a = cluster.route_batch(&frames);
        let b = sharded.route_batch(&frames);
        assert_eq!(a.results.len(), b.results.len());
        for (i, (x, y)) in a.results.iter().zip(b.results.iter()).enumerate() {
            match (x, y) {
                (Ok(x), Ok(y)) => assert_eq!(x, y, "frame {i}@{n} diverged"),
                _ => panic!("frame {i}@{n}: unexpected routing error"),
            }
        }
        assert_eq!(a.stats.cluster_nodes, 3, "cluster stats must be threaded");
    }
}

#[test]
fn backend_names_are_distinct() {
    let names: Vec<&str> = backends(8).iter().map(|b| b.name()).collect();
    let mut sorted = names.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), names.len(), "duplicate backend name: {names:?}");
}

#[test]
fn brsmn_flag_marks_exactly_the_fast_path_family() {
    let brsmn: Vec<&str> = backends(8)
        .iter()
        .filter(|b| b.is_brsmn())
        .map(|b| b.name())
        .collect();
    assert!(brsmn.contains(&"brsmn-fast"), "{brsmn:?}");
    assert!(!brsmn.contains(&"crossbar"), "{brsmn:?}");
    assert!(!brsmn.contains(&"copy-benes"), "{brsmn:?}");
}
