//! Drives the complete gate-level self-routing circuit (Section 7.2): the
//! Table 3 + Table 5 bit-sorting router elaborated as a clocked netlist of
//! serial adders, capture registers and comparators — and shows it computes
//! the same switch settings as the software planner, which then sort the
//! lines correctly.
//!
//! Run: `cargo run --example gate_level`

use brsmn::rbn::{clone_split, plan_bitsort};
use brsmn::sim::{bitsort_router, run_bitsort_router};
use brsmn::switch::{Line, SwitchSetting, Tag};

fn main() {
    let n = 8usize;
    let gamma = [true, false, true, true, false, false, true, false];
    let s_target = 4usize; // ascending sort

    println!("building the self-routing circuit for an {n}×{n} bit-sorting RBN…");
    let router = bitsort_router(n);
    println!(
        "  netlist: {} gates, {} flip-flops, {} inputs, combinational depth {}",
        router.netlist.gate_count(),
        router.netlist.dff_count(),
        router.netlist.input_count(),
        router.netlist.depth()
    );
    println!(
        "  per switch: {:.1} gates (the paper's 'constant cost per switch')",
        router.netlist.gate_count() as f64 / 12.0
    );

    println!("\nclocking {} ticks with inputs 1,0,1,1,0,0,1,0 and s = {s_target}…", router.ticks);
    let hw = run_bitsort_router(&router, &gamma, s_target);
    for (j, stage) in hw.iter().enumerate() {
        let bits: String = stage.iter().map(|&c| if c { '╳' } else { '─' }).collect();
        println!("  stage {j}: {bits}");
    }

    // The software planner computes the identical settings…
    let plan = plan_bitsort(&gamma, s_target);
    for (j, stage) in hw.iter().enumerate() {
        for (k, &cross) in stage.iter().enumerate() {
            let sw = plan.settings.stage(j)[k] == SwitchSetting::Crossing;
            assert_eq!(cross, sw, "stage {j} switch {k}");
        }
    }
    println!("\nhardware settings == software planner settings ✓");

    // …and they actually sort.
    let lines: Vec<Line<usize>> = gamma
        .iter()
        .enumerate()
        .map(|(i, &g)| Line::with(if g { Tag::One } else { Tag::Zero }, i))
        .collect();
    let out = plan.settings.run(lines, &mut clone_split).unwrap();
    let tags: String = out.iter().map(|l| l.tag.to_string()).collect();
    println!("sorted output tags: {tags}");
    assert_eq!(tags, "00001111");
}
