//! Domain scenario from the paper's introduction: multicast as the transport
//! for video/teleconference calls. Sixty-four endpoints share one switching
//! fabric; conferences come and go, speakers change — every configuration is
//! a multicast assignment, and the BRSMN realizes each one without blocking
//! and without a central route computation.
//!
//! Run: `cargo run --example video_conference`

use brsmn::core::{Brsmn, MulticastAssignment};
use brsmn::workloads::conference_groups;

fn main() {
    let n = 64usize;
    let net = Brsmn::new(n).unwrap();

    // Scene 1: three conferences of different sizes, plus idle endpoints.
    let scene1 = conference_groups(
        n,
        &[
            (0, (0..16).collect()),           // town hall: speaker 0 → 16 listeners
            (20, (16..24).collect()),         // team call: speaker 20 → 8 listeners
            (40, vec![30, 31, 45, 46, 47]),   // huddle: speaker 40 → 5 listeners
        ],
    )
    .unwrap();
    run_scene(&net, "scene 1 — three conferences", &scene1);

    // Scene 2: the speaker of the town hall changes (input 5 takes over) and
    // the huddle merges into the team call. A completely new assignment —
    // rerouted from scratch, still nonblocking.
    let scene2 = conference_groups(
        n,
        &[
            (5, (0..16).collect()),
            (20, (16..24).chain([30, 31, 45, 46, 47]).collect()),
        ],
    )
    .unwrap();
    run_scene(&net, "scene 2 — speaker change + merged calls", &scene2);

    // Scene 3: worst case — one speaker broadcasts to every endpoint
    // (company all-hands).
    let mut sets = vec![Vec::new(); n];
    sets[13] = (0..n).collect();
    let scene3 = MulticastAssignment::from_sets(n, sets).unwrap();
    run_scene(&net, "scene 3 — all-hands broadcast", &scene3);
}

fn run_scene(net: &Brsmn, label: &str, asg: &MulticastAssignment) {
    let result = net.route(asg).expect("nonblocking");
    assert!(result.realizes(asg));
    // The self-routing engine (pure tag streams) always agrees.
    assert_eq!(result, net.route_self_routing(asg).unwrap());
    println!(
        "{label}: {} speakers, {} listeners, max fanout {} — routed ✓ (self-routing agrees)",
        asg.active_inputs(),
        asg.total_connections(),
        asg.max_fanout()
    );
    // Show a couple of connections.
    let mut shown = 0;
    for o in 0..asg.n() {
        if let Some(src) = result.output_source(o) {
            if shown < 3 {
                println!("    endpoint {o:2} hears speaker {src}");
                shown += 1;
            }
        }
    }
    println!();
}
