//! Reproduces **Fig. 9** (tag trees and routing-tag sequences) and the
//! **Eq. 13 / Fig. 11** `SEQ` ordering for n = 16.
//!
//! Run: `cargo run --example fig9_tags`

use brsmn::core::TagTree;

fn print_tree(tree: &TagTree) {
    for i in 1..=tree.depth() {
        let tags: Vec<String> = (0..(1usize << (i - 1)))
            .map(|k| tree.tag(i, k).to_string())
            .collect();
        let pad = " ".repeat(2 * (tree.depth() - i));
        println!("  level {i}: {pad}{}", tags.join(&" ".repeat(1 + 2 * (tree.depth() - i))));
    }
}

fn main() {
    println!("Fig. 9a — multicast {{000, 001}} in an 8×8 network:");
    let tree_a = TagTree::from_dests(8, &[0, 1]).unwrap();
    print_tree(&tree_a);
    let seq_a = tree_a.to_seq();
    println!("  SEQ = {seq_a}   (paper: 00εαεεε)");
    assert_eq!(seq_a.to_string(), "00εαεεε");

    println!("\nFig. 9b — multicast {{011, 100, 111}}:");
    let tree_b = TagTree::from_dests(8, &[3, 4, 7]).unwrap();
    print_tree(&tree_b);
    let seq_b = tree_b.to_seq();
    println!("  SEQ = {seq_b}   (paper: α1αε011)");
    assert_eq!(seq_b.to_string(), "α1αε011");

    println!("\nFig. 9c — tag handling: the head routes the current BSN, the");
    println!("remainder interleaves into the upper (even) and lower (odd) halves:");
    let (up, down) = seq_b.split();
    println!("  head = {} → split", seq_b.head());
    println!("  upper 4×4 BSN receives: {up}");
    println!("  lower 4×4 BSN receives: {down}");

    // Round trip: the sequences decode back to the destination sets.
    let mut decoded = seq_b.decode(0);
    decoded.sort_unstable();
    assert_eq!(decoded, vec![3, 4, 7]);
    println!("\nSEQ decodes back to the destination set ✓");

    println!("\nEq. 13 — SEQ node order for n = 16:");
    // Use a multicast whose 15 tree nodes are easy to label; print which
    // (level, index) each SEQ position reads, by probing with single-level
    // marker trees.
    let order = seq_order_labels(16);
    println!("  {}", order.join(", "));
    assert_eq!(
        order,
        vec![
            "t11", "t21", "t22", "t31", "t33", "t32", "t34", "t41", "t45", "t43", "t47", "t42",
            "t46", "t44", "t48"
        ]
    );
    println!("  matches Eq. (13) of the paper ✓");
}

/// Derives which tree node each SEQ position serializes, by construction of
/// the order() permutation (per level: recursively interleaved halves).
fn seq_order_labels(n: usize) -> Vec<String> {
    fn order_idx(idx: Vec<usize>) -> Vec<usize> {
        if idx.len() <= 1 {
            return idx;
        }
        let half = idx.len() / 2;
        let a = order_idx(idx[..half].to_vec());
        let b = order_idx(idx[half..].to_vec());
        a.into_iter()
            .zip(b)
            .flat_map(|(x, y)| [x, y])
            .collect()
    }
    let m = n.trailing_zeros() as usize;
    let mut labels = Vec::new();
    for i in 1..=m {
        for k in order_idx((0..(1usize << (i - 1))).collect()) {
            labels.push(format!("t{}{}", i, k + 1));
        }
    }
    labels
}
