//! Draws reverse banyan networks and a full BRSMN trace as ASCII diagrams:
//! the textual counterpart of Figs. 2, 4 and 5 of the paper.
//!
//! Run: `cargo run --example draw_network`

use brsmn::core::{render_rbn, render_trace, Brsmn, MulticastAssignment};
use brsmn::rbn::{plan_bitsort, plan_scatter};
use brsmn::switch::Tag;

fn main() {
    // 1. A bit-sorting RBN: sort 10110010 ascending (s = n/2).
    println!("=== bit-sorting RBN (Theorem 1): inputs 1,0,1,1,0,0,1,0 → 0⁴1⁴ ===\n");
    let gamma = [true, false, true, true, false, false, true, false];
    let plan = plan_bitsort(&gamma, 4);
    println!("{}", render_rbn(&plan.settings));
    println!("legend: ─ parallel  ╳ crossing  ▲ upper-broadcast  ▼ lower-broadcast");
    println!("        (each switch prints once, on its upper line; · = lower line)\n");

    // 2. A scatter RBN eliminating αs (Fig. 4b's first half).
    println!("=== scatter RBN (Theorem 2): inputs 1,α,ε,0,ε,α,ε,ε ===\n");
    use Tag::*;
    let tags = [One, Alpha, Eps, Zero, Eps, Alpha, Eps, Eps];
    let plan = plan_scatter(&tags, 0);
    println!("{}", render_rbn(&plan.settings));

    // 3. The whole paper example through the 8×8 BRSMN.
    println!("=== 8×8 BRSMN trace (Fig. 2) ===\n");
    let asg = MulticastAssignment::from_sets(
        8,
        vec![
            vec![0, 1],
            vec![],
            vec![3, 4, 7],
            vec![2],
            vec![],
            vec![],
            vec![],
            vec![5, 6],
        ],
    )
    .unwrap();
    let (result, trace) = Brsmn::new(8).unwrap().route_traced(&asg).unwrap();
    println!("{}", render_trace(&trace));
    assert!(result.realizes(&asg));
    println!("assignment realized ✓");
}
