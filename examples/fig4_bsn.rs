//! Reproduces **Fig. 4b** of the paper: input tags scattered in the first
//! reverse banyan network, then quasisorted in the second, inside one 8×8
//! binary splitting network.
//!
//! The input column is exactly the paper's example: `1, α, ε, 0, ε, α, ε, ε`.
//!
//! Run: `cargo run --example fig4_bsn`

use brsmn::core::{Bsn, SemanticMsg};
use brsmn::switch::{Line, Tag};

fn main() {
    // Destination sets inducing the paper's tag column for an 8-wide BSN
    // (checking the most significant address bit; outputs 0-3 = upper half):
    //   input 0: {4,5}   → 1
    //   input 1: {1,6}   → α
    //   input 3: {0,3}   → 0
    //   input 5: {2,7}   → α
    let mut lines: Vec<Line<SemanticMsg>> = (0..8).map(|_| Line::empty()).collect();
    let inject = |lines: &mut Vec<Line<SemanticMsg>>, src: usize, dests: Vec<usize>| {
        lines[src] = Line {
            tag: Tag::Eps,
            payload: Some(SemanticMsg::new(src, dests)),
        };
    };
    inject(&mut lines, 0, vec![4, 5]);
    inject(&mut lines, 1, vec![1, 6]);
    inject(&mut lines, 3, vec![0, 3]);
    inject(&mut lines, 5, vec![2, 7]);

    let bsn = Bsn::new(8).unwrap();
    let (out, trace) = bsn.route(lines, 0).unwrap();

    let col = |tags: &[Tag]| {
        tags.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("Fig. 4b — one 8×8 binary splitting network\n");
    println!("inputs:         {}", col(&trace.input_tags));
    println!("after scatter:  {}   (αs eliminated: each α became a 0 and a 1)", col(&trace.after_scatter));
    println!("after quasisort:{}   (0s in the upper half, 1s in the lower)", col(&trace.output_tags));

    // Eq. (4) of the paper on this instance.
    let count = |tags: &[Tag], t: Tag| tags.iter().filter(|&&x| x == t).count();
    let (n0, n1, na) = (
        count(&trace.input_tags, Tag::Zero),
        count(&trace.input_tags, Tag::One),
        count(&trace.input_tags, Tag::Alpha),
    );
    println!("\nEq. (4): n̂0 = n0 + nα = {} + {} = {}", n0, na, n0 + na);
    assert_eq!(count(&trace.output_tags, Tag::Zero), n0 + na);
    assert_eq!(count(&trace.output_tags, Tag::One), n1 + na);

    println!("\nmessages leaving the BSN:");
    for (pos, line) in out.iter().enumerate() {
        if let Some(msg) = &line.payload {
            println!(
                "  port {pos} [{}]: from input {}, remaining destinations {:?}",
                if pos < 4 { "upper" } else { "lower" },
                msg.source,
                msg.dests
            );
        }
    }
}
