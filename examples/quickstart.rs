//! Quickstart: build a self-routing multicast network, route an assignment,
//! and inspect the result.
//!
//! Run: `cargo run --example quickstart`

use brsmn::core::{Brsmn, FeedbackBrsmn, MulticastAssignment};

fn main() {
    // A multicast assignment maps each input to a set of outputs; sets must
    // be disjoint (every output listens to at most one input). This is the
    // running example from Section 2 of the paper.
    let asg = MulticastAssignment::from_sets(
        8,
        vec![
            vec![0, 1],    // input 0 → outputs {0, 1}
            vec![],        // input 1 idle
            vec![3, 4, 7], // input 2 → outputs {3, 4, 7}
            vec![2],       // input 3 → output {2}
            vec![],
            vec![],
            vec![],
            vec![5, 6], // input 7 → outputs {5, 6}
        ],
    )
    .expect("valid assignment");
    println!("assignment: {asg}");
    println!(
        "  {} active inputs, {} connections, max fanout {}\n",
        asg.active_inputs(),
        asg.total_connections(),
        asg.max_fanout()
    );

    // The binary radix sorting multicast network realizes ANY such
    // assignment without blocking (the paper's main theorem).
    let net = Brsmn::new(8).expect("power-of-two size");
    let result = net.route(&asg).expect("nonblocking");
    println!("semantic engine:");
    for o in 0..8 {
        match result.output_source(o) {
            Some(src) => println!("  output {o} ← input {src}"),
            None => println!("  output {o} ← (idle)"),
        }
    }
    assert!(result.realizes(&asg));

    // The self-routing engine drives every switch from the messages' own
    // routing-tag streams — no global controller — and must agree.
    let self_routed = net.route_self_routing(&asg).expect("self-routing");
    assert_eq!(result, self_routed);
    println!("\nself-routing engine agrees: ✓");

    // The feedback implementation reuses ONE physical reverse banyan
    // network for the whole job, cutting hardware from Θ(n log² n) to
    // Θ(n log n).
    let (fb_result, stats) = FeedbackBrsmn::new(8)
        .expect("size")
        .route(&asg)
        .expect("feedback routing");
    assert_eq!(result, fb_result);
    println!(
        "feedback implementation agrees: ✓  ({} passes over {} physical switches)",
        stats.passes, stats.physical_switches
    );
}
