//! Reproduces **Fig. 2** of the paper: the level-by-level routing of the
//! running multicast assignment through an 8×8 BRSMN, printed as tag columns
//! between network levels.
//!
//! Run: `cargo run --example fig2_routing`

use brsmn::core::{Brsmn, MulticastAssignment};
use brsmn::switch::Tag;

fn column(tags: &[Tag]) -> String {
    tags.iter()
        .map(|t| format!("{t:>2}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let asg = MulticastAssignment::from_sets(
        8,
        vec![
            vec![0, 1],
            vec![],
            vec![3, 4, 7],
            vec![2],
            vec![],
            vec![],
            vec![],
            vec![5, 6],
        ],
    )
    .unwrap();
    println!("Fig. 2 — routing {asg} through an 8×8 BRSMN\n");

    let net = Brsmn::new(8).unwrap();
    let (result, trace) = net.route_traced(&asg).unwrap();

    for level in &trace.levels {
        println!(
            "level {} — {} BSN(s) of size {}:",
            level.level,
            level.blocks.len(),
            level.block_size
        );
        // Stitch the per-block traces into full-width columns.
        let n = trace.n;
        let mut input = vec![Tag::Eps; n];
        let mut mid = vec![Tag::Eps; n];
        let mut output = vec![Tag::Eps; n];
        for (b, bt) in level.blocks.iter().enumerate() {
            let base = b * level.block_size;
            input[base..base + level.block_size].copy_from_slice(&bt.input_tags);
            mid[base..base + level.block_size].copy_from_slice(&bt.after_scatter);
            output[base..base + level.block_size].copy_from_slice(&bt.output_tags);
        }
        println!("  tags in:        {}", column(&input));
        println!("  after scatter:  {}", column(&mid));
        println!("  after quasisort:{}", column(&output));
        println!();
    }

    println!("final 2×2 stage:");
    println!("  tags in:        {}", column(&trace.final_tags));
    println!(
        "  switch settings: {}",
        trace
            .final_settings
            .iter()
            .map(|s| s.code().to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    println!("\ndelivered (output ← input):");
    for o in 0..8 {
        if let Some(src) = result.output_source(o) {
            println!("  {o:03b} ← input {src}");
        }
    }
    assert!(result.realizes(&asg));
    println!("\nmatches the paper's Fig. 2 connection pattern ✓");
}
