//! Domain scenario from the paper's introduction: hardware multicast for
//! parallel computing — row broadcasts in block matrix multiplication,
//! barrier-release broadcast, and replicated-database updates, all on one
//! 256-endpoint fabric.
//!
//! Run: `cargo run --example parallel_computing`

use brsmn::core::{Brsmn, FeedbackBrsmn};
use brsmn::workloads::{barrier_broadcast, matrix_row_broadcast, replica_update, ring_shift};

fn main() {
    let n = 256usize;
    let net = Brsmn::new(n).unwrap();
    let feedback = FeedbackBrsmn::new(n).unwrap();

    // Matrix multiplication (SUMMA-style): each row's diagonal holder
    // broadcasts its A-block along the 16-processor row.
    let mm = matrix_row_broadcast(16);
    let r = net.route(&mm).unwrap();
    assert!(r.realizes(&mm));
    println!(
        "matrix row broadcast (16×16 grid): {} broadcasts × fanout {} — routed ✓",
        mm.active_inputs(),
        mm.max_fanout()
    );

    // Barrier synchronization: the root wakes all 256 processors at once.
    let barrier = barrier_broadcast(n, 0);
    let r = net.route(&barrier).unwrap();
    assert!(r.realizes(&barrier));
    println!("barrier release broadcast: 1 → {n} — routed ✓");

    // Replicated database: 8 primaries push updates to disjoint replica sets.
    let db = replica_update(n, 8);
    let (r, stats) = feedback.route(&db).unwrap();
    assert!(r.realizes(&db));
    println!(
        "replicated-DB update via the FEEDBACK network: 8 primaries, {} replicas, \
         {} passes over {} switches — routed ✓",
        db.total_connections(),
        stats.passes,
        stats.physical_switches
    );

    // FFT-style data exchange: unicast ring shifts (multicast networks
    // subsume permutation networks).
    for k in [1usize, 64, 255] {
        let shift = ring_shift(n, k);
        let r = net.route(&shift).unwrap();
        assert!(r.realizes(&shift));
    }
    println!("ring shifts k ∈ {{1, 64, 255}} (permutation traffic) — routed ✓");

    // Cost note: the feedback fabric used above has (n/2)·log n = 1024
    // switches; the unfolded network would need 9,472.
    println!(
        "\nhardware: feedback {} switches vs unfolded {} switches",
        brsmn::core::metrics::feedback_switches(n),
        brsmn::core::metrics::brsmn_switches(n),
    );
}
