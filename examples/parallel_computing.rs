//! Domain scenario from the paper's introduction: hardware multicast for
//! parallel computing — row broadcasts in block matrix multiplication,
//! barrier-release broadcast, and replicated-database updates, all on one
//! 256-endpoint fabric.
//!
//! Run: `cargo run --example parallel_computing`

use brsmn::core::{Brsmn, Engine, EngineConfig, FeedbackBrsmn};
use brsmn::workloads::{
    barrier_broadcast, matrix_row_broadcast, random_multicast, replica_update, ring_shift,
    RandomSpec,
};

fn main() {
    let n = 256usize;
    let net = Brsmn::new(n).unwrap();
    let feedback = FeedbackBrsmn::new(n).unwrap();

    // Matrix multiplication (SUMMA-style): each row's diagonal holder
    // broadcasts its A-block along the 16-processor row.
    let mm = matrix_row_broadcast(16);
    let r = net.route(&mm).unwrap();
    assert!(r.realizes(&mm));
    println!(
        "matrix row broadcast (16×16 grid): {} broadcasts × fanout {} — routed ✓",
        mm.active_inputs(),
        mm.max_fanout()
    );

    // Barrier synchronization: the root wakes all 256 processors at once.
    let barrier = barrier_broadcast(n, 0);
    let r = net.route(&barrier).unwrap();
    assert!(r.realizes(&barrier));
    println!("barrier release broadcast: 1 → {n} — routed ✓");

    // Replicated database: 8 primaries push updates to disjoint replica sets.
    let db = replica_update(n, 8);
    let (r, stats) = feedback.route(&db).unwrap();
    assert!(r.realizes(&db));
    println!(
        "replicated-DB update via the FEEDBACK network: 8 primaries, {} replicas, \
         {} passes over {} switches — routed ✓",
        db.total_connections(),
        stats.passes,
        stats.physical_switches
    );

    // FFT-style data exchange: unicast ring shifts (multicast networks
    // subsume permutation networks).
    for k in [1usize, 64, 255] {
        let shift = ring_shift(n, k);
        let r = net.route(&shift).unwrap();
        assert!(r.realizes(&shift));
    }
    println!("ring shifts k ∈ {{1, 64, 255}} (permutation traffic) — routed ✓");

    // Sustained traffic: a parallel machine does not route one assignment
    // and stop — communication phases arrive back to back. The batched
    // engine spreads independent frames across a worker pool (and can fork
    // the two half-network recursions), bit-identical to the sequential
    // router, with per-stage instrumentation.
    let frames: Vec<_> = (0..64)
        .map(|f| random_multicast(RandomSpec::dense(n), 100 + f))
        .collect();
    let engine = Engine::with_config(n, EngineConfig::batch(4)).unwrap();
    let out = engine.route_batch(&frames);
    assert_eq!(out.stats.frames_ok, 64);
    for (asg, r) in frames.iter().zip(&out.results) {
        assert!(r.as_ref().unwrap().realizes(asg));
    }
    println!(
        "batched engine: {} frames on {} worker(s) — {:.0} frames/s, \
         {} switch settings, {} planner sweeps — routed ✓",
        out.stats.batch,
        out.stats.workers,
        out.stats.frames_per_sec(),
        out.stats.stages.switch_settings,
        out.stats.stages.sweep_passes,
    );

    // Cost note: the feedback fabric used above has (n/2)·log n = 1024
    // switches; the unfolded network would need 9,088.
    println!(
        "\nhardware: feedback {} switches vs unfolded {} switches",
        brsmn::core::metrics::feedback_switches(n),
        brsmn::core::metrics::brsmn_switches(n),
    );
}
