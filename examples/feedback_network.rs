//! Reproduces **Fig. 13**: the feedback implementation. One physical
//! reverse banyan network, its outputs looped back to its inputs, realizes
//! the entire multicast network: pass 1 scatters (level-1 BSN), pass 2
//! quasisorts, passes 3–4 handle level 2 on the re-programmed *first* stages
//! of the same array, and so on.
//!
//! Run: `cargo run --example feedback_network`

use brsmn::core::metrics;
use brsmn::core::{Brsmn, FeedbackBrsmn, MulticastAssignment};

fn main() {
    let n = 16usize;
    let asg = MulticastAssignment::from_sets(
        16,
        vec![
            vec![0, 5, 9],
            vec![],
            vec![2, 3],
            vec![],
            vec![10, 11, 12, 13],
            vec![1],
            vec![],
            vec![4, 8],
            vec![],
            vec![6, 7, 14],
            vec![],
            vec![15],
            vec![],
            vec![],
            vec![],
            vec![],
        ],
    )
    .unwrap();
    println!("assignment: {asg}\n");

    let (result, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
    assert!(result.realizes(&asg));

    println!("feedback execution (Fig. 13):");
    println!("  physical switches : {}", stats.physical_switches);
    println!("  passes            : {} (2·(log n − 1) + 1)", stats.passes);
    println!("  stage traversals  : {}", stats.stage_traversals);
    println!("  switch writes     : {}", stats.reprogrammed_switches);

    // The unfolded network gets the identical connection pattern…
    let unfolded = Brsmn::new(n).unwrap().route(&asg).unwrap();
    assert_eq!(result, unfolded);
    println!("\nagrees with the unfolded BRSMN ✓");

    // …but costs (log n + 1)/2 ≈ {}× more hardware.
    println!("\nhardware comparison:");
    for nn in [16usize, 256, 4096, 65536] {
        println!(
            "  n = {:>6}: unfolded {:>9} switches | feedback {:>8} switches | ratio {:>4.1}×",
            nn,
            metrics::brsmn_switches(nn),
            metrics::feedback_switches(nn),
            metrics::brsmn_switches(nn) as f64 / metrics::feedback_switches(nn) as f64
        );
    }
}
