//! A switching-layer scenario the paper's network slots into: overlapping
//! multicast *requests* (several sources want the same outputs) are packed
//! into conflict-free rounds, each round realized by one nonblocking pass
//! through the BRSMN.
//!
//! Run: `cargo run --example batch_scheduler`

use brsmn::core::Brsmn;
use brsmn::workloads::{rounds_lower_bound, schedule_rounds, Request};

fn main() {
    let n = 32usize;

    // A content-distribution burst: three channels, overlapping audiences,
    // plus unicast chatter. Outputs 4, 9 and 17 are oversubscribed.
    let requests = vec![
        Request::new(0, (0..12).collect()),          // channel A → audience 0-11
        Request::new(1, vec![4, 9, 17, 20, 21, 22]), // channel B overlaps A on 4, 9
        Request::new(2, vec![9, 17, 30, 31]),        // channel C overlaps both
        Request::new(5, vec![13]),
        Request::new(6, vec![14]),
        Request::new(5, vec![15]), // same source twice → separate rounds
        Request::new(9, vec![17]), // fourth claim on output 17
    ];

    println!("{} requests over a {n}-endpoint fabric", requests.len());
    for (i, r) in requests.iter().enumerate() {
        println!("  request {i}: input {} → {:?}", r.source, r.dests);
    }

    let schedule = schedule_rounds(n, &requests);
    println!(
        "\nscheduled into {} rounds (lower bound from contention: {})",
        schedule.len(),
        rounds_lower_bound(n, &requests)
    );

    let net = Brsmn::new(n).unwrap();
    for (r, asg) in schedule.rounds.iter().enumerate() {
        let result = net.route(asg).expect("nonblocking per round");
        assert!(result.realizes(asg));
        println!(
            "  round {r}: requests {:?} — {} connections routed ✓",
            schedule.placement[r],
            asg.total_connections()
        );
    }
    println!("\nall requests served; every round routed by one self-routing pass");
}
