//! Long-running conference churn on one fabric: conferences start, end,
//! gain and lose members, and change speakers over hundreds of rounds —
//! every intermediate configuration is rerouted from scratch by the
//! self-routing network, which never blocks.
//!
//! Run: `cargo run --example conference_churn`

use brsmn::core::Brsmn;
use brsmn::workloads::{simulate, SessionConfig};

fn main() {
    let n = 128usize;
    let rounds = 500usize;
    let net = Brsmn::new(n).unwrap();

    println!("simulating {rounds} rounds of conference churn on a {n}-endpoint fabric…\n");
    let stats = match simulate(SessionConfig::default_for(n), 2026, rounds, |asg| {
        // Route with the faithful self-routing engine every round.
        net.route_self_routing(asg)
            .map(|r| r.realizes(asg))
            .unwrap_or(false)
    }) {
        Ok(stats) => stats,
        // With the BRSMN this is unreachable (the nonblocking theorem), but
        // the harness no longer panics: a failing round comes back typed,
        // with the round index and the assignment that did it.
        Err(err) => {
            eprintln!("churn campaign aborted: {err}");
            eprintln!("stats up to the failure: {:?}", err.stats);
            std::process::exit(1);
        }
    };

    println!("rounds simulated        : {}", stats.rounds);
    println!("rounds with churn       : {}", stats.churn_rounds);
    println!("total connections routed: {}", stats.total_connections);
    println!(
        "avg connections / round : {:.1}",
        stats.total_connections as f64 / stats.rounds as f64
    );
    println!("peak conference fanout  : {}", stats.max_fanout);
    println!("peak live conferences   : {}", stats.max_live_conferences);
    println!("\nevery configuration realized by the self-routing engine ✓");
}
