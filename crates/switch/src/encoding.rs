//! The 3-bit hardware encoding of tag values (Table 1 of the paper) and the
//! counting predicates the forward-phase circuits derive from it.
//!
//! | tag | `b0 b1 b2` |
//! |---|---|
//! | `0` | `000` |
//! | `1` | `001` |
//! | `α` | `100` |
//! | `ε` | `11X` |
//! | `ε₀` | `110` |
//! | `ε₁` | `111` |
//!
//! Section 7.2: `b0 ∧ ¬b1` counts `α`s, `b0 ∧ b1` counts `ε`s, and `b2` alone
//! counts all 1s (real and dummy) once the inputs are restricted to
//! `{0, 1, ε₀, ε₁}` in the quasisorting network.

use crate::tag::{QTag, Tag};
use serde::{Deserialize, Serialize};

/// A concrete 3-bit code word `b0 b1 b2` (`b0` transmitted first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TagCode {
    /// Bit `b0`.
    pub b0: bool,
    /// Bit `b1`.
    pub b1: bool,
    /// Bit `b2`.
    pub b2: bool,
}

impl TagCode {
    /// Builds a code word from the three bits.
    pub fn new(b0: bool, b1: bool, b2: bool) -> Self {
        TagCode { b0, b1, b2 }
    }

    /// The code as a 3-bit integer `b0·4 + b1·2 + b2`.
    pub fn as_u8(self) -> u8 {
        (self.b0 as u8) << 2 | (self.b1 as u8) << 1 | self.b2 as u8
    }

    /// Parses a 3-bit integer.
    pub fn from_u8(v: u8) -> Option<Self> {
        if v < 8 {
            Some(TagCode::new(v & 4 != 0, v & 2 != 0, v & 1 != 0))
        } else {
            None
        }
    }

    /// Section 7.2 predicate: this code counts as one `α` (`b0 ∧ ¬b1`).
    #[inline]
    pub fn counts_as_alpha(self) -> bool {
        self.b0 && !self.b1
    }

    /// Section 7.2 predicate: this code counts as one `ε` (`b0 ∧ b1`).
    #[inline]
    pub fn counts_as_eps(self) -> bool {
        self.b0 && self.b1
    }

    /// Section 7.2 predicate: in a quasisorting network this code counts as a
    /// (real or dummy) `1` — just bit `b2`.
    #[inline]
    pub fn counts_as_one(self) -> bool {
        self.b2
    }
}

/// Encodes a base tag. `ε` encodes as `ε₀` (`110`) by convention; the `X` bit
/// is only fixed once the ε-dividing algorithm runs.
pub fn encode_tag(tag: Tag) -> TagCode {
    match tag {
        Tag::Zero => TagCode::new(false, false, false),
        Tag::One => TagCode::new(false, false, true),
        Tag::Alpha => TagCode::new(true, false, false),
        Tag::Eps => TagCode::new(true, true, false),
    }
}

/// Encodes a quasisorting tag (dummy bits resolved).
pub fn encode_qtag(tag: QTag) -> TagCode {
    match tag {
        QTag::Zero => TagCode::new(false, false, false),
        QTag::One => TagCode::new(false, false, true),
        QTag::Eps0 => TagCode::new(true, true, false),
        QTag::Eps1 => TagCode::new(true, true, true),
    }
}

/// Decodes a code word to a base tag. `01X` codes are unused by the scheme
/// and decode to `None`.
pub fn decode_tag(code: TagCode) -> Option<Tag> {
    match (code.b0, code.b1, code.b2) {
        (false, false, false) => Some(Tag::Zero),
        (false, false, true) => Some(Tag::One),
        (true, false, false) => Some(Tag::Alpha),
        (true, true, _) => Some(Tag::Eps),
        _ => None,
    }
}

/// Decodes a code word to a quasisorting tag (requires the `ε` dummy bit to be
/// meaningful; `α` and unused codes decode to `None`).
pub fn decode_qtag(code: TagCode) -> Option<QTag> {
    match (code.b0, code.b1, code.b2) {
        (false, false, false) => Some(QTag::Zero),
        (false, false, true) => Some(QTag::One),
        (true, true, false) => Some(QTag::Eps0),
        (true, true, true) => Some(QTag::Eps1),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_code_words() {
        assert_eq!(encode_tag(Tag::Zero).as_u8(), 0b000);
        assert_eq!(encode_tag(Tag::One).as_u8(), 0b001);
        assert_eq!(encode_tag(Tag::Alpha).as_u8(), 0b100);
        assert_eq!(encode_qtag(QTag::Eps0).as_u8(), 0b110);
        assert_eq!(encode_qtag(QTag::Eps1).as_u8(), 0b111);
    }

    #[test]
    fn eps_x_bit_both_decode_to_eps() {
        assert_eq!(decode_tag(TagCode::from_u8(0b110).unwrap()), Some(Tag::Eps));
        assert_eq!(decode_tag(TagCode::from_u8(0b111).unwrap()), Some(Tag::Eps));
    }

    #[test]
    fn unused_codes_rejected() {
        assert_eq!(decode_tag(TagCode::from_u8(0b010).unwrap()), None);
        assert_eq!(decode_tag(TagCode::from_u8(0b011).unwrap()), None);
        assert_eq!(decode_qtag(TagCode::from_u8(0b100).unwrap()), None);
        assert_eq!(TagCode::from_u8(8), None);
    }

    #[test]
    fn tag_round_trip() {
        for t in Tag::ALL {
            assert_eq!(decode_tag(encode_tag(t)), Some(t));
        }
        for q in [QTag::Zero, QTag::One, QTag::Eps0, QTag::Eps1] {
            assert_eq!(decode_qtag(encode_qtag(q)), Some(q));
        }
    }

    #[test]
    fn alpha_counting_predicate() {
        // b0 ∧ ¬b1 is true exactly for the α code.
        for t in Tag::ALL {
            assert_eq!(encode_tag(t).counts_as_alpha(), t == Tag::Alpha);
        }
    }

    #[test]
    fn eps_counting_predicate() {
        for t in Tag::ALL {
            assert_eq!(encode_tag(t).counts_as_eps(), t == Tag::Eps);
        }
        assert!(encode_qtag(QTag::Eps1).counts_as_eps());
    }

    #[test]
    fn ones_counting_predicate_on_qtags() {
        // In the quasisorting network, b2 counts real + dummy 1s.
        for q in [QTag::Zero, QTag::One, QTag::Eps0, QTag::Eps1] {
            assert_eq!(encode_qtag(q).counts_as_one(), q.sort_bit());
        }
    }

    #[test]
    fn code_u8_round_trip() {
        for v in 0..8u8 {
            assert_eq!(TagCode::from_u8(v).unwrap().as_u8(), v);
        }
    }
}
