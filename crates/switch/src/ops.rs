//! Switch settings and their checked application to a pair of lines.
//!
//! Settings follow Section 4 of the paper: `r = 0` parallel, `r = 1`
//! crossing, `r = 2` upper broadcast, `r = 3` lower broadcast (Fig. 7).
//! Broadcast settings implement the α-scattering of Fig. 3c/3d: the `α` input
//! is duplicated, the `ε` input is consumed, and the two outputs carry tags
//! `0` (upper output) and `1` (lower output).

use crate::tag::Tag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four legal settings of a 2×2 switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwitchSetting {
    /// `r = 0`: upper→upper, lower→lower.
    Parallel,
    /// `r = 1`: upper→lower, lower→upper.
    Crossing,
    /// `r = 2`: the upper input (an `α`) is broadcast to both outputs.
    UpperBroadcast,
    /// `r = 3`: the lower input (an `α`) is broadcast to both outputs.
    LowerBroadcast,
}

impl SwitchSetting {
    /// Numeric encoding `r ∈ {0,1,2,3}` used by the compact-setting notation
    /// `W^{n/2}_{…}` of Section 4.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            SwitchSetting::Parallel => 0,
            SwitchSetting::Crossing => 1,
            SwitchSetting::UpperBroadcast => 2,
            SwitchSetting::LowerBroadcast => 3,
        }
    }

    /// Inverse of [`Self::code`].
    #[inline]
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => SwitchSetting::Parallel,
            1 => SwitchSetting::Crossing,
            2 => SwitchSetting::UpperBroadcast,
            3 => SwitchSetting::LowerBroadcast,
            _ => return None,
        })
    }

    /// `true` for the one-to-one settings (parallel / crossing).
    #[inline]
    pub fn is_unicast(self) -> bool {
        matches!(self, SwitchSetting::Parallel | SwitchSetting::Crossing)
    }

    /// The opposite unicast setting (`0 ↔ 1`); broadcasts are their own
    /// complement partner (`2 ↔ 3`). Matches the `ucast̄` / `b̄` notation of
    /// Tables 3–4.
    #[inline]
    pub fn complement(self) -> Self {
        match self {
            SwitchSetting::Parallel => SwitchSetting::Crossing,
            SwitchSetting::Crossing => SwitchSetting::Parallel,
            SwitchSetting::UpperBroadcast => SwitchSetting::LowerBroadcast,
            SwitchSetting::LowerBroadcast => SwitchSetting::UpperBroadcast,
        }
    }
}

impl fmt::Display for SwitchSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One line (link) of the network: a tag plus, when the tag is not `ε`, a
/// payload of type `P` (the message body and any pending routing-tag stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Line<P> {
    /// The routing tag currently on the line.
    pub tag: Tag,
    /// The message payload; `None` iff `tag == ε`.
    pub payload: Option<P>,
}

impl<P> Line<P> {
    /// An empty line (`ε`).
    #[inline]
    pub fn empty() -> Self {
        Line {
            tag: Tag::Eps,
            payload: None,
        }
    }

    /// A line carrying `payload` under `tag` (which must not be `ε`).
    #[inline]
    pub fn with(tag: Tag, payload: P) -> Self {
        assert!(tag != Tag::Eps, "ε lines carry no payload");
        Line {
            tag,
            payload: Some(payload),
        }
    }

    /// Checks the tag/payload invariant.
    #[inline]
    pub fn is_consistent(&self) -> bool {
        (self.tag == Tag::Eps) == self.payload.is_none()
    }
}

/// Error returned when a switch setting is applied to an illegal input
/// combination (Fig. 3 defines the legal operations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchError {
    /// The setting that was applied.
    pub setting: SwitchSetting,
    /// Tags found on the (upper, lower) inputs.
    pub found: (Tag, Tag),
}

impl fmt::Display for SwitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal switch operation: setting {} on tags ({}, {})",
            self.setting, self.found.0, self.found.1
        )
    }
}

impl std::error::Error for SwitchError {}

/// Applies `setting` to the pair of input lines, returning the output lines
/// `(upper, lower)`.
///
/// Unicast settings pass lines through unchanged (Fig. 3a/3b). Broadcast
/// settings require an `α` on the broadcast port and an `ε` on the other
/// (Fig. 3c/3d); the payload is duplicated and the copies are tagged `0`
/// (upper output) and `1` (lower output).
#[inline]
pub fn apply_switch<P: Clone>(
    setting: SwitchSetting,
    upper: Line<P>,
    lower: Line<P>,
) -> Result<(Line<P>, Line<P>), SwitchError> {
    debug_assert!(upper.is_consistent() && lower.is_consistent());
    match setting {
        SwitchSetting::Parallel => Ok((upper, lower)),
        SwitchSetting::Crossing => Ok((lower, upper)),
        SwitchSetting::UpperBroadcast => {
            if upper.tag != Tag::Alpha || lower.tag != Tag::Eps {
                return Err(SwitchError {
                    setting,
                    found: (upper.tag, lower.tag),
                });
            }
            let p = upper.payload.expect("α line carries a payload");
            Ok((Line::with(Tag::Zero, p.clone()), Line::with(Tag::One, p)))
        }
        SwitchSetting::LowerBroadcast => {
            if upper.tag != Tag::Eps || lower.tag != Tag::Alpha {
                return Err(SwitchError {
                    setting,
                    found: (upper.tag, lower.tag),
                });
            }
            let p = lower.payload.expect("α line carries a payload");
            Ok((Line::with(Tag::Zero, p.clone()), Line::with(Tag::One, p)))
        }
    }
}

/// Applies `setting` to the pair of input lines **without** rejecting illegal
/// combinations — the model of a *faulty* or stuck switch.
///
/// A healthy switch driven by a correct plan never sees an illegal
/// combination, so [`apply_switch`] can afford to error out. A switch stuck
/// in a broadcast state (or fed a corrupted tag) has no such luxury: the
/// hardware does *something*, and a fault simulator must reproduce it so the
/// damage propagates downstream where the output verifier can observe it.
/// The behaviour on illegal broadcasts follows the Fig. 3 datapath:
///
/// * the broadcast port's line is duplicated to both outputs with tags `0`
///   (upper) and `1` (lower) — whatever its input tag was;
/// * the other port's line is dropped (its message is lost);
/// * broadcasting an `ε` (no payload) yields two empty lines.
///
/// Unicast settings are total already and behave exactly as in
/// [`apply_switch`].
#[inline]
pub fn apply_switch_forced<P: Clone>(
    setting: SwitchSetting,
    upper: Line<P>,
    lower: Line<P>,
) -> (Line<P>, Line<P>) {
    match setting {
        SwitchSetting::Parallel => (upper, lower),
        SwitchSetting::Crossing => (lower, upper),
        SwitchSetting::UpperBroadcast => force_broadcast(upper),
        SwitchSetting::LowerBroadcast => force_broadcast(lower),
    }
}

/// Duplicates `src` to both outputs with tags `0`/`1` (empty if `src` is
/// `ε`), discarding the other input — the unconditional Fig. 3c/3d datapath.
#[inline]
fn force_broadcast<P: Clone>(src: Line<P>) -> (Line<P>, Line<P>) {
    match src.payload {
        Some(p) => (Line::with(Tag::Zero, p.clone()), Line::with(Tag::One, p)),
        None => (Line::empty(), Line::empty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(tag: Tag, v: u32) -> Line<u32> {
        Line::with(tag, v)
    }

    #[test]
    fn codes_round_trip() {
        for code in 0..4u8 {
            let s = SwitchSetting::from_code(code).unwrap();
            assert_eq!(s.code(), code);
        }
        assert_eq!(SwitchSetting::from_code(4), None);
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(
            SwitchSetting::Parallel.complement(),
            SwitchSetting::Crossing
        );
        assert_eq!(
            SwitchSetting::Crossing.complement(),
            SwitchSetting::Parallel
        );
        assert_eq!(
            SwitchSetting::UpperBroadcast.complement(),
            SwitchSetting::LowerBroadcast
        );
    }

    #[test]
    fn parallel_passes_through() {
        let (u, d) =
            apply_switch(SwitchSetting::Parallel, l(Tag::Zero, 7), l(Tag::One, 9)).unwrap();
        assert_eq!((u.tag, u.payload), (Tag::Zero, Some(7)));
        assert_eq!((d.tag, d.payload), (Tag::One, Some(9)));
    }

    #[test]
    fn crossing_swaps() {
        let (u, d) =
            apply_switch(SwitchSetting::Crossing, l(Tag::Alpha, 7), Line::empty()).unwrap();
        assert_eq!(u.tag, Tag::Eps);
        assert_eq!((d.tag, d.payload), (Tag::Alpha, Some(7)));
    }

    #[test]
    fn upper_broadcast_splits_alpha() {
        let (u, d) =
            apply_switch(SwitchSetting::UpperBroadcast, l(Tag::Alpha, 42), Line::empty()).unwrap();
        assert_eq!((u.tag, u.payload), (Tag::Zero, Some(42)));
        assert_eq!((d.tag, d.payload), (Tag::One, Some(42)));
    }

    #[test]
    fn lower_broadcast_splits_alpha() {
        let (u, d) =
            apply_switch(SwitchSetting::LowerBroadcast, Line::empty(), l(Tag::Alpha, 42)).unwrap();
        assert_eq!((u.tag, u.payload), (Tag::Zero, Some(42)));
        assert_eq!((d.tag, d.payload), (Tag::One, Some(42)));
    }

    #[test]
    fn broadcast_rejects_wrong_tags() {
        // α on the wrong port.
        let e = apply_switch(SwitchSetting::UpperBroadcast, Line::empty(), l(Tag::Alpha, 1))
            .unwrap_err();
        assert_eq!(e.found, (Tag::Eps, Tag::Alpha));
        // Two messages cannot be broadcast-merged.
        assert!(
            apply_switch(SwitchSetting::UpperBroadcast, l(Tag::Alpha, 1), l(Tag::Zero, 2)).is_err()
        );
        // χ values never broadcast.
        assert!(
            apply_switch(SwitchSetting::LowerBroadcast, Line::empty(), l(Tag::One, 2)).is_err()
        );
    }

    #[test]
    fn unicast_never_fails_and_preserves_tags() {
        for s in [SwitchSetting::Parallel, SwitchSetting::Crossing] {
            for tu in Tag::ALL {
                for td in Tag::ALL {
                    let up = if tu == Tag::Eps {
                        Line::empty()
                    } else {
                        l(tu, 1)
                    };
                    let dn = if td == Tag::Eps {
                        Line::empty()
                    } else {
                        l(td, 2)
                    };
                    let (ou, od) = apply_switch(s, up, dn).unwrap();
                    let mut tags_out = [ou.tag, od.tag];
                    let mut tags_in = [tu, td];
                    tags_out.sort_by_key(|t| format!("{t:?}"));
                    tags_in.sort_by_key(|t| format!("{t:?}"));
                    assert_eq!(tags_out, tags_in);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn eps_line_with_payload_is_rejected() {
        let _: Line<u32> = Line::with(Tag::Eps, 5);
    }

    #[test]
    fn forced_matches_checked_on_legal_inputs() {
        // Wherever apply_switch succeeds, the forced variant agrees exactly.
        let cases = [
            (SwitchSetting::Parallel, l(Tag::Zero, 1), l(Tag::One, 2)),
            (SwitchSetting::Crossing, l(Tag::Alpha, 1), Line::empty()),
            (SwitchSetting::UpperBroadcast, l(Tag::Alpha, 7), Line::empty()),
            (SwitchSetting::LowerBroadcast, Line::empty(), l(Tag::Alpha, 7)),
        ];
        for (s, up, dn) in cases {
            let checked = apply_switch(s, up, dn).unwrap();
            assert_eq!(apply_switch_forced(s, up, dn), checked);
        }
    }

    #[test]
    fn forced_broadcast_duplicates_any_message_and_drops_the_other() {
        // A switch stuck in UpperBroadcast duplicates whatever is on its
        // upper port and loses the lower message.
        let (u, d) = apply_switch_forced(SwitchSetting::UpperBroadcast, l(Tag::Zero, 5), l(Tag::One, 6));
        assert_eq!((u.tag, u.payload), (Tag::Zero, Some(5)));
        assert_eq!((d.tag, d.payload), (Tag::One, Some(5)));
    }

    #[test]
    fn forced_broadcast_of_empty_line_yields_empty_lines() {
        let (u, d) =
            apply_switch_forced::<u32>(SwitchSetting::LowerBroadcast, l(Tag::One, 3), Line::empty());
        assert_eq!(u, Line::empty());
        assert_eq!(d, Line::empty());
    }
}
