//! The four-value routing tag and the quasisorting dummy tags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four-value routing tag carried by every link of a binary splitting
/// network (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tag {
    /// All destinations in the upper half (most significant address bit 0).
    Zero,
    /// All destinations in the lower half (most significant address bit 1).
    One,
    /// Destinations in both halves — the connection must be split (`α`).
    Alpha,
    /// No message on the link (`ε`).
    Eps,
}

impl Tag {
    /// `true` for the single-valued tags `0` and `1` — the combined `χ` value
    /// of Section 5.1 ("a link has a value χ if it has a single value 0 or 1").
    #[inline]
    pub fn is_chi(self) -> bool {
        matches!(self, Tag::Zero | Tag::One)
    }

    /// `true` if the link carries a message (anything but `ε`).
    #[inline]
    pub fn carries_message(self) -> bool {
        self != Tag::Eps
    }

    /// All four tag values, in the paper's order `0, 1, α, ε`.
    pub const ALL: [Tag; 4] = [Tag::Zero, Tag::One, Tag::Alpha, Tag::Eps];
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tag::Zero => "0",
            Tag::One => "1",
            Tag::Alpha => "α",
            Tag::Eps => "ε",
        };
        f.write_str(s)
    }
}

/// Tag values on the inputs of a quasisorting network **after** the
/// ε-dividing algorithm (Section 6.2): real `0`s and `1`s plus *dummy* `ε₀`s
/// and `ε₁`s, chosen so that exactly `n/2` links sort upward and `n/2` sort
/// downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QTag {
    /// A real `0` (message bound for the upper half).
    Zero,
    /// A real `1` (message bound for the lower half).
    One,
    /// A dummy `0`: an empty link sorted into the upper half (`ε₀`).
    Eps0,
    /// A dummy `1`: an empty link sorted into the lower half (`ε₁`).
    Eps1,
}

impl QTag {
    /// The sort key: `false` sorts to the upper half, `true` to the lower —
    /// "the number of all 1s (including real and dummy 1s)" in the paper.
    #[inline]
    pub fn sort_bit(self) -> bool {
        matches!(self, QTag::One | QTag::Eps1)
    }

    /// `true` if the link carries a real message.
    #[inline]
    pub fn carries_message(self) -> bool {
        matches!(self, QTag::Zero | QTag::One)
    }

    /// Converts back to the base tag (`ε₀`/`ε₁` → `ε`).
    #[inline]
    pub fn base(self) -> Tag {
        match self {
            QTag::Zero => Tag::Zero,
            QTag::One => Tag::One,
            QTag::Eps0 | QTag::Eps1 => Tag::Eps,
        }
    }
}

impl fmt::Display for QTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QTag::Zero => "0",
            QTag::One => "1",
            QTag::Eps0 => "ε₀",
            QTag::Eps1 => "ε₁",
        };
        f.write_str(s)
    }
}

/// Counts of each tag value over a set of links, with the constraint checks of
/// Eqs. (1)–(3) of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TagCounts {
    /// Number of `0` tags.
    pub n0: usize,
    /// Number of `1` tags.
    pub n1: usize,
    /// Number of `α` tags.
    pub na: usize,
    /// Number of `ε` tags.
    pub ne: usize,
}

impl TagCounts {
    /// Tallies a slice of tags.
    pub fn of(tags: &[Tag]) -> Self {
        let mut c = TagCounts::default();
        for &t in tags {
            match t {
                Tag::Zero => c.n0 += 1,
                Tag::One => c.n1 += 1,
                Tag::Alpha => c.na += 1,
                Tag::Eps => c.ne += 1,
            }
        }
        c
    }

    /// Total number of links tallied (Eq. 1).
    pub fn total(&self) -> usize {
        self.n0 + self.n1 + self.na + self.ne
    }

    /// Checks the BSN input constraints of Eq. (2):
    /// `n0 + nα ≤ n/2` and `n1 + nα ≤ n/2`.
    pub fn satisfies_bsn_input_constraints(&self) -> bool {
        let half = self.total() / 2;
        self.n0 + self.na <= half && self.n1 + self.na <= half
    }

    /// The derived inequality of Eq. (3): `nα ≤ nε` (holds whenever
    /// [`Self::satisfies_bsn_input_constraints`] does).
    pub fn alpha_at_most_eps(&self) -> bool {
        self.na <= self.ne
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chi_is_zero_or_one() {
        assert!(Tag::Zero.is_chi());
        assert!(Tag::One.is_chi());
        assert!(!Tag::Alpha.is_chi());
        assert!(!Tag::Eps.is_chi());
    }

    #[test]
    fn only_eps_is_empty() {
        for t in Tag::ALL {
            assert_eq!(t.carries_message(), t != Tag::Eps);
        }
    }

    #[test]
    fn display_uses_paper_symbols() {
        assert_eq!(Tag::Alpha.to_string(), "α");
        assert_eq!(Tag::Eps.to_string(), "ε");
        assert_eq!(QTag::Eps0.to_string(), "ε₀");
        assert_eq!(QTag::Eps1.to_string(), "ε₁");
    }

    #[test]
    fn qtag_sort_bits() {
        assert!(!QTag::Zero.sort_bit());
        assert!(!QTag::Eps0.sort_bit());
        assert!(QTag::One.sort_bit());
        assert!(QTag::Eps1.sort_bit());
    }

    #[test]
    fn qtag_base_collapses_dummies() {
        assert_eq!(QTag::Eps0.base(), Tag::Eps);
        assert_eq!(QTag::Eps1.base(), Tag::Eps);
        assert_eq!(QTag::Zero.base(), Tag::Zero);
        assert_eq!(QTag::One.base(), Tag::One);
    }

    #[test]
    fn tag_counts_example_from_paper() {
        // Fig. 4b input column: 1, α, ε, 0, ε, α, ε, ε.
        use Tag::*;
        let tags = [One, Alpha, Eps, Zero, Eps, Alpha, Eps, Eps];
        let c = TagCounts::of(&tags);
        assert_eq!((c.n0, c.n1, c.na, c.ne), (1, 1, 2, 4));
        assert_eq!(c.total(), 8);
        assert!(c.satisfies_bsn_input_constraints());
        assert!(c.alpha_at_most_eps());
    }

    #[test]
    fn constraint_violation_detected() {
        use Tag::*;
        // Three connections want the upper half of a 4-output network: illegal.
        let tags = [Zero, Zero, Zero, Eps];
        assert!(!TagCounts::of(&tags).satisfies_bsn_input_constraints());
    }

    proptest! {
        /// Eq. (3) is implied by Eqs. (1)–(2): whenever the BSN input
        /// constraints hold, nα ≤ nε.
        #[test]
        fn prop_eq3_follows_from_eq2(tags in proptest::collection::vec(
            prop_oneof![Just(Tag::Zero), Just(Tag::One), Just(Tag::Alpha), Just(Tag::Eps)],
            2..128,
        )) {
            let c = TagCounts::of(&tags);
            if tags.len() % 2 == 0 && c.satisfies_bsn_input_constraints() {
                prop_assert!(c.alpha_at_most_eps());
            }
        }
    }
}
