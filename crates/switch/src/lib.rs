//! 2×2 switch model for the self-routing multicast network.
//!
//! A binary splitting network routes by a **four-value tag** per link
//! (Section 3 of the paper):
//!
//! * `0` — every destination of the message lies in the *upper* half of the
//!   outputs (Case 1),
//! * `1` — every destination lies in the *lower* half (Case 2),
//! * `α` — destinations in both halves; the message must be split (Case 3),
//! * `ε` — no message on the link (Case 4).
//!
//! A 2×2 switch supports four legal operations (Fig. 3): *parallel*,
//! *crossing* (unicast, tags unchanged), and *upper-* / *lower-broadcast*,
//! which pair an `α` with an `ε` and emit a `0` and a `1` — splitting one
//! multicast connection into two.
//!
//! ```
//! use brsmn_switch::{apply_switch, Line, SwitchSetting, Tag};
//!
//! // An α paired with an ε splits into a 0 copy and a 1 copy (Fig. 3c).
//! let (up, down) = apply_switch(
//!     SwitchSetting::UpperBroadcast,
//!     Line::with(Tag::Alpha, "payload"),
//!     Line::<&str>::empty(),
//! ).unwrap();
//! assert_eq!((up.tag, down.tag), (Tag::Zero, Tag::One));
//! assert_eq!(up.payload, down.payload);
//! ```
//!
//! Modules:
//! * [`tag`] — the tag type and the quasisorting dummy tags `ε₀`/`ε₁`;
//! * [`ops`] — switch settings and their (checked) application to lines;
//! * [`encoding`] — the 3-bit hardware encoding of Table 1 and the counting
//!   predicates used by the forward-phase circuits;
//! * [`cost`] — gate-cost calibration constants for the complexity analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod encoding;
pub mod ops;
pub mod tag;

pub use ops::{apply_switch, apply_switch_forced, Line, SwitchError, SwitchSetting};
pub use tag::{QTag, Tag};
