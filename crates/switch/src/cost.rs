//! Gate-cost calibration constants for the complexity analysis (Section 7.4).
//!
//! The paper counts **logic gates**, with one gate delay as the unit of time.
//! Its key claim is that the self-routing circuitry adds only a *constant*
//! number of gates per switch ("a constant number of one bit adders or
//! adder-like circuits"), so total cost is Θ(#switches). The constants below
//! fix that Θ into concrete numbers so different networks can be compared on
//! the same scale; they are calibration choices, documented here and in
//! EXPERIMENTS.md, not measurements of a real chip.

/// Gates for the 2×2 data path of a broadcast-capable switch: two 2:1 output
/// multiplexers with a broadcast override (≈4 gates each) plus setting decode.
pub const GATES_DATAPATH_PER_SWITCH: u64 = 10;

/// Gates for the distributed routing circuit attached to each switch: two
/// bit-serial full adders (≈5 gates each, Fig. 12), carry flip-flops, the
/// compact-setting comparator of Table 5, and the type/ε-divide bookkeeping.
pub const GATES_ROUTING_PER_SWITCH: u64 = 26;

/// Total gates attributed to one self-routing switch.
pub const GATES_PER_SWITCH: u64 = GATES_DATAPATH_PER_SWITCH + GATES_ROUTING_PER_SWITCH;

/// Gates for a plain (non-broadcast, externally routed) 2×2 switch, used for
/// baseline fabrics such as the Beneš network.
pub const GATES_PER_PLAIN_SWITCH: u64 = 8;

/// Gate delays for one full-adder stage of the pipelined bit-serial adder
/// (sum and carry each settle within two gate levels; Fig. 12).
pub const ADDER_STAGE_DELAY: u64 = 2;

/// Gate delays to traverse the data path of one switch stage.
pub const SWITCH_TRAVERSAL_DELAY: u64 = 2;

/// Converts a switch count to a gate count for a self-routing switch fabric.
pub fn gates_self_routing(switches: u64) -> u64 {
    switches * GATES_PER_SWITCH
}

/// Converts a switch count to a gate count for a plain switch fabric.
pub fn gates_plain(switches: u64) -> u64 {
    switches * GATES_PER_PLAIN_SWITCH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_switch_cost_is_constant_and_split_consistently() {
        assert_eq!(
            GATES_PER_SWITCH,
            GATES_DATAPATH_PER_SWITCH + GATES_ROUTING_PER_SWITCH
        );
    }

    #[test]
    fn gate_counts_scale_linearly_in_switches() {
        assert_eq!(gates_self_routing(0), 0);
        assert_eq!(gates_self_routing(7), 7 * GATES_PER_SWITCH);
        assert_eq!(gates_plain(12), 12 * GATES_PER_PLAIN_SWITCH);
    }

    #[test]
    fn self_routing_switch_costs_more_than_plain() {
        const { assert!(GATES_PER_SWITCH > GATES_PER_PLAIN_SWITCH) }
    }
}
