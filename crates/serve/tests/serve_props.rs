//! Property tests for the serving loop's invariants:
//!
//! * **Conservation** — `accepted + rejected + drained == submitted` for
//!   arbitrary request patterns, including malformed ones the admission
//!   layer must bounce;
//! * **No request lost or duplicated** — completion ids are unique, every
//!   admitted id completes exactly once, and no rejected id ever completes;
//! * **Shard transparency** — striping the same trace across several shards
//!   delivers per-id results identical to a single-shard server.

use std::collections::HashSet;

use brsmn_serve::{
    serve_trace, BackendKind, Completion, EpochUpdate, ServeConfig, Server, TenantSpec, Trace,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// An arbitrary (possibly invalid) request against an `n`-port server:
/// sources may run past `n`, destination lists may be empty, duplicated,
/// out of range, or larger than the fanout cap.
fn raw_requests(n: usize) -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    vec((0..n + 3, vec(0..n + 3, 0..8)), 1..40)
}

/// Only well-formed requests: in-range source, 1..=4 distinct in-range
/// destinations (the default `max_fanout`).
fn valid_requests(n: usize) -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    vec(
        (0..n, vec(0..n, 1..=4)).prop_map(|(src, mut dests)| {
            dests.sort_unstable();
            dests.dedup();
            (src, dests)
        }),
        1..40,
    )
}

fn submit_all(server: &mut Server, reqs: &[(usize, Vec<usize>)]) -> (Vec<u64>, u64) {
    let mut admitted = Vec::new();
    let mut rejected = 0u64;
    for (src, dests) in reqs {
        match server.submit(*src, dests) {
            Ok(id) => admitted.push(id),
            Err(_) => rejected += 1,
        }
    }
    (admitted, rejected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation holds for arbitrary — including malformed — request
    /// streams, and every admitted request completes exactly once.
    #[test]
    fn conservation_under_arbitrary_requests(reqs in raw_requests(16)) {
        let mut cfg = ServeConfig::new(16);
        cfg.record_outputs = true;
        let mut server = Server::start(cfg).unwrap();
        let (admitted, rejected) = submit_all(&mut server, &reqs);
        let report = server.shutdown();

        prop_assert!(report.conserves(), "conservation broken: {report:?}");
        prop_assert_eq!(report.submitted, reqs.len() as u64);
        prop_assert_eq!(report.rejected, rejected);
        prop_assert_eq!(
            report.accepted + report.drained,
            admitted.len() as u64,
            "admitted requests must all be served or drained"
        );

        // No request lost or duplicated: the completion log carries each
        // admitted id exactly once and nothing else.
        let completed: Vec<u64> = report.completions.iter().map(|c| c.id).collect();
        let unique: HashSet<u64> = completed.iter().copied().collect();
        prop_assert_eq!(unique.len(), completed.len(), "duplicated completion id");
        let expected: HashSet<u64> = admitted.iter().copied().collect();
        prop_assert_eq!(unique, expected, "completions != admitted ids");
    }

    /// A multi-shard server is observationally identical to a single-shard
    /// one: same per-id delivered source tables on the same request stream
    /// (capacity sized so backpressure never rejects nondeterministically).
    #[test]
    fn sharded_serving_matches_single_shard(
        reqs in valid_requests(16),
        shards in 2usize..=4,
    ) {
        let run = |shard_count: usize| {
            let mut cfg = ServeConfig::new(16);
            cfg.shards = shard_count;
            cfg.queue_capacity = reqs.len().max(1);
            cfg.record_outputs = true;
            let mut server = Server::start(cfg).unwrap();
            let (admitted, rejected) = submit_all(&mut server, &reqs);
            assert_eq!(rejected, 0, "capacity >= len: nothing may be rejected");
            assert_eq!(admitted.len(), reqs.len());
            let mut report = server.shutdown();
            report
                .completions
                .sort_unstable_by_key(|c: &Completion| c.id);
            report
        };

        let single = run(1);
        let striped = run(shards);

        prop_assert!(single.conserves() && striped.conserves());
        prop_assert_eq!(single.completions.len(), reqs.len());
        prop_assert_eq!(striped.completions.len(), reqs.len());
        for (a, b) in single.completions.iter().zip(&striped.completions) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.ok, b.ok);
            prop_assert_eq!(
                a.result.as_ref(),
                b.result.as_ref(),
                "shard striping changed the delivered source table for id {}",
                a.id
            );
        }
    }

    /// Trace replay is bit-deterministic across queue capacities: after
    /// the lossy-replay fix, capacity shifts *when* requests are admitted
    /// but never what is delivered or the order-independent output hash.
    #[test]
    fn replay_deterministic_across_capacities(seed in 0u64..1000) {
        let mut base = ServeConfig::new(16);
        base.queue.max_fanout = 5;
        let trace = Trace::generate(base.queue, seed, 12).unwrap();
        prop_assume!(!trace.is_empty());

        let mut reference: Option<u64> = None;
        for capacity in [2usize, 64, 1024] {
            let mut cfg = base.clone();
            cfg.queue_capacity = capacity;
            cfg.batch_window = 4;
            let report = serve_trace(cfg, &trace).unwrap();
            prop_assert!(report.conserves(), "capacity {}: {:?}", capacity, report);
            prop_assert_eq!(
                report.accepted + report.drained,
                trace.len() as u64,
                "capacity {} lost requests", capacity
            );
            prop_assert_eq!(report.rejected, 0);
            match reference {
                None => reference = Some(report.output_hash),
                Some(expect) => prop_assert_eq!(
                    report.output_hash, expect,
                    "capacity {} changed delivered outputs", capacity
                ),
            }
        }
    }

    /// The extended conservation law survives adversarial multi-tenant
    /// streams: arbitrary tenants (including unknown ones), mixed
    /// deadlines (none / generous / already expired), and a mid-run epoch
    /// change that rewrites quotas and weights.
    #[test]
    fn per_tenant_conservation_with_epoch_change(
        reqs in vec(
            (
                0u32..5,                       // tenants 3..4 are unknown
                0usize..16,
                vec(0usize..16, 1..=4),
                prop_oneof![
                    Just(None),
                    Just(Some(3_600_000_000_000u64)), // one hour: never sheds
                    Just(Some(0u64)),                 // sheds at composition
                ],
            ),
            1..60,
        ),
        new_quota in 1usize..64,
    ) {
        let mut cfg = ServeConfig::new(16);
        cfg.queue.max_fanout = 16;
        cfg.queue_capacity = 256;
        cfg.tenants = vec![
            TenantSpec { quota: 64, weight: 2 },
            TenantSpec { quota: 64, weight: 1 },
            TenantSpec { quota: 64, weight: 1 },
        ];
        let mut server = Server::start(cfg).unwrap();
        let half = reqs.len() / 2;
        for (tenant, src, dests, deadline) in &reqs[..half] {
            let _ = server.submit_for(*tenant, *src, dests, *deadline);
        }
        let epoch = server.reconfigure(EpochUpdate {
            quotas: Some(vec![new_quota; 3]),
            weights: Some(vec![1, 3, 2]),
            ..EpochUpdate::default()
        }).unwrap();
        prop_assert_eq!(epoch, 1);
        for (tenant, src, dests, deadline) in &reqs[half..] {
            let _ = server.submit_for(*tenant, *src, dests, *deadline);
        }
        let report = server.shutdown();

        prop_assert!(report.conserves(), "conservation broken: {report:?}");
        prop_assert_eq!(report.submitted, reqs.len() as u64);
        prop_assert_eq!(report.epoch, 1);
        let unknown = reqs.iter().filter(|(t, ..)| *t >= 3).count() as u64;
        prop_assert_eq!(report.rejections.unknown_tenant, unknown);
        // Every known-tenant submission with an expired deadline is shed;
        // nothing else is (capacity 256 > 60 requests, quotas >= 1 retry-free
        // because live submissions are per-attempt — shed happens in-loop).
        let tenant_sub: u64 = report.tenants.iter().map(|t| t.submitted).sum();
        prop_assert_eq!(tenant_sub + unknown, report.submitted);
    }

    /// Every non-BRSMN backend conserves and serves the same stream the
    /// fast path does (spot property over the slower fabrics).
    #[test]
    fn alternate_backends_conserve(reqs in valid_requests(8)) {
        for backend in [BackendKind::Reference, BackendKind::Feedback] {
            let mut cfg = ServeConfig::new(8);
            cfg.backend = backend;
            cfg.queue_capacity = reqs.len().max(1);
            let mut server = Server::start(cfg).unwrap();
            let (admitted, _) = submit_all(&mut server, &reqs);
            let report = server.shutdown();
            prop_assert!(report.conserves(), "{backend}: {report:?}");
            prop_assert_eq!(report.accepted + report.drained, admitted.len() as u64);
            prop_assert_eq!(report.served_err, 0, "{backend} failed a valid route");
        }
    }
}
