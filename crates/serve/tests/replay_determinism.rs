//! Replay determinism: after the lossy-replay fix, serving the same trace
//! must (a) lose zero requests — every trace request is retried past
//! transient `QueueFull`/`QuotaExceeded` until admitted — and (b) deliver
//! bit-identical outputs across runs and across queue capacities. The
//! capacity changes only *when* requests are admitted, never what is
//! delivered or the order-independent `output_hash`.

use brsmn_core::RoutingResult;
use brsmn_serve::{serve_trace, ChurnTraceSpec, ServeConfig, ServeReport, TenantSpec, Trace};

fn outputs(report: &ServeReport) -> Vec<(u64, Option<RoutingResult>)> {
    let mut v: Vec<_> = report
        .completions
        .iter()
        .map(|c| (c.id, c.result.clone()))
        .collect();
    v.sort_by_key(|(id, _)| *id);
    v
}

#[test]
fn replay_is_bit_deterministic_across_queue_capacities() {
    let mut base = ServeConfig::new(16);
    base.queue.max_fanout = 6;
    base.queue.p_arrival = 0.5;
    let trace = Trace::generate(base.queue, 42, 40).unwrap();
    assert!(trace.len() > 100, "want real backpressure at capacity 2");

    let mut reference: Option<(Vec<(u64, Option<RoutingResult>)>, u64)> = None;
    for capacity in [2usize, 64, 1024] {
        let mut cfg = base.clone();
        cfg.queue_capacity = capacity;
        cfg.batch_window = 4;
        cfg.record_outputs = true;
        let report = serve_trace(cfg, &trace).unwrap();
        assert!(report.conserves(), "capacity {capacity}: {report:?}");
        assert_eq!(report.submitted, trace.len() as u64);
        assert_eq!(
            report.accepted + report.drained,
            trace.len() as u64,
            "capacity {capacity} lost requests"
        );
        assert_eq!(report.rejected, 0, "capacity {capacity}: {:?}", report.rejections);
        let out = (outputs(&report), report.output_hash);
        match &reference {
            None => reference = Some(out),
            Some(expect) => {
                assert_eq!(out.0, expect.0, "capacity {capacity} changed delivered outputs");
                assert_eq!(out.1, expect.1, "capacity {capacity} changed the output hash");
            }
        }
    }
}

#[test]
fn two_replays_of_a_churn_trace_are_identical() {
    // 3-tenant churn with expired-at-arrival requests: shed counts and
    // output hashes must be identical run to run — deadline shedding in
    // replay depends only on trace fields, never on machine speed.
    let mut spec = ChurnTraceSpec::default_for(32);
    spec.rounds = 24;
    spec.p_expired = 0.15;
    let trace = Trace::from_churn(spec, 9).unwrap();
    let expired = trace
        .requests
        .iter()
        .filter(|r| r.expired_at_arrival())
        .count() as u64;
    assert!(expired > 0, "p_expired = 0.15 must produce expiries");

    let run = |capacity: usize| {
        let mut cfg = ServeConfig::new(32);
        cfg.queue.max_fanout = 32;
        cfg.queue_capacity = capacity;
        cfg.tenants = vec![TenantSpec::even(capacity); trace.tenant_count() as usize];
        cfg.record_outputs = true;
        serve_trace(cfg, &trace).unwrap()
    };
    let a = run(64);
    let b = run(64);
    let tiny = run(4);
    for r in [&a, &b, &tiny] {
        assert!(r.conserves(), "{r:?}");
        assert!(r.quotas_respected(), "{r:?}");
        // Zero loss: every request is served or deterministically shed.
        assert_eq!(r.submitted, trace.len() as u64);
        assert_eq!(r.rejections.deadline_exceeded, expired);
        assert_eq!(r.rejected, expired);
        assert_eq!(r.accepted + r.drained, trace.len() as u64 - expired);
    }
    assert_eq!(a.output_hash, b.output_hash);
    assert_eq!(outputs(&a), outputs(&b));
    assert_eq!(a.output_hash, tiny.output_hash, "queue capacity leaked into outputs");
    assert_eq!(outputs(&a), outputs(&tiny));
}

#[test]
fn committed_demo_trace_replays_without_loss() {
    // The repository's committed trace predates multi-tenancy; it must
    // still parse, replay losslessly even through a tiny queue, and hash
    // identically across runs.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../traces/serve_demo.json");
    let json = std::fs::read_to_string(path).expect("committed trace exists");
    let trace = Trace::from_json(&json).unwrap();
    assert_eq!(trace.tenant_count(), 1, "pre-tenant trace maps to tenant 0");

    let run = || {
        let mut cfg = ServeConfig::new(trace.n);
        cfg.queue.max_fanout = trace.n;
        cfg.queue_capacity = 2;
        cfg.batch_window = 2;
        serve_trace(cfg, &trace).unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.conserves(), "{a:?}");
    assert_eq!(a.accepted + a.drained, trace.len() as u64);
    assert_eq!(a.rejected, 0);
    assert_eq!(a.output_hash, b.output_hash);
}
