//! Multi-tenant serving: per-tenant quotas, deadline shedding, epoch-based
//! reconfiguration, and the extended (per-tenant) conservation law.

use brsmn_serve::{
    serve_trace, ChurnTraceSpec, EpochUpdate, ServeConfig, Server, TenantSpec, Trace,
};

#[test]
fn churn_trace_replay_conserves_per_tenant() {
    // Three tenants' conference-churn sessions with mixed deadlines (some
    // already expired at arrival), replayed through a quota-bound server.
    let mut spec = ChurnTraceSpec::default_for(64);
    spec.rounds = 30;
    spec.p_expired = 0.1;
    let trace = Trace::from_churn(spec, 21).unwrap();
    assert_eq!(trace.tenant_count(), 3);

    let mut cfg = ServeConfig::new(64);
    cfg.queue.max_fanout = 64;
    cfg.queue_capacity = 48;
    cfg.batch_window = 8;
    cfg.tenants = vec![TenantSpec { quota: 16, weight: 1 }; 3];
    let report = serve_trace(cfg, &trace).unwrap();

    assert!(report.conserves(), "{report:?}");
    assert!(report.quotas_respected(), "{report:?}");
    assert_eq!(report.submitted, trace.len() as u64);
    assert_eq!(report.tenants.len(), 3);

    // Replay loses nothing: every request is served or deterministically
    // shed as expired-at-arrival; quota/backpressure never drops one.
    let expired = trace
        .requests
        .iter()
        .filter(|r| r.expired_at_arrival())
        .count() as u64;
    assert!(expired > 0);
    assert_eq!(report.rejections.deadline_exceeded, expired);
    assert_eq!(report.rejected, expired);
    assert_eq!(report.accepted + report.drained, trace.len() as u64 - expired);

    for (t, tr) in report.tenants.iter().enumerate() {
        assert!(tr.submitted > 0, "tenant {t} got no traffic");
        assert!(tr.max_queued <= tr.quota, "tenant {t} overflowed its quota");
        // Per-tenant shed counts reconcile against the trace.
        let t_expired = trace
            .requests
            .iter()
            .filter(|r| r.tenant_id() as usize == t && r.expired_at_arrival())
            .count() as u64;
        assert_eq!(tr.rejections.deadline_exceeded, t_expired, "tenant {t}");
        assert_eq!(tr.served_ok + tr.served_err, tr.submitted - t_expired, "tenant {t}");
    }
}

#[test]
fn live_mixed_deadlines_with_mid_run_epoch_change() {
    // Three tenants submit live with a mix of no deadline, a generous
    // deadline, and an instantly-expired one; quotas and weights change
    // mid-run. Conservation must hold per tenant, and every completion
    // must carry the epoch under which it was admitted.
    const HOUR_NS: u64 = 3_600_000_000_000;
    let mut cfg = ServeConfig::new(16);
    cfg.queue.max_fanout = 16;
    cfg.queue_capacity = 512;
    cfg.tenants = vec![
        TenantSpec { quota: 256, weight: 2 },
        TenantSpec { quota: 256, weight: 1 },
        TenantSpec { quota: 256, weight: 1 },
    ];
    cfg.record_outputs = true;
    let mut server = Server::start(cfg).unwrap();

    let submit_wave = |server: &mut Server| {
        for i in 0..30usize {
            let tenant = (i % 3) as u32;
            let deadline = match (i / 3) % 3 {
                0 => None,
                1 => Some(HOUR_NS),
                _ => Some(0), // expired the instant it is queued
            };
            server
                .submit_for(tenant, i % 16, &[(i + 5) % 16, (i + 9) % 16], deadline)
                .unwrap();
        }
    };
    submit_wave(&mut server);
    let epoch = server
        .reconfigure(EpochUpdate {
            quotas: Some(vec![128, 128, 300]),
            weights: Some(vec![1, 1, 3]),
            ..EpochUpdate::default()
        })
        .unwrap();
    assert_eq!(epoch, 1);
    submit_wave(&mut server);
    let report = server.shutdown();

    assert!(report.conserves(), "{report:?}");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.submitted, 60);
    assert_eq!(report.tenants.len(), 3);
    // Per wave, each tenant gets exactly 3 instantly-expired requests.
    assert_eq!(report.rejections.deadline_exceeded, 18);
    assert_eq!(report.served_ok, 42);
    for tr in &report.tenants {
        assert_eq!(tr.submitted, 20);
        assert_eq!(tr.rejections.deadline_exceeded, 6);
        assert_eq!(tr.served_ok, 14);
        // Final quotas/weights (the reconfigured ones) land in the report.
        assert_eq!(
            (tr.quota, tr.weight),
            if tr.tenant == 2 { (300, 3) } else { (128, 1) }
        );
    }
    // Completions are stamped with their admission epoch: 21 survivors
    // from each wave.
    let mut by_epoch = [0u64; 2];
    for c in &report.completions {
        by_epoch[c.epoch as usize] += 1;
    }
    assert_eq!(by_epoch, [21, 21]);
}

#[test]
fn churn_replay_respects_lowered_mid_trace_quotas_too() {
    // Same churn trace, much tighter quotas: replay retries QuotaExceeded
    // instead of dropping, so tight quotas slow the replay down but still
    // lose nothing.
    let mut spec = ChurnTraceSpec::default_for(32);
    spec.rounds = 16;
    let trace = Trace::from_churn(spec, 4).unwrap();
    let mut cfg = ServeConfig::new(32);
    cfg.queue.max_fanout = 32;
    cfg.queue_capacity = 16;
    cfg.batch_window = 4;
    cfg.tenants = vec![TenantSpec { quota: 2, weight: 1 }; 3];
    let report = serve_trace(cfg, &trace).unwrap();
    assert!(report.conserves(), "{report:?}");
    assert!(report.quotas_respected(), "{report:?}");
    assert_eq!(report.accepted + report.drained + report.rejected, trace.len() as u64);
    assert_eq!(report.rejections.quota_exceeded, 0, "quota pressure must retry, not drop");
    assert_eq!(report.rejections.queue_full, 0);
    for tr in &report.tenants {
        assert!(tr.max_queued <= 2);
    }
}
