//! Power-of-two latency histograms: fixed memory, O(1) record, exact
//! count/sum/max plus bucketed quantiles — the serving loop records each
//! completed request twice, once into the global histogram and once into
//! the submitting tenant's, so the 64-word footprint is per tenant and
//! per-tenant tail latencies (`TenantReport::latency`) cost no extra
//! allocation on the serving path.

use serde::{Deserialize, Serialize};

/// Bucket `i` counts samples in `[2^i, 2^{i+1})` nanoseconds (bucket 0 is
/// `[0, 2)`); 64 buckets cover every representable `u64` latency.
const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram.
///
/// Quantiles are resolved to the upper edge of the containing bucket, i.e.
/// within a factor of 2 of the true order statistic — plenty for serving
/// reports, at 64 words of memory regardless of sample count.
///
/// # Example
///
/// ```
/// use brsmn_serve::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for ns in [100, 200, 400, 800, 100_000] {
///     h.record(ns);
/// }
/// assert_eq!(h.count, 5);
/// assert_eq!(h.max_ns, 100_000);
/// assert!(h.quantile(0.5) >= 200);
/// assert!(h.quantile(1.0) >= 100_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts (see module docs for the bucket bounds).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Exact maximum sample, nanoseconds.
    pub max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (slot, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += o;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The upper bucket edge below which at least `q · count` samples fall
    /// (`q` clamped to `[0, 1]`); 0 for an empty histogram. `quantile(1.0)`
    /// returns the exact observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i, capped at the observed max.
                let edge = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return edge.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Exact mean sample, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.buckets[0], 2); // 0 and 1
        assert_eq!(h.buckets[1], 2); // 2 and 3
        assert_eq!(h.buckets[10], 1); // 1024
        assert_eq!(h.count, 5);
        assert_eq!(h.sum_ns, 1030);
        assert_eq!(h.max_ns, 1024);
    }

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        let p50 = h.quantile(0.5);
        // True median 500: the bucket edge answer is within a factor of 2.
        assert!((250..=1000).contains(&p50), "{p50}");
        assert_eq!(h.quantile(1.0), 1000);
        assert!(h.quantile(0.0) >= 1);
        assert!((h.mean_ns() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let samples_a = [5u64, 80, 3000, 1 << 20];
        let samples_b = [1u64, 9, 77, 1 << 30];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for s in samples_a {
            a.record(s);
            all.record(s);
        }
        for s in samples_b {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn serializes_round_trip() {
        let mut h = LatencyHistogram::new();
        h.record(123);
        h.record(456_789);
        let json = serde_json::to_string(&h).unwrap();
        let back: LatencyHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
