//! The serving front end: a multi-tenant bounded-queue request loop feeding
//! a sharded, multi-backend routing fabric — the shape a deployed BRSMN
//! switch controller takes.
//!
//! ```text
//!  submit_for(tenant, source, dests, deadline)
//!        │  admission control (tenant known? port ranges? fanout cap?
//!        │  deadline already passed? per-tenant quota? total capacity?)
//!        ▼
//!  ┌──────────────────────────────┐  one bounded FIFO per tenant; a full
//!  │ tenant 0 │ tenant 1 │ … │ T−1│  fabric (Σ len == queue_capacity) or a
//!  └────┬─────────┬──────────┬────┘  full tenant (len == quota) rejects
//!       └────┬────┴──────────┘       with QueueFull / QuotaExceeded
//!            ▼  weighted round-robin: each visit spends `weight` credits,
//!            │  expired-deadline jobs are shed (DeadlineExceeded), up to
//!            │  batch_window live jobs form the routing round
//!  ┌─────────┴───────────────────┐
//!  │ serving thread              │   shard 0: Engine / RouterBackend
//!  │   stripe frames round-robin ├──▶ shard 1: …        (par_map, one
//!  │   merge EngineStats         │   shard S−1:          thread per shard)
//!  └─────────────────────────────┘
//!         │ per-request latency → global + per-tenant LatencyHistogram
//!         ▼
//!  shutdown(): set drain flag, close the queues, serve the backlog, join,
//!  return the ServeReport (per tenant and overall:
//!  accepted + drained + rejected == submitted)
//! ```
//!
//! Admission control is driven by the same [`QueueConfig`] the queueing
//! simulation uses ([`brsmn_workloads::queueing`]): the config is
//! [validated](QueueConfig::validate) into typed [`QueueError`]s at
//! construction, and each submitted request is screened against it before
//! touching a queue ([`RejectReason`]). Quotas, weights, the batch window,
//! and the fanout cap can all be changed **between rounds** while frames are
//! in flight via [`Server::reconfigure`]; every change bumps the config
//! *epoch*, and each [`Completion`] is stamped with the epoch under which it
//! was admitted. The BRSMN backend routes shards through [`ShardedEngine`]
//! (bit-identical to a single engine); every other [`RouterBackend`] gets
//! one independent instance per shard.
//!
//! # Example
//!
//! ```
//! use brsmn_serve::{ServeConfig, Server};
//!
//! let mut cfg = ServeConfig::new(8);
//! cfg.shards = 2;
//! let mut server = Server::start(cfg).unwrap();
//! for s in 0..8 {
//!     server.submit(s, &[s, (s + 1) % 8]).unwrap();
//! }
//! let report = server.shutdown();
//! assert_eq!(report.submitted, 8);
//! assert_eq!(report.accepted + report.drained, 8);
//! assert_eq!(report.served_ok, 8);
//! assert_eq!(report.tenants.len(), 1); // the implicit default tenant
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod histogram;
pub mod trace;

pub use histogram::LatencyHistogram;
pub use trace::{ChurnTraceSpec, Trace, TraceRequest};

use brsmn_baselines::{CopyBenesMulticast, Crossbar};
use brsmn_cluster::DistributedEngine;
use brsmn_core::backend::{ReferenceRouter, RouterBackend};
use brsmn_core::{
    CoreError, EngineConfig, EngineStats, FeedbackBrsmn, MulticastAssignment, PlanCache,
    RoutingResult, ShardedEngine,
};
use brsmn_rbn::par;
use brsmn_workloads::queueing::{QueueConfig, QueueError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which routing fabric the server drives (see [`RouterBackend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// BRSMN zero-allocation fast path via [`ShardedEngine`] (the default).
    Brsmn,
    /// The allocating reference planner, one [`ReferenceRouter`] per shard.
    Reference,
    /// The Section-7.3 feedback network, one [`FeedbackBrsmn`] per shard.
    Feedback,
    /// The `Θ(n²)` crossbar baseline, one [`Crossbar`] per shard.
    Crossbar,
    /// The classical copy-then-route baseline, one [`CopyBenesMulticast`]
    /// per shard.
    CopyBenes,
    /// The simulated distributed control plane
    /// ([`DistributedEngine`]): one
    /// fault-free cluster node per shard, bit-identical to `Brsmn`.
    Cluster,
}

impl BackendKind {
    /// Stable name used in reports and on the CLI (`--backend`).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Brsmn => "brsmn",
            BackendKind::Reference => "reference",
            BackendKind::Feedback => "feedback",
            BackendKind::Crossbar => "crossbar",
            BackendKind::CopyBenes => "copy-benes",
            BackendKind::Cluster => "cluster",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "brsmn" => Ok(BackendKind::Brsmn),
            "reference" => Ok(BackendKind::Reference),
            "feedback" => Ok(BackendKind::Feedback),
            "crossbar" => Ok(BackendKind::Crossbar),
            "copy-benes" => Ok(BackendKind::CopyBenes),
            "cluster" => Ok(BackendKind::Cluster),
            other => Err(format!(
                "unknown backend {other:?} (expected brsmn, reference, feedback, crossbar, copy-benes, cluster)"
            )),
        }
    }
}

/// One tenant's admission contract: how much of the bounded queue it may
/// hold and how strongly the round composer favors it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Most requests this tenant may have queued at once; the quota binds
    /// even when the shared queue has room ([`RejectReason::QuotaExceeded`]).
    pub quota: usize,
    /// Weighted-round-robin share: each visit of the round composer pops up
    /// to `weight` requests before moving to the next tenant.
    pub weight: u32,
}

impl TenantSpec {
    /// An even share: quota `quota`, weight 1.
    pub fn even(quota: usize) -> Self {
        TenantSpec { quota, weight: 1 }
    }
}

/// Serving-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Admission-control parameters (network size, arrival rate for trace
    /// generation, fanout cap), validated by [`QueueConfig::validate`].
    pub queue: QueueConfig,
    /// Independent fabrics the serving thread stripes each round across.
    pub shards: usize,
    /// Engine worker threads inside each shard (`ShardedEngine` backends;
    /// `0` = one per hardware thread). Serving deployments usually keep
    /// this at 1 and scale via `shards`.
    pub workers_per_shard: usize,
    /// Bounded request-queue capacity shared by all tenants; a full queue
    /// rejects with [`RejectReason::QueueFull`] (backpressure).
    pub queue_capacity: usize,
    /// Most requests served per routing round (the batch the fabric sees).
    pub batch_window: usize,
    /// Which fabric to drive.
    pub backend: BackendKind,
    /// Record each request's delivered [`RoutingResult`] in the report's
    /// completion log (memory-heavy; meant for tests and small traces).
    pub record_outputs: bool,
    /// Capacity of the plan-capture cache shared by the BRSMN backend's
    /// shards (`0` disables; ignored by the other backends). Repeated
    /// assignments — the common case for serving traffic with hot
    /// source/destination pairs — then replay their captured switch
    /// settings instead of re-planning.
    pub plan_cache: usize,
    /// The tenants this server admits, indexed by `TenantId`. Empty (the
    /// default, and what pre-multi-tenant configs deserialize to) means one
    /// implicit tenant with quota `queue_capacity` and weight 1.
    pub tenants: Vec<TenantSpec>,
}

impl ServeConfig {
    /// A single-shard BRSMN server over an `n`-port fabric with moderate
    /// defaults (queue capacity 256, batch window 32, arrival rate 0.5,
    /// fanout cap 4, one implicit tenant).
    pub fn new(n: usize) -> Self {
        ServeConfig {
            queue: QueueConfig {
                n,
                p_arrival: 0.5,
                max_fanout: 4,
            },
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 256,
            batch_window: 32,
            backend: BackendKind::Brsmn,
            record_outputs: false,
            plan_cache: 0,
            tenants: Vec::new(),
        }
    }

    /// Validates and normalizes: the embedded [`QueueConfig`] is validated
    /// (typed [`QueueError`] on a bad size or fanout), zero
    /// shards/capacity/window are rejected, an empty tenant list becomes
    /// the single implicit tenant, and zero quotas/weights are rejected.
    pub fn validate(mut self) -> Result<ServeConfig, ServeError> {
        self.queue = self.queue.validate().map_err(ServeError::Queue)?;
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".to_string()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1".to_string()));
        }
        if self.batch_window == 0 {
            return Err(ServeError::Config("batch_window must be >= 1".to_string()));
        }
        if self.tenants.is_empty() {
            self.tenants = vec![TenantSpec::even(self.queue_capacity)];
        }
        for (t, spec) in self.tenants.iter().enumerate() {
            if spec.quota == 0 {
                return Err(ServeError::Config(format!("tenant {t}: quota must be >= 1")));
            }
            if spec.weight == 0 {
                return Err(ServeError::Config(format!("tenant {t}: weight must be >= 1")));
            }
        }
        Ok(self)
    }
}

/// A between-rounds reconfiguration ([`Server::reconfigure`]): every `Some`
/// field replaces the running value, the epoch counter bumps by one, and
/// requests admitted afterwards carry the new epoch. The tenant *count* is
/// fixed for the server's lifetime — `quotas`/`weights` must match it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EpochUpdate {
    /// New shared queue capacity.
    pub queue_capacity: Option<usize>,
    /// New batch window (requests per routing round).
    pub batch_window: Option<usize>,
    /// New admission fanout cap.
    pub max_fanout: Option<usize>,
    /// New per-tenant quotas (length must equal the tenant count).
    pub quotas: Option<Vec<usize>>,
    /// New per-tenant weights (length must equal the tenant count).
    pub weights: Option<Vec<u32>>,
}

/// A server that could not be built or run.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission-control config failed [`QueueConfig::validate`].
    Queue(QueueError),
    /// A serving parameter (shards, capacity, batch window, tenant spec)
    /// is unusable.
    Config(String),
    /// The backend fabric could not be constructed.
    Core(CoreError),
    /// A replayed trace addresses a different network size than the config.
    TraceMismatch {
        /// Size the trace was recorded for.
        trace_n: usize,
        /// Size the server is configured for.
        cfg_n: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Queue(e) => write!(f, "admission config: {e}"),
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
            ServeError::Core(e) => write!(f, "backend construction: {e}"),
            ServeError::TraceMismatch { trace_n, cfg_n } => write!(
                f,
                "trace recorded for n={trace_n} but the server is configured for n={cfg_n}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Why admission control (or backpressure) refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The shared bounded queue is at capacity — backpressure.
    QueueFull,
    /// The submitting tenant's queue is at its quota.
    QuotaExceeded {
        /// The tenant at quota.
        tenant: u32,
        /// Its configured quota.
        quota: usize,
    },
    /// The tenant id names no configured tenant.
    UnknownTenant {
        /// The offending tenant id.
        tenant: u32,
        /// Configured tenant count.
        tenants: u32,
    },
    /// The request's deadline had already passed (at admission for replayed
    /// traces, at round composition for live wall-clock deadlines).
    DeadlineExceeded,
    /// The request named no destinations.
    EmptyRequest,
    /// More distinct destinations than the admission fanout cap.
    FanoutExceeded {
        /// Distinct destinations requested.
        fanout: usize,
        /// The configured cap ([`QueueConfig::max_fanout`]).
        max_fanout: usize,
    },
    /// The source port does not exist on this fabric.
    SourceOutOfRange {
        /// The offending source.
        source: usize,
        /// Network size.
        n: usize,
    },
    /// A destination port does not exist on this fabric.
    DestOutOfRange {
        /// The offending destination.
        dest: usize,
        /// Network size.
        n: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant {tenant} at quota {quota}")
            }
            RejectReason::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (server has {tenants})")
            }
            RejectReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            RejectReason::EmptyRequest => write!(f, "empty destination set"),
            RejectReason::FanoutExceeded { fanout, max_fanout } => {
                write!(f, "fanout {fanout} exceeds admission cap {max_fanout}")
            }
            RejectReason::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for n={n}")
            }
            RejectReason::DestOutOfRange { dest, n } => {
                write!(f, "destination {dest} out of range for n={n}")
            }
            RejectReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Per-reason rejection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectBreakdown {
    /// Backpressure rejections ([`RejectReason::QueueFull`]).
    pub queue_full: u64,
    /// Per-tenant quota rejections.
    pub quota_exceeded: u64,
    /// Submissions naming a tenant the server does not have.
    pub unknown_tenant: u64,
    /// Requests shed because their deadline passed.
    pub deadline_exceeded: u64,
    /// Empty destination sets.
    pub empty_request: u64,
    /// Fanout above the admission cap.
    pub fanout_exceeded: u64,
    /// Source or destination ports off the fabric.
    pub out_of_range: u64,
    /// Requests submitted after shutdown began.
    pub shutting_down: u64,
}

impl RejectBreakdown {
    /// Total rejected requests.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.quota_exceeded
            + self.unknown_tenant
            + self.deadline_exceeded
            + self.empty_request
            + self.fanout_exceeded
            + self.out_of_range
            + self.shutting_down
    }

    fn count(&mut self, reason: &RejectReason) {
        match reason {
            RejectReason::QueueFull => self.queue_full += 1,
            RejectReason::QuotaExceeded { .. } => self.quota_exceeded += 1,
            RejectReason::UnknownTenant { .. } => self.unknown_tenant += 1,
            RejectReason::DeadlineExceeded => self.deadline_exceeded += 1,
            RejectReason::EmptyRequest => self.empty_request += 1,
            RejectReason::FanoutExceeded { .. } => self.fanout_exceeded += 1,
            RejectReason::SourceOutOfRange { .. } | RejectReason::DestOutOfRange { .. } => {
                self.out_of_range += 1
            }
            RejectReason::ShuttingDown => self.shutting_down += 1,
        }
    }
}

/// One served request in the report's completion log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The id [`Server::submit`] returned for this request.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: u32,
    /// Config epoch under which the request was admitted.
    pub epoch: u64,
    /// Served during the graceful drain (after [`Server::shutdown`] was
    /// called) rather than in steady state.
    pub drained: bool,
    /// The fabric realized the request.
    pub ok: bool,
    /// Submit → completion latency, nanoseconds.
    pub latency_ns: u64,
    /// The delivered source table, when [`ServeConfig::record_outputs`] is
    /// set and the route succeeded.
    pub result: Option<RoutingResult>,
    /// The routing error, if the route failed.
    pub error: Option<String>,
}

/// Headline latency figures distilled from the full histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples (served requests).
    pub count: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: f64,
    /// Median (log₂-bucket upper edge), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Distills a histogram into the headline figures.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count,
            mean_ns: h.mean_ns(),
            p50_ns: h.quantile(0.5),
            p90_ns: h.quantile(0.9),
            p99_ns: h.quantile(0.99),
            max_ns: h.max_ns,
        }
    }
}

/// One tenant's slice of the [`ServeReport`]; the conservation law holds
/// per tenant: `accepted + drained + rejected == submitted`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant id (index into [`ServeConfig::tenants`]).
    pub tenant: u32,
    /// Quota in force when the server shut down.
    pub quota: usize,
    /// Weight in force when the server shut down.
    pub weight: u32,
    /// Requests this tenant offered.
    pub submitted: u64,
    /// Served in steady state.
    pub accepted: u64,
    /// Served by the graceful drain.
    pub drained: u64,
    /// Refused (admission, quota, backpressure, or deadline shed).
    pub rejected: u64,
    /// Rejections by reason (deadline sheds land in `deadline_exceeded`).
    pub rejections: RejectBreakdown,
    /// Served requests the fabric realized.
    pub served_ok: u64,
    /// Served requests whose route failed.
    pub served_err: u64,
    /// High-water mark of this tenant's queue (never exceeds the quota in
    /// force at the time).
    pub max_queued: usize,
    /// This tenant's latency figures.
    pub latency: LatencySummary,
}

/// Everything one serving run produced; serializes to the `serve-sim` JSON
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Network size.
    pub n: usize,
    /// Shards the fabric striped across.
    pub shards: usize,
    /// Engine workers inside each shard.
    pub workers_per_shard: usize,
    /// Backend label ([`BackendKind::label`]).
    pub backend: String,
    /// Bounded-queue capacity (final value, after any reconfigurations).
    pub queue_capacity: usize,
    /// Requests per service round (final value).
    pub batch_window: usize,
    /// Config epoch at shutdown (number of [`Server::reconfigure`] calls).
    pub epoch: u64,
    /// Requests offered to [`Server::submit`] / [`Server::submit_for`].
    pub submitted: u64,
    /// Requests served in steady state (before shutdown).
    pub accepted: u64,
    /// Requests served by the graceful drain (queued when shutdown began).
    pub drained: u64,
    /// Requests refused by admission control, backpressure, or deadline
    /// shedding.
    pub rejected: u64,
    /// Rejections by reason.
    pub rejections: RejectBreakdown,
    /// Served requests the fabric realized.
    pub served_ok: u64,
    /// Served requests whose route failed.
    pub served_err: u64,
    /// Service rounds (fabric batches) executed.
    pub rounds: u64,
    /// Serving-thread lifetime, nanoseconds.
    pub wall_nanos: u64,
    /// Served requests per second of serving-thread wall time.
    pub frames_per_sec: f64,
    /// Served requests whose switch settings replayed from the plan cache
    /// (0 with the cache off or a non-BRSMN backend).
    pub plan_hits: u64,
    /// Fast-path requests that planned fresh (and captured) because their
    /// assignment was not resident in the plan cache.
    pub plan_misses: u64,
    /// Subset of `plan_hits` served by the canonical tier: the exact
    /// fingerprint missed, but a relabeling-equivalent plan replayed through
    /// the permuted executor.
    pub plan_canonical_hits: u64,
    /// Plans resident at startup from a warm-start snapshot
    /// ([`Server::start_warm`]); 0 for cold starts.
    pub plan_snapshot_loaded: u64,
    /// Width, in `u64` words, of the SIMD lane blocks the fast path's
    /// plane sweeps ran on (0 with a non-fast-path backend).
    pub simd_lane_width: u64,
    /// Served requests planned in lockstep SoA batches by the engine's
    /// `BatchPlanner` (cache misses grouped per round; 0 with
    /// `--no-batch-plan` or a non-BRSMN backend).
    pub batch_planned_frames: u64,
    /// Order-independent FNV digest over every served request's (id,
    /// delivered source table): two runs of the same trace are bit-identical
    /// iff their hashes match, regardless of round composition.
    pub output_hash: u64,
    /// Headline latency figures.
    pub latency: LatencySummary,
    /// Full log₂ latency histogram.
    pub histogram: LatencyHistogram,
    /// Per-tenant accounting (one entry per configured tenant).
    pub tenants: Vec<TenantReport>,
    /// Merged fabric instrumentation (wall set to the serving-thread wall).
    pub engine: EngineStats,
    /// Per-request completion log (populated when
    /// [`ServeConfig::record_outputs`] is set).
    pub completions: Vec<Completion>,
}

impl ServeReport {
    /// The serving conservation law: every submitted request is accounted
    /// for exactly once — overall **and per tenant** — and every queued
    /// request was served or shed.
    pub fn conserves(&self) -> bool {
        let global = self.accepted + self.drained + self.rejected == self.submitted
            && self.served_ok + self.served_err == self.accepted + self.drained
            && self.rejections.total() == self.rejected
            && self.histogram.count == self.accepted + self.drained;
        if !global {
            return false;
        }
        // Pre-multi-tenant reports deserialize with no tenant slices; the
        // per-tenant identities then have nothing to say.
        if self.tenants.is_empty() {
            return true;
        }
        let (mut sub, mut acc, mut dr, mut rej) = (0u64, 0u64, 0u64, 0u64);
        let (mut ok, mut err) = (0u64, 0u64);
        for t in &self.tenants {
            if t.accepted + t.drained + t.rejected != t.submitted
                || t.served_ok + t.served_err != t.accepted + t.drained
                || t.rejections.total() != t.rejected
                || t.latency.count != t.accepted + t.drained
            {
                return false;
            }
            sub += t.submitted;
            acc += t.accepted;
            dr += t.drained;
            rej += t.rejected;
            ok += t.served_ok;
            err += t.served_err;
        }
        // Unknown-tenant submissions are the only ones no tenant slice owns.
        sub + self.rejections.unknown_tenant == self.submitted
            && acc == self.accepted
            && dr == self.drained
            && rej + self.rejections.unknown_tenant == self.rejected
            && ok == self.served_ok
            && err == self.served_err
    }

    /// `true` when no tenant's queue ever exceeded its (final) quota. Valid
    /// whenever quotas were not lowered mid-run.
    pub fn quotas_respected(&self) -> bool {
        self.tenants.iter().all(|t| t.max_queued <= t.quota)
    }
}

/// The routing fabric behind the queue: either a [`ShardedEngine`] (BRSMN
/// fast path, with its own striping and instrumentation) or one
/// [`RouterBackend`] instance per shard driven by the same round-robin
/// striping.
enum Fabric {
    Sharded(ShardedEngine),
    Cluster(DistributedEngine),
    Backends {
        n: usize,
        shards: Vec<Box<dyn RouterBackend>>,
    },
}

impl Fabric {
    fn build(cfg: &ServeConfig, warm_cache: Option<Arc<PlanCache>>) -> Result<Fabric, ServeError> {
        let n = cfg.queue.n;
        // A pre-warmed cache only makes sense on the BRSMN fast path — the
        // other backends never consult a plan cache.
        if warm_cache.is_some() && cfg.backend != BackendKind::Brsmn {
            return Err(ServeError::Core(CoreError::Config(format!(
                "warm-start plan cache requires the brsmn backend, not {}",
                cfg.backend
            ))));
        }
        let make_shards = |f: &dyn Fn() -> Result<Box<dyn RouterBackend>, ServeError>| {
            (0..cfg.shards)
                .map(|_| f())
                .collect::<Result<Vec<_>, _>>()
                .map(|shards| Fabric::Backends { n, shards })
        };
        match cfg.backend {
            BackendKind::Brsmn => {
                let mut engine = ShardedEngine::with_config(
                    n,
                    cfg.shards,
                    EngineConfig::batch(cfg.workers_per_shard).with_plan_cache(cfg.plan_cache),
                )?;
                if let Some(cache) = warm_cache {
                    engine.share_plan_cache(cache);
                }
                Ok(Fabric::Sharded(engine))
            }
            BackendKind::Reference => {
                make_shards(&|| Ok(Box::new(ReferenceRouter::new(n)?) as Box<dyn RouterBackend>))
            }
            BackendKind::Feedback => {
                make_shards(&|| Ok(Box::new(FeedbackBrsmn::new(n)?) as Box<dyn RouterBackend>))
            }
            BackendKind::Crossbar => {
                make_shards(&|| Ok(Box::new(Crossbar::new(n)) as Box<dyn RouterBackend>))
            }
            BackendKind::CopyBenes => make_shards(&|| {
                let net = CopyBenesMulticast::new(n).map_err(|e| {
                    ServeError::Core(CoreError::Config(format!("copy–benes baseline: {e}")))
                })?;
                Ok(Box::new(net) as Box<dyn RouterBackend>)
            }),
            // One fault-free simulated control-plane node per shard; the
            // round striping happens inside the cluster, mirroring
            // `ShardedEngine` bit for bit.
            BackendKind::Cluster => Ok(Fabric::Cluster(DistributedEngine::new(n, cfg.shards)?)),
        }
    }

    /// Routes one service round, striping frames round-robin across shards.
    fn route_round(
        &self,
        batch: &[MulticastAssignment],
    ) -> (Vec<Result<RoutingResult, CoreError>>, EngineStats) {
        match self {
            Fabric::Sharded(engine) => {
                let out = engine.route_batch(batch);
                (out.results, out.stats)
            }
            Fabric::Cluster(engine) => {
                let out = engine.route_batch(batch);
                (out.results, out.stats)
            }
            Fabric::Backends { n, shards } => {
                let s = shards.len().min(batch.len()).max(1);
                let stripes: Vec<Vec<usize>> =
                    (0..s).map(|k| (k..batch.len()).step_by(s).collect()).collect();
                let wall_start = Instant::now();
                let shard_outs = par::par_map(&stripes, s, |k, idxs| {
                    let t0 = Instant::now();
                    let results: Vec<Result<RoutingResult, CoreError>> = idxs
                        .iter()
                        .map(|&i| shards[k].route_assignment(&batch[i]))
                        .collect();
                    (results, t0.elapsed().as_nanos() as u64)
                });
                let wall_nanos = wall_start.elapsed().as_nanos() as u64;

                let mut results: Vec<Option<Result<RoutingResult, CoreError>>> =
                    (0..batch.len()).map(|_| None).collect();
                let mut stats = EngineStats::empty(*n);
                stats.batch = batch.len();
                stats.workers = s;
                stats.wall_nanos = wall_nanos;
                for (stripe, (outs, busy)) in stripes.iter().zip(shard_outs) {
                    stats.busy_nanos += busy;
                    for (&i, r) in stripe.iter().zip(outs) {
                        match &r {
                            Ok(_) => stats.frames_ok += 1,
                            Err(_) => stats.frames_failed += 1,
                        }
                        results[i] = Some(r);
                    }
                }
                (
                    results
                        .into_iter()
                        .map(|r| r.expect("striping covers every frame"))
                        .collect(),
                    stats,
                )
            }
        }
    }
}

/// One queued request.
struct Job {
    id: u64,
    tenant: usize,
    epoch: u64,
    asg: MulticastAssignment,
    submitted_at: Instant,
    /// Wall-clock deadline (live submissions only; replayed traces shed
    /// expired requests at admission instead, keeping replay deterministic).
    deadline: Option<Instant>,
}

/// The reconfigurable-by-epoch admission limits.
struct Limits {
    epoch: u64,
    queue_capacity: usize,
    batch_window: usize,
    max_fanout: usize,
    quotas: Vec<usize>,
    weights: Vec<u32>,
}

/// Everything behind the queue mutex: one FIFO per tenant plus the
/// weighted-round-robin cursor state.
struct QueueState {
    limits: Limits,
    queues: Vec<VecDeque<Job>>,
    /// Σ queue lengths (bounded by `limits.queue_capacity`).
    total: usize,
    /// Per-tenant queue-length high-water marks.
    max_queued: Vec<usize>,
    closed: bool,
    /// WRR position: which tenant the composer visits next…
    cursor: usize,
    /// …and how many more pops that visit may spend.
    credit: u64,
}

/// Composes one routing round under the queue lock: weighted round-robin
/// over the tenant FIFOs, shedding expired-deadline jobs (they consume
/// neither a batch slot nor credit), until the batch window fills or every
/// queue is empty. Cursor and credit persist across rounds so a heavy
/// tenant cannot starve light ones.
fn compose_round(st: &mut QueueState, now: Instant) -> (Vec<Job>, Vec<u64>) {
    let t_count = st.queues.len();
    let mut jobs = Vec::new();
    let mut shed = vec![0u64; t_count];
    let mut empty_streak = 0usize;
    if st.credit == 0 {
        st.credit = st.limits.weights[st.cursor] as u64;
    }
    while jobs.len() < st.limits.batch_window && st.total > 0 && empty_streak <= t_count {
        match st.queues[st.cursor].pop_front() {
            Some(job) => {
                st.total -= 1;
                if let Some(d) = job.deadline {
                    if now >= d {
                        shed[st.cursor] += 1;
                        continue;
                    }
                }
                jobs.push(job);
                empty_streak = 0;
                st.credit -= 1;
                if st.credit == 0 {
                    st.cursor = (st.cursor + 1) % t_count;
                    st.credit = st.limits.weights[st.cursor] as u64;
                }
            }
            None => {
                empty_streak += 1;
                st.cursor = (st.cursor + 1) % t_count;
                st.credit = st.limits.weights[st.cursor] as u64;
            }
        }
    }
    (jobs, shed)
}

/// One tenant's share of the serving thread's accounting.
#[derive(Clone)]
struct TenantOutcome {
    accepted: u64,
    drained: u64,
    served_ok: u64,
    served_err: u64,
    deadline_shed: u64,
    histogram: LatencyHistogram,
}

impl TenantOutcome {
    fn empty() -> Self {
        TenantOutcome {
            accepted: 0,
            drained: 0,
            served_ok: 0,
            served_err: 0,
            deadline_shed: 0,
            histogram: LatencyHistogram::new(),
        }
    }
}

/// What the serving thread hands back at join time.
struct LoopOutcome {
    accepted: u64,
    drained: u64,
    served_ok: u64,
    served_err: u64,
    rounds: u64,
    wall_nanos: u64,
    output_hash: u64,
    histogram: LatencyHistogram,
    tenants: Vec<TenantOutcome>,
    engine: EngineStats,
    completions: Vec<Completion>,
}

/// Order-independent digest of one completion: FNV-1a over the request id
/// and the delivered source table (or an error marker). Summed with
/// `wrapping_add` across completions so the total is independent of round
/// composition.
fn completion_hash(id: u64, result: &Result<RoutingResult, CoreError>) -> u64 {
    const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = BASIS;
    let eat = |h: &mut u64, w: u64| {
        for b in w.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
    };
    eat(&mut h, id);
    match result {
        Ok(r) => {
            for o in 0..r.n() {
                if let Some(s) = r.output_source(o) {
                    eat(&mut h, o as u64);
                    eat(&mut h, s as u64 + 1);
                }
            }
        }
        Err(_) => eat(&mut h, u64::MAX),
    }
    h
}

/// Per-tenant submission-side counters (the serving thread owns the
/// service-side ones).
#[derive(Clone, Copy, Default)]
struct TenantSubmit {
    submitted: u64,
    rejections: RejectBreakdown,
}

/// A running serving loop; see the [module docs](crate) for the flow.
///
/// Built by [`Server::start`], fed by [`Server::submit`] /
/// [`Server::submit_for`], reconfigured between rounds by
/// [`Server::reconfigure`], finished by [`Server::shutdown`] (graceful
/// drain: the queues close, every queued request is still served, then the
/// report comes back).
pub struct Server {
    cfg: ServeConfig,
    shared: Arc<(Mutex<QueueState>, Condvar)>,
    draining: Arc<AtomicBool>,
    worker: Option<JoinHandle<LoopOutcome>>,
    submitted: u64,
    rejections: RejectBreakdown,
    tenant_submit: Vec<TenantSubmit>,
}

impl Server {
    /// Validates `cfg`, builds the backend fabric, and spawns the serving
    /// thread.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        Server::start_with_cache(cfg, None)
    }

    /// Like [`Server::start`], but the BRSMN fabric serves out of `cache`
    /// instead of building a cold one — the warm-start path. Load a
    /// [`brsmn_core::PlanCacheSnapshot`] into the cache first and the very
    /// first pass over recurring shapes replays at warm throughput. Only
    /// the `brsmn` backend accepts a warm cache.
    pub fn start_warm(cfg: ServeConfig, cache: Arc<PlanCache>) -> Result<Server, ServeError> {
        Server::start_with_cache(cfg, Some(cache))
    }

    fn start_with_cache(
        cfg: ServeConfig,
        warm_cache: Option<Arc<PlanCache>>,
    ) -> Result<Server, ServeError> {
        let cfg = cfg.validate()?;
        let fabric = Fabric::build(&cfg, warm_cache)?;
        let t_count = cfg.tenants.len();
        let state = QueueState {
            limits: Limits {
                epoch: 0,
                queue_capacity: cfg.queue_capacity,
                batch_window: cfg.batch_window,
                max_fanout: cfg.queue.max_fanout,
                quotas: cfg.tenants.iter().map(|t| t.quota).collect(),
                weights: cfg.tenants.iter().map(|t| t.weight).collect(),
            },
            queues: (0..t_count).map(|_| VecDeque::new()).collect(),
            total: 0,
            max_queued: vec![0; t_count],
            closed: false,
            cursor: 0,
            credit: cfg.tenants[0].weight as u64,
        };
        let shared = Arc::new((Mutex::new(state), Condvar::new()));
        let draining = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&draining);
        let queue = Arc::clone(&shared);
        let record_outputs = cfg.record_outputs;
        let worker =
            std::thread::spawn(move || serve_loop(fabric, queue, flag, record_outputs, t_count));
        Ok(Server {
            cfg,
            shared,
            draining,
            worker: Some(worker),
            submitted: 0,
            rejections: RejectBreakdown::default(),
            tenant_submit: vec![TenantSubmit::default(); t_count],
        })
    }

    /// The validated configuration this server runs (quotas/weights reflect
    /// the latest [`Server::reconfigure`]).
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Requests offered so far (accepted or not).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// The current config epoch (0 until the first [`Server::reconfigure`]).
    pub fn epoch(&self) -> u64 {
        self.shared.0.lock().expect("queue lock").limits.epoch
    }

    /// Offers one multicast request as the default tenant 0 with no
    /// deadline: route `source` to the distinct ports in `dests`.
    ///
    /// Admission control screens the request against the validated
    /// [`QueueConfig`] (port ranges, nonempty, fanout cap) and the tenant's
    /// quota; an admitted request enters the bounded per-tenant queue, so a
    /// full queue rejects immediately with [`RejectReason::QueueFull`] (or
    /// [`RejectReason::QuotaExceeded`]) instead of blocking the caller.
    /// Returns the request id (its submission sequence number) on
    /// acceptance.
    pub fn submit(&mut self, source: usize, dests: &[usize]) -> Result<u64, RejectReason> {
        self.submit_for(0, source, dests, None)
    }

    /// [`Server::submit`] on behalf of `tenant`, optionally with a relative
    /// wall-clock deadline: a request still queued `deadline_ns`
    /// nanoseconds after submission is shed at round composition and
    /// counted as [`RejectReason::DeadlineExceeded`].
    pub fn submit_for(
        &mut self,
        tenant: u32,
        source: usize,
        dests: &[usize],
        deadline_ns: Option<u64>,
    ) -> Result<u64, RejectReason> {
        let id = self.submitted;
        let outcome = self.offer(id, tenant, source, dests, deadline_ns, false);
        self.resolve(tenant, outcome)
    }

    /// Screens and (on success) enqueues one request **without** touching
    /// the submission counters — [`Server::resolve`] counts the final
    /// outcome exactly once, so replay can retry transient rejections
    /// without inflating `submitted`.
    fn offer(
        &mut self,
        id: u64,
        tenant: u32,
        source: usize,
        dests: &[usize],
        deadline_ns: Option<u64>,
        expired: bool,
    ) -> Result<u64, RejectReason> {
        let t_count = self.cfg.tenants.len();
        if tenant as usize >= t_count {
            return Err(RejectReason::UnknownTenant {
                tenant,
                tenants: t_count as u32,
            });
        }
        let n = self.cfg.queue.n;
        if source >= n {
            return Err(RejectReason::SourceOutOfRange { source, n });
        }
        if dests.is_empty() {
            return Err(RejectReason::EmptyRequest);
        }
        if let Some(&dest) = dests.iter().find(|&&d| d >= n) {
            return Err(RejectReason::DestOutOfRange { dest, n });
        }
        let mut dests = dests.to_vec();
        dests.sort_unstable();
        dests.dedup();

        let t = tenant as usize;
        let submitted_at = Instant::now();
        let deadline = deadline_ns.map(|d| submitted_at + Duration::from_nanos(d));

        let (lock, cvar) = &*self.shared;
        let mut st = lock.lock().expect("queue lock");
        if st.closed {
            return Err(RejectReason::ShuttingDown);
        }
        // The fanout cap is epoch-scoped: reconfigure may have moved it.
        if dests.len() > st.limits.max_fanout {
            return Err(RejectReason::FanoutExceeded {
                fanout: dests.len(),
                max_fanout: st.limits.max_fanout,
            });
        }
        // Replayed traces shed virtual-tick-expired requests here, at
        // admission — the only deadline an as-fast-as-possible replay can
        // observe deterministically.
        if expired {
            return Err(RejectReason::DeadlineExceeded);
        }
        if st.total >= st.limits.queue_capacity {
            return Err(RejectReason::QueueFull);
        }
        if st.queues[t].len() >= st.limits.quotas[t] {
            return Err(RejectReason::QuotaExceeded {
                tenant,
                quota: st.limits.quotas[t],
            });
        }

        let mut sets = vec![Vec::new(); n];
        sets[source] = dests;
        let asg = MulticastAssignment::from_sets(n, sets)
            .expect("admission checks make the assignment valid");
        let epoch = st.limits.epoch;
        st.queues[t].push_back(Job {
            id,
            tenant: t,
            epoch,
            asg,
            submitted_at,
            deadline,
        });
        st.total += 1;
        let len = st.queues[t].len();
        if len > st.max_queued[t] {
            st.max_queued[t] = len;
        }
        cvar.notify_one();
        Ok(id)
    }

    /// Counts one logical submission's final outcome (global and, for known
    /// tenants, per tenant).
    fn resolve(
        &mut self,
        tenant: u32,
        outcome: Result<u64, RejectReason>,
    ) -> Result<u64, RejectReason> {
        self.submitted += 1;
        if let Some(ts) = self.tenant_submit.get_mut(tenant as usize) {
            ts.submitted += 1;
        }
        if let Err(reason) = &outcome {
            self.rejections.count(reason);
            if let Some(ts) = self.tenant_submit.get_mut(tenant as usize) {
                ts.rejections.count(reason);
            }
        }
        outcome
    }

    /// Applies a between-rounds reconfiguration: validates `update`, swaps
    /// the new limits in under the queue lock, and bumps the config epoch.
    /// Requests admitted afterwards carry the new epoch in their
    /// [`Completion`]. Returns the new epoch.
    pub fn reconfigure(&mut self, update: EpochUpdate) -> Result<u64, ServeError> {
        let t_count = self.cfg.tenants.len();
        if update.queue_capacity == Some(0) {
            return Err(ServeError::Config("queue_capacity must be >= 1".to_string()));
        }
        if update.batch_window == Some(0) {
            return Err(ServeError::Config("batch_window must be >= 1".to_string()));
        }
        if update.max_fanout == Some(0) {
            return Err(ServeError::Config("max_fanout must be >= 1".to_string()));
        }
        if let Some(q) = &update.quotas {
            if q.len() != t_count {
                return Err(ServeError::Config(format!(
                    "quotas: got {} entries for {t_count} tenants",
                    q.len()
                )));
            }
            if q.iter().any(|&q| q == 0) {
                return Err(ServeError::Config("quotas must be >= 1".to_string()));
            }
        }
        if let Some(w) = &update.weights {
            if w.len() != t_count {
                return Err(ServeError::Config(format!(
                    "weights: got {} entries for {t_count} tenants",
                    w.len()
                )));
            }
            if w.iter().any(|&w| w == 0) {
                return Err(ServeError::Config("weights must be >= 1".to_string()));
            }
        }

        let (lock, cvar) = &*self.shared;
        let mut st = lock.lock().expect("queue lock");
        if let Some(c) = update.queue_capacity {
            st.limits.queue_capacity = c;
            self.cfg.queue_capacity = c;
        }
        if let Some(w) = update.batch_window {
            st.limits.batch_window = w;
            self.cfg.batch_window = w;
        }
        if let Some(f) = update.max_fanout {
            st.limits.max_fanout = f;
            self.cfg.queue.max_fanout = f;
        }
        if let Some(q) = update.quotas {
            for (spec, &quota) in self.cfg.tenants.iter_mut().zip(&q) {
                spec.quota = quota;
            }
            st.limits.quotas = q;
        }
        if let Some(w) = update.weights {
            for (spec, &weight) in self.cfg.tenants.iter_mut().zip(&w) {
                spec.weight = weight;
            }
            st.limits.weights = w;
        }
        st.limits.epoch += 1;
        let epoch = st.limits.epoch;
        cvar.notify_all();
        Ok(epoch)
    }

    /// Gracefully drains and stops the server: no new requests are
    /// accepted, everything already queued is served (counted as
    /// `drained`) or shed if its deadline lapses, the serving thread exits,
    /// and the full [`ServeReport`] comes back.
    pub fn shutdown(mut self) -> ServeReport {
        self.draining.store(true, Ordering::SeqCst);
        let (epoch, max_queued, quotas, weights) = {
            let (lock, cvar) = &*self.shared;
            let mut st = lock.lock().expect("queue lock");
            st.closed = true;
            cvar.notify_all();
            (
                st.limits.epoch,
                st.max_queued.clone(),
                st.limits.quotas.clone(),
                st.limits.weights.clone(),
            )
        };
        let outcome = self
            .worker
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("serving thread panicked");

        // Deadline sheds are counted by the serving thread; fold them into
        // the rejection taxonomy so the conservation law stays exact.
        let mut rejections = self.rejections;
        for to in &outcome.tenants {
            rejections.deadline_exceeded += to.deadline_shed;
        }
        let tenants: Vec<TenantReport> = (0..outcome.tenants.len())
            .map(|t| {
                let ts = &self.tenant_submit[t];
                let to = &outcome.tenants[t];
                let mut rej = ts.rejections;
                rej.deadline_exceeded += to.deadline_shed;
                TenantReport {
                    tenant: t as u32,
                    quota: quotas[t],
                    weight: weights[t],
                    submitted: ts.submitted,
                    accepted: to.accepted,
                    drained: to.drained,
                    rejected: rej.total(),
                    rejections: rej,
                    served_ok: to.served_ok,
                    served_err: to.served_err,
                    max_queued: max_queued[t],
                    latency: LatencySummary::from_histogram(&to.histogram),
                }
            })
            .collect();

        let served = outcome.accepted + outcome.drained;
        let frames_per_sec = if outcome.wall_nanos == 0 {
            0.0
        } else {
            served as f64 * 1e9 / outcome.wall_nanos as f64
        };
        let mut engine = outcome.engine;
        engine.wall_nanos = outcome.wall_nanos;
        ServeReport {
            n: self.cfg.queue.n,
            shards: self.cfg.shards,
            workers_per_shard: self.cfg.workers_per_shard,
            backend: self.cfg.backend.label().to_string(),
            queue_capacity: self.cfg.queue_capacity,
            batch_window: self.cfg.batch_window,
            epoch,
            submitted: self.submitted,
            accepted: outcome.accepted,
            drained: outcome.drained,
            rejected: rejections.total(),
            rejections,
            served_ok: outcome.served_ok,
            served_err: outcome.served_err,
            rounds: outcome.rounds,
            wall_nanos: outcome.wall_nanos,
            frames_per_sec,
            plan_hits: engine.plan_hits,
            plan_misses: engine.plan_misses,
            plan_canonical_hits: engine.plan_canonical_hits,
            plan_snapshot_loaded: engine.plan_snapshot_loaded,
            simd_lane_width: engine.simd_lane_width,
            batch_planned_frames: engine.batch_planned_frames,
            output_hash: outcome.output_hash,
            latency: LatencySummary::from_histogram(&outcome.histogram),
            histogram: outcome.histogram,
            tenants,
            engine,
            completions: outcome.completions,
        }
    }
}

/// The serving thread: compose up to `batch_window` queued requests by
/// weighted round robin (shedding expired deadlines), route them as one
/// striped round, record latencies, repeat until the queues close and
/// empty.
fn serve_loop(
    fabric: Fabric,
    shared: Arc<(Mutex<QueueState>, Condvar)>,
    draining: Arc<AtomicBool>,
    record_outputs: bool,
    t_count: usize,
) -> LoopOutcome {
    let n = match &fabric {
        Fabric::Sharded(e) => e.n(),
        Fabric::Cluster(e) => e.n(),
        Fabric::Backends { n, .. } => *n,
    };
    let mut out = LoopOutcome {
        accepted: 0,
        drained: 0,
        served_ok: 0,
        served_err: 0,
        rounds: 0,
        wall_nanos: 0,
        output_hash: 0,
        histogram: LatencyHistogram::new(),
        tenants: vec![TenantOutcome::empty(); t_count],
        engine: EngineStats::empty(n),
        completions: Vec::new(),
    };

    let (lock, cvar) = &*shared;
    let start = Instant::now();
    loop {
        let (jobs, shed) = {
            let mut st = lock.lock().expect("queue lock");
            // Block for the round's first request; the queue closing (and
            // emptying) ends the loop.
            while st.total == 0 && !st.closed {
                st = cvar.wait(st).expect("queue lock");
            }
            if st.total == 0 {
                break;
            }
            compose_round(&mut st, Instant::now())
        };
        for (t, &s) in shed.iter().enumerate() {
            out.tenants[t].deadline_shed += s;
        }
        if jobs.is_empty() {
            // Every popped job was past its deadline — nothing to route.
            continue;
        }

        // Anything routed after shutdown began is part of the graceful
        // drain; the flag is set before the queue closes, so no drained
        // request can be miscounted as steady-state.
        let in_drain = draining.load(Ordering::SeqCst);

        let metas: Vec<(u64, usize, u64, Instant)> = jobs
            .iter()
            .map(|j| (j.id, j.tenant, j.epoch, j.submitted_at))
            .collect();
        let batch: Vec<MulticastAssignment> = jobs.into_iter().map(|j| j.asg).collect();
        let (results, stats) = fabric.route_round(&batch);
        let done = Instant::now();

        for ((id, tenant, epoch, submitted_at), result) in metas.into_iter().zip(results) {
            let latency_ns = done.duration_since(submitted_at).as_nanos() as u64;
            out.histogram.record(latency_ns);
            out.tenants[tenant].histogram.record(latency_ns);
            if in_drain {
                out.drained += 1;
                out.tenants[tenant].drained += 1;
            } else {
                out.accepted += 1;
                out.tenants[tenant].accepted += 1;
            }
            out.output_hash = out.output_hash.wrapping_add(completion_hash(id, &result));
            let (ok, result, error) = match result {
                Ok(r) => {
                    out.served_ok += 1;
                    out.tenants[tenant].served_ok += 1;
                    (true, record_outputs.then_some(r), None)
                }
                Err(e) => {
                    out.served_err += 1;
                    out.tenants[tenant].served_err += 1;
                    (false, None, Some(e.to_string()))
                }
            };
            out.completions.push(Completion {
                id,
                tenant: tenant as u32,
                epoch,
                drained: in_drain,
                ok,
                latency_ns,
                result,
                error,
            });
        }
        // Merging sums round wall times into a running total we overwrite
        // below with the true thread lifetime; work counters accumulate.
        out.engine.merge(&stats);
        out.rounds += 1;
    }
    out.wall_nanos = start.elapsed().as_nanos() as u64;
    out.engine.wall_nanos = out.wall_nanos;
    out
}

/// Replays every request of `trace` through a fresh server built from
/// `cfg` (as fast as submission allows — queue pressure, not tick pacing)
/// and shuts down gracefully, returning the report. Transient rejections
/// (`QueueFull`, `QuotaExceeded`) are retried with backoff until the
/// serving thread makes room, so **no trace request is ever lost** and the
/// report no longer depends on machine speed; requests whose recorded
/// deadline already lay in the past at their arrival tick are shed
/// deterministically as `DeadlineExceeded`.
pub fn serve_trace(cfg: ServeConfig, trace: &Trace) -> Result<ServeReport, ServeError> {
    serve_trace_with_cache(cfg, trace, None)
}

/// [`serve_trace`] against a server warm-started from `cache`
/// ([`Server::start_warm`]): plans loaded from a snapshot replay on first
/// sight instead of being planned fresh.
pub fn serve_trace_warm(
    cfg: ServeConfig,
    trace: &Trace,
    cache: Arc<PlanCache>,
) -> Result<ServeReport, ServeError> {
    serve_trace_with_cache(cfg, trace, Some(cache))
}

/// Backoff between replay retries: yield for the first few attempts (the
/// serving thread usually frees a slot within one round), then sleep with
/// exponential steps capped at 2.56 ms.
fn replay_backoff(spins: &mut u32) {
    if *spins < 32 {
        std::thread::yield_now();
    } else {
        let exp = (*spins - 32).min(8);
        std::thread::sleep(Duration::from_micros(10u64 << exp));
    }
    *spins += 1;
}

fn serve_trace_with_cache(
    cfg: ServeConfig,
    trace: &Trace,
    warm_cache: Option<Arc<PlanCache>>,
) -> Result<ServeReport, ServeError> {
    let cfg = cfg.validate()?;
    if trace.n != cfg.queue.n {
        return Err(ServeError::TraceMismatch {
            trace_n: trace.n,
            cfg_n: cfg.queue.n,
        });
    }
    let mut server = Server::start_with_cache(cfg, warm_cache)?;
    for req in &trace.requests {
        let tenant = req.tenant_id();
        let expired = req.expired_at_arrival();
        let id = server.submitted;
        let mut spins = 0u32;
        let outcome = loop {
            match server.offer(id, tenant, req.source, &req.dests, None, expired) {
                // Backpressure and quota pressure are transient: the
                // serving thread drains the queues, so retry instead of
                // silently dropping the trace request.
                Err(RejectReason::QueueFull) | Err(RejectReason::QuotaExceeded { .. }) => {
                    replay_backoff(&mut spins)
                }
                other => break other,
            }
        };
        let _ = server.resolve(tenant, outcome);
    }
    Ok(server.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(n: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(n);
        cfg.queue.max_fanout = n;
        cfg.queue_capacity = 1024;
        cfg
    }

    #[test]
    fn serves_every_submitted_request() {
        let mut server = Server::start(small_cfg(8)).unwrap();
        for s in 0..8 {
            server.submit(s, &[(s + 3) % 8]).unwrap();
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 8);
        assert_eq!(report.accepted + report.drained, 8);
        assert_eq!(report.served_ok, 8);
        assert_eq!(report.served_err, 0);
        assert_eq!(report.rejected, 0);
        assert!(report.frames_per_sec > 0.0);
        assert_eq!(report.epoch, 0);
        assert_eq!(report.tenants.len(), 1);
        assert_eq!(report.tenants[0].submitted, 8);
        assert_eq!(report.tenants[0].served_ok, 8);
        assert!(report.quotas_respected(), "{report:?}");
    }

    #[test]
    fn admission_rejects_malformed_requests() {
        let mut cfg = ServeConfig::new(8);
        cfg.queue.max_fanout = 2;
        let mut server = Server::start(cfg).unwrap();
        assert_eq!(
            server.submit(9, &[0]).unwrap_err(),
            RejectReason::SourceOutOfRange { source: 9, n: 8 }
        );
        assert_eq!(server.submit(0, &[]).unwrap_err(), RejectReason::EmptyRequest);
        assert_eq!(
            server.submit(0, &[1, 8]).unwrap_err(),
            RejectReason::DestOutOfRange { dest: 8, n: 8 }
        );
        assert_eq!(
            server.submit(0, &[1, 2, 3]).unwrap_err(),
            RejectReason::FanoutExceeded {
                fanout: 3,
                max_fanout: 2
            }
        );
        // Duplicate destinations collapse before the fanout check.
        server.submit(0, &[1, 1, 2, 2]).unwrap();
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.rejections.out_of_range, 2);
        assert_eq!(report.rejections.empty_request, 1);
        assert_eq!(report.rejections.fanout_exceeded, 1);
        assert_eq!(report.served_ok, 1);
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        // Heavy frames (n=256 broadcasts) on one shard with a 2-slot queue:
        // submission is orders of magnitude faster than routing, so the
        // burst must overflow.
        let mut cfg = ServeConfig::new(256);
        cfg.queue.max_fanout = 256;
        cfg.queue_capacity = 2;
        cfg.batch_window = 1;
        let dests: Vec<usize> = (0..256).collect();
        let mut server = Server::start(cfg).unwrap();
        let mut full = 0u64;
        for i in 0..2000 {
            if server.submit(i % 256, &dests) == Err(RejectReason::QueueFull) {
                full += 1;
            }
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.rejections.queue_full, full);
        assert!(full > 1000, "expected heavy backpressure, got {full}");
        assert_eq!(report.served_err, 0);
    }

    #[test]
    fn quota_binds_before_shared_capacity() {
        // Two tenants: tenant 0 floods heavy broadcasts with quota 1 while
        // the shared queue has plenty of room, so quota (not capacity) is
        // what rejects.
        let mut cfg = ServeConfig::new(256);
        cfg.queue.max_fanout = 256;
        cfg.queue_capacity = 1024;
        cfg.batch_window = 1;
        cfg.tenants = vec![TenantSpec { quota: 1, weight: 1 }, TenantSpec::even(8)];
        let dests: Vec<usize> = (0..256).collect();
        let mut server = Server::start(cfg).unwrap();
        let mut quota_hits = 0u64;
        for i in 0..500 {
            if matches!(
                server.submit_for(0, i % 256, &dests, None),
                Err(RejectReason::QuotaExceeded { tenant: 0, quota: 1 })
            ) {
                quota_hits += 1;
            }
        }
        server.submit_for(1, 0, &[1], None).unwrap();
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert!(report.quotas_respected(), "{report:?}");
        assert!(quota_hits > 100, "expected quota pressure, got {quota_hits}");
        assert_eq!(report.rejections.quota_exceeded, quota_hits);
        assert_eq!(report.rejections.queue_full, 0);
        assert_eq!(report.tenants[0].rejections.quota_exceeded, quota_hits);
        assert_eq!(report.tenants[0].max_queued, 1);
        assert_eq!(report.tenants[1].served_ok, 1);
    }

    #[test]
    fn unknown_tenants_are_rejected_and_conserved() {
        let mut server = Server::start(small_cfg(8)).unwrap();
        assert_eq!(
            server.submit_for(3, 0, &[1], None).unwrap_err(),
            RejectReason::UnknownTenant { tenant: 3, tenants: 1 }
        );
        server.submit(0, &[1]).unwrap();
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 2);
        assert_eq!(report.rejections.unknown_tenant, 1);
        // The unknown submission belongs to no tenant slice.
        assert_eq!(report.tenants[0].submitted, 1);
    }

    #[test]
    fn expired_wall_clock_deadlines_are_shed() {
        // deadline_ns = 0 expires the instant it is queued, so round
        // composition must shed every one of these.
        let mut server = Server::start(small_cfg(8)).unwrap();
        for s in 0..4 {
            server.submit_for(0, s, &[(s + 1) % 8], Some(0)).unwrap();
        }
        for s in 0..4 {
            server.submit_for(0, s, &[(s + 2) % 8], None).unwrap();
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 8);
        assert_eq!(report.rejections.deadline_exceeded, 4);
        assert_eq!(report.served_ok, 4);
        assert_eq!(report.tenants[0].rejections.deadline_exceeded, 4);
    }

    #[test]
    fn weighted_round_robin_interleaves_by_weight() {
        // Composed directly (no serving thread): tenant 0 at weight 2 and
        // tenant 1 at weight 1 must interleave 2:1 while both have backlog.
        let n = 8;
        let mk_job = |id: u64, tenant: usize| {
            let mut sets = vec![Vec::new(); n];
            sets[tenant] = vec![(tenant + 4) % n];
            Job {
                id,
                tenant,
                epoch: 0,
                asg: MulticastAssignment::from_sets(n, sets).unwrap(),
                submitted_at: Instant::now(),
                deadline: None,
            }
        };
        let mut st = QueueState {
            limits: Limits {
                epoch: 0,
                queue_capacity: 64,
                batch_window: 6,
                max_fanout: n,
                quotas: vec![32, 32],
                weights: vec![2, 1],
            },
            queues: vec![VecDeque::new(), VecDeque::new()],
            total: 0,
            max_queued: vec![0, 0],
            closed: false,
            cursor: 0,
            credit: 2,
        };
        for i in 0..8 {
            st.queues[0].push_back(mk_job(i, 0));
            st.queues[1].push_back(mk_job(100 + i, 1));
            st.total += 2;
        }
        let (round1, shed) = compose_round(&mut st, Instant::now());
        assert_eq!(shed, vec![0, 0]);
        let tenants: Vec<usize> = round1.iter().map(|j| j.tenant).collect();
        assert_eq!(tenants, vec![0, 0, 1, 0, 0, 1], "2:1 interleave");
        // Cursor and credit persist: the next round picks up mid-pattern.
        let (round2, _) = compose_round(&mut st, Instant::now());
        let tenants2: Vec<usize> = round2.iter().map(|j| j.tenant).collect();
        assert_eq!(tenants2, vec![0, 0, 1, 0, 0, 1]);
        // Once tenant 1 empties, tenant 0 gets every remaining slot.
        let (round3, _) = compose_round(&mut st, Instant::now());
        assert!(round3.iter().all(|j| j.tenant == 0 || j.id >= 100));
    }

    #[test]
    fn reconfigure_bumps_epoch_and_stamps_completions() {
        let mut cfg = small_cfg(8);
        cfg.record_outputs = true;
        let mut server = Server::start(cfg).unwrap();
        assert_eq!(server.epoch(), 0);
        for s in 0..4 {
            server.submit(s, &[(s + 1) % 8]).unwrap();
        }
        let epoch = server
            .reconfigure(EpochUpdate {
                batch_window: Some(8),
                max_fanout: Some(3),
                quotas: Some(vec![512]),
                weights: Some(vec![2]),
                ..EpochUpdate::default()
            })
            .unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(server.epoch(), 1);
        assert_eq!(server.config().batch_window, 8);
        assert_eq!(server.config().queue.max_fanout, 3);
        assert_eq!(server.config().tenants[0].quota, 512);
        // The new fanout cap is live immediately.
        assert!(matches!(
            server.submit(0, &[1, 2, 3, 4]),
            Err(RejectReason::FanoutExceeded { fanout: 4, max_fanout: 3 })
        ));
        for s in 0..4 {
            server.submit(s, &[(s + 2) % 8]).unwrap();
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.epoch, 1);
        assert_eq!(report.batch_window, 8);
        // Each completion carries the epoch under which it was admitted.
        let mut by_epoch = [0u64; 2];
        for c in &report.completions {
            by_epoch[c.epoch as usize] += 1;
        }
        assert_eq!(by_epoch, [4, 4]);
    }

    #[test]
    fn reconfigure_rejects_bad_updates() {
        let mut server = Server::start(small_cfg(8)).unwrap();
        assert!(server
            .reconfigure(EpochUpdate {
                batch_window: Some(0),
                ..EpochUpdate::default()
            })
            .is_err());
        assert!(server
            .reconfigure(EpochUpdate {
                quotas: Some(vec![1, 1]), // wrong arity: one tenant
                ..EpochUpdate::default()
            })
            .is_err());
        assert!(server
            .reconfigure(EpochUpdate {
                weights: Some(vec![0]),
                ..EpochUpdate::default()
            })
            .is_err());
        // Failed updates must not bump the epoch.
        assert_eq!(server.epoch(), 0);
        server.shutdown();
    }

    #[test]
    fn replay_loses_no_requests_even_at_tiny_capacity() {
        // 200 requests through a 2-slot queue: before the retry fix this
        // dropped most of the trace on the floor.
        let mut cfg = small_cfg(16);
        cfg.queue_capacity = 2;
        cfg.batch_window = 2;
        let trace = Trace::generate(cfg.queue, 9, 200).unwrap();
        let report = serve_trace(cfg, &trace).unwrap();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, trace.len() as u64);
        assert_eq!(report.accepted + report.drained, trace.len() as u64);
        assert_eq!(report.rejected, 0, "{:?}", report.rejections);
    }

    #[test]
    fn every_backend_kind_serves_the_same_trace() {
        let trace = Trace::generate(
            QueueConfig {
                n: 8,
                p_arrival: 0.6,
                max_fanout: 8,
            },
            5,
            10,
        )
        .unwrap();
        let mut reference: Option<Vec<(u64, RoutingResult)>> = None;
        for backend in [
            BackendKind::Brsmn,
            BackendKind::Reference,
            BackendKind::Feedback,
            BackendKind::Crossbar,
            BackendKind::CopyBenes,
            BackendKind::Cluster,
        ] {
            let mut cfg = small_cfg(8);
            cfg.backend = backend;
            cfg.shards = 2;
            cfg.record_outputs = true;
            let report = serve_trace(cfg, &trace).unwrap();
            assert!(report.conserves(), "{backend}: {report:?}");
            assert_eq!(report.served_ok, trace.len() as u64, "{backend}");
            assert_eq!(report.backend, backend.label());
            let mut outputs: Vec<(u64, RoutingResult)> = report
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().expect("recorded output")))
                .collect();
            outputs.sort_by_key(|(id, _)| *id);
            match &reference {
                None => reference = Some(outputs),
                Some(expect) => assert_eq!(&outputs, expect, "{backend} diverged"),
            }
        }
    }

    #[test]
    fn config_validation_surfaces_typed_errors() {
        let mut cfg = ServeConfig::new(7);
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeError::Queue(QueueError::InvalidSize { n: 7 })
        );
        cfg = ServeConfig::new(8);
        cfg.queue.max_fanout = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeError::Queue(QueueError::ZeroFanout)
        );
        cfg = ServeConfig::new(8);
        cfg.shards = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.batch_window = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.queue_capacity = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.tenants = vec![TenantSpec { quota: 0, weight: 1 }];
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.tenants = vec![TenantSpec { quota: 4, weight: 0 }];
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        // An empty tenant list normalizes to the implicit default tenant.
        cfg = ServeConfig::new(8);
        let v = cfg.validate().unwrap();
        assert_eq!(v.tenants, vec![TenantSpec::even(v.queue_capacity)]);
    }

    #[test]
    fn backend_kind_round_trips_from_str() {
        for kind in [
            BackendKind::Brsmn,
            BackendKind::Reference,
            BackendKind::Feedback,
            BackendKind::Crossbar,
            BackendKind::CopyBenes,
            BackendKind::Cluster,
        ] {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("warp-drive".parse::<BackendKind>().is_err());
    }

    #[test]
    fn plan_cache_hits_surface_in_the_report() {
        // The same hot request resubmitted: after the first capture, every
        // repeat replays from the shared cache, and the outputs match a
        // cache-less server bit for bit.
        let mut cached = small_cfg(16);
        cached.shards = 2;
        cached.plan_cache = 64;
        cached.record_outputs = true;
        let mut plain = cached.clone();
        plain.plan_cache = 0;

        let submit_all = |cfg: ServeConfig| {
            let mut server = Server::start(cfg).unwrap();
            for i in 0..32 {
                server.submit(i % 4, &[(i % 4 + 5) % 16, (i % 4 + 9) % 16]).unwrap();
            }
            server.shutdown()
        };
        let a = submit_all(cached);
        let b = submit_all(plain);
        assert!(a.conserves(), "{a:?}");
        assert_eq!(a.served_ok, 32);
        // 4 distinct assignments, but all single-source fanout-2 — one
        // relabeling class. Only first occurrences racing across the two
        // shards can plan fresh; later first occurrences land in the
        // canonical tier and every repeat is an exact hit.
        assert!(a.plan_misses >= 1 && a.plan_misses <= 4, "{}", a.plan_misses);
        assert!(a.plan_canonical_hits >= 2, "{}", a.plan_canonical_hits);
        assert!(a.plan_canonical_hits <= a.plan_hits);
        assert_eq!(a.plan_hits + a.plan_misses, 32);
        assert_eq!(b.plan_hits, 0);
        assert_eq!(b.plan_misses, 0);
        assert_eq!(b.plan_canonical_hits, 0);
        // SIMD/SoA instrumentation rides along: the BRSMN fast path always
        // reports its lane width, and the cache-less server batch-plans
        // every multi-frame round while the cached one only plans misses.
        assert_eq!(a.simd_lane_width, brsmn_rbn::LANES as u64);
        assert_eq!(b.simd_lane_width, brsmn_rbn::LANES as u64);
        assert!(a.batch_planned_frames <= a.plan_misses);
        assert!(b.batch_planned_frames <= 32);
        let key = |r: &ServeReport| {
            let mut v: Vec<(u64, RoutingResult)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().unwrap()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(key(&a), key(&b));
        // Identical delivered outputs ⇒ identical order-independent hash.
        assert_eq!(a.output_hash, b.output_hash);
    }

    #[test]
    fn warm_started_server_replays_on_first_sight() {
        // Serve a trace cold, snapshot the cache, then serve the same trace
        // on a fresh server warm-started from the snapshot: zero fresh
        // planning, identical outputs.
        let mut cfg = small_cfg(16);
        cfg.plan_cache = 64;
        cfg.record_outputs = true;
        let trace = Trace::generate(cfg.queue, 11, 24).unwrap();

        // Capture run: an externally owned (but empty) cache, so the
        // captured working set survives the server.
        let source = Arc::new(PlanCache::new(64));
        let cold = serve_trace_warm(cfg.clone(), &trace, Arc::clone(&source)).unwrap();
        assert!(cold.plan_misses > 0);

        // Round-trip the snapshot through JSON like the CLI does.
        let json = serde_json::to_string(&source.snapshot()).unwrap();
        let snap: brsmn_core::PlanCacheSnapshot = serde_json::from_str(&json).unwrap();
        let warmed = Arc::new(PlanCache::new(64));
        let stats = warmed.load_snapshot(&snap).unwrap();
        assert!(stats.loaded > 0);

        let warm = serve_trace_warm(cfg, &trace, warmed).unwrap();
        assert_eq!(warm.plan_misses, 0, "{warm:?}");
        assert_eq!(
            warm.plan_hits,
            warm.accepted + warm.drained,
            "every served request must replay"
        );
        assert_eq!(warm.plan_snapshot_loaded, stats.loaded);

        let key = |r: &ServeReport| {
            let mut v: Vec<(u64, RoutingResult)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().unwrap()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(key(&cold), key(&warm));
        assert_eq!(cold.output_hash, warm.output_hash);
    }

    #[test]
    fn warm_start_rejects_non_brsmn_backends() {
        let mut cfg = small_cfg(8);
        cfg.backend = BackendKind::Crossbar;
        let err = Server::start_warm(cfg, Arc::new(PlanCache::new(8)));
        assert!(err.is_err());
    }

    #[test]
    fn report_serializes_to_json_and_back() {
        let mut cfg = small_cfg(8);
        cfg.record_outputs = true;
        let trace = Trace::generate(cfg.queue, 2, 6).unwrap();
        let report = serve_trace(cfg, &trace).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        for field in [
            "frames_per_sec",
            "rejections",
            "p99_ns",
            "queue_full",
            "tenants",
            "output_hash",
            "quota_exceeded",
            "deadline_exceeded",
        ] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
