//! The serving front end: a bounded mpsc request loop feeding a sharded,
//! multi-backend routing fabric — the shape a deployed BRSMN switch
//! controller takes.
//!
//! ```text
//!  submit(source, dests)
//!        │  admission control (QueueConfig: size / fanout / dest range)
//!        ▼
//!  ┌──────────────┐  try_send (backpressure: QueueFull when the bounded
//!  │ sync_channel │  queue is at capacity)
//!  └──────┬───────┘
//!         ▼  batch_window requests per service round
//!  ┌─────────────────────────────┐
//!  │ serving thread              │   shard 0: Engine / RouterBackend
//!  │   stripe frames round-robin ├──▶ shard 1: …        (par_map, one
//!  │   merge EngineStats         │   shard S−1:          thread per shard)
//!  └─────────────────────────────┘
//!         │ per-request latency → LatencyHistogram
//!         ▼
//!  shutdown(): set drain flag, close queue, serve the backlog, join,
//!  return the ServeReport (accepted + rejected + drained == submitted)
//! ```
//!
//! Admission control is driven by the same [`QueueConfig`] the queueing
//! simulation uses ([`brsmn_workloads::queueing`]): the config is
//! [validated](QueueConfig::validate) into typed [`QueueError`]s at
//! construction, and each submitted request is screened against it before
//! touching the queue ([`RejectReason`]). The BRSMN backend routes shards
//! through [`ShardedEngine`] (bit-identical to a single engine); every
//! other [`RouterBackend`] gets one independent instance per shard.
//!
//! # Example
//!
//! ```
//! use brsmn_serve::{ServeConfig, Server};
//!
//! let mut cfg = ServeConfig::new(8);
//! cfg.shards = 2;
//! let mut server = Server::start(cfg).unwrap();
//! for s in 0..8 {
//!     server.submit(s, &[s, (s + 1) % 8]).unwrap();
//! }
//! let report = server.shutdown();
//! assert_eq!(report.submitted, 8);
//! assert_eq!(report.accepted + report.drained, 8);
//! assert_eq!(report.served_ok, 8);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod histogram;
pub mod trace;

pub use histogram::LatencyHistogram;
pub use trace::{Trace, TraceRequest};

use brsmn_baselines::{CopyBenesMulticast, Crossbar};
use brsmn_core::backend::{ReferenceRouter, RouterBackend};
use brsmn_core::{
    CoreError, EngineConfig, EngineStats, FeedbackBrsmn, MulticastAssignment, PlanCache,
    RoutingResult, ShardedEngine,
};
use brsmn_rbn::par;
use brsmn_workloads::queueing::{QueueConfig, QueueError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Which routing fabric the server drives (see [`RouterBackend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// BRSMN zero-allocation fast path via [`ShardedEngine`] (the default).
    Brsmn,
    /// The allocating reference planner, one [`ReferenceRouter`] per shard.
    Reference,
    /// The Section-7.3 feedback network, one [`FeedbackBrsmn`] per shard.
    Feedback,
    /// The `Θ(n²)` crossbar baseline, one [`Crossbar`] per shard.
    Crossbar,
    /// The classical copy-then-route baseline, one [`CopyBenesMulticast`]
    /// per shard.
    CopyBenes,
}

impl BackendKind {
    /// Stable name used in reports and on the CLI (`--backend`).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Brsmn => "brsmn",
            BackendKind::Reference => "reference",
            BackendKind::Feedback => "feedback",
            BackendKind::Crossbar => "crossbar",
            BackendKind::CopyBenes => "copy-benes",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "brsmn" => Ok(BackendKind::Brsmn),
            "reference" => Ok(BackendKind::Reference),
            "feedback" => Ok(BackendKind::Feedback),
            "crossbar" => Ok(BackendKind::Crossbar),
            "copy-benes" => Ok(BackendKind::CopyBenes),
            other => Err(format!(
                "unknown backend {other:?} (expected brsmn, reference, feedback, crossbar, copy-benes)"
            )),
        }
    }
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Admission-control parameters (network size, arrival rate for trace
    /// generation, fanout cap), validated by [`QueueConfig::validate`].
    pub queue: QueueConfig,
    /// Independent fabrics the serving thread stripes each round across.
    pub shards: usize,
    /// Engine worker threads inside each shard (`ShardedEngine` backends;
    /// `0` = one per hardware thread). Serving deployments usually keep
    /// this at 1 and scale via `shards`.
    pub workers_per_shard: usize,
    /// Bounded request-queue capacity; a full queue rejects with
    /// [`RejectReason::QueueFull`] (backpressure).
    pub queue_capacity: usize,
    /// Most requests served per routing round (the batch the fabric sees).
    pub batch_window: usize,
    /// Which fabric to drive.
    pub backend: BackendKind,
    /// Record each request's delivered [`RoutingResult`] in the report's
    /// completion log (memory-heavy; meant for tests and small traces).
    pub record_outputs: bool,
    /// Capacity of the plan-capture cache shared by the BRSMN backend's
    /// shards (`0` disables; ignored by the other backends). Repeated
    /// assignments — the common case for serving traffic with hot
    /// source/destination pairs — then replay their captured switch
    /// settings instead of re-planning.
    pub plan_cache: usize,
}

impl ServeConfig {
    /// A single-shard BRSMN server over an `n`-port fabric with moderate
    /// defaults (queue capacity 256, batch window 32, arrival rate 0.5,
    /// fanout cap 4).
    pub fn new(n: usize) -> Self {
        ServeConfig {
            queue: QueueConfig {
                n,
                p_arrival: 0.5,
                max_fanout: 4,
            },
            shards: 1,
            workers_per_shard: 1,
            queue_capacity: 256,
            batch_window: 32,
            backend: BackendKind::Brsmn,
            record_outputs: false,
            plan_cache: 0,
        }
    }

    /// Validates and normalizes: the embedded [`QueueConfig`] is validated
    /// (typed [`QueueError`] on a bad size or fanout), and zero
    /// shards/capacity/window are rejected.
    pub fn validate(mut self) -> Result<ServeConfig, ServeError> {
        self.queue = self.queue.validate().map_err(ServeError::Queue)?;
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".to_string()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1".to_string()));
        }
        if self.batch_window == 0 {
            return Err(ServeError::Config("batch_window must be >= 1".to_string()));
        }
        Ok(self)
    }
}

/// A server that could not be built or run.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The admission-control config failed [`QueueConfig::validate`].
    Queue(QueueError),
    /// A serving parameter (shards, capacity, batch window) is unusable.
    Config(String),
    /// The backend fabric could not be constructed.
    Core(CoreError),
    /// A replayed trace addresses a different network size than the config.
    TraceMismatch {
        /// Size the trace was recorded for.
        trace_n: usize,
        /// Size the server is configured for.
        cfg_n: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Queue(e) => write!(f, "admission config: {e}"),
            ServeError::Config(msg) => write!(f, "serve config: {msg}"),
            ServeError::Core(e) => write!(f, "backend construction: {e}"),
            ServeError::TraceMismatch { trace_n, cfg_n } => write!(
                f,
                "trace recorded for n={trace_n} but the server is configured for n={cfg_n}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Why admission control (or backpressure) refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded queue is at capacity — backpressure.
    QueueFull,
    /// The request named no destinations.
    EmptyRequest,
    /// More distinct destinations than the admission fanout cap.
    FanoutExceeded {
        /// Distinct destinations requested.
        fanout: usize,
        /// The configured cap ([`QueueConfig::max_fanout`]).
        max_fanout: usize,
    },
    /// The source port does not exist on this fabric.
    SourceOutOfRange {
        /// The offending source.
        source: usize,
        /// Network size.
        n: usize,
    },
    /// A destination port does not exist on this fabric.
    DestOutOfRange {
        /// The offending destination.
        dest: usize,
        /// Network size.
        n: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull => write!(f, "queue full"),
            RejectReason::EmptyRequest => write!(f, "empty destination set"),
            RejectReason::FanoutExceeded { fanout, max_fanout } => {
                write!(f, "fanout {fanout} exceeds admission cap {max_fanout}")
            }
            RejectReason::SourceOutOfRange { source, n } => {
                write!(f, "source {source} out of range for n={n}")
            }
            RejectReason::DestOutOfRange { dest, n } => {
                write!(f, "destination {dest} out of range for n={n}")
            }
            RejectReason::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

/// Per-reason rejection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejectBreakdown {
    /// Backpressure rejections ([`RejectReason::QueueFull`]).
    pub queue_full: u64,
    /// Empty destination sets.
    pub empty_request: u64,
    /// Fanout above the admission cap.
    pub fanout_exceeded: u64,
    /// Source or destination ports off the fabric.
    pub out_of_range: u64,
    /// Requests submitted after shutdown began.
    pub shutting_down: u64,
}

impl RejectBreakdown {
    /// Total rejected requests.
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.empty_request
            + self.fanout_exceeded
            + self.out_of_range
            + self.shutting_down
    }

    fn count(&mut self, reason: &RejectReason) {
        match reason {
            RejectReason::QueueFull => self.queue_full += 1,
            RejectReason::EmptyRequest => self.empty_request += 1,
            RejectReason::FanoutExceeded { .. } => self.fanout_exceeded += 1,
            RejectReason::SourceOutOfRange { .. } | RejectReason::DestOutOfRange { .. } => {
                self.out_of_range += 1
            }
            RejectReason::ShuttingDown => self.shutting_down += 1,
        }
    }
}

/// One served request in the report's completion log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Completion {
    /// The id [`Server::submit`] returned for this request.
    pub id: u64,
    /// Served during the graceful drain (after [`Server::shutdown`] was
    /// called) rather than in steady state.
    pub drained: bool,
    /// The fabric realized the request.
    pub ok: bool,
    /// Submit → completion latency, nanoseconds.
    pub latency_ns: u64,
    /// The delivered source table, when [`ServeConfig::record_outputs`] is
    /// set and the route succeeded.
    pub result: Option<RoutingResult>,
    /// The routing error, if the route failed.
    pub error: Option<String>,
}

/// Headline latency figures distilled from the full histogram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples (served requests).
    pub count: u64,
    /// Exact mean, nanoseconds.
    pub mean_ns: f64,
    /// Median (log₂-bucket upper edge), nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// Exact maximum, nanoseconds.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Distills a histogram into the headline figures.
    pub fn from_histogram(h: &LatencyHistogram) -> Self {
        LatencySummary {
            count: h.count,
            mean_ns: h.mean_ns(),
            p50_ns: h.quantile(0.5),
            p90_ns: h.quantile(0.9),
            p99_ns: h.quantile(0.99),
            max_ns: h.max_ns,
        }
    }
}

/// Everything one serving run produced; serializes to the `serve-sim` JSON
/// report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Network size.
    pub n: usize,
    /// Shards the fabric striped across.
    pub shards: usize,
    /// Engine workers inside each shard.
    pub workers_per_shard: usize,
    /// Backend label ([`BackendKind::label`]).
    pub backend: String,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Requests per service round.
    pub batch_window: usize,
    /// Requests offered to [`Server::submit`].
    pub submitted: u64,
    /// Requests served in steady state (before shutdown).
    pub accepted: u64,
    /// Requests served by the graceful drain (queued when shutdown began).
    pub drained: u64,
    /// Requests refused by admission control or backpressure.
    pub rejected: u64,
    /// Rejections by reason.
    pub rejections: RejectBreakdown,
    /// Served requests the fabric realized.
    pub served_ok: u64,
    /// Served requests whose route failed.
    pub served_err: u64,
    /// Service rounds (fabric batches) executed.
    pub rounds: u64,
    /// Serving-thread lifetime, nanoseconds.
    pub wall_nanos: u64,
    /// Served requests per second of serving-thread wall time.
    pub frames_per_sec: f64,
    /// Served requests whose switch settings replayed from the plan cache
    /// (0 with the cache off or a non-BRSMN backend).
    pub plan_hits: u64,
    /// Fast-path requests that planned fresh (and captured) because their
    /// assignment was not resident in the plan cache.
    pub plan_misses: u64,
    /// Subset of `plan_hits` served by the canonical tier: the exact
    /// fingerprint missed, but a relabeling-equivalent plan replayed through
    /// the permuted executor.
    pub plan_canonical_hits: u64,
    /// Plans resident at startup from a warm-start snapshot
    /// ([`Server::start_warm`]); 0 for cold starts.
    pub plan_snapshot_loaded: u64,
    /// Width, in `u64` words, of the SIMD lane blocks the fast path's
    /// plane sweeps ran on (0 with a non-fast-path backend).
    pub simd_lane_width: u64,
    /// Served requests planned in lockstep SoA batches by the engine's
    /// `BatchPlanner` (cache misses grouped per round; 0 with
    /// `--no-batch-plan` or a non-BRSMN backend).
    pub batch_planned_frames: u64,
    /// Headline latency figures.
    pub latency: LatencySummary,
    /// Full log₂ latency histogram.
    pub histogram: LatencyHistogram,
    /// Merged fabric instrumentation (wall set to the serving-thread wall).
    pub engine: EngineStats,
    /// Per-request completion log (populated when
    /// [`ServeConfig::record_outputs`] is set).
    pub completions: Vec<Completion>,
}

impl ServeReport {
    /// The serving conservation law: every submitted request is accounted
    /// for exactly once, and every queued request was served.
    pub fn conserves(&self) -> bool {
        self.accepted + self.drained + self.rejected == self.submitted
            && self.served_ok + self.served_err == self.accepted + self.drained
            && self.rejections.total() == self.rejected
            && self.histogram.count == self.accepted + self.drained
    }
}

/// The routing fabric behind the queue: either a [`ShardedEngine`] (BRSMN
/// fast path, with its own striping and instrumentation) or one
/// [`RouterBackend`] instance per shard driven by the same round-robin
/// striping.
enum Fabric {
    Sharded(ShardedEngine),
    Backends {
        n: usize,
        shards: Vec<Box<dyn RouterBackend>>,
    },
}

impl Fabric {
    fn build(cfg: &ServeConfig, warm_cache: Option<Arc<PlanCache>>) -> Result<Fabric, ServeError> {
        let n = cfg.queue.n;
        // A pre-warmed cache only makes sense on the BRSMN fast path — the
        // other backends never consult a plan cache.
        if warm_cache.is_some() && cfg.backend != BackendKind::Brsmn {
            return Err(ServeError::Core(CoreError::Config(format!(
                "warm-start plan cache requires the brsmn backend, not {}",
                cfg.backend
            ))));
        }
        let make_shards = |f: &dyn Fn() -> Result<Box<dyn RouterBackend>, ServeError>| {
            (0..cfg.shards)
                .map(|_| f())
                .collect::<Result<Vec<_>, _>>()
                .map(|shards| Fabric::Backends { n, shards })
        };
        match cfg.backend {
            BackendKind::Brsmn => {
                let mut engine = ShardedEngine::with_config(
                    n,
                    cfg.shards,
                    EngineConfig::batch(cfg.workers_per_shard).with_plan_cache(cfg.plan_cache),
                )?;
                if let Some(cache) = warm_cache {
                    engine.share_plan_cache(cache);
                }
                Ok(Fabric::Sharded(engine))
            }
            BackendKind::Reference => {
                make_shards(&|| Ok(Box::new(ReferenceRouter::new(n)?) as Box<dyn RouterBackend>))
            }
            BackendKind::Feedback => {
                make_shards(&|| Ok(Box::new(FeedbackBrsmn::new(n)?) as Box<dyn RouterBackend>))
            }
            BackendKind::Crossbar => {
                make_shards(&|| Ok(Box::new(Crossbar::new(n)) as Box<dyn RouterBackend>))
            }
            BackendKind::CopyBenes => make_shards(&|| {
                let net = CopyBenesMulticast::new(n).map_err(|e| {
                    ServeError::Core(CoreError::Config(format!("copy–benes baseline: {e}")))
                })?;
                Ok(Box::new(net) as Box<dyn RouterBackend>)
            }),
        }
    }

    /// Routes one service round, striping frames round-robin across shards.
    fn route_round(
        &self,
        batch: &[MulticastAssignment],
    ) -> (Vec<Result<RoutingResult, CoreError>>, EngineStats) {
        match self {
            Fabric::Sharded(engine) => {
                let out = engine.route_batch(batch);
                (out.results, out.stats)
            }
            Fabric::Backends { n, shards } => {
                let s = shards.len().min(batch.len()).max(1);
                let stripes: Vec<Vec<usize>> =
                    (0..s).map(|k| (k..batch.len()).step_by(s).collect()).collect();
                let wall_start = Instant::now();
                let shard_outs = par::par_map(&stripes, s, |k, idxs| {
                    let t0 = Instant::now();
                    let results: Vec<Result<RoutingResult, CoreError>> = idxs
                        .iter()
                        .map(|&i| shards[k].route_assignment(&batch[i]))
                        .collect();
                    (results, t0.elapsed().as_nanos() as u64)
                });
                let wall_nanos = wall_start.elapsed().as_nanos() as u64;

                let mut results: Vec<Option<Result<RoutingResult, CoreError>>> =
                    (0..batch.len()).map(|_| None).collect();
                let mut stats = EngineStats::empty(*n);
                stats.batch = batch.len();
                stats.workers = s;
                stats.wall_nanos = wall_nanos;
                for (stripe, (outs, busy)) in stripes.iter().zip(shard_outs) {
                    stats.busy_nanos += busy;
                    for (&i, r) in stripe.iter().zip(outs) {
                        match &r {
                            Ok(_) => stats.frames_ok += 1,
                            Err(_) => stats.frames_failed += 1,
                        }
                        results[i] = Some(r);
                    }
                }
                (
                    results
                        .into_iter()
                        .map(|r| r.expect("striping covers every frame"))
                        .collect(),
                    stats,
                )
            }
        }
    }
}

/// One queued request.
struct Job {
    id: u64,
    asg: MulticastAssignment,
    submitted_at: Instant,
}

/// What the serving thread hands back at join time.
struct LoopOutcome {
    accepted: u64,
    drained: u64,
    served_ok: u64,
    served_err: u64,
    rounds: u64,
    wall_nanos: u64,
    histogram: LatencyHistogram,
    engine: EngineStats,
    completions: Vec<Completion>,
}

/// A running serving loop; see the [module docs](crate) for the flow.
///
/// Built by [`Server::start`], fed by [`Server::submit`], finished by
/// [`Server::shutdown`] (graceful drain: the queue closes, every queued
/// request is still served, then the report comes back).
pub struct Server {
    cfg: ServeConfig,
    tx: Option<SyncSender<Job>>,
    draining: Arc<AtomicBool>,
    worker: Option<JoinHandle<LoopOutcome>>,
    submitted: u64,
    rejections: RejectBreakdown,
}

impl Server {
    /// Validates `cfg`, builds the backend fabric, and spawns the serving
    /// thread.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        Server::start_with_cache(cfg, None)
    }

    /// Like [`Server::start`], but the BRSMN fabric serves out of `cache`
    /// instead of building a cold one — the warm-start path. Load a
    /// [`brsmn_core::PlanCacheSnapshot`] into the cache first and the very
    /// first pass over recurring shapes replays at warm throughput. Only
    /// the `brsmn` backend accepts a warm cache.
    pub fn start_warm(cfg: ServeConfig, cache: Arc<PlanCache>) -> Result<Server, ServeError> {
        Server::start_with_cache(cfg, Some(cache))
    }

    fn start_with_cache(
        cfg: ServeConfig,
        warm_cache: Option<Arc<PlanCache>>,
    ) -> Result<Server, ServeError> {
        let cfg = cfg.validate()?;
        let fabric = Fabric::build(&cfg, warm_cache)?;
        let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity);
        let draining = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&draining);
        let (batch_window, record_outputs) = (cfg.batch_window, cfg.record_outputs);
        let worker = std::thread::spawn(move || {
            serve_loop(fabric, rx, flag, batch_window, record_outputs)
        });
        Ok(Server {
            cfg,
            tx: Some(tx),
            draining,
            worker: Some(worker),
            submitted: 0,
            rejections: RejectBreakdown::default(),
        })
    }

    /// The validated configuration this server runs.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Requests offered so far (accepted or not).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Offers one multicast request: route `source` to the distinct ports
    /// in `dests`.
    ///
    /// Admission control screens the request against the validated
    /// [`QueueConfig`] (port ranges, nonempty, fanout cap); an admitted
    /// request is `try_send`-ed into the bounded queue, so a full queue
    /// rejects immediately with [`RejectReason::QueueFull`] instead of
    /// blocking the caller. Returns the request id (its submission
    /// sequence number) on acceptance.
    pub fn submit(&mut self, source: usize, dests: &[usize]) -> Result<u64, RejectReason> {
        let id = self.submitted;
        self.submitted += 1;
        match self.admit(id, source, dests) {
            Ok(id) => Ok(id),
            Err(reason) => {
                self.rejections.count(&reason);
                Err(reason)
            }
        }
    }

    fn admit(&mut self, id: u64, source: usize, dests: &[usize]) -> Result<u64, RejectReason> {
        let n = self.cfg.queue.n;
        if source >= n {
            return Err(RejectReason::SourceOutOfRange { source, n });
        }
        if dests.is_empty() {
            return Err(RejectReason::EmptyRequest);
        }
        if let Some(&dest) = dests.iter().find(|&&d| d >= n) {
            return Err(RejectReason::DestOutOfRange { dest, n });
        }
        let mut dests = dests.to_vec();
        dests.sort_unstable();
        dests.dedup();
        if dests.len() > self.cfg.queue.max_fanout {
            return Err(RejectReason::FanoutExceeded {
                fanout: dests.len(),
                max_fanout: self.cfg.queue.max_fanout,
            });
        }

        let mut sets = vec![Vec::new(); n];
        sets[source] = dests;
        let asg = MulticastAssignment::from_sets(n, sets)
            .expect("admission checks make the assignment valid");
        let job = Job {
            id,
            asg,
            submitted_at: Instant::now(),
        };
        let tx = match &self.tx {
            Some(tx) => tx,
            None => return Err(RejectReason::ShuttingDown),
        };
        match tx.try_send(job) {
            Ok(()) => Ok(id),
            Err(TrySendError::Full(_)) => Err(RejectReason::QueueFull),
            Err(TrySendError::Disconnected(_)) => Err(RejectReason::ShuttingDown),
        }
    }

    /// Gracefully drains and stops the server: no new requests are
    /// accepted, everything already queued is served (counted as
    /// `drained`), the serving thread exits, and the full [`ServeReport`]
    /// comes back.
    pub fn shutdown(mut self) -> ServeReport {
        self.draining.store(true, Ordering::SeqCst);
        drop(self.tx.take());
        let outcome = self
            .worker
            .take()
            .expect("shutdown runs once")
            .join()
            .expect("serving thread panicked");

        let served = outcome.accepted + outcome.drained;
        let frames_per_sec = if outcome.wall_nanos == 0 {
            0.0
        } else {
            served as f64 * 1e9 / outcome.wall_nanos as f64
        };
        let mut engine = outcome.engine;
        engine.wall_nanos = outcome.wall_nanos;
        ServeReport {
            n: self.cfg.queue.n,
            shards: self.cfg.shards,
            workers_per_shard: self.cfg.workers_per_shard,
            backend: self.cfg.backend.label().to_string(),
            queue_capacity: self.cfg.queue_capacity,
            batch_window: self.cfg.batch_window,
            submitted: self.submitted,
            accepted: outcome.accepted,
            drained: outcome.drained,
            rejected: self.rejections.total(),
            rejections: self.rejections,
            served_ok: outcome.served_ok,
            served_err: outcome.served_err,
            rounds: outcome.rounds,
            wall_nanos: outcome.wall_nanos,
            frames_per_sec,
            plan_hits: engine.plan_hits,
            plan_misses: engine.plan_misses,
            plan_canonical_hits: engine.plan_canonical_hits,
            plan_snapshot_loaded: engine.plan_snapshot_loaded,
            simd_lane_width: engine.simd_lane_width,
            batch_planned_frames: engine.batch_planned_frames,
            latency: LatencySummary::from_histogram(&outcome.histogram),
            histogram: outcome.histogram,
            engine,
            completions: outcome.completions,
        }
    }
}

/// The serving thread: pull up to `batch_window` queued requests, route
/// them as one striped round, record latencies, repeat until the queue
/// closes and empties.
fn serve_loop(
    fabric: Fabric,
    rx: mpsc::Receiver<Job>,
    draining: Arc<AtomicBool>,
    batch_window: usize,
    record_outputs: bool,
) -> LoopOutcome {
    let n = match &fabric {
        Fabric::Sharded(e) => e.n(),
        Fabric::Backends { n, .. } => *n,
    };
    let mut out = LoopOutcome {
        accepted: 0,
        drained: 0,
        served_ok: 0,
        served_err: 0,
        rounds: 0,
        wall_nanos: 0,
        histogram: LatencyHistogram::new(),
        engine: EngineStats::empty(n),
        completions: Vec::new(),
    };

    let start = Instant::now();
    loop {
        // Block for the round's first request; the channel closing (all
        // senders dropped, queue empty) ends the loop.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => break,
        };
        let mut jobs = vec![first];
        while jobs.len() < batch_window {
            match rx.try_recv() {
                Ok(job) => jobs.push(job),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }

        // Anything routed after shutdown began is part of the graceful
        // drain; the flag is set before the queue closes, so no drained
        // request can be miscounted as steady-state.
        let in_drain = draining.load(Ordering::SeqCst);

        let metas: Vec<(u64, Instant)> = jobs.iter().map(|j| (j.id, j.submitted_at)).collect();
        let batch: Vec<MulticastAssignment> = jobs.into_iter().map(|j| j.asg).collect();
        let (results, stats) = fabric.route_round(&batch);
        let done = Instant::now();

        for ((id, submitted_at), result) in metas.into_iter().zip(results) {
            let latency_ns = done.duration_since(submitted_at).as_nanos() as u64;
            out.histogram.record(latency_ns);
            if in_drain {
                out.drained += 1;
            } else {
                out.accepted += 1;
            }
            let (ok, result, error) = match result {
                Ok(r) => {
                    out.served_ok += 1;
                    (true, record_outputs.then_some(r), None)
                }
                Err(e) => {
                    out.served_err += 1;
                    (false, None, Some(e.to_string()))
                }
            };
            out.completions.push(Completion {
                id,
                drained: in_drain,
                ok,
                latency_ns,
                result,
                error,
            });
        }
        // Merging sums round wall times into a running total we overwrite
        // below with the true thread lifetime; work counters accumulate.
        out.engine.merge(&stats);
        out.rounds += 1;
    }
    out.wall_nanos = start.elapsed().as_nanos() as u64;
    out.engine.wall_nanos = out.wall_nanos;
    out
}

/// Replays every request of `trace` through a fresh server built from
/// `cfg` (as fast as submission allows — queue pressure, not tick pacing)
/// and shuts down gracefully, returning the report.
pub fn serve_trace(cfg: ServeConfig, trace: &Trace) -> Result<ServeReport, ServeError> {
    serve_trace_with_cache(cfg, trace, None)
}

/// [`serve_trace`] against a server warm-started from `cache`
/// ([`Server::start_warm`]): plans loaded from a snapshot replay on first
/// sight instead of being planned fresh.
pub fn serve_trace_warm(
    cfg: ServeConfig,
    trace: &Trace,
    cache: Arc<PlanCache>,
) -> Result<ServeReport, ServeError> {
    serve_trace_with_cache(cfg, trace, Some(cache))
}

fn serve_trace_with_cache(
    cfg: ServeConfig,
    trace: &Trace,
    warm_cache: Option<Arc<PlanCache>>,
) -> Result<ServeReport, ServeError> {
    let cfg = cfg.validate()?;
    if trace.n != cfg.queue.n {
        return Err(ServeError::TraceMismatch {
            trace_n: trace.n,
            cfg_n: cfg.queue.n,
        });
    }
    let mut server = Server::start_with_cache(cfg, warm_cache)?;
    for req in &trace.requests {
        let _ = server.submit(req.source, &req.dests);
    }
    Ok(server.shutdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(n: usize) -> ServeConfig {
        let mut cfg = ServeConfig::new(n);
        cfg.queue.max_fanout = n;
        cfg.queue_capacity = 1024;
        cfg
    }

    #[test]
    fn serves_every_submitted_request() {
        let mut server = Server::start(small_cfg(8)).unwrap();
        for s in 0..8 {
            server.submit(s, &[(s + 3) % 8]).unwrap();
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 8);
        assert_eq!(report.accepted + report.drained, 8);
        assert_eq!(report.served_ok, 8);
        assert_eq!(report.served_err, 0);
        assert_eq!(report.rejected, 0);
        assert!(report.frames_per_sec > 0.0);
    }

    #[test]
    fn admission_rejects_malformed_requests() {
        let mut cfg = ServeConfig::new(8);
        cfg.queue.max_fanout = 2;
        let mut server = Server::start(cfg).unwrap();
        assert_eq!(
            server.submit(9, &[0]).unwrap_err(),
            RejectReason::SourceOutOfRange { source: 9, n: 8 }
        );
        assert_eq!(server.submit(0, &[]).unwrap_err(), RejectReason::EmptyRequest);
        assert_eq!(
            server.submit(0, &[1, 8]).unwrap_err(),
            RejectReason::DestOutOfRange { dest: 8, n: 8 }
        );
        assert_eq!(
            server.submit(0, &[1, 2, 3]).unwrap_err(),
            RejectReason::FanoutExceeded {
                fanout: 3,
                max_fanout: 2
            }
        );
        // Duplicate destinations collapse before the fanout check.
        server.submit(0, &[1, 1, 2, 2]).unwrap();
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.submitted, 5);
        assert_eq!(report.rejected, 4);
        assert_eq!(report.rejections.out_of_range, 2);
        assert_eq!(report.rejections.empty_request, 1);
        assert_eq!(report.rejections.fanout_exceeded, 1);
        assert_eq!(report.served_ok, 1);
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        // Heavy frames (n=256 broadcasts) on one shard with a 2-slot queue:
        // submission is orders of magnitude faster than routing, so the
        // burst must overflow.
        let mut cfg = ServeConfig::new(256);
        cfg.queue.max_fanout = 256;
        cfg.queue_capacity = 2;
        cfg.batch_window = 1;
        let dests: Vec<usize> = (0..256).collect();
        let mut server = Server::start(cfg).unwrap();
        let mut full = 0u64;
        for i in 0..2000 {
            if server.submit(i % 256, &dests) == Err(RejectReason::QueueFull) {
                full += 1;
            }
        }
        let report = server.shutdown();
        assert!(report.conserves(), "{report:?}");
        assert_eq!(report.rejections.queue_full, full);
        assert!(full > 1000, "expected heavy backpressure, got {full}");
        assert_eq!(report.served_err, 0);
    }

    #[test]
    fn every_backend_kind_serves_the_same_trace() {
        let trace = Trace::generate(
            QueueConfig {
                n: 8,
                p_arrival: 0.6,
                max_fanout: 8,
            },
            5,
            10,
        )
        .unwrap();
        let mut reference: Option<Vec<(u64, RoutingResult)>> = None;
        for backend in [
            BackendKind::Brsmn,
            BackendKind::Reference,
            BackendKind::Feedback,
            BackendKind::Crossbar,
            BackendKind::CopyBenes,
        ] {
            let mut cfg = small_cfg(8);
            cfg.backend = backend;
            cfg.shards = 2;
            cfg.record_outputs = true;
            let report = serve_trace(cfg, &trace).unwrap();
            assert!(report.conserves(), "{backend}: {report:?}");
            assert_eq!(report.served_ok, trace.len() as u64, "{backend}");
            assert_eq!(report.backend, backend.label());
            let mut outputs: Vec<(u64, RoutingResult)> = report
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().expect("recorded output")))
                .collect();
            outputs.sort_by_key(|(id, _)| *id);
            match &reference {
                None => reference = Some(outputs),
                Some(expect) => assert_eq!(&outputs, expect, "{backend} diverged"),
            }
        }
    }

    #[test]
    fn config_validation_surfaces_typed_errors() {
        let mut cfg = ServeConfig::new(7);
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeError::Queue(QueueError::InvalidSize { n: 7 })
        );
        cfg = ServeConfig::new(8);
        cfg.queue.max_fanout = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            ServeError::Queue(QueueError::ZeroFanout)
        );
        cfg = ServeConfig::new(8);
        cfg.shards = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.batch_window = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
        cfg = ServeConfig::new(8);
        cfg.queue_capacity = 0;
        assert!(matches!(cfg.validate(), Err(ServeError::Config(_))));
    }

    #[test]
    fn backend_kind_round_trips_from_str() {
        for kind in [
            BackendKind::Brsmn,
            BackendKind::Reference,
            BackendKind::Feedback,
            BackendKind::Crossbar,
            BackendKind::CopyBenes,
        ] {
            assert_eq!(kind.label().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("warp-drive".parse::<BackendKind>().is_err());
    }

    #[test]
    fn plan_cache_hits_surface_in_the_report() {
        // The same hot request resubmitted: after the first capture, every
        // repeat replays from the shared cache, and the outputs match a
        // cache-less server bit for bit.
        let mut cached = small_cfg(16);
        cached.shards = 2;
        cached.plan_cache = 64;
        cached.record_outputs = true;
        let mut plain = cached;
        plain.plan_cache = 0;

        let submit_all = |cfg: ServeConfig| {
            let mut server = Server::start(cfg).unwrap();
            for i in 0..32 {
                server.submit(i % 4, &[(i % 4 + 5) % 16, (i % 4 + 9) % 16]).unwrap();
            }
            server.shutdown()
        };
        let a = submit_all(cached);
        let b = submit_all(plain);
        assert!(a.conserves(), "{a:?}");
        assert_eq!(a.served_ok, 32);
        // 4 distinct assignments, but all single-source fanout-2 — one
        // relabeling class. Only first occurrences racing across the two
        // shards can plan fresh; later first occurrences land in the
        // canonical tier and every repeat is an exact hit.
        assert!(a.plan_misses >= 1 && a.plan_misses <= 4, "{}", a.plan_misses);
        assert!(a.plan_canonical_hits >= 2, "{}", a.plan_canonical_hits);
        assert!(a.plan_canonical_hits <= a.plan_hits);
        assert_eq!(a.plan_hits + a.plan_misses, 32);
        assert_eq!(b.plan_hits, 0);
        assert_eq!(b.plan_misses, 0);
        assert_eq!(b.plan_canonical_hits, 0);
        // SIMD/SoA instrumentation rides along: the BRSMN fast path always
        // reports its lane width, and the cache-less server batch-plans
        // every multi-frame round while the cached one only plans misses.
        assert_eq!(a.simd_lane_width, brsmn_rbn::LANES as u64);
        assert_eq!(b.simd_lane_width, brsmn_rbn::LANES as u64);
        assert!(a.batch_planned_frames <= a.plan_misses);
        assert!(b.batch_planned_frames <= 32);
        let key = |r: &ServeReport| {
            let mut v: Vec<(u64, RoutingResult)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().unwrap()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn warm_started_server_replays_on_first_sight() {
        // Serve a trace cold, snapshot the cache, then serve the same trace
        // on a fresh server warm-started from the snapshot: zero fresh
        // planning, identical outputs.
        let mut cfg = small_cfg(16);
        cfg.plan_cache = 64;
        cfg.record_outputs = true;
        let trace = Trace::generate(cfg.queue, 11, 24).unwrap();

        // Capture run: an externally owned (but empty) cache, so the
        // captured working set survives the server.
        let source = Arc::new(PlanCache::new(64));
        let cold = serve_trace_warm(cfg, &trace, Arc::clone(&source)).unwrap();
        assert!(cold.plan_misses > 0);

        // Round-trip the snapshot through JSON like the CLI does.
        let json = serde_json::to_string(&source.snapshot()).unwrap();
        let snap: brsmn_core::PlanCacheSnapshot = serde_json::from_str(&json).unwrap();
        let warmed = Arc::new(PlanCache::new(64));
        let stats = warmed.load_snapshot(&snap).unwrap();
        assert!(stats.loaded > 0);

        let warm = serve_trace_warm(cfg, &trace, warmed).unwrap();
        assert_eq!(warm.plan_misses, 0, "{warm:?}");
        assert_eq!(
            warm.plan_hits,
            warm.accepted + warm.drained,
            "every served request must replay"
        );
        assert_eq!(warm.plan_snapshot_loaded, stats.loaded);

        let key = |r: &ServeReport| {
            let mut v: Vec<(u64, RoutingResult)> = r
                .completions
                .iter()
                .map(|c| (c.id, c.result.clone().unwrap()))
                .collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(key(&cold), key(&warm));
    }

    #[test]
    fn warm_start_rejects_non_brsmn_backends() {
        let mut cfg = small_cfg(8);
        cfg.backend = BackendKind::Crossbar;
        let err = Server::start_warm(cfg, Arc::new(PlanCache::new(8)));
        assert!(err.is_err());
    }

    #[test]
    fn report_serializes_to_json_and_back() {
        let mut cfg = small_cfg(8);
        cfg.record_outputs = true;
        let trace = Trace::generate(cfg.queue, 2, 6).unwrap();
        let report = serve_trace(cfg, &trace).unwrap();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        for field in ["frames_per_sec", "rejections", "p99_ns", "queue_full"] {
            assert!(json.contains(field), "missing {field}");
        }
    }
}
