//! Calibrated analytic complexity models reproducing **Table 2** of the
//! paper: cost, depth and routing time of the recursively constructed
//! multicast networks.
//!
//! | network | cost | depth | routing time |
//! |---|---|---|---|
//! | Nassimi & Sahni \[4\] | `n log² n` | `log² n` | `log³ n` |
//! | Lee & Oruç \[9\] | `n log² n` | `log² n` | `log³ n` |
//! | new design | `n log² n` | `log² n` | `log² n` |
//! | feedback version | `n log n` | `log² n` | `log² n` |
//!
//! For the paper's own designs the models are the *exact* switch/stage
//! recurrences from `brsmn-core::metrics` (converted to gates / gate
//! delays); for the two published comparators — whose full designs are out
//! of scope — the models are leading-order terms with constants calibrated
//! to the descriptions in Section 1 (documented per method). Only the
//! *shape* (who wins, by what factor, where the curves cross) is meaningful,
//! and that is what EXPERIMENTS.md compares.

use brsmn_core::metrics;
use brsmn_switch::cost::{ADDER_STAGE_DELAY, GATES_PER_SWITCH, SWITCH_TRAVERSAL_DELAY};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};

/// The four Table 2 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Nassimi & Sahni's generalized connection network (k = log n
    /// configuration).
    NassimiSahni,
    /// Lee & Oruç's generalized connector with built-in routing circuit.
    LeeOruc,
    /// The paper's BRSMN (unfolded).
    NewDesign,
    /// The paper's feedback implementation.
    Feedback,
}

impl NetworkKind {
    /// All four rows in the paper's order.
    pub const ALL: [NetworkKind; 4] = [
        NetworkKind::NassimiSahni,
        NetworkKind::LeeOruc,
        NetworkKind::NewDesign,
        NetworkKind::Feedback,
    ];

    /// Row label as printed in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::NassimiSahni => "Nassimi and Sahni's",
            NetworkKind::LeeOruc => "Lee and Oruc's",
            NetworkKind::NewDesign => "New design",
            NetworkKind::Feedback => "Feedback version",
        }
    }

    /// The asymptotic cost / depth / routing-time strings of Table 2.
    pub fn asymptotics(self) -> (&'static str, &'static str, &'static str) {
        match self {
            NetworkKind::NassimiSahni => ("n log^2 n", "log^2 n", "log^3 n"),
            NetworkKind::LeeOruc => ("n log^2 n", "log^2 n", "log^3 n"),
            NetworkKind::NewDesign => ("n log^2 n", "log^2 n", "log^2 n"),
            NetworkKind::Feedback => ("n log n", "log^2 n", "log^2 n"),
        }
    }
}

/// Numeric evaluation of one Table 2 row at a concrete size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplexityModel {
    /// Which network.
    pub kind: NetworkKind,
    /// Network size.
    pub n: usize,
    /// Gate cost.
    pub cost_gates: f64,
    /// Depth in switch stages.
    pub depth_stages: f64,
    /// Routing time in gate delays.
    pub routing_time_gd: f64,
}

/// Per-switch gate constant assumed for the comparator networks (their
/// switches also carry routing logic; we grant them the same constant as
/// ours, which is generous to the baselines).
const BASELINE_GATES_PER_SWITCH: f64 = GATES_PER_SWITCH as f64;

/// Gate delays per pipelined adder level in the routing circuits.
const DELAY_PER_LEVEL: f64 = ADDER_STAGE_DELAY as f64;

impl ComplexityModel {
    /// Evaluates the model for `kind` at size `n`.
    pub fn eval(kind: NetworkKind, n: usize) -> Self {
        let m = log2_exact(n) as f64;
        let nf = n as f64;
        let (cost_gates, depth_stages, routing_time_gd) = match kind {
            // Exact recurrences for the paper's designs.
            NetworkKind::NewDesign => (
                metrics::brsmn_gates(n) as f64,
                metrics::brsmn_depth(n) as f64,
                // One pipelined forward + backward sweep (O(log k) each) per
                // BSN level, sequentially over log n levels: Σ c·log(n_i).
                routing_time_new(n),
            ),
            NetworkKind::Feedback => (
                metrics::feedback_gates(n) as f64,
                metrics::feedback_depth_traversed(n) as f64,
                routing_time_new(n),
            ),
            // Leading-order models for the published comparators.
            // Nassimi–Sahni (k = log n): ~ (n/2)·log² n switches; routing on
            // the attached parallel computer costs O(log² n) per level,
            // O(log³ n) total gate delays (Section 1 of the paper).
            NetworkKind::NassimiSahni => (
                0.5 * nf * m * m * BASELINE_GATES_PER_SWITCH,
                m * m,
                DELAY_PER_LEVEL * m * m * m,
            ),
            // Lee–Oruç: n log² n gates with built-in routing; O(log³ n)
            // routing time (Section 1).
            NetworkKind::LeeOruc => (
                0.5 * nf * m * m * BASELINE_GATES_PER_SWITCH,
                m * m,
                DELAY_PER_LEVEL * m * m * m,
            ),
        };
        ComplexityModel {
            kind,
            n,
            cost_gates,
            depth_stages,
            routing_time_gd,
        }
    }

    /// Evaluates all four rows at size `n`.
    pub fn table2_row(n: usize) -> Vec<ComplexityModel> {
        NetworkKind::ALL
            .iter()
            .map(|&k| ComplexityModel::eval(k, n))
            .collect()
    }
}

/// Routing time of the new design in gate delays: per BSN level `i` the
/// distributed algorithms make a constant number of pipelined forward /
/// backward sweeps of depth `log n_i` (scatter, ε-divide, quasisort), plus
/// the data-path traversal; summed over levels this is `Θ(log² n)`.
pub fn routing_time_new(n: usize) -> f64 {
    let m = log2_exact(n) as u64;
    let mut t = 0u64;
    for i in 1..m {
        let mi = m - i + 1; // log of the BSN size at level i
        // 3 sweeps (scatter fwd+bwd, ε-divide fwd+bwd, sort bwd share) ×
        // 2 directions × adder delay, plus traversal of 2·mi stages.
        t += 3 * 2 * ADDER_STAGE_DELAY * mi + SWITCH_TRAVERSAL_DELAY * 2 * mi;
    }
    t += SWITCH_TRAVERSAL_DELAY; // the final 2×2 stage
    t as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_ordering_holds_at_scale() {
        // The qualitative content of Table 2: the new design's routing time
        // beats both baselines; the feedback version costs least among the
        // log-cost networks; depths are all Θ(log² n).
        for m in [6u32, 8, 10, 12, 14] {
            let n = 1usize << m;
            let rows = ComplexityModel::table2_row(n);
            let by = |k: NetworkKind| rows.iter().find(|r| r.kind == k).unwrap();
            let ns = by(NetworkKind::NassimiSahni);
            let lo = by(NetworkKind::LeeOruc);
            let new = by(NetworkKind::NewDesign);
            let fb = by(NetworkKind::Feedback);

            assert!(new.routing_time_gd < ns.routing_time_gd, "n={n}");
            assert!(new.routing_time_gd < lo.routing_time_gd, "n={n}");
            assert!(fb.cost_gates < new.cost_gates, "n={n}");
            assert!(fb.cost_gates < lo.cost_gates, "n={n}");
            assert!((fb.routing_time_gd - new.routing_time_gd).abs() < 1e-9);
        }
    }

    #[test]
    fn routing_time_ratio_grows_like_log_n() {
        // T_baseline / T_new → Θ(log n).
        let r1 = ComplexityModel::eval(NetworkKind::LeeOruc, 1 << 8).routing_time_gd
            / ComplexityModel::eval(NetworkKind::NewDesign, 1 << 8).routing_time_gd;
        let r2 = ComplexityModel::eval(NetworkKind::LeeOruc, 1 << 14).routing_time_gd
            / ComplexityModel::eval(NetworkKind::NewDesign, 1 << 14).routing_time_gd;
        assert!(r2 > r1 * 1.4, "ratio must grow: {r1:.2} → {r2:.2}");
    }

    #[test]
    fn cost_ratio_new_vs_feedback_grows_like_log_n() {
        let at = |m: u32| {
            let n = 1usize << m;
            ComplexityModel::eval(NetworkKind::NewDesign, n).cost_gates
                / ComplexityModel::eval(NetworkKind::Feedback, n).cost_gates
        };
        assert!(at(14) > at(7) * 1.7);
    }

    #[test]
    fn asymptotic_strings_match_table2() {
        assert_eq!(
            NetworkKind::NewDesign.asymptotics(),
            ("n log^2 n", "log^2 n", "log^2 n")
        );
        assert_eq!(
            NetworkKind::Feedback.asymptotics(),
            ("n log n", "log^2 n", "log^2 n")
        );
        assert_eq!(NetworkKind::NassimiSahni.asymptotics().2, "log^3 n");
    }

    #[test]
    fn routing_time_new_is_theta_log_squared() {
        // T(n)/log²n bounded above and below across two decades of n.
        let ratio = |m: u32| routing_time_new(1 << m) / (m as f64 * m as f64);
        let (a, b) = (ratio(5), ratio(16));
        assert!(a > 2.0 && a < 20.0, "{a}");
        assert!(b > 2.0 && b < 20.0, "{b}");
        assert!((a / b - 1.0).abs() < 0.6);
    }
}
