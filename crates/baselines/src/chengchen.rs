//! The Cheng–Chen self-routing **permutation** network (reference \[14\] of
//! the paper) — the design the BRSMN generalizes from permutations to
//! multicast.
//!
//! Structure: `log n` levels of quasisorting reverse banyan networks. Level
//! `i` sorts messages by the `i`-th most significant bit of their
//! destination address (0s to the upper half of each block, 1s to the
//! lower), recursively halving the blocks until each line holds the message
//! for its own output. Partial permutations are handled by the same
//! ε-dividing trick as the BRSMN's quasisorting networks.
//!
//! Cost: one RBN per BSN position instead of two (no scatter network is
//! needed — permutations have no `α` tags), i.e. `n·m(m+1)/4` switches,
//! exactly half the cost of the corresponding BRSMN levels plus the shared
//! final stage. This is the apples-to-apples ablation for "what does
//! multicast support cost?".

use brsmn_core::{CoreError, MulticastAssignment, RoutingResult};
use brsmn_rbn::plan_quasisort;
use brsmn_switch::{Line, Tag};
use brsmn_topology::{check_size, log2_exact};

/// The Cheng–Chen RBN-based permutation network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChengChenNetwork {
    n: usize,
}

impl ChengChenNetwork {
    /// Creates a permutation network of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n).map_err(CoreError::Size)?;
        Ok(ChengChenNetwork { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Switch count: `Σ_{i=1}^{m} (n/2)·(m−i+1) = n·m(m+1)/4`.
    pub fn switches(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        (self.n as u64) * m * (m + 1) / 4
    }

    /// Routes a (partial) permutation given as `perm[i] = Some(output)`.
    pub fn route_permutation(
        &self,
        perm: &[Option<usize>],
    ) -> Result<RoutingResult, CoreError> {
        assert_eq!(perm.len(), self.n);
        let mut lines: Vec<Line<(usize, usize)>> = perm
            .iter()
            .enumerate()
            .map(|(i, &t)| match t {
                Some(target) => {
                    assert!(target < self.n, "target out of range");
                    Line {
                        tag: Tag::Eps,
                        payload: Some((i, target)),
                    }
                }
                None => Line::empty(),
            })
            .collect();

        // Level i sorts on destination bit i within blocks of n/2^{i−1}.
        let m = log2_exact(self.n) as usize;
        for level in 0..m {
            let bs = self.n >> level;
            for base in (0..self.n).step_by(bs) {
                let mid = base + bs / 2;
                // Tag from the current destination bit.
                let mut block: Vec<Line<(usize, usize)>> = lines[base..base + bs]
                    .iter_mut()
                    .map(|l| std::mem::replace(l, Line::empty()))
                    .collect();
                for line in block.iter_mut() {
                    line.tag = match &line.payload {
                        Some((_, target)) => {
                            let target = *target;
                            debug_assert!(target >= base && target < base + bs);
                            if target < mid {
                                Tag::Zero
                            } else {
                                Tag::One
                            }
                        }
                        None => Tag::Eps,
                    };
                }
                let tags: Vec<Tag> = block.iter().map(|l| l.tag).collect();
                let (_, sort) = plan_quasisort(&tags).map_err(CoreError::from)?;
                let sorted = sort
                    .settings
                    .run(block, &mut brsmn_rbn::clone_split)
                    .map_err(CoreError::from)?;
                lines[base..base + bs].clone_from_slice(&sorted);
            }
        }

        // Every message now sits in its own length-1 block — but blocks of
        // size 1 were never sorted: the last level has bs = 2, after which
        // messages are positioned exactly. Verify and collapse.
        let mut sources = Vec::with_capacity(self.n);
        for (o, line) in lines.iter().enumerate() {
            match &line.payload {
                Some((src, target)) => {
                    let (src, target) = (*src, *target);
                    if target != o {
                        return Err(CoreError::Internal(format!(
                            "permutation misrouted: {src}→{target} landed on {o}"
                        )));
                    }
                    sources.push(Some(src));
                }
                None => sources.push(None),
            }
        }
        Ok(RoutingResult::new(sources))
    }

    /// Routes a permutation [`MulticastAssignment`] (errors if any
    /// destination set has more than one element).
    pub fn route(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        assert!(
            asg.is_permutation(),
            "Cheng–Chen network routes permutations only"
        );
        let perm: Vec<Option<usize>> = (0..self.n)
            .map(|i| asg.dests(i).first().copied())
            .collect();
        self.route_permutation(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::metrics;

    #[test]
    fn identity_and_reversal() {
        let net = ChengChenNetwork::new(8).unwrap();
        let id: Vec<Option<usize>> = (0..8).map(Some).collect();
        let r = net.route_permutation(&id).unwrap();
        assert!((0..8).all(|o| r.output_source(o) == Some(o)));

        let rev: Vec<Option<usize>> = (0..8).map(|i| Some(7 - i)).collect();
        let r = net.route_permutation(&rev).unwrap();
        assert!((0..8).all(|o| r.output_source(o) == Some(7 - o)));
    }

    #[test]
    fn exhaustive_n4() {
        let net = ChengChenNetwork::new(4).unwrap();
        let mut items = [0usize, 1, 2, 3];
        fn permute(items: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize; 4])) {
            if k == 4 {
                f(items);
                return;
            }
            for i in k..4 {
                items.swap(k, i);
                permute(items, k + 1, f);
                items.swap(k, i);
            }
        }
        permute(&mut items, 0, &mut |p| {
            let perm: Vec<Option<usize>> = p.iter().map(|&o| Some(o)).collect();
            let r = net.route_permutation(&perm).unwrap();
            for (i, &o) in p.iter().enumerate() {
                assert_eq!(r.output_source(o), Some(i), "{p:?}");
            }
        });
    }

    #[test]
    fn random_and_partial() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for n in [16usize, 128, 512] {
            let net = ChengChenNetwork::new(n).unwrap();
            let mut outs: Vec<usize> = (0..n).collect();
            outs.shuffle(&mut rng);
            let full: Vec<Option<usize>> = outs.iter().map(|&o| Some(o)).collect();
            let r = net.route_permutation(&full).unwrap();
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(r.output_source(o), Some(i));
            }
            // Partial: drop every third connection.
            let partial: Vec<Option<usize>> = full
                .iter()
                .enumerate()
                .map(|(i, &t)| if i % 3 == 0 { None } else { t })
                .collect();
            let r = net.route_permutation(&partial).unwrap();
            for (i, t) in partial.iter().enumerate() {
                if let Some(o) = t {
                    assert_eq!(r.output_source(*o), Some(i));
                }
            }
        }
    }

    #[test]
    fn agrees_with_brsmn_on_permutations() {
        use brsmn_core::Brsmn;
        let n = 64;
        let net = ChengChenNetwork::new(n).unwrap();
        let brsmn = Brsmn::new(n).unwrap();
        for seed in 0..5u64 {
            let perm: Vec<Option<usize>> = (0..n)
                .map(|i| Some((i * 13 + seed as usize * 7) % n))
                .collect::<Vec<_>>();
            // (i*13 mod 64) is a bijection since gcd(13,64)=1; the +7s shift.
            let asg = MulticastAssignment::from_permutation(&perm).unwrap();
            assert_eq!(net.route(&asg).unwrap(), brsmn.route(&asg).unwrap());
        }
    }

    #[test]
    fn costs_half_of_brsmn_asymptotically() {
        // Cheng–Chen: n·m(m+1)/4; BRSMN: n(m(m+1)/2 − 1) + n/2 → ratio → 2.
        for m in [6u32, 10, 14] {
            let n = 1usize << m;
            let cc = ChengChenNetwork::new(n).unwrap().switches() as f64;
            let brsmn = metrics::brsmn_switches(n) as f64;
            let ratio = brsmn / cc;
            assert!((ratio - 2.0).abs() < 0.2, "m={m}: {ratio}");
        }
    }

    #[test]
    fn switch_count_formula() {
        // n=8, m=3: 8·3·4/4 = 24.
        assert_eq!(ChengChenNetwork::new(8).unwrap().switches(), 24);
    }
}
