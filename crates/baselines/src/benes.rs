//! A Beneš rearrangeable permutation network routed by the classical
//! **looping algorithm** — the permutation substrate of copy-then-route
//! multicast switches.
//!
//! An `n × n` Beneš network is an input stage of `n/2` switches, two
//! `n/2 × n/2` Beneš subnetworks, and an output stage of `n/2` switches
//! (`2 log n − 1` stages, `(n/2)(2 log n − 1)` switches). The looping
//! algorithm 2-colors the constraint graph whose vertices are connections
//! and whose edges join connections sharing an input or output switch; the
//! graph is a disjoint union of paths and even cycles, so the coloring—and
//! hence the routing—always exists. Looping is inherently **serial** (it
//! walks chains connection by connection), which is exactly the routing-time
//! disadvantage the self-routing BRSMN removes.

use brsmn_topology::{check_size, log2_exact, SizeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from Beneš routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenesError {
    /// Invalid network size.
    Size(SizeError),
    /// The requested mapping sends two inputs to one output.
    DuplicateTarget {
        /// The contested output.
        output: usize,
    },
    /// A target is out of range.
    TargetOutOfRange {
        /// The offending target.
        output: usize,
    },
}

impl fmt::Display for BenesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenesError::Size(e) => e.fmt(f),
            BenesError::DuplicateTarget { output } => {
                write!(f, "two inputs target output {output}")
            }
            BenesError::TargetOutOfRange { output } => {
                write!(f, "target output {output} out of range")
            }
        }
    }
}

impl std::error::Error for BenesError {}

impl From<SizeError> for BenesError {
    fn from(e: SizeError) -> Self {
        BenesError::Size(e)
    }
}

/// The switch settings of one routed Beneš instance (recursive).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenesSettings {
    n: usize,
    /// `true` = crossing, per input-stage switch. For `n = 2` this is the
    /// single middle switch.
    input_sw: Vec<bool>,
    /// `true` = crossing, per output-stage switch (empty for `n = 2`).
    output_sw: Vec<bool>,
    /// Upper and lower subnetworks (`None` for `n = 2`).
    sub: Option<Box<(BenesSettings, BenesSettings)>>,
}

impl BenesSettings {
    /// Evaluates the settings on a vector of input tokens, returning the
    /// token arriving at each output.
    pub fn eval<T: Clone>(&self, inputs: &[Option<T>]) -> Vec<Option<T>> {
        assert_eq!(inputs.len(), self.n);
        if self.n == 2 {
            return if self.input_sw[0] {
                vec![inputs[1].clone(), inputs[0].clone()]
            } else {
                inputs.to_vec()
            };
        }
        let half = self.n / 2;
        // Input stage: switch k takes lines (2k, 2k+1); upper output feeds
        // upper subnet input k, lower output feeds lower subnet input k.
        let mut up_in = vec![None; half];
        let mut low_in = vec![None; half];
        for k in 0..half {
            let (a, b) = (inputs[2 * k].clone(), inputs[2 * k + 1].clone());
            let (u, l) = if self.input_sw[k] { (b, a) } else { (a, b) };
            up_in[k] = u;
            low_in[k] = l;
        }
        let sub = self.sub.as_ref().expect("n > 2 has subnetworks");
        let up_out = sub.0.eval(&up_in);
        let low_out = sub.1.eval(&low_in);
        // Output stage: switch k takes (upper subnet output k, lower subnet
        // output k) and feeds lines (2k, 2k+1).
        let mut out = vec![None; self.n];
        for k in 0..half {
            let (u, l) = (up_out[k].clone(), low_out[k].clone());
            let (a, b) = if self.output_sw[k] { (l, u) } else { (u, l) };
            out[2 * k] = a;
            out[2 * k + 1] = b;
        }
        out
    }
}

/// Statistics of one looping run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoopingStats {
    /// Serial chain-following steps taken (one per connection per recursion
    /// level) — the routing-time driver of the looping algorithm.
    pub steps: u64,
}

/// An `n × n` Beneš network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    n: usize,
}

impl BenesNetwork {
    /// Creates a Beneš network of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, BenesError> {
        check_size(n)?;
        Ok(BenesNetwork { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Switch count `(n/2)(2 log n − 1)`.
    pub fn switches(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        (self.n as u64 / 2) * (2 * m - 1)
    }

    /// Stage depth `2 log n − 1`.
    pub fn depth(&self) -> u64 {
        2 * log2_exact(self.n) as u64 - 1
    }

    /// Routes the (partial) permutation `perm[i] = Some(output)` with the
    /// looping algorithm, returning settings and serial-step statistics.
    pub fn route(
        &self,
        perm: &[Option<usize>],
    ) -> Result<(BenesSettings, LoopingStats), BenesError> {
        assert_eq!(perm.len(), self.n);
        let mut seen = vec![false; self.n];
        for &p in perm {
            if let Some(o) = p {
                if o >= self.n {
                    return Err(BenesError::TargetOutOfRange { output: o });
                }
                if seen[o] {
                    return Err(BenesError::DuplicateTarget { output: o });
                }
                seen[o] = true;
            }
        }
        let mut stats = LoopingStats::default();
        let settings = loop_route(perm, &mut stats);
        Ok((settings, stats))
    }
}

/// The looping algorithm proper (recursive).
fn loop_route(perm: &[Option<usize>], stats: &mut LoopingStats) -> BenesSettings {
    let n = perm.len();
    if n == 2 {
        // One switch: crossing iff input 0 targets output 1 or input 1
        // targets output 0.
        let cross = perm[0] == Some(1) || perm[1] == Some(0);
        if perm[0].is_some() || perm[1].is_some() {
            stats.steps += 1;
        }
        return BenesSettings {
            n,
            input_sw: vec![cross],
            output_sw: vec![],
            sub: None,
        };
    }
    let half = n / 2;

    // Connections: (input, output) active pairs.
    let conns: Vec<(usize, usize)> = perm
        .iter()
        .enumerate()
        .filter_map(|(i, &o)| o.map(|o| (i, o)))
        .collect();

    // 2-color by looping: connections sharing an input switch or an output
    // switch must use different subnetworks. Chains alternate colors.
    let mut color: Vec<Option<u8>> = vec![None; conns.len()];
    let mut by_in_sw: Vec<Vec<usize>> = vec![Vec::new(); half];
    let mut by_out_sw: Vec<Vec<usize>> = vec![Vec::new(); half];
    for (c, &(i, o)) in conns.iter().enumerate() {
        by_in_sw[i / 2].push(c);
        by_out_sw[o / 2].push(c);
    }
    for start in 0..conns.len() {
        if color[start].is_some() {
            continue;
        }
        // Walk the chain/cycle through alternating switch constraints.
        let mut frontier = vec![(start, 0u8)];
        while let Some((c, col)) = frontier.pop() {
            match color[c] {
                Some(existing) => {
                    debug_assert_eq!(existing, col, "constraint graph not bipartite");
                    continue;
                }
                None => {
                    color[c] = Some(col);
                    stats.steps += 1;
                }
            }
            let (i, o) = conns[c];
            for &peer in &by_in_sw[i / 2] {
                if peer != c {
                    frontier.push((peer, 1 - col));
                }
            }
            for &peer in &by_out_sw[o / 2] {
                if peer != c {
                    frontier.push((peer, 1 - col));
                }
            }
        }
    }

    // Derive stage settings and subnetwork permutations.
    let mut input_sw = vec![false; half];
    let mut output_sw = vec![false; half];
    let mut sub_perm = [vec![None; half], vec![None; half]];
    for (c, &(i, o)) in conns.iter().enumerate() {
        let col = color[c].unwrap() as usize;
        sub_perm[col][i / 2] = Some(o / 2);
        // Input switch: the connection must leave on output `col`
        // (0 = upper). It entered on port i % 2; crossing iff ports differ.
        if i % 2 != col {
            input_sw[i / 2] = true;
        }
        // Output switch: arrives on input `col`, must leave on port o % 2.
        if o % 2 != col {
            output_sw[o / 2] = true;
        }
    }
    let up = loop_route(&sub_perm[0], stats);
    let low = loop_route(&sub_perm[1], stats);
    BenesSettings {
        n,
        input_sw,
        output_sw,
        sub: Some(Box::new((up, low))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Routes `perm` and checks the evaluated network realizes it exactly.
    fn check(perm: &[Option<usize>]) {
        let n = perm.len();
        let net = BenesNetwork::new(n).unwrap();
        let (settings, _) = net.route(perm).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = settings.eval(&inputs);
        for (o, got) in out.iter().enumerate() {
            let expect = perm.iter().position(|&p| p == Some(o));
            match (got, expect) {
                (Some(src), Some(e)) => assert_eq!(*src, e, "output {o} (perm {perm:?})"),
                // Idle inputs may land anywhere not claimed; outputs that are
                // claimed must receive exactly their source.
                (_, None) => {}
                (None, Some(_)) => panic!("output {o} lost its message (perm {perm:?})"),
            }
        }
    }

    #[test]
    fn identity_and_reversal() {
        check(&(0..8).map(Some).collect::<Vec<_>>());
        check(&(0..8).rev().map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn n2_cases() {
        check(&[Some(0), Some(1)]);
        check(&[Some(1), Some(0)]);
        check(&[Some(1), None]);
        check(&[None, None]);
    }

    #[test]
    fn exhaustive_n4_full_permutations() {
        // All 24 permutations of 4 elements.
        let mut items = [0usize, 1, 2, 3];
        permute(&mut items, 0, &mut |p| {
            check(&p.iter().map(|&o| Some(o)).collect::<Vec<_>>())
        });
    }

    fn permute(items: &mut [usize; 4], k: usize, f: &mut impl FnMut(&[usize; 4])) {
        if k == 4 {
            f(items);
            return;
        }
        for i in k..4 {
            items.swap(k, i);
            permute(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn exhaustive_n8_rotations_and_strides() {
        for k in 0..8 {
            check(&(0..8).map(|i| Some((i + k) % 8)).collect::<Vec<_>>());
        }
        for stride in [1usize, 3, 5, 7] {
            check(&(0..8).map(|i| Some(i * stride % 8)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_large_permutations() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for n in [16usize, 64, 256] {
            for _ in 0..5 {
                let mut outs: Vec<usize> = (0..n).collect();
                outs.shuffle(&mut rng);
                check(&outs.into_iter().map(Some).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn partial_permutations() {
        check(&[Some(3), None, Some(0), None, None, Some(7), None, Some(4)]);
        check(&[None; 8]);
    }

    #[test]
    fn rejects_duplicates_and_range() {
        let net = BenesNetwork::new(4).unwrap();
        assert!(matches!(
            net.route(&[Some(1), Some(1), None, None]),
            Err(BenesError::DuplicateTarget { output: 1 })
        ));
        assert!(matches!(
            net.route(&[Some(4), None, None, None]),
            Err(BenesError::TargetOutOfRange { output: 4 })
        ));
    }

    #[test]
    fn looping_steps_scale_with_connections_times_levels() {
        // Looping touches every connection once per recursion level: for a
        // full permutation that is ~n·log n serial steps — the Θ(n log n)
        // centralized routing time the paper's design avoids.
        let n = 64;
        let net = BenesNetwork::new(n).unwrap();
        let perm: Vec<Option<usize>> = (0..n).map(|i| Some((i * 7) % n)).collect();
        let (_, stats) = net.route(&perm).unwrap();
        let m = 6u64;
        assert!(stats.steps >= (n as u64) * (m - 1));
        assert!(stats.steps <= (n as u64) * m);
    }

    #[test]
    fn cost_formulas() {
        let net = BenesNetwork::new(16).unwrap();
        assert_eq!(net.switches(), 8 * 7);
        assert_eq!(net.depth(), 7);
    }
}
