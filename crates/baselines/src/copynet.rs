//! A Lee-style **copy network**: produces the requested number of copies of
//! each packet on contiguous output lines.
//!
//! Pipeline (following T. T. Lee, "Nonblocking Copy Networks for Multicast
//! Packet Switching", 1988 — reference \[6\] of the paper):
//!
//! 1. a *running adder* computes prefix sums of the copy counts;
//! 2. a *dummy address encoder* gives the packet at rank `k` the copy-index
//!    interval `[S_k, S_k + c_k)`;
//! 3. a *broadcast banyan* performs **Boolean interval splitting**: at the
//!    stage deciding address bit `b`, a packet whose interval lies in one
//!    `b`-half routes there; a packet whose interval spans the boundary
//!    splits into two sub-interval copies.
//!
//! Nonblocking requires the active packets to be *concentrated* (lines
//! `0 … k−1`) with monotone intervals — which the running-adder addressing
//! guarantees; use [`crate::concentrator::concentrate`] in front for sparse
//! inputs.

use brsmn_topology::{check_size, log2_exact};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A copy request: an opaque token plus how many copies to emit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyRequest<T> {
    /// The packet.
    pub token: T,
    /// Number of copies (`≥ 1`).
    pub copies: usize,
}

/// Copy-network failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyError {
    /// Total copies exceed the network width.
    Overflow {
        /// Total copies requested.
        total: usize,
        /// Network width.
        n: usize,
    },
    /// Two packets contended for a switch output — cannot happen for
    /// concentrated monotone intervals.
    Blocked {
        /// The stage at which blocking occurred.
        stage: usize,
    },
}

impl fmt::Display for CopyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyError::Overflow { total, n } => {
                write!(f, "requested {total} copies from an {n}-wide copy network")
            }
            CopyError::Blocked { stage } => write!(f, "copy network blocked at stage {stage}"),
        }
    }
}

impl std::error::Error for CopyError {}

/// An `n × n` copy network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyNetwork {
    n: usize,
}

/// A packet in flight: token plus its inclusive copy-address interval.
#[derive(Debug, Clone)]
struct InFlight<T> {
    token: T,
    lo: usize,
    hi: usize,
}

impl CopyNetwork {
    /// Creates a copy network of width `n = 2^m`.
    pub fn new(n: usize) -> Self {
        check_size(n).expect("copy network size must be a power of two");
        CopyNetwork { n }
    }

    /// Network width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Switch count: one broadcast banyan, `(n/2)·log n`.
    pub fn switches(&self) -> u64 {
        (self.n as u64 / 2) * log2_exact(self.n) as u64
    }

    /// Runs the copy network on *concentrated* requests (`requests[k]` sits
    /// on line `k`). Output line `c` carries the copy with copy-index `c`;
    /// copies of request `k` occupy lines `[S_k, S_k + c_k)` where `S` is
    /// the prefix sum of copy counts.
    pub fn copy<T: Clone>(
        &self,
        requests: &[CopyRequest<T>],
    ) -> Result<Vec<Option<(T, usize)>>, CopyError> {
        let total: usize = requests.iter().map(|r| r.copies).sum();
        if total > self.n {
            return Err(CopyError::Overflow { total, n: self.n });
        }
        assert!(requests.iter().all(|r| r.copies >= 1));

        // Running adder + dummy address encoder.
        let mut lines: Vec<Option<InFlight<T>>> = vec![None; self.n];
        let mut s = 0usize;
        for (k, r) in requests.iter().enumerate() {
            lines[k] = Some(InFlight {
                token: r.token.clone(),
                lo: s,
                hi: s + r.copies - 1,
            });
            s += r.copies;
        }

        // Broadcast banyan, MSB-first: stage s decides address bit
        // b = m−1−s; lines pair with their bit-b complement.
        let m = log2_exact(self.n);
        for stage in 0..m {
            let b = m - 1 - stage;
            let bit = 1usize << b;
            for u in 0..self.n {
                if u & bit != 0 {
                    continue;
                }
                let l = u | bit;
                let pu = lines[u].take();
                let pl = lines[l].take();
                let (mut out_u, mut out_l) = (None, None);
                for p in [pu, pl].into_iter().flatten() {
                    // Boolean interval splitting on bit b.
                    let lo_b = p.lo & bit != 0;
                    let hi_b = p.hi & bit != 0;
                    if lo_b == hi_b {
                        let slot = if lo_b { &mut out_l } else { &mut out_u };
                        if slot.is_some() {
                            return Err(CopyError::Blocked {
                                stage: stage as usize,
                            });
                        }
                        *slot = Some(p);
                    } else {
                        // Split at the bit-b boundary inside the interval.
                        let pivot = (p.hi >> b) << b;
                        if out_u.is_some() || out_l.is_some() {
                            return Err(CopyError::Blocked {
                                stage: stage as usize,
                            });
                        }
                        out_u = Some(InFlight {
                            token: p.token.clone(),
                            lo: p.lo,
                            hi: pivot - 1,
                        });
                        out_l = Some(InFlight {
                            token: p.token,
                            lo: pivot,
                            hi: p.hi,
                        });
                    }
                }
                lines[u] = out_u;
                lines[l] = out_l;
            }
        }

        // Every surviving packet has a singleton interval = its line address.
        Ok(lines
            .into_iter()
            .enumerate()
            .map(|(pos, p)| {
                p.map(|p| {
                    debug_assert_eq!(p.lo, p.hi);
                    debug_assert_eq!(p.lo, pos, "copy landed on the wrong line");
                    (p.token, p.lo)
                })
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req<T>(token: T, copies: usize) -> CopyRequest<T> {
        CopyRequest { token, copies }
    }

    #[test]
    fn copies_land_contiguously() {
        let net = CopyNetwork::new(8);
        let out = net
            .copy(&[req('a', 3), req('b', 1), req('c', 2)])
            .unwrap();
        let tokens: Vec<Option<char>> = out.iter().map(|x| x.as_ref().map(|(t, _)| *t)).collect();
        assert_eq!(
            tokens,
            vec![
                Some('a'),
                Some('a'),
                Some('a'),
                Some('b'),
                Some('c'),
                Some('c'),
                None,
                None
            ]
        );
        // Copy indices are the line addresses.
        for (pos, slot) in out.iter().enumerate() {
            if let Some((_, idx)) = slot {
                assert_eq!(*idx, pos);
            }
        }
    }

    #[test]
    fn single_full_broadcast() {
        let net = CopyNetwork::new(16);
        let out = net.copy(&[req(7u32, 16)]).unwrap();
        assert!(out.iter().all(|x| matches!(x, Some((7, _)))));
    }

    #[test]
    fn overflow_detected() {
        let net = CopyNetwork::new(4);
        assert!(matches!(
            net.copy(&[req('a', 3), req('b', 2)]),
            Err(CopyError::Overflow { total: 5, n: 4 })
        ));
    }

    #[test]
    fn exhaustive_compositions_n16() {
        // Every composition of 16 into ordered parts (copy-count vectors)
        // would be 2^15; sample all compositions of 8 instead — exhaustive.
        let net = CopyNetwork::new(8);
        fn compositions(total: usize, acc: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
            if total == 0 {
                f(acc);
                return;
            }
            for part in 1..=total {
                acc.push(part);
                compositions(total - part, acc, f);
                acc.pop();
            }
        }
        let mut count = 0usize;
        compositions(8, &mut Vec::new(), &mut |parts| {
            count += 1;
            let reqs: Vec<CopyRequest<usize>> = parts
                .iter()
                .enumerate()
                .map(|(k, &c)| req(k, c))
                .collect();
            let out = net.copy(&reqs).unwrap_or_else(|e| panic!("{parts:?}: {e}"));
            // Verify the layout: request k occupies [S_k, S_k + c_k).
            let mut s = 0usize;
            for (k, &c) in parts.iter().enumerate() {
                for (line, slot) in out.iter().enumerate().skip(s).take(c) {
                    assert_eq!(
                        slot.as_ref().map(|(t, _)| *t),
                        Some(k),
                        "{parts:?} line {line}"
                    );
                }
                s += c;
            }
        });
        assert_eq!(count, 128); // 2^(8−1) compositions.
    }

    #[test]
    fn partial_loads_leave_tail_idle() {
        let net = CopyNetwork::new(16);
        let out = net.copy(&[req('x', 5)]).unwrap();
        assert!(out[..5].iter().all(|s| s.is_some()));
        assert!(out[5..].iter().all(|s| s.is_none()));
    }

    #[test]
    fn switch_count() {
        assert_eq!(CopyNetwork::new(16).switches(), 32);
    }
}
