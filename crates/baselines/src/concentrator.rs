//! An order-preserving reverse-banyan concentrator.
//!
//! Routes the `k` active messages (at arbitrary input positions) to output
//! lines `0 … k−1` *in input order*. Targets are the message ranks, computed
//! by a prefix sum over activity bits (a running-adder circuit in hardware).
//! Because the target sequence is monotone over the active inputs, greedy
//! stage-by-stage routing through the reverse banyan never conflicts — the
//! classical nonblocking-concentrator property, asserted at run time here
//! and exercised exhaustively in the tests.

use brsmn_topology::{check_size, log2_exact, SizeError};
use std::fmt;

/// Concentration failure (cannot occur for rank targets; kept as an error
/// because the router accepts arbitrary monotone target vectors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcentratorConflict {
    /// Stage at which two messages demanded the same switch output.
    pub stage: usize,
    /// Position pair (upper line) of the conflicting switch.
    pub upper_line: usize,
}

impl fmt::Display for ConcentratorConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "concentrator conflict at stage {} switch ({}, +2^j)",
            self.stage, self.upper_line
        )
    }
}

impl std::error::Error for ConcentratorConflict {}

/// Concentrates `inputs`: every `Some` message moves to line `rank` (the
/// number of active messages above it), preserving order. Returns the output
/// lines.
pub fn concentrate<T>(inputs: Vec<Option<T>>) -> Result<Vec<Option<T>>, ConcentratorConflict> {
    let targets: Vec<Option<usize>> = {
        let mut rank = 0usize;
        inputs
            .iter()
            .map(|x| {
                x.as_ref().map(|_| {
                    let r = rank;
                    rank += 1;
                    r
                })
            })
            .collect()
    };
    route_monotone(inputs, &targets)
}

/// Greedy reverse-banyan routing of messages to the given targets (each
/// active line `i` must reach `targets[i]`). Intended for monotone target
/// vectors (ranks, compaction offsets); returns a conflict otherwise.
pub fn route_monotone<T>(
    inputs: Vec<Option<T>>,
    targets: &[Option<usize>],
) -> Result<Vec<Option<T>>, ConcentratorConflict> {
    let n = inputs.len();
    check_size_ok(n);
    let m = log2_exact(n);
    let mut lines: Vec<Option<(T, usize)>> = inputs
        .into_iter()
        .zip(targets)
        .map(|(x, &t)| x.map(|v| (v, t.expect("active line needs a target"))))
        .collect();

    for j in 0..m {
        let bit = 1usize << j;
        for u in 0..n {
            if u & bit != 0 {
                continue; // u is the upper line of its pair
            }
            let l = u | bit;
            let want_u = lines[u].as_ref().map(|(_, t)| t & bit != 0);
            let want_l = lines[l].as_ref().map(|(_, t)| t & bit != 0);
            match (want_u, want_l) {
                (Some(true), Some(true)) | (Some(false), Some(false)) => {
                    return Err(ConcentratorConflict {
                        stage: j as usize,
                        upper_line: u,
                    });
                }
                (Some(true), _) | (_, Some(false)) => lines.swap(u, l),
                _ => {}
            }
        }
    }
    Ok(lines
        .into_iter()
        .enumerate()
        .map(|(pos, x)| {
            x.map(|(v, t)| {
                debug_assert_eq!(pos, t, "message did not reach its target");
                v
            })
        })
        .collect())
}

/// Greedy reverse-direction (MSB-first) banyan routing: stage order from
/// bit `m−1` down to bit `0`. This is the delivery network of a
/// Batcher–banyan switch: nonblocking whenever the active messages are
/// *concentrated* on the top lines with *strictly increasing* targets (the
/// classical sorted-input theorem), which the bitonic sorter guarantees.
pub fn route_monotone_msb<T>(
    inputs: Vec<Option<T>>,
    targets: &[Option<usize>],
) -> Result<Vec<Option<T>>, ConcentratorConflict> {
    let n = inputs.len();
    check_size_ok(n);
    let m = log2_exact(n);
    let mut lines: Vec<Option<(T, usize)>> = inputs
        .into_iter()
        .zip(targets)
        .map(|(x, &t)| x.map(|v| (v, t.expect("active line needs a target"))))
        .collect();

    for j in (0..m).rev() {
        let bit = 1usize << j;
        for u in 0..n {
            if u & bit != 0 {
                continue;
            }
            let l = u | bit;
            let want_u = lines[u].as_ref().map(|(_, t)| t & bit != 0);
            let want_l = lines[l].as_ref().map(|(_, t)| t & bit != 0);
            match (want_u, want_l) {
                (Some(true), Some(true)) | (Some(false), Some(false)) => {
                    return Err(ConcentratorConflict {
                        stage: j as usize,
                        upper_line: u,
                    });
                }
                (Some(true), _) | (_, Some(false)) => lines.swap(u, l),
                _ => {}
            }
        }
    }
    Ok(lines
        .into_iter()
        .enumerate()
        .map(|(pos, x)| {
            x.map(|(v, t)| {
                debug_assert_eq!(pos, t, "message did not reach its target");
                v
            })
        })
        .collect())
}

fn check_size_ok(n: usize) {
    if let Err(SizeError { n }) = check_size(n) {
        panic!("concentrator size must be a power of two, got {n}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrates_in_order() {
        let inputs = vec![None, Some('a'), None, Some('b'), Some('c'), None, None, Some('d')];
        let out = concentrate(inputs).unwrap();
        assert_eq!(
            out,
            vec![
                Some('a'),
                Some('b'),
                Some('c'),
                Some('d'),
                None,
                None,
                None,
                None
            ]
        );
    }

    #[test]
    fn exhaustive_all_activity_patterns_n16() {
        // Every subset of active inputs concentrates without conflict and in
        // order — 2^16 patterns.
        let n = 16usize;
        for mask in 0..(1u32 << n) {
            let inputs: Vec<Option<usize>> =
                (0..n).map(|i| (mask >> i & 1 == 1).then_some(i)).collect();
            let k = mask.count_ones() as usize;
            let out = concentrate(inputs).unwrap_or_else(|e| panic!("mask={mask:#x}: {e}"));
            let compacted: Vec<usize> = out.iter().take(k).map(|x| x.unwrap()).collect();
            let expect: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            assert_eq!(compacted, expect, "mask={mask:#x}");
            assert!(out[k..].iter().all(|x| x.is_none()));
        }
    }

    #[test]
    fn empty_and_full() {
        let out = concentrate::<u8>(vec![None; 8]).unwrap();
        assert!(out.iter().all(|x| x.is_none()));
        let out = concentrate((0..8).map(Some).collect()).unwrap();
        assert_eq!(out, (0..8).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn monotone_offset_targets_route() {
        // Route to a compact region starting at 3 (monotone but offset).
        let inputs = vec![Some('x'), None, Some('y'), None, Some('z'), None, None, None];
        let targets = vec![Some(3), None, Some(4), None, Some(5), None, None, None];
        let out = route_monotone(inputs, &targets).unwrap();
        assert_eq!(out[3], Some('x'));
        assert_eq!(out[4], Some('y'));
        assert_eq!(out[5], Some('z'));
    }

    #[test]
    fn msb_router_delivers_all_sorted_patterns_n16() {
        // The Batcher–banyan delivery theorem, exhaustively: every activity
        // count k and every strictly-increasing target set drawn from a
        // deterministic sweep routes without conflict.
        let n = 16usize;
        for mask in 0..(1u32 << n) {
            // Inputs concentrated on top (as after a bitonic sort): take the
            // k = popcount(mask) top lines; derive increasing targets from
            // the mask's set bit positions.
            let targets_vec: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
            let k = targets_vec.len();
            let inputs: Vec<Option<usize>> = (0..n).map(|i| (i < k).then_some(i)).collect();
            let targets: Vec<Option<usize>> = (0..n)
                .map(|i| (i < k).then(|| targets_vec[i]))
                .collect();
            let out = route_monotone_msb(inputs, &targets)
                .unwrap_or_else(|e| panic!("mask={mask:#x}: {e}"));
            for (rank, &t) in targets_vec.iter().enumerate() {
                assert_eq!(out[t], Some(rank), "mask={mask:#x}");
            }
        }
    }

    #[test]
    fn non_monotone_targets_conflict() {
        // Reversing two messages through a 2-wide network must conflict at
        // some stage... at n=2 reversal is fine (crossing); build a real
        // conflict: two messages in the same stage-0 pair both needing bit0=0.
        let inputs = vec![Some('x'), Some('y'), None, None];
        let targets = vec![Some(0), Some(2), None, None];
        // x wants bit0=0, y wants bit0=0 → same switch output at stage 0.
        let err = route_monotone(inputs, &targets).unwrap_err();
        assert_eq!(err.stage, 0);
    }
}
