//! An `n × n` crossbar with broadcast-capable crosspoints: the trivially
//! nonblocking (and trivially expensive, `Θ(n²)`) multicast reference.

use brsmn_core::backend::RouterBackend;
use brsmn_core::{CoreError, MulticastAssignment, RoutingResult};

/// The crossbar switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crossbar {
    n: usize,
}

impl Crossbar {
    /// Creates an `n × n` crossbar (any `n ≥ 1`).
    pub fn new(n: usize) -> Self {
        Crossbar { n }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Crosspoint count: `n²`.
    pub fn crosspoints(&self) -> u64 {
        (self.n as u64) * (self.n as u64)
    }

    /// Gate cost: one broadcast-capable crosspoint ≈ 2 gates (pass gate +
    /// select latch).
    pub fn gates(&self) -> u64 {
        2 * self.crosspoints()
    }

    /// Routes an assignment: every output connects straight to its source's
    /// row. Always succeeds for a valid assignment.
    pub fn route(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        assert_eq!(asg.n(), self.n);
        let sources = (0..self.n).map(|o| asg.source_of_output(o)).collect();
        Ok(RoutingResult::new(sources))
    }
}

/// The crossbar as a serving backend — the cost-no-object comparator for
/// the conformance suite and `serve-sim`.
impl RouterBackend for Crossbar {
    fn name(&self) -> &'static str {
        "crossbar"
    }

    fn size(&self) -> usize {
        self.n
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route(asg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_realizes_anything() {
        let asg = MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap();
        let xbar = Crossbar::new(8);
        let r = xbar.route(&asg).unwrap();
        assert!(r.realizes(&asg));
    }

    #[test]
    fn quadratic_cost() {
        assert_eq!(Crossbar::new(64).crosspoints(), 4096);
        assert_eq!(Crossbar::new(64).gates(), 8192);
    }
}
