//! Baseline multicast fabrics and analytic comparators for the evaluation
//! (Table 2 of the paper).
//!
//! * [`crossbar`] — an `n × n` crossbar with broadcast crosspoints: the
//!   trivially nonblocking reference (`Θ(n²)` cost).
//! * [`benes`] — a Beneš permutation network routed by the classical
//!   (centralized) looping algorithm.
//! * [`chengchen`] — the Cheng–Chen RBN-based self-routing *permutation*
//!   network (reference \[14\]): the predecessor design the paper extends to
//!   multicast, and the ablation for the cost of multicast support.
//! * [`concentrator`] — a reverse-banyan rank concentrator (order-preserving
//!   compaction), the standard front end of copy networks.
//! * [`copynet`] — a Lee-style copy network: running-adder prefix sums,
//!   dummy-address interval encoding, and a broadcast banyan with Boolean
//!   interval splitting.
//! * [`multicast`] — the composite classical baseline: concentrator → copy
//!   network → Beneš distributor, a functional multicast switch built the
//!   pre-1998 way (copy-then-route).
//! * [`models`] — calibrated analytic cost/depth/routing-time models for the
//!   published comparators (Nassimi–Sahni \[4\], Lee–Oruç \[9\]) and for the
//!   paper's network, reproducing the Table 2 rows.

//! ```
//! use brsmn_baselines::CopyBenesMulticast;
//! use brsmn_core::MulticastAssignment;
//!
//! // The classical copy-then-route switch realizes the paper's example too —
//! // it just pays Θ(n log n) *serial* routing time to do it.
//! let asg = MulticastAssignment::from_sets(8, vec![
//!     vec![0, 1], vec![], vec![3, 4, 7], vec![2], vec![], vec![], vec![], vec![5, 6],
//! ]).unwrap();
//! let (result, stats) = CopyBenesMulticast::new(8).unwrap().route(&asg).unwrap();
//! assert!(result.realizes(&asg));
//! assert!(stats.looping_steps > 0); // centralized work the BRSMN avoids
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod benes;
pub mod chengchen;
pub mod concentrator;
pub mod copynet;
pub mod crossbar;
pub mod models;
pub mod multicast;

pub use batcher::BatcherBanyan;
pub use benes::BenesNetwork;
pub use chengchen::ChengChenNetwork;
pub use concentrator::concentrate;
pub use copynet::CopyNetwork;
pub use crossbar::Crossbar;
pub use models::{ComplexityModel, NetworkKind};
pub use multicast::CopyBenesMulticast;
