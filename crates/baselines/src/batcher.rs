//! A **Batcher–banyan** self-routing switch: bitonic sorting network +
//! banyan router — *the* classical self-routing unicast fabric of the
//! paper's era (Starlite/Sunshine-style), added as the sorting-network
//! point of comparison for the BRSMN's binary *radix* sorting approach.
//!
//! * The Batcher bitonic network sorts packets by destination address with
//!   `m(m+1)/2` comparator stages of `n/2` comparators (idle lines sort as
//!   `+∞`), leaving active packets concentrated and monotone;
//! * a banyan (the reverse-banyan greedy router from
//!   [`crate::concentrator`]) then delivers them — nonblocking for sorted
//!   inputs, the classical theorem.
//!
//! Cost: `n·m(m+1)/4` comparators + `(n/2)·m` switches — the same
//! `Θ(n log² n)` class as the BRSMN, but comparators carry full `log n`-bit
//! keys (heavier than 2×2 tag switches) and the fabric is unicast-only:
//! multicast requires a copy network in front, exactly the classical
//! copy-then-route structure of [`crate::multicast`].

use crate::concentrator::{route_monotone_msb, ConcentratorConflict};
use brsmn_core::{CoreError, MulticastAssignment, RoutingResult};
use brsmn_topology::{check_size, log2_exact};

/// The Batcher–banyan switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherBanyan {
    n: usize,
}

impl BatcherBanyan {
    /// Creates a switch of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n).map_err(CoreError::Size)?;
        Ok(BatcherBanyan { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Comparator count of the bitonic sorter: `n·m(m+1)/4`.
    pub fn comparators(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        (self.n as u64) * m * (m + 1) / 4
    }

    /// Switch count of the banyan stage: `(n/2)·m`.
    pub fn banyan_switches(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        (self.n as u64 / 2) * m
    }

    /// Total stage depth: `m(m+1)/2` comparator stages + `m` banyan stages.
    pub fn depth(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        m * (m + 1) / 2 + m
    }

    /// Sorts `items` by key ascending with the bitonic network (`None`
    /// sorts high). Exposed for tests and for reuse as a hardware-shaped
    /// sorting primitive.
    pub fn bitonic_sort<T: Clone>(&self, items: Vec<Option<(usize, T)>>) -> Vec<Option<(usize, T)>> {
        assert_eq!(items.len(), self.n);
        let mut lines = items;
        let m = log2_exact(self.n);
        // Standard bitonic sorting network over the in-place line model.
        for k in 0..m {
            for j in (0..=k).rev() {
                let bit = 1usize << j;
                for u in 0..self.n {
                    if u & bit != 0 {
                        continue;
                    }
                    let l = u | bit;
                    // Direction: ascending iff bit (k+1) of u is 0.
                    let ascending = u & (1usize << (k + 1)) == 0 || k == m - 1;
                    let key = |x: &Option<(usize, T)>| x.as_ref().map(|(d, _)| *d);
                    let (ku, kl) = (key(&lines[u]), key(&lines[l]));
                    let swap = match (ku, kl) {
                        (Some(a), Some(b)) => {
                            if ascending {
                                a > b
                            } else {
                                a < b
                            }
                        }
                        // None = +∞: goes to the "high" side.
                        (None, Some(_)) => ascending,
                        (Some(_), None) => !ascending,
                        (None, None) => false,
                    };
                    if swap {
                        lines.swap(u, l);
                    }
                }
            }
        }
        lines
    }

    /// Routes a (partial) permutation: bitonic sort by destination, then a
    /// banyan delivery pass.
    pub fn route_permutation(
        &self,
        perm: &[Option<usize>],
    ) -> Result<RoutingResult, CoreError> {
        assert_eq!(perm.len(), self.n);
        // Validate.
        let mut seen = vec![false; self.n];
        for (i, &p) in perm.iter().enumerate() {
            if let Some(o) = p {
                assert!(o < self.n, "target out of range");
                if seen[o] {
                    return Err(CoreError::OutputConflict { output: o });
                }
                seen[o] = true;
                let _ = i;
            }
        }

        // Sort by destination (payload = source index).
        let items: Vec<Option<(usize, usize)>> = perm
            .iter()
            .enumerate()
            .map(|(i, &p)| p.map(|o| (o, i)))
            .collect();
        let sorted = self.bitonic_sort(items);

        // Sorted packets are concentrated + monotone: the banyan delivers.
        let targets: Vec<Option<usize>> = sorted.iter().map(|x| x.as_ref().map(|(d, _)| *d)).collect();
        let payloads: Vec<Option<usize>> = sorted.into_iter().map(|x| x.map(|(_, s)| s)).collect();
        let delivered = route_monotone_msb(payloads, &targets)
            .map_err(|e: ConcentratorConflict| CoreError::Internal(e.to_string()))?;
        Ok(RoutingResult::new(delivered))
    }

    /// Routes a permutation assignment.
    pub fn route(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        assert!(asg.is_permutation(), "Batcher–banyan is unicast-only");
        let perm: Vec<Option<usize>> = (0..self.n)
            .map(|i| asg.dests(i).first().copied())
            .collect();
        self.route_permutation(&perm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::Brsmn;

    #[test]
    fn bitonic_sorts_exhaustively_n8_permutations() {
        let net = BatcherBanyan::new(8).unwrap();
        // All rotations and strides plus reversal.
        let cases: Vec<Vec<usize>> = (0..8)
            .map(|k| (0..8).map(|i| (i + k) % 8).collect())
            .chain([(0..8).rev().collect::<Vec<_>>()])
            .chain([vec![3, 1, 4, 1, 5, 9, 2, 6]
                .into_iter()
                .map(|x| x % 8)
                .collect::<Vec<usize>>()])
            .collect();
        for keys in cases {
            let items: Vec<Option<(usize, usize)>> =
                keys.iter().enumerate().map(|(i, &d)| Some((d, i))).collect();
            let sorted = net.bitonic_sort(items);
            let out_keys: Vec<usize> = sorted.iter().map(|x| x.unwrap().0).collect();
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(out_keys, expect, "{keys:?}");
        }
    }

    #[test]
    fn bitonic_sorts_random_large() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let net = BatcherBanyan::new(256).unwrap();
        for _ in 0..10 {
            let mut keys: Vec<usize> = (0..256).collect();
            keys.shuffle(&mut rng);
            let items: Vec<Option<(usize, usize)>> =
                keys.iter().enumerate().map(|(i, &d)| Some((d, i))).collect();
            let sorted = net.bitonic_sort(items);
            let out: Vec<usize> = sorted.iter().map(|x| x.unwrap().0).collect();
            assert_eq!(out, (0..256).collect::<Vec<_>>());
        }
    }

    #[test]
    fn idle_lines_sort_high() {
        let net = BatcherBanyan::new(8).unwrap();
        let items: Vec<Option<(usize, usize)>> = vec![
            None,
            Some((5, 1)),
            None,
            Some((2, 3)),
            Some((7, 4)),
            None,
            Some((0, 6)),
            None,
        ];
        let sorted = net.bitonic_sort(items);
        let keys: Vec<Option<usize>> = sorted.iter().map(|x| x.as_ref().map(|(d, _)| *d)).collect();
        assert_eq!(
            keys,
            vec![Some(0), Some(2), Some(5), Some(7), None, None, None, None]
        );
    }

    #[test]
    fn routes_full_and_partial_permutations() {
        let net = BatcherBanyan::new(32).unwrap();
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for trial in 0..10 {
            let mut outs: Vec<usize> = (0..32).collect();
            outs.shuffle(&mut rng);
            let perm: Vec<Option<usize>> = outs
                .iter()
                .enumerate()
                .map(|(i, &o)| (trial % 3 != 0 || i % 4 != 1).then_some(o))
                .collect();
            let r = net.route_permutation(&perm).unwrap();
            for (i, &t) in perm.iter().enumerate() {
                if let Some(o) = t {
                    assert_eq!(r.output_source(o), Some(i), "trial {trial}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_brsmn_on_permutations() {
        let n = 64;
        let batcher = BatcherBanyan::new(n).unwrap();
        let brsmn = Brsmn::new(n).unwrap();
        for seed in 0..5usize {
            let perm: Vec<Option<usize>> =
                (0..n).map(|i| Some((i * 29 + seed * 3) % n)).collect();
            let asg = MulticastAssignment::from_permutation(&perm).unwrap();
            assert_eq!(batcher.route(&asg).unwrap(), brsmn.route(&asg).unwrap());
        }
    }

    #[test]
    fn duplicate_targets_rejected() {
        let net = BatcherBanyan::new(4).unwrap();
        let err = net
            .route_permutation(&[Some(2), Some(2), None, None])
            .unwrap_err();
        assert!(matches!(err, CoreError::OutputConflict { output: 2 }));
    }

    #[test]
    fn cost_formulas() {
        let net = BatcherBanyan::new(16).unwrap();
        assert_eq!(net.comparators(), 16 * 4 * 5 / 4);
        assert_eq!(net.banyan_switches(), 32);
        assert_eq!(net.depth(), 10 + 4);
    }
}
