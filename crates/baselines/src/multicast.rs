//! The composite classical multicast baseline: **concentrate → copy →
//! distribute** — how nonblocking multicast switches were assembled before
//! self-routing designs (cf. references \[5\], \[6\] of the paper).
//!
//! * concentrator: active packets compact to lines `0 … k−1` (order
//!   preserved);
//! * copy network: packet `k` fans out to `|I_k|` contiguous copies;
//! * distributor: a Beneš network permutes copy `c` to its actual output,
//!   routed by the centralized looping algorithm.
//!
//! Functionally equivalent to the BRSMN, but the distributor's looping
//! routing is `Θ(n log n)` *serial* time — the contrast the paper's
//! self-routing design exists to remove.

use crate::benes::{BenesError, BenesNetwork, LoopingStats};
use crate::concentrator::{concentrate, ConcentratorConflict};
use crate::copynet::{CopyError, CopyNetwork, CopyRequest};
use brsmn_core::backend::RouterBackend;
use brsmn_core::{CoreError, MulticastAssignment, RoutingResult};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Failures of the composite baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CopyBenesError {
    /// Concentrator conflict (cannot occur for rank targets).
    Concentrator(ConcentratorConflict),
    /// Copy-network failure.
    Copy(CopyError),
    /// Distributor failure.
    Benes(BenesError),
}

impl fmt::Display for CopyBenesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyBenesError::Concentrator(e) => e.fmt(f),
            CopyBenesError::Copy(e) => e.fmt(f),
            CopyBenesError::Benes(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CopyBenesError {}

/// Execution statistics of one composite routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyBenesStats {
    /// Serial looping steps spent routing the distributor.
    pub looping_steps: u64,
    /// Total copies produced.
    pub copies: usize,
}

/// The concentrator → copy network → Beneš distributor multicast switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyBenesMulticast {
    n: usize,
}

impl CopyBenesMulticast {
    /// Creates the composite switch of width `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, BenesError> {
        BenesNetwork::new(n)?; // validates the size
        Ok(CopyBenesMulticast { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total switch count: concentrator RBN + copy banyan + Beneš.
    pub fn switches(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        let half = self.n as u64 / 2;
        half * m + half * m + half * (2 * m - 1)
    }

    /// Stage depth.
    pub fn depth(&self) -> u64 {
        let m = log2_exact(self.n) as u64;
        m + m + (2 * m - 1)
    }

    /// Routes a multicast assignment through the three stages.
    pub fn route(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<(RoutingResult, CopyBenesStats), CopyBenesError> {
        assert_eq!(asg.n(), self.n);

        // Stage 1: concentrate active sources (order preserved).
        let inputs: Vec<Option<usize>> = (0..self.n)
            .map(|i| (!asg.dests(i).is_empty()).then_some(i))
            .collect();
        let concentrated = concentrate(inputs).map_err(CopyBenesError::Concentrator)?;

        // Stage 2: copy network fans each source out to |I_i| copies.
        let requests: Vec<CopyRequest<usize>> = concentrated
            .iter()
            .flatten()
            .map(|&src| CopyRequest {
                token: src,
                copies: asg.dests(src).len(),
            })
            .collect();
        let copies = CopyNetwork::new(self.n)
            .copy(&requests)
            .map_err(CopyBenesError::Copy)?;

        // Stage 3: trunk-number translation + Beneš distributor. Copy
        // index c is the c-th connection in (source-rank, dest-rank) order;
        // its final output is the corresponding destination.
        let mut final_output: Vec<Option<usize>> = vec![None; self.n];
        {
            let mut c = 0usize;
            for src in concentrated.iter().flatten() {
                for &d in asg.dests(*src) {
                    final_output[c] = Some(d);
                    c += 1;
                }
            }
        }
        let benes = BenesNetwork::new(self.n).map_err(CopyBenesError::Benes)?;
        let (settings, loop_stats): (_, LoopingStats) = benes
            .route(&final_output)
            .map_err(CopyBenesError::Benes)?;

        // Evaluate the distributor on the copy tokens.
        let tokens: Vec<Option<usize>> = copies
            .iter()
            .map(|slot| slot.as_ref().map(|(src, _)| *src))
            .collect();
        let distributed = settings.eval(&tokens);

        // Collapse: idle copies (from idle Beneš inputs) land on unclaimed
        // outputs; report only claimed outputs.
        let sources: Vec<Option<usize>> = distributed
            .iter()
            .enumerate()
            .map(|(o, got)| {
                if asg.source_of_output(o).is_some() {
                    *got
                } else {
                    None
                }
            })
            .collect();
        let total_copies = requests.iter().map(|r| r.copies).sum();
        Ok((
            RoutingResult::new(sources),
            CopyBenesStats {
                looping_steps: loop_stats.steps,
                copies: total_copies,
            },
        ))
    }
}

/// The classical copy-then-route switch as a serving backend. Its typed
/// [`CopyBenesError`]s (impossible for valid assignments) surface as
/// [`CoreError::Internal`]; looping stats are dropped — use
/// [`CopyBenesMulticast::route`] directly when you need them.
impl RouterBackend for CopyBenesMulticast {
    fn name(&self) -> &'static str {
        "copy-benes"
    }

    fn size(&self) -> usize {
        self.n
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route(asg)
            .map(|(result, _stats)| result)
            .map_err(|e| CoreError::Internal(format!("copy–benes baseline: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn composite_realizes_paper_example() {
        let net = CopyBenesMulticast::new(8).unwrap();
        let (r, stats) = net.route(&paper_assignment()).unwrap();
        assert!(r.realizes(&paper_assignment()));
        assert_eq!(stats.copies, 8);
        assert!(stats.looping_steps > 0);
    }

    #[test]
    fn agrees_with_brsmn_on_random_traffic() {
        use brsmn_core::Brsmn;
        for seed in 0..20u64 {
            let n = 64;
            // Hash-based random assignment.
            let mut sets = vec![Vec::new(); n];
            for o in 0..n {
                let h = (o as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 9;
                if !h.is_multiple_of(4) {
                    sets[(h as usize) % n].push(o);
                }
            }
            let asg = MulticastAssignment::from_sets(n, sets).unwrap();
            let (classical, _) = CopyBenesMulticast::new(n).unwrap().route(&asg).unwrap();
            let modern = Brsmn::new(n).unwrap().route(&asg).unwrap();
            assert_eq!(classical, modern, "seed={seed}");
            assert!(classical.realizes(&asg));
        }
    }

    #[test]
    fn broadcast_and_empty() {
        let net = CopyBenesMulticast::new(16).unwrap();
        let mut sets = vec![Vec::new(); 16];
        sets[2] = (0..16).collect();
        let asg = MulticastAssignment::from_sets(16, sets).unwrap();
        let (r, stats) = net.route(&asg).unwrap();
        assert!(r.realizes(&asg));
        assert_eq!(stats.copies, 16);

        let empty = MulticastAssignment::empty(16).unwrap();
        let (r, _) = net.route(&empty).unwrap();
        assert!(r.realizes(&empty));
    }

    #[test]
    fn cost_formulas() {
        let net = CopyBenesMulticast::new(16).unwrap();
        // 8·4 + 8·4 + 8·7 = 120 switches, depth 4+4+7 = 15.
        assert_eq!(net.switches(), 120);
        assert_eq!(net.depth(), 15);
    }
}
