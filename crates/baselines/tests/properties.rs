//! Property-based tests for the baseline fabrics, at sizes beyond the
//! exhaustive unit tests.

use brsmn_baselines::{
    concentrate, BenesNetwork, ChengChenNetwork, CopyBenesMulticast, CopyNetwork, Crossbar,
};
use brsmn_baselines::copynet::CopyRequest;
use brsmn_core::{Brsmn, MulticastAssignment};
use proptest::prelude::*;

fn arb_partial_perm(max_pow: u32) -> impl Strategy<Value = Vec<Option<usize>>> {
    (2u32..=max_pow).prop_flat_map(|m| {
        let n = 1usize << m;
        (proptest::collection::vec(any::<u32>(), n), Just(n)).prop_map(|(seed, n)| {
            // Build a permutation by arg-sorting, then drop some entries.
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| (seed[i], i));
            idx.iter()
                .enumerate()
                .map(|(i, &o)| (seed[i] % 4 != 0).then_some(o))
                .collect()
        })
    })
}

fn arb_assignment(max_pow: u32) -> impl Strategy<Value = MulticastAssignment> {
    (2u32..=max_pow)
        .prop_flat_map(|m| {
            let n = 1usize << m;
            proptest::collection::vec(proptest::option::weighted(0.75, 0..n), n)
        })
        .prop_map(|owners| {
            let n = owners.len();
            let mut sets = vec![Vec::new(); n];
            for (o, owner) in owners.into_iter().enumerate() {
                if let Some(src) = owner {
                    sets[src].push(o);
                }
            }
            MulticastAssignment::from_sets(n, sets).expect("disjoint")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The looping algorithm realizes every random partial permutation.
    #[test]
    fn benes_routes_partial_permutations(perm in arb_partial_perm(9)) {
        let n = perm.len();
        let net = BenesNetwork::new(n).unwrap();
        let (settings, stats) = net.route(&perm).unwrap();
        let inputs: Vec<Option<usize>> = (0..n).map(Some).collect();
        let out = settings.eval(&inputs);
        for (o, got) in out.iter().enumerate() {
            if let Some(src) = perm.iter().position(|&p| p == Some(o)) {
                prop_assert_eq!(*got, Some(src), "output {}", o);
            }
        }
        // Looping touches each connection once per recursion level.
        let conns = perm.iter().flatten().count() as u64;
        prop_assert!(stats.steps <= conns * n.trailing_zeros() as u64 + n as u64);
    }

    /// The concentrator compacts any activity pattern in order.
    #[test]
    fn concentrator_orders_any_pattern(mask in proptest::collection::vec(any::<bool>(), 256)) {
        let n = 256usize;
        let inputs: Vec<Option<usize>> = (0..n).map(|i| mask[i].then_some(i)).collect();
        let k = mask.iter().filter(|&&b| b).count();
        let out = concentrate(inputs).unwrap();
        let compacted: Vec<usize> = out.iter().take(k).map(|x| x.unwrap()).collect();
        let expect: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
        prop_assert_eq!(compacted, expect);
        prop_assert!(out[k..].iter().all(|x| x.is_none()));
    }

    /// The copy network lays out any copy-count composition contiguously.
    #[test]
    fn copynet_layout(counts in proptest::collection::vec(1usize..17, 1..12)) {
        let total: usize = counts.iter().sum();
        let n = (total.max(2)).next_power_of_two();
        let net = CopyNetwork::new(n);
        let reqs: Vec<CopyRequest<usize>> = counts
            .iter()
            .enumerate()
            .map(|(k, &c)| CopyRequest { token: k, copies: c })
            .collect();
        let out = net.copy(&reqs).unwrap();
        let mut s = 0usize;
        for (k, &c) in counts.iter().enumerate() {
            for slot in &out[s..s + c] {
                prop_assert_eq!(slot.as_ref().map(|(t, _)| *t), Some(k));
            }
            s += c;
        }
        prop_assert!(out[s..].iter().all(|x| x.is_none()));
    }

    /// The classical composite equals the crossbar reference on random
    /// multicast assignments.
    #[test]
    fn copy_benes_equals_crossbar(asg in arb_assignment(8)) {
        let n = asg.n();
        let reference = Crossbar::new(n).route(&asg).unwrap();
        let (got, _) = CopyBenesMulticast::new(n).unwrap().route(&asg).unwrap();
        prop_assert_eq!(got, reference);
    }

    /// The Cheng–Chen network equals the BRSMN on random partial
    /// permutations.
    #[test]
    fn chengchen_equals_brsmn(perm in arb_partial_perm(8)) {
        let n = perm.len();
        let asg = MulticastAssignment::from_permutation(&perm).unwrap();
        let a = ChengChenNetwork::new(n).unwrap().route(&asg).unwrap();
        let b = Brsmn::new(n).unwrap().route(&asg).unwrap();
        prop_assert_eq!(a, b);
    }
}
