//! Pins the zero-allocation invariant of the routing fast path: after one
//! warm-up frame at a given size, `Brsmn::route_into` performs **zero** heap
//! allocations per frame, measured by a counting global allocator.
//!
//! Gated behind the `alloc-count` feature because a global allocator is
//! process-wide state no other test should inherit:
//!
//! ```text
//! cargo test -q -p brsmn-bench --features alloc-count --test alloc_count
//! ```
#![cfg(feature = "alloc-count")]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use brsmn_bench::dense_batch;
use brsmn_core::{
    plan_fingerprint, BatchPlanner, Brsmn, MulticastAssignment, PlanCache, RouteScratch,
    StageTimer,
};
use std::sync::Arc;

/// Wraps the system allocator, counting every allocation and reallocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn fast_path_steady_state_allocates_nothing() {
    let n = 256;
    let net = Brsmn::new(n).unwrap();
    let batch = dense_batch(n, 8, 3);
    let mut scratch = RouteScratch::new(n).unwrap();

    // Warm up: the arena takes its one-time allocations for this size, and
    // every frame shape in the batch is exercised once.
    for asg in &batch {
        net.route_into(asg, &mut scratch).unwrap();
    }

    // Steady state: many frames, zero heap traffic — reading the delivery
    // out of the arena included.
    let mut delivered = 0usize;
    let before = allocs();
    for _ in 0..10 {
        for asg in &batch {
            net.route_into(asg, &mut scratch).unwrap();
            delivered += scratch.output_sources().flatten().count();
        }
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "fast path allocated in steady state at n={n}"
    );
    assert!(delivered > 0, "workload delivered nothing");
}

#[test]
fn warm_plan_cache_hit_allocates_nothing() {
    // A warm hit is the engine's steady state for repeated frames:
    // fingerprint the assignment, look the plan up, replay it into the
    // arena. All three must be heap-silent at n = 256.
    let n = 256;
    let net = Brsmn::new(n).unwrap();
    let batch = dense_batch(n, 8, 3);
    let mut scratch = RouteScratch::new(n).unwrap();

    let cache = PlanCache::new(64);
    for asg in &batch {
        let (_, plan) = net.route_capture(asg, &mut scratch).unwrap();
        cache.insert(plan_fingerprint(asg), asg, Arc::new(plan));
    }
    // The cache's residency is real, accounted memory — the plan-arena
    // analogue of the engine's `scratch_bytes`.
    assert!(cache.footprint_bytes() > 0, "warm cache reports no footprint");

    // Warm up the replay path once per frame shape.
    for asg in &batch {
        let plan = cache.lookup(plan_fingerprint(asg), asg).unwrap();
        net.route_replay_into(asg, &plan, &mut scratch).unwrap();
    }

    let mut delivered = 0usize;
    let before = allocs();
    for _ in 0..10 {
        for asg in &batch {
            let plan = cache
                .lookup(plan_fingerprint(asg), asg)
                .expect("warmed cache hits");
            net.route_replay_into(asg, &plan, &mut scratch).unwrap();
            delivered += scratch.output_sources().flatten().count();
        }
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "warm plan-cache hit allocated in steady state at n={n}"
    );
    assert!(delivered > 0, "workload delivered nothing");
}

#[test]
fn soa_batch_planning_steady_state_allocates_nothing() {
    // The lockstep SoA planner shares the invariant of the per-frame fast
    // path: after one warm-up batch at a fixed (n, frames) shape, planning
    // and executing a whole batch — and reading every delivery out of the
    // arena — is heap-silent. (StageTimer is warmed too: its per-level rows
    // grow only on first sight of each level.)
    let n = 256;
    let frames = 8;
    let net = Brsmn::new(n).unwrap();
    let batch = dense_batch(n, frames, 3);
    let refs: Vec<&MulticastAssignment> = batch.iter().collect();
    let mut planner = BatchPlanner::new();
    planner.ensure(n, frames);
    let mut timer = StageTimer::new();

    // Warm up: the SoA planes, rank rows, and line arenas take their
    // one-time allocations for this shape.
    planner
        .route_frames(net.wiring(), &refs, &mut timer, None)
        .unwrap();
    assert!(planner.footprint_bytes() > 0, "arena reports no footprint");

    let mut delivered = 0usize;
    let before = allocs();
    for _ in 0..10 {
        planner
            .route_frames(net.wiring(), &refs, &mut timer, None)
            .unwrap();
        for f in 0..frames {
            delivered += planner.frame_delivery(f).flatten().count();
        }
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "SoA batch planner allocated in steady state at n={n}, frames={frames}"
    );
    assert!(delivered > 0, "workload delivered nothing");
}

#[test]
fn profiled_paths_stay_heap_silent() {
    // The per-op planning profiler must be free in steady state on both the
    // scalar and the SoA paths: op tallies are plain adds on TLS/arena
    // state, and the ProfClock reads compile to constants without the
    // `plan-profile` feature. CI runs this suite with the feature both off
    // and on (`--features alloc-count` and `--features
    // alloc-count,plan-profile`); the assertion is identical.
    let n = 256;
    let frames = 8;
    let net = Brsmn::new(n).unwrap();
    let batch = dense_batch(n, frames, 3);
    let refs: Vec<&MulticastAssignment> = batch.iter().collect();
    let mut scratch = RouteScratch::new(n).unwrap();
    let mut planner = BatchPlanner::new();
    planner.ensure(n, frames);
    let mut timer = StageTimer::new();

    // Warm up both paths with the timer attached (its level rows take
    // their one-time allocations here).
    for asg in &batch {
        net.route_into_timed(asg, &mut scratch, &mut timer).unwrap();
    }
    planner
        .route_frames(net.wiring(), &refs, &mut timer, None)
        .unwrap();
    assert!(
        timer.plan_profile.total_ops() > 0,
        "profiler recorded no planning ops"
    );

    let before = allocs();
    for _ in 0..10 {
        for asg in &batch {
            net.route_into_timed(asg, &mut scratch, &mut timer).unwrap();
        }
        planner
            .route_frames(net.wiring(), &refs, &mut timer, None)
            .unwrap();
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "profiled carried-rank paths allocated in steady state at n={n}"
    );
}

#[test]
fn reference_path_allocates_per_frame() {
    // Sanity check that the counter works at all: the PR-1 reference router
    // allocates heavily on every frame.
    let n = 64;
    let net = Brsmn::new(n).unwrap();
    let asg = &dense_batch(n, 1, 5)[0];
    net.route_reference(asg).unwrap();
    let before = allocs();
    net.route_reference(asg).unwrap();
    assert!(allocs() > before, "counting allocator saw no allocations");
}
