//! Acceptance gate for the plan-capture cache: warm replay — fingerprint,
//! cache lookup, and executing the captured setting planes — must beat
//! fresh fast-path planning by ≥ 1.5× per frame at n = 256 (best of 5 to
//! ride out scheduler noise), while remaining **bit-identical** to the
//! fresh route. Equivalence is asserted unconditionally; only the speed
//! ratio rides the measurement.

use std::sync::Arc;
use std::time::Instant;

use brsmn_bench::dense_batch;
use brsmn_core::{plan_fingerprint, Brsmn, MulticastAssignment, PlanCache, RouteScratch};

/// One warm pass: fingerprint + lookup + lean replay per frame — exactly
/// the engine's hit path. Returns elapsed nanoseconds.
fn replay_pass(
    net: &Brsmn,
    cache: &PlanCache,
    batch: &[MulticastAssignment],
    rounds: usize,
    scratch: &mut RouteScratch,
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for asg in batch {
            let plan = cache
                .lookup(plan_fingerprint(asg), asg)
                .expect("warmed cache hits");
            net.route_replay_into(asg, &plan, scratch).unwrap();
        }
    }
    t0.elapsed().as_nanos() as f64
}

/// One fresh pass: full fast-path planning per frame.
fn fresh_pass(
    net: &Brsmn,
    batch: &[MulticastAssignment],
    rounds: usize,
    scratch: &mut RouteScratch,
) -> f64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for asg in batch {
            net.route_into(asg, scratch).unwrap();
        }
    }
    t0.elapsed().as_nanos() as f64
}

#[test]
fn warm_replay_beats_fresh_planning_at_n256() {
    let n = 256;
    let rounds = 4;
    let net = Brsmn::new(n).unwrap();
    let batch = dense_batch(n, 8, 11);
    let mut scratch = RouteScratch::new(n).unwrap();

    // Capture one plan per distinct frame and pin bit-identity: result and
    // full trace of the replay match fresh routing exactly.
    let cache = PlanCache::new(64);
    for asg in &batch {
        let (fresh_r, fresh_t) = net.route_traced(asg).unwrap();
        let (captured_r, plan) = net.route_capture(asg, &mut scratch).unwrap();
        assert_eq!(captured_r, fresh_r, "capture perturbed the route");
        let plan = Arc::new(plan);
        cache.insert(plan_fingerprint(asg), asg, Arc::clone(&plan));
        let (replay_r, replay_t) = net.route_replay_traced(asg, &plan, &mut scratch).unwrap();
        assert_eq!(replay_r, fresh_r, "replay diverged from fresh routing");
        assert_eq!(replay_t, fresh_t, "replay trace diverged");
    }

    // Warm both paths once before timing, then interleave the measurements
    // and keep the best ratio of 5 rounds.
    let _ = replay_pass(&net, &cache, &batch, rounds, &mut scratch);
    let _ = fresh_pass(&net, &batch, rounds, &mut scratch);
    let mut best = 0.0f64;
    for _ in 0..5 {
        let fresh = fresh_pass(&net, &batch, rounds, &mut scratch);
        let replay = replay_pass(&net, &cache, &batch, rounds, &mut scratch);
        if replay > 0.0 {
            best = best.max(fresh / replay);
        }
    }
    assert!(
        best >= 1.5,
        "warm replay only {best:.2}x fresh planning at n={n} (gate: 1.5x)"
    );
    eprintln!("warm replay vs fresh planning at n={n}: best of 5 = {best:.2}x");
}
