//! Acceptance check for the batched parallel engine's scaling: ≥ 1.5×
//! speedup at 4 workers on a 64-frame dense batch — measured only on
//! machines that actually have ≥ 4 hardware threads (single-core CI boxes
//! check determinism and the modeled speedup instead).

use brsmn_bench::parallel_sweep;

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[test]
fn four_workers_speed_up_64_frame_batches() {
    // Always: the sweep itself asserts all worker counts produce identical
    // results, and the hardware model must show the speedup exists.
    let report = parallel_sweep(64, 64, 7, &[1, 4]);
    assert!(
        report.modeled_speedup_4_fabrics >= 1.5,
        "modeled 4-fabric speedup {:.2} < 1.5",
        report.modeled_speedup_4_fabrics
    );

    if hardware_threads() < 4 {
        eprintln!(
            "skipping measured-speedup assertion: only {} hardware thread(s)",
            hardware_threads()
        );
        return;
    }

    // Measured, with a retry to ride out scheduler noise: best of 3 sweeps.
    let best = (0..3)
        .map(|round| {
            let r = parallel_sweep(64, 64, 7 + round, &[1, 4]);
            r.points.last().unwrap().speedup_vs_one
        })
        .fold(0.0f64, f64::max);
    assert!(
        best >= 1.5,
        "4-worker speedup {best:.2} < 1.5 on {} hardware threads",
        hardware_threads()
    );
}

#[test]
fn worker_counts_never_change_results() {
    // parallel_sweep panics internally if any worker count diverges from
    // the 1-worker reference; run it across sizes to pin determinism.
    for n in [8usize, 16, 64] {
        let report = parallel_sweep(n, 32, 3, &[1, 2, 4]);
        assert_eq!(report.points.len(), 3);
        for p in &report.points {
            assert_eq!(p.stats.frames_ok, 32, "n={n} workers={}", p.workers);
        }
    }
}
