//! Acceptance gate for the cold-path constant shrink: carried-rank sweeps
//! must cut the per-planning-op constants, verified from the profiler's
//! exact op tallies (machine-independent) plus a measured arm on capable
//! hosts.
//!
//! * **Always** — the planners' own op counters model the shrink: the
//!   pre-carried scatter wave answered every node's forward value through
//!   three `(l, type)` evaluations of 4 rank queries each (12 per settled
//!   node, plus 4 per tie-walk step), and the fused quasisort wave issued 4
//!   plane-rank queries per node. The carried form issues 2 aligned segment
//!   counts per scatter node (+2 per tie-walk step) and 2 per quasisort
//!   node — everything else rides down from the parent. The profiler
//!   records the *actual* query count (`rank_ops`) and the settled-node
//!   counts (`scatter_ops`, `quasisort_ops`), so the modeled old-to-new
//!   query ratio is computed from a real run and must stay ≥ 2×.
//! * **Measured** (≥ 4 hardware threads, best of 3) — SoA lockstep cold
//!   planning must not fall behind the per-frame wide-lane path at n = 256:
//!   the batch-cold / simd-cold throughput ratio stays ≥ 1.0 (the committed
//!   BENCH_route.json headline records the 1-thread box's actual ratio).
//!   On smaller hosts the arm prints a skip line instead of guessing.

use brsmn_bench::{dense_batch, measure_cold_path};
use brsmn_core::{Brsmn, MulticastAssignment, RouteScratch, StageTimer};

const SEED: u64 = 7;

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

#[test]
fn carried_rank_sweeps_shrink_planning_queries_at_least_2x() {
    for n in [64usize, 256, 1024] {
        let net = Brsmn::new(n).unwrap();
        let batch = dense_batch(n, 8, SEED);
        let refs: Vec<&MulticastAssignment> = batch.iter().collect();
        let mut scratch = RouteScratch::new(n).unwrap();
        let mut timer = StageTimer::new();
        for asg in &refs {
            net.route_into_timed(asg, &mut scratch, &mut timer).unwrap();
        }
        let p = &timer.plan_profile;
        assert!(p.scatter_ops > 0 && p.quasisort_ops > 0 && p.rank_ops > 0);

        // What the same waves would have issued before the carried-rank
        // rewrite (12 queries per scatter node, 4 per quasisort node; the
        // tie-walk term only adds to the old side, so dropping it keeps the
        // model conservative).
        let old_queries = (12 * p.scatter_ops + 4 * p.quasisort_ops) as f64;
        let ratio = old_queries / p.rank_ops as f64;
        assert!(
            ratio >= 2.0,
            "n={n}: modeled query shrink {ratio:.2}x < 2x \
             (rank_ops={}, scatter_ops={}, quasisort_ops={})",
            p.rank_ops,
            p.scatter_ops,
            p.quasisort_ops
        );
    }
}

#[test]
fn batch_cold_holds_against_simd_cold_on_capable_hosts() {
    if hardware_threads() < 4 {
        eprintln!(
            "skipping measured cold-constants assertion: only {} hardware thread(s)",
            hardware_threads()
        );
        return;
    }
    let n = 256;
    let best = (0..3)
        .map(|_| {
            let simd = measure_cold_path(n, 64, SEED, 1, false, 1);
            let batch = measure_cold_path(n, 64, SEED, 1, true, 1);
            batch.frames_per_sec / simd.frames_per_sec
        })
        .fold(0.0f64, f64::max);
    assert!(
        best >= 1.0,
        "n={n}: batch-cold fell to {best:.2}x of simd-cold on {} hardware threads",
        hardware_threads()
    );
}
