//! Acceptance gate for the canonical cache tier on churn traffic: a batch
//! where **every frame is a distinct relabeling of one shape** never hits
//! the exact tier after the first frame, yet rides the canonical tier for
//! everything else — and the permuted replay stays bit-identical to a
//! cache-less engine. This is the workload the exact tier is blind to
//! (every fingerprint is new) and the canonical tier was built for.

use std::sync::Arc;

use brsmn_bench::dense_workload;
use brsmn_core::{
    relabel_inputs, relabel_outputs, Engine, EngineConfig, MulticastAssignment, PlanCache,
};

/// `frames` distinct relabelings of one dense shape: frame `k` rotates
/// both port spaces by `k` (rotations of `0..n` are distinct for distinct
/// `k < n`, and a dense frame pins the rotation in the assignment).
fn churn_batch(n: usize, frames: usize, seed: u64) -> Vec<MulticastAssignment> {
    let base = dense_workload(n, seed);
    (0..frames)
        .map(|k| {
            let rot: Vec<usize> = (0..n).map(|i| (i + k) % n).collect();
            relabel_inputs(&relabel_outputs(&base, &rot), &rot)
        })
        .collect()
}

#[test]
fn churn_traffic_rides_the_canonical_tier_bit_identically() {
    let n = 256;
    let frames = 24;
    let batch = churn_batch(n, frames, 11);
    assert!(
        batch.windows(2).all(|w| w[0] != w[1]),
        "churn frames must be pairwise distinct"
    );

    let plain = Engine::with_config(n, EngineConfig::sequential()).unwrap();
    let cached = Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
    let want = plain.route_batch(&batch);
    let got = cached.route_batch(&batch);
    for (frame, (a, b)) in want.results.iter().zip(&got.results).enumerate() {
        assert_eq!(
            a.as_ref().unwrap(),
            b.as_ref().unwrap(),
            "frame {frame} diverged from the cache-less engine"
        );
    }

    // Exact tier: blind (one miss, zero hits). Canonical tier: everything.
    assert_eq!(got.stats.plan_misses, 1, "one capture seeds the class");
    assert_eq!(got.stats.plan_exact_hits, 0, "every fingerprint is new");
    assert_eq!(got.stats.plan_canonical_hits, frames as u64 - 1);
    assert_eq!(got.stats.plan_hits, frames as u64 - 1);

    // Replay skipped the planner: far fewer sweep passes than fresh work.
    assert!(
        got.stats.stages.sweep_passes < want.stats.stages.sweep_passes,
        "canonical replay must skip planning ({} >= {})",
        got.stats.stages.sweep_passes,
        want.stats.stages.sweep_passes
    );

    // Snapshot-warmed engine: first pass over the same churn replays
    // everything — zero fresh planning.
    let snap = cached.plan_cache().unwrap().snapshot();
    let warmed = Arc::new(PlanCache::new(64));
    assert_eq!(warmed.load_snapshot(&snap).unwrap().loaded, 1);
    let mut warm_engine =
        Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
    warm_engine.share_plan_cache(warmed);
    let warm = warm_engine.route_batch(&batch);
    assert_eq!(warm.stats.plan_misses, 0, "warm start plans nothing");
    assert_eq!(warm.stats.plan_hits, frames as u64);
    for (a, b) in want.results.iter().zip(&warm.results) {
        assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
    }
}
