//! Property suite pinning the tentpole invariant of the wide-lane/SoA PR:
//! neither the `[u64; 4]` lane kernels nor the lockstep `BatchPlanner`
//! schedule may change a single observable bit. Three angles:
//!
//! * the wide-lane fast path agrees with the allocating reference router on
//!   every routing result across dense, sparse, and α-heavy shapes at
//!   n ∈ {8, 16, 64, 256} (the word-level scalar loops themselves are
//!   oracle-checked in `brsmn-rbn`'s unit tests);
//! * the SoA batch planner is bit-identical to per-frame planning on
//!   **results, switch settings, and per-level traces** — captured plans
//!   compare equal as whole setting tensors, and traced replay through a
//!   batch-captured plan reproduces the per-frame trace — including ragged
//!   batches down to a single frame;
//! * the engine's batched dispatch agrees with the per-frame driver under
//!   **mixed cache hit/miss traffic** (duplicated frames, pre-warmed
//!   entries) on results *and* on every cache counter, and both agree with
//!   a cache-less engine.

use brsmn_core::{
    with_thread_batch_planner, with_thread_scratch, Brsmn, CapturedPlan, CoreError, Engine,
    EngineConfig, MulticastAssignment, StageTimer,
};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// One frame drawn from three load shapes: **dense**, **sparse**, and
/// **α-heavy** (a handful of sources share all outputs).
fn shaped(n: usize) -> impl Strategy<Value = MulticastAssignment> {
    (
        0u8..3,
        vec(option::weighted(0.9, 0..n), n),
        1usize..=4,
        vec(0usize..4, n),
    )
        .prop_map(move |(shape, choices, k, picks)| match shape {
            0 => assignment_from_choices(n, &choices),
            1 => {
                let thinned: Vec<Option<usize>> = choices
                    .iter()
                    .enumerate()
                    .map(|(o, c)| if o % 3 == 0 { *c } else { None })
                    .collect();
                assignment_from_choices(n, &thinned)
            }
            _ => {
                let choices: Vec<Option<usize>> =
                    picks.iter().map(|&i| Some((i % k) * n / 4)).collect();
                assignment_from_choices(n, &choices)
            }
        })
}

fn sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(64), Just(256)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wide_lanes_match_the_reference_router_across_shapes(
        (n, asg) in sizes().prop_flat_map(|n| (Just(n), shaped(n)))
    ) {
        let net = Brsmn::new(n).expect("valid size");
        let fast = net.route(&asg).expect("fast path routes");
        let reference = net.route_reference(&asg).expect("reference routes");
        prop_assert_eq!(&fast, &reference);
        prop_assert!(fast.realizes(&asg));
    }

    #[test]
    fn batch_planner_matches_per_frame_on_results_settings_and_traces(
        (n, frames) in prop_oneof![Just(8usize), Just(16), Just(64)]
            .prop_flat_map(|n| (Just(n), vec(shaped(n), 1..=9)))
    ) {
        let net = Brsmn::new(n).expect("valid size");
        let fr = frames.len();
        let refs: Vec<&MulticastAssignment> = frames.iter().collect();
        let mut caps: Vec<CapturedPlan> = (0..fr)
            .map(|_| CapturedPlan::new(n).expect("valid size"))
            .collect();
        let mut timer = StageTimer::new();
        let results = with_thread_batch_planner(n, fr, |bp| {
            bp.route_frames(net.wiring(), &refs, &mut timer, Some(&mut caps))?;
            Ok::<_, CoreError>((0..fr).map(|f| bp.frame_result(f)).collect::<Vec<_>>())
        })
        .expect("lockstep batch routes");

        for (f, asg) in frames.iter().enumerate() {
            let (want_r, want_plan) =
                with_thread_scratch(n, |s| net.route_capture(asg, s)).expect("capture routes");
            prop_assert_eq!(&results[f], &want_r);
            // Whole setting tensors compare equal: every switch of every
            // stage of every level, plus the final column.
            prop_assert_eq!(&caps[f], &want_plan);
            // And the traced replay of the batch-captured plan reproduces
            // the per-frame trace exactly.
            let (replay_r, replay_trace) =
                with_thread_scratch(n, |s| net.route_replay_traced(asg, &caps[f], s))
                    .expect("replay routes");
            let (traced_r, want_trace) = net.route_traced(asg).expect("traced route");
            prop_assert_eq!(&replay_r, &traced_r);
            prop_assert_eq!(&replay_trace, &want_trace);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_dispatch_matches_per_frame_under_mixed_cache_traffic(
        (n, pool, picks) in sizes().prop_flat_map(|n| {
            (Just(n), vec(shaped(n), 3..=5), vec(any::<u8>(), 1..=20))
        })
    ) {
        // Duplicated picks from a small pool + a pre-warmed first frame
        // make the measured batch a genuine hit/miss mix for the cache.
        let batch: Vec<MulticastAssignment> = picks
            .iter()
            .map(|&i| pool[i as usize % pool.len()].clone())
            .collect();
        let warm = vec![pool[0].clone()];

        let cfg = EngineConfig::batch(1).with_plan_cache(64);
        let batched = Engine::with_config(n, cfg).expect("valid size");
        let per_frame =
            Engine::with_config(n, cfg.without_batch_plan()).expect("valid size");
        let oracle = Engine::with_config(n, EngineConfig::batch(1)).expect("valid size");

        assert!(batched.route_batch(&warm).results[0].is_ok());
        assert!(per_frame.route_batch(&warm).results[0].is_ok());

        let a = batched.route_batch(&batch);
        let b = per_frame.route_batch(&batch);
        let c = oracle.route_batch(&batch);
        for ((x, y), z) in a.results.iter().zip(&b.results).zip(&c.results) {
            let x = x.as_ref().expect("shaped frames route");
            prop_assert_eq!(x, y.as_ref().expect("shaped frames route"));
            prop_assert_eq!(x, z.as_ref().expect("shaped frames route"));
        }
        // The batched dispatch must preserve the per-frame driver's cache
        // accounting exactly, not just its outputs.
        prop_assert_eq!(a.stats.plan_hits, b.stats.plan_hits);
        prop_assert_eq!(a.stats.plan_canonical_hits, b.stats.plan_canonical_hits);
        prop_assert_eq!(a.stats.plan_misses, b.stats.plan_misses);
        prop_assert_eq!(a.stats.stages.switch_settings, b.stats.stages.switch_settings);
        prop_assert_eq!(a.stats.stages.sweep_passes, b.stats.stages.sweep_passes);
    }
}
