//! Acceptance check for the cold planning path: SoA batch planning keeps a
//! cold (cache-less) frame within ~1.5× of replay-warm throughput at
//! n ∈ {256, 1024}.
//!
//! Like `serve_speedup.rs`, the gate has a machine-independent arm that
//! always runs and a measured arm gated on hardware threads:
//!
//! * **Always** — bit-identity of the SoA lockstep schedule against the
//!   per-frame wide-lane path (asserted inside `measure_cold_path`), plus a
//!   *modeled* ratio built from structural operation counts: both cold and
//!   warm runs apply every switch setting (the execution work, read off the
//!   engine's `switch_settings` counter), and cold planning adds two tree
//!   waves per block — scatter and fused quasisort — each visiting at most
//!   2·s node slots for a size-s block, amortized `LANES`-wide by the
//!   node-major frame-minor SoA layout (the word-packed plane derivations
//!   touch s/64 words per plane and are negligible next to the waves). This
//!   is the op-count argument the paper's hardware realizes with parallel
//!   column sweeps; single-thread software pays extra constant factors per
//!   planning op (tag derivation, rank queries), which the measured arm
//!   tracks.
//! * **Measured** (≥ 4 hardware threads, best of 3) — a 4-worker SoA
//!   batch-planning engine must hold cold throughput within 1.5× of a
//!   single warm replay stream, the serving-loop scenario the batch planner
//!   exists for: cold traffic bursts must not fall behind steady-state
//!   replay.

use brsmn_bench::{measure_cold_path, measure_replay_path};
use brsmn_core::{Engine, EngineConfig, MulticastAssignment};
use brsmn_rbn::LANES;

const SEED: u64 = 7;
const FRAMES: usize = 32;

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Switch settings applied per frame at size `n`, read from a real run's
/// structural counters (identical for cold planning and warm replay).
fn exec_ops_per_frame(n: usize) -> f64 {
    let mut dests: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut state = SEED | 1;
    for d in 0..n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        dests[state as usize % n].push(d);
    }
    let asg = MulticastAssignment::from_sets(n, dests).expect("valid assignment");
    let engine = Engine::with_config(n, EngineConfig::sequential()).expect("valid size");
    let out = engine.route_batch(std::slice::from_ref(&asg));
    assert!(out.results[0].is_ok());
    out.stats.stages.switch_settings as f64
}

/// Planning-wave node slots per frame at size `n`: per level, `n/s` blocks
/// of size `s` each run a scatter wave and a fused quasisort wave over at
/// most `2·s` tree-node slots — `4·n` slots per level across the
/// `log2(n) − 1` BSN levels.
fn plan_ops_per_frame(n: usize) -> f64 {
    let levels = (n.trailing_zeros() as usize).saturating_sub(1);
    (4 * n * levels) as f64
}

/// Modeled cold-over-warm time ratio of the SoA batch planner: execution
/// work plus lane-amortized planning waves, over execution work alone.
fn modeled_cold_over_warm(n: usize) -> f64 {
    let exec = exec_ops_per_frame(n);
    1.0 + plan_ops_per_frame(n) / (LANES as f64) / exec
}

#[test]
fn cold_batch_planning_holds_within_1p5x_of_warm_replay() {
    for n in [256usize, 1024] {
        // Always: the SoA lockstep schedule is bit-identical to the
        // per-frame path (asserted inside measure_cold_path), and every
        // frame of a cache-less multi-frame batch goes through the
        // BatchPlanner.
        let simd = measure_cold_path(n, FRAMES, SEED, 1, false, 1);
        let batch = measure_cold_path(n, FRAMES, SEED, 1, true, 1);
        assert_eq!(simd.path, "simd-cold");
        assert_eq!(batch.path, "batch-cold");

        // Always: the modeled ratio meets the 1.5× target.
        let modeled = modeled_cold_over_warm(n);
        assert!(
            modeled <= 1.5,
            "n={n}: modeled cold/warm ratio {modeled:.3} > 1.5"
        );
    }

    if hardware_threads() < 4 {
        eprintln!(
            "skipping measured cold-vs-warm assertion: only {} hardware thread(s)",
            hardware_threads()
        );
        return;
    }

    // Measured, best of 3: a 4-worker batch-planning engine keeps cold
    // traffic within 1.5× of a single warm replay stream.
    for n in [256usize, 1024] {
        let best = (0..3)
            .map(|_| {
                let cold = measure_cold_path(n, 64, SEED, 4, true, 1);
                let warm = measure_replay_path(n, 64, SEED, 1, 8, true, 1);
                cold.frames_per_sec / warm.frames_per_sec
            })
            .fold(0.0f64, f64::max);
        assert!(
            best >= 1.0 / 1.5,
            "n={n}: 4-worker batch-cold fell to {best:.2}× of a warm replay \
             stream (need ≥ {:.2}) on {} hardware threads",
            1.0 / 1.5,
            hardware_threads()
        );
    }
}
