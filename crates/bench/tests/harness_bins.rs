//! Regression tests driving the compiled experiment binaries: every harness
//! must run clean and print its headline content.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().unwrap();
    assert!(out.status.success(), "{bin} failed: {:?}", out);
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn table1_prints_encoding() {
    let text = run(env!("CARGO_BIN_EXE_table1"), &[]);
    assert!(text.contains("| α | 100 |"));
    assert!(text.contains("| ε₁ | 111 |"));
}

#[test]
fn table2_prints_all_rows_and_verifies() {
    let text = run(env!("CARGO_BIN_EXE_table2"), &[]);
    for row in [
        "Nassimi and Sahni's",
        "Lee and Oruc's",
        "New design",
        "Feedback version",
    ] {
        assert!(text.contains(row), "missing row {row}");
    }
    assert!(text.contains("true / true / true"));
}

#[test]
fn cost_curves_prints_sweep() {
    let text = run(env!("CARGO_BIN_EXE_cost_curves"), &[]);
    assert!(text.contains("| 65536 |"));
    assert!(text.contains("Batcher–banyan"));
}

#[test]
fn ablations_print_all_four_studies() {
    let text = run(env!("CARGO_BIN_EXE_ablations"), &[]);
    for heading in [
        "Ablation 1",
        "Ablation 2",
        "Ablation 3",
        "Ablation 4",
    ] {
        assert!(text.contains(heading), "missing {heading}");
    }
}

#[test]
fn transfer_analysis_prints_crossover() {
    let text = run(env!("CARGO_BIN_EXE_transfer_analysis"), &[]);
    assert!(text.contains("amortization payload"));
    assert!(text.contains("Pipelined assignment throughput"));
}

#[test]
fn report_emits_valid_json() {
    let text = run(env!("CARGO_BIN_EXE_report"), &[]);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    for key in [
        "table2",
        "cost_sweep",
        "routing_time",
        "looping",
        "transfer",
        "verification",
    ] {
        assert!(parsed.get(key).is_some(), "missing section {key}");
    }
    // Every verification boolean is true.
    for v in parsed["verification"].as_array().unwrap() {
        for flag in [
            "brsmn_ok",
            "self_routing_ok",
            "feedback_ok",
            "classical_ok",
            "chengchen_permutation_ok",
        ] {
            assert_eq!(v[flag], serde_json::Value::Bool(true), "{flag} in {v}");
        }
    }
}

#[test]
fn fuzz_diff_small_run_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_fuzz_diff"))
        .args(["50", "123"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("all agree"));
}

#[test]
fn serve_report_emits_consistent_json() {
    // Small run to keep the harness fast: n=16, 8 arrival rounds.
    let text = run(env!("CARGO_BIN_EXE_serve_report"), &["16", "8", "5"]);
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(parsed["n"], serde_json::Value::UInt(16));
    assert!(parsed["requests"].as_u64().unwrap() > 0);
    assert_eq!(parsed["measured"].as_array().unwrap().len(), 3);
    assert!(parsed["modeled_speedup_4_fabrics"].as_f64().unwrap() >= 1.5);
}

#[test]
fn load_latency_prints_curves() {
    let text = run(env!("CARGO_BIN_EXE_load_latency"), &[]);
    assert!(text.contains("max fanout 16"));
    assert!(text.contains("output util"));
}
