//! Acceptance check for the sharded serving loop's scaling: ≥ 1.5× frames/s
//! at 4 shards over 1 on the committed demo trace — measured only on
//! machines that actually have ≥ 4 hardware threads (single-core CI boxes
//! check serving equivalence and the modeled speedup instead), exactly like
//! `parallel_speedup.rs` does for the batch engine.

use brsmn_serve::{serve_trace, ServeConfig, Trace};
use brsmn_sim::simulate_replicated_pipeline;

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

fn demo_trace() -> Trace {
    // Integration tests run with the crate directory as cwd.
    let json = std::fs::read_to_string("../../traces/serve_demo.json").unwrap();
    Trace::from_json(&json).unwrap()
}

fn serve(trace: &Trace, shards: usize) -> brsmn_serve::ServeReport {
    let mut cfg = ServeConfig::new(trace.n);
    cfg.shards = shards;
    cfg.queue_capacity = trace.len();
    let report = serve_trace(cfg, trace).unwrap();
    assert!(report.conserves(), "shards={shards}: {report:?}");
    assert_eq!(report.rejected, 0, "capacity admits the whole demo trace");
    assert_eq!(report.served_err, 0, "every demo request routes");
    report
}

#[test]
fn four_shards_speed_up_the_demo_trace() {
    let trace = demo_trace();
    assert_eq!(trace.n, 64);

    // Always: striping must not change what gets served, and the hardware
    // model must show the 4-fabric speedup exists.
    let single = serve(&trace, 1);
    let striped = serve(&trace, 4);
    assert_eq!(single.served_ok, striped.served_ok);
    assert_eq!(single.submitted, striped.submitted);

    let modeled = simulate_replicated_pipeline(trace.n, trace.len() as u64, 4).speedup();
    assert!(modeled >= 1.5, "modeled 4-fabric speedup {modeled:.2} < 1.5");

    if hardware_threads() < 4 {
        eprintln!(
            "skipping measured-speedup assertion: only {} hardware thread(s)",
            hardware_threads()
        );
        return;
    }

    // Measured, best of 3 to ride out scheduler noise.
    let best = (0..3)
        .map(|_| serve(&trace, 4).frames_per_sec / serve(&trace, 1).frames_per_sec)
        .fold(0.0f64, f64::max);
    assert!(
        best >= 1.5,
        "4-shard speedup {best:.2} < 1.5 on {} hardware threads",
        hardware_threads()
    );
}
