//! Shared harness code for the experiment binaries and Criterion benches:
//! workload construction, table formatting, and the measurement sweeps that
//! regenerate the paper's Table 2 and complexity figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use brsmn_baselines::{BatcherBanyan, BenesNetwork, ComplexityModel, CopyBenesMulticast, NetworkKind};
use brsmn_core::{
    metrics, Brsmn, Engine, EngineConfig, EngineStats, FeedbackBrsmn, MulticastAssignment,
    PlanOpProfile,
};
use brsmn_sim::{brsmn_routing_time, feedback_routing_time, looping_routing_time};
use brsmn_workloads::{random_multicast, random_permutation, RandomSpec};
use serde::{Deserialize, Serialize};

/// One measured row of the Table 2 sweep at a concrete size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasuredRow {
    /// Network label.
    pub network: String,
    /// Network size.
    pub n: usize,
    /// Gate cost (exact for our designs, modeled for the published
    /// comparators).
    pub cost_gates: f64,
    /// Depth in stages.
    pub depth: f64,
    /// Routing time in gate delays.
    pub routing_time: f64,
}

/// Evaluates all four Table 2 networks at size `n`, using *measured*
/// gate-delay routing times for the paper's designs (from `brsmn-sim`) and
/// the calibrated models for the published comparators.
pub fn table2_at(n: usize) -> Vec<MeasuredRow> {
    NetworkKind::ALL
        .iter()
        .map(|&kind| {
            let model = ComplexityModel::eval(kind, n);
            let routing_time = match kind {
                NetworkKind::NewDesign => brsmn_routing_time(n).total as f64,
                NetworkKind::Feedback => feedback_routing_time(n).total as f64,
                _ => model.routing_time_gd,
            };
            MeasuredRow {
                network: kind.label().to_string(),
                n,
                cost_gates: model.cost_gates,
                depth: model.depth_stages,
                routing_time,
            }
        })
        .collect()
}

/// Measured routing time (gate delays) of the classical copy-then-route
/// baseline at size `n`: dominated by the Beneš distributor's serial looping
/// on a full permutation.
pub fn classical_looping_time(n: usize, seed: u64) -> u64 {
    let benes = BenesNetwork::new(n).expect("valid size");
    let asg = random_permutation(n, seed);
    let perm: Vec<Option<usize>> = (0..n)
        .map(|i| asg.dests(i).first().copied())
        .collect();
    let (_, stats) = benes.route(&perm).expect("permutation routes");
    looping_routing_time(stats.steps)
}

/// A standard dense multicast workload for throughput benches.
pub fn dense_workload(n: usize, seed: u64) -> MulticastAssignment {
    random_multicast(RandomSpec::dense(n), seed)
}

/// Runs one end-to-end routed comparison at size `n` and returns
/// `(brsmn_ok, feedback_ok, classical_ok)` — used as a smoke check by the
/// harness binaries before printing results.
pub fn verify_all_engines(n: usize, seed: u64) -> (bool, bool, bool) {
    let asg = dense_workload(n, seed);
    let a = Brsmn::new(n)
        .unwrap()
        .route(&asg)
        .map(|r| r.realizes(&asg))
        .unwrap_or(false);
    let b = FeedbackBrsmn::new(n)
        .unwrap()
        .route(&asg)
        .map(|(r, _)| r.realizes(&asg))
        .unwrap_or(false);
    let c = CopyBenesMulticast::new(n)
        .unwrap()
        .route(&asg)
        .map(|(r, _)| r.realizes(&asg))
        .unwrap_or(false);
    (a, b, c)
}

/// Exact hardware counts for the cost-scaling figure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostPoint {
    /// Network size.
    pub n: usize,
    /// Unfolded BRSMN switches.
    pub brsmn_switches: u64,
    /// Feedback-implementation switches.
    pub feedback_switches: u64,
    /// Classical copy-then-route switches.
    pub classical_switches: u64,
    /// Batcher–banyan comparators + switches (unicast-only fabric).
    pub batcher_elements: u64,
    /// Crossbar crosspoints.
    pub crossbar_points: u64,
}

/// Sweeps exact switch counts over sizes `2^min_pow … 2^max_pow`.
pub fn cost_sweep(min_pow: u32, max_pow: u32) -> Vec<CostPoint> {
    (min_pow..=max_pow)
        .map(|m| {
            let n = 1usize << m;
            let batcher = BatcherBanyan::new(n).unwrap();
            CostPoint {
                n,
                brsmn_switches: metrics::brsmn_switches(n),
                feedback_switches: metrics::feedback_switches(n),
                classical_switches: CopyBenesMulticast::new(n).unwrap().switches(),
                batcher_elements: batcher.comparators() + batcher.banyan_switches(),
                crossbar_points: (n as u64) * (n as u64),
            }
        })
        .collect()
}

/// A batch of dense multicast frames with distinct seeds — the standard
/// input of the parallel-throughput experiments.
pub fn dense_batch(n: usize, frames: usize, seed: u64) -> Vec<MulticastAssignment> {
    (0..frames)
        .map(|f| dense_workload(n, seed.wrapping_add(f as u64)))
        .collect()
}

/// One measured point of the parallel-throughput sweep: the batched engine
/// at a given worker count, with its full per-stage instrumentation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelPoint {
    /// Worker threads used.
    pub workers: usize,
    /// Wall time for the batch, nanoseconds.
    pub wall_nanos: u64,
    /// Frames per second of wall time.
    pub frames_per_sec: f64,
    /// Measured speedup over the 1-worker run of the same sweep.
    pub speedup_vs_one: f64,
    /// Full engine instrumentation (per-level time, switch settings, sweeps).
    pub stats: EngineStats,
}

/// Full report of one parallel-throughput sweep, serializable to JSON for
/// `EXPERIMENTS.md` and the CI artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelReport {
    /// Network size.
    pub n: usize,
    /// Frames per batch.
    pub frames: usize,
    /// Workload seed.
    pub seed: u64,
    /// Modeled speedup of 4 replicated hardware fabrics on the same batch
    /// (`brsmn-sim`), for comparison against the software numbers.
    pub modeled_speedup_4_fabrics: f64,
    /// One measurement per worker count, ascending.
    pub points: Vec<ParallelPoint>,
}

/// Routes the same dense batch at each worker count and reports wall time,
/// throughput and speedup. The batch is routed once per worker count; all
/// runs produce bit-identical results (asserted), so the comparison is pure
/// scheduling.
pub fn parallel_sweep(n: usize, frames: usize, seed: u64, worker_counts: &[usize]) -> ParallelReport {
    let batch = dense_batch(n, frames, seed);
    let mut reference: Option<Vec<_>> = None;
    let mut points = Vec::with_capacity(worker_counts.len());
    let mut one_worker_wall = None;
    for &workers in worker_counts {
        let engine = Engine::with_config(n, EngineConfig::batch(workers)).expect("valid size");
        let out = engine.route_batch(&batch);
        let routed: Vec<_> = out
            .results
            .into_iter()
            .map(|r| r.expect("dense workload routes"))
            .collect();
        match &reference {
            None => reference = Some(routed),
            Some(want) => assert_eq!(want, &routed, "worker count changed the results"),
        }
        let stats = out.stats;
        if stats.workers == 1 {
            one_worker_wall = Some(stats.wall_nanos);
        }
        let speedup_vs_one = match one_worker_wall {
            Some(base) if stats.wall_nanos > 0 => base as f64 / stats.wall_nanos as f64,
            _ => 1.0,
        };
        points.push(ParallelPoint {
            workers: stats.workers,
            wall_nanos: stats.wall_nanos,
            frames_per_sec: stats.frames_per_sec(),
            speedup_vs_one,
            stats,
        });
    }
    ParallelReport {
        n,
        frames,
        seed,
        modeled_speedup_4_fabrics: brsmn_sim::simulate_replicated_pipeline(n, frames as u64, 4)
            .speedup(),
        points,
    }
}

/// One measured configuration of the fast-path bench trajectory
/// (`bench_report` / `BENCH_route.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutePoint {
    /// Network size.
    pub n: usize,
    /// Worker threads used.
    pub workers: usize,
    /// `"fast"` (scratch-arena path) or `"reference"` (PR-1 allocating
    /// path).
    pub path: String,
    /// Frames per second of wall time (best of the repeats).
    pub frames_per_sec: f64,
    /// Nanoseconds per frame (best of the repeats).
    pub ns_per_frame: f64,
    /// Largest per-worker scratch footprint observed, bytes (0 on the
    /// reference path).
    pub scratch_bytes: u64,
    /// Frames served by plan-cache replay during the best run (0 when the
    /// cache is off).
    pub plan_hits: u64,
    /// Frames that planned fresh (capturing a plan when the cache is on)
    /// during the best run.
    pub plan_misses: u64,
    /// Achieved parallelism of the best run (`busy_nanos / wall_nanos`).
    /// On a 1-hardware-thread host this stays ≈ 1.0 at every requested
    /// worker count — the honest explanation of flat multi-worker scaling.
    /// With the `plan-profile` feature and per-thread timers, the profiled
    /// nano totals likewise sum across workers, so a derived busy/wall
    /// ratio **above 1.0 is expected**, not double counting.
    pub busy_over_wall: f64,
    /// Per-op planning profile of the best run (where cold-path planning
    /// time went). Op counts are always exact; nanosecond totals are zero
    /// unless the crate was built with the `plan-profile` feature.
    pub plan_profile: PlanOpProfile,
}

/// Unmeasured passes each `measure_*` function runs before its timed
/// best-of-N repeats: they populate the per-worker thread-local arenas and
/// warm the branch predictors so the first timed repeat is not an outlier.
pub const WARMUP_PASSES: usize = 1;

/// Routes `repeats` batches of `frames` dense frames through an engine and
/// returns the best-run measurement. `use_scratch = false` selects the PR-1
/// allocating reference router; results are asserted identical either way.
pub fn measure_route_path(
    n: usize,
    frames: usize,
    seed: u64,
    workers: usize,
    use_scratch: bool,
    repeats: usize,
) -> RoutePoint {
    let batch = dense_batch(n, frames, seed);
    let cfg = if use_scratch {
        EngineConfig::batch(workers)
    } else {
        EngineConfig::batch(workers).without_scratch()
    };
    let engine = Engine::with_config(n, cfg).expect("valid size");
    for _ in 0..WARMUP_PASSES {
        let out = engine.route_batch(&batch);
        assert!(out.results.iter().all(|r| r.is_ok()), "warm-up routes");
    }
    let mut best: Option<EngineStats> = None;
    for _ in 0..repeats.max(1) {
        let out = engine.route_batch(&batch);
        assert!(
            out.results.iter().all(|r| r.is_ok()),
            "dense workload routes"
        );
        if best
            .as_ref()
            .is_none_or(|b| out.stats.wall_nanos < b.wall_nanos)
        {
            best = Some(out.stats);
        }
    }
    let stats = best.expect("at least one repeat");
    RoutePoint {
        n,
        workers: stats.workers,
        path: if use_scratch { "fast" } else { "reference" }.into(),
        frames_per_sec: stats.frames_per_sec(),
        ns_per_frame: stats.wall_nanos as f64 / frames as f64,
        scratch_bytes: stats.scratch_bytes,
        plan_hits: stats.plan_hits,
        plan_misses: stats.plan_misses,
        busy_over_wall: stats.speedup(),
        plan_profile: stats.stages.plan_profile,
    }
}

/// Measures pure **cold planning** throughput: a cache-less engine plans
/// every frame of a dense batch fresh, either per frame on the wide-lane
/// kernels (`batch_plan = false`, the `"simd-cold"` point) or in lockstep
/// SoA chunks through the `BatchPlanner` (`batch_plan = true`, the
/// `"batch-cold"` point). Results are asserted bit-identical between the
/// two schedules, and the returned point records how many frames the SoA
/// driver actually batch-planned.
pub fn measure_cold_path(
    n: usize,
    frames: usize,
    seed: u64,
    workers: usize,
    batch_plan: bool,
    repeats: usize,
) -> RoutePoint {
    let batch = dense_batch(n, frames, seed);
    let cfg = if batch_plan {
        EngineConfig::batch(workers)
    } else {
        EngineConfig::batch(workers).without_batch_plan()
    };
    let engine = Engine::with_config(n, cfg).expect("valid size");

    // Bit-identity oracle: the same batch planned per frame.
    let want = Engine::with_config(n, EngineConfig::batch(workers).without_batch_plan())
        .expect("valid size")
        .route_batch(&batch);

    // Cold refers to the (absent) plan cache, not the arenas: unmeasured
    // warm-up passes populate the per-worker scratch before timing.
    for _ in 0..WARMUP_PASSES {
        let out = engine.route_batch(&batch);
        assert!(out.results.iter().all(|r| r.is_ok()), "warm-up routes");
    }
    let mut best: Option<EngineStats> = None;
    for _ in 0..repeats.max(1) {
        let out = engine.route_batch(&batch);
        for (a, b) in want.results.iter().zip(&out.results) {
            assert_eq!(
                a.as_ref().expect("dense workload routes"),
                b.as_ref().expect("dense workload routes"),
                "batch planning changed a routing result"
            );
        }
        if batch_plan {
            assert_eq!(
                out.stats.batch_planned_frames, frames as u64,
                "cache-less multi-frame batches plan every frame in SoA chunks"
            );
        } else {
            assert_eq!(out.stats.batch_planned_frames, 0);
        }
        if best
            .as_ref()
            .is_none_or(|b| out.stats.wall_nanos < b.wall_nanos)
        {
            best = Some(out.stats);
        }
    }
    let stats = best.expect("at least one repeat");
    RoutePoint {
        n,
        workers: stats.workers,
        path: if batch_plan { "batch-cold" } else { "simd-cold" }.into(),
        frames_per_sec: stats.frames_per_sec(),
        ns_per_frame: stats.wall_nanos as f64 / frames as f64,
        scratch_bytes: stats.scratch_bytes,
        plan_hits: stats.plan_hits,
        plan_misses: stats.plan_misses,
        busy_over_wall: stats.speedup(),
        plan_profile: stats.stages.plan_profile,
    }
}

/// Measures the plan-capture cache on a batch of `frames` frames cycling
/// `distinct` dense assignments.
///
/// * `warm = true` — the cache is pre-warmed with every distinct assignment
///   (one unmeasured pass), so each measured run is **pure replay**: every
///   frame hits, no planner sweep executes. The `"replay-warm"` point is the
///   steady state of serving traffic with recurring frames.
/// * `warm = false` — a fresh engine per repeat routes an all-distinct
///   batch, so every frame misses, plans fresh, and pays the capture +
///   insert overhead on top. The `"capture-cold"` point bounds the cost of
///   the cache when it never helps.
///
/// Results are asserted bit-identical to a cache-less engine.
pub fn measure_replay_path(
    n: usize,
    frames: usize,
    seed: u64,
    workers: usize,
    distinct: usize,
    warm: bool,
    repeats: usize,
) -> RoutePoint {
    let distinct = distinct.max(1).min(frames);
    let batch: Vec<MulticastAssignment> = if warm {
        let pool = dense_batch(n, distinct, seed);
        (0..frames).map(|f| pool[f % distinct].clone()).collect()
    } else {
        dense_batch(n, frames, seed)
    };

    // Bit-identity oracle: the same batch through a cache-less engine.
    let want = Engine::with_config(n, EngineConfig::batch(workers))
        .expect("valid size")
        .route_batch(&batch);

    let cfg = EngineConfig::batch(workers).with_plan_cache((2 * distinct).max(frames));
    let mut best: Option<EngineStats> = None;
    let mut engine = Engine::with_config(n, cfg).expect("valid size");
    if warm {
        // Unmeasured passes capture every distinct plan (doubling as the
        // arena warm-up the other measure functions run).
        for _ in 0..WARMUP_PASSES {
            let out = engine.route_batch(&batch);
            assert!(out.results.iter().all(|r| r.is_ok()), "warm-up routes");
        }
    }
    // The cold arm deliberately skips warm-up: a fresh engine per repeat is
    // the point (capture + insert on every frame, arenas included).
    for _ in 0..repeats.max(1) {
        if !warm {
            // Cold means cold: a fresh cache every repeat.
            engine = Engine::with_config(n, cfg).expect("valid size");
        }
        let out = engine.route_batch(&batch);
        for (a, b) in want.results.iter().zip(&out.results) {
            assert_eq!(
                a.as_ref().expect("dense workload routes"),
                b.as_ref().expect("dense workload routes"),
                "cache changed a routing result"
            );
        }
        if warm {
            assert_eq!(out.stats.plan_hits, frames as u64, "warm run must be all hits");
        } else {
            assert_eq!(out.stats.plan_misses, frames as u64, "cold run must be all misses");
        }
        if best
            .as_ref()
            .is_none_or(|b| out.stats.wall_nanos < b.wall_nanos)
        {
            best = Some(out.stats);
        }
    }
    let stats = best.expect("at least one repeat");
    RoutePoint {
        n,
        workers: stats.workers,
        path: if warm { "replay-warm" } else { "capture-cold" }.into(),
        frames_per_sec: stats.frames_per_sec(),
        ns_per_frame: stats.wall_nanos as f64 / frames as f64,
        scratch_bytes: stats.scratch_bytes,
        plan_hits: stats.plan_hits,
        plan_misses: stats.plan_misses,
        busy_over_wall: stats.speedup(),
        plan_profile: stats.stages.plan_profile,
    }
}

/// Renders rows of `(label, values…)` as a GitHub-flavored markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_have_expected_order() {
        let rows = table2_at(256);
        assert_eq!(rows.len(), 4);
        // New design's routing time beats both published comparators.
        assert!(rows[2].routing_time < rows[0].routing_time);
        assert!(rows[2].routing_time < rows[1].routing_time);
        // Feedback's cost beats everything among the log-cost rows.
        assert!(rows[3].cost_gates < rows[2].cost_gates);
    }

    #[test]
    fn engines_verify() {
        assert_eq!(verify_all_engines(64, 1), (true, true, true));
    }

    #[test]
    fn classical_looping_time_grows_superlinearly() {
        let t1 = classical_looping_time(64, 1) as f64;
        let t2 = classical_looping_time(512, 1) as f64;
        assert!(t2 / t1 > 8.0, "t1={t1} t2={t2}");
    }

    #[test]
    fn cost_sweep_monotone() {
        let pts = cost_sweep(3, 10);
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            assert!(w[1].brsmn_switches > w[0].brsmn_switches);
            assert!(w[1].feedback_switches > w[0].feedback_switches);
        }
        // Crossbar overtakes everything quickly.
        let last = pts.last().unwrap();
        assert!(last.crossbar_points > last.brsmn_switches);
    }

    #[test]
    fn parallel_sweep_is_deterministic_and_complete() {
        let report = parallel_sweep(16, 12, 3, &[1, 2]);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[0].workers, 1);
        assert_eq!(report.points[1].workers, 2);
        for p in &report.points {
            assert_eq!(p.stats.frames_ok, 12);
            assert_eq!(p.stats.frames_failed, 0);
            assert!(p.wall_nanos > 0);
        }
        assert!(report.modeled_speedup_4_fabrics > 1.0);
        // Report serializes to JSON.
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("modeled_speedup_4_fabrics"));
        let back: ParallelReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.points.len(), 2);
    }

    #[test]
    fn markdown_renders() {
        let t = markdown_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        );
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 3 | 4 |"));
    }
}
