//! `serve_report` — measures the sharded serving loop end to end (queue →
//! admission → striped fabrics → drain) at 1, 2 and 4 shards over one
//! seeded trace, and emits a JSON report on stdout. `BENCH_serve.json` at
//! the repo root is a committed run of this binary.
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin serve_report              # defaults
//! cargo run --release -p brsmn-bench --bin serve_report 64 48 42    # n rounds seed
//! ```
//!
//! Like `parallel_report`, the measured shard speedup only means something
//! on a machine with spare hardware threads, so the report always carries
//! both the **measured** frames/s *and* the hardware-model speedup of 4
//! replicated fabrics (`simulate_replicated_pipeline`) next to the
//! machine's thread count — the reader decides which number their box can
//! honestly reproduce.

use brsmn_serve::{serve_trace, ChurnTraceSpec, ServeConfig, TenantSpec, Trace};
use brsmn_sim::simulate_replicated_pipeline;
use serde::Serialize;

#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    frames_per_sec: f64,
    wall_nanos: u64,
    rounds: u64,
    p99_ns: u64,
    speedup_vs_one: f64,
}

/// One multi-tenant churn replay: three tenants' session traffic through
/// the quota-bound weighted-round-robin front end, with deadline shedding.
#[derive(Serialize)]
struct ChurnPoint {
    tenants: u32,
    requests: usize,
    frames_per_sec: f64,
    deadline_shed: u64,
    per_tenant_served: Vec<u64>,
    per_tenant_peak_queue: Vec<usize>,
    output_hash: String,
}

#[derive(Serialize)]
struct ServeBenchReport {
    n: usize,
    requests: usize,
    seed: u64,
    hardware_threads: usize,
    measured: Vec<ShardPoint>,
    speedup_4v1: f64,
    modeled_speedup_4_fabrics: f64,
    multi_tenant_churn: ChurnPoint,
}

/// Best-of-3 replay of a 3-tenant conference-churn trace through the
/// quota-bound multi-tenant path; the output hash is asserted identical
/// across the three runs, so the bench doubles as a determinism check.
fn churn_point(n: usize, seed: u64) -> ChurnPoint {
    let mut spec = ChurnTraceSpec::default_for(n);
    spec.rounds = 24;
    spec.p_expired = 0.05;
    let trace = Trace::from_churn(spec, seed).expect("churn trace generates");
    let tenants = trace.tenant_count();

    let mut best: Option<brsmn_serve::ServeReport> = None;
    for _ in 0..3 {
        let mut cfg = ServeConfig::new(n);
        cfg.queue.max_fanout = n;
        cfg.queue_capacity = (trace.len() / 2).max(8);
        cfg.tenants =
            vec![TenantSpec { quota: cfg.queue_capacity.div_ceil(tenants as usize), weight: 1 }; tenants as usize];
        let report = serve_trace(cfg, &trace).expect("churn trace serves");
        assert!(report.conserves() && report.quotas_respected(), "{report:?}");
        if let Some(prev) = &best {
            assert_eq!(prev.output_hash, report.output_hash, "replay must be deterministic");
        }
        if best.as_ref().is_none_or(|b| report.frames_per_sec > b.frames_per_sec) {
            best = Some(report);
        }
    }
    let report = best.unwrap();
    ChurnPoint {
        tenants,
        requests: trace.len(),
        frames_per_sec: report.frames_per_sec,
        deadline_shed: report.rejections.deadline_exceeded,
        per_tenant_served: report.tenants.iter().map(|t| t.served_ok + t.served_err).collect(),
        per_tenant_peak_queue: report.tenants.iter().map(|t| t.max_queued).collect(),
        output_hash: format!("{:#018x}", report.output_hash),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().map_or(64, |s| s.parse().expect("n"));
    let rounds: usize = args.get(1).map_or(48, |s| s.parse().expect("rounds"));
    let seed: u64 = args.get(2).map_or(42, |s| s.parse().expect("seed"));
    assert!(n.is_power_of_two() && n >= 8, "n must be a power of two >= 8");

    let base = ServeConfig::new(n);
    let trace = Trace::generate(base.queue, seed, rounds).expect("trace generates");

    // Best-of-3 per shard count, capacity sized so backpressure never
    // rejects — every run serves the identical request set.
    let mut measured = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut best: Option<(f64, u64, u64, u64)> = None;
        for _ in 0..3 {
            let mut cfg = ServeConfig::new(n);
            cfg.shards = shards;
            cfg.queue_capacity = trace.len().max(1);
            let report = serve_trace(cfg, &trace).expect("trace serves");
            assert_eq!(report.rejected, 0, "capacity must admit the whole trace");
            assert_eq!(report.served_err, 0, "every request must route");
            if best.is_none() || report.frames_per_sec > best.unwrap().0 {
                best = Some((
                    report.frames_per_sec,
                    report.wall_nanos,
                    report.rounds,
                    report.latency.p99_ns,
                ));
            }
        }
        let (fps, wall, served_rounds, p99) = best.unwrap();
        measured.push(ShardPoint {
            shards,
            frames_per_sec: fps,
            wall_nanos: wall,
            rounds: served_rounds,
            p99_ns: p99,
            speedup_vs_one: fps / measured.first().map_or(fps, |p: &ShardPoint| p.frames_per_sec),
        });
    }

    let speedup_4v1 = measured[2].frames_per_sec / measured[0].frames_per_sec;
    let report = ServeBenchReport {
        n,
        requests: trace.len(),
        seed,
        hardware_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        measured,
        speedup_4v1,
        modeled_speedup_4_fabrics: simulate_replicated_pipeline(n, trace.len() as u64, 4).speedup(),
        multi_tenant_churn: churn_point(n, seed),
    };

    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!(
        "n={n} requests={}: measured 4-shard speedup {:.2}x on {} thread(s), modeled {:.2}x",
        report.requests, report.speedup_4v1, report.hardware_threads, report.modeled_speedup_4_fabrics
    );
}
