//! `serve_report` — measures the sharded serving loop end to end (queue →
//! admission → striped fabrics → drain) at 1, 2 and 4 shards over one
//! seeded trace, and emits a JSON report on stdout. `BENCH_serve.json` at
//! the repo root is a committed run of this binary.
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin serve_report              # defaults
//! cargo run --release -p brsmn-bench --bin serve_report 64 48 42    # n rounds seed
//! ```
//!
//! Like `parallel_report`, the measured shard speedup only means something
//! on a machine with spare hardware threads, so the report always carries
//! both the **measured** frames/s *and* the hardware-model speedup of 4
//! replicated fabrics (`simulate_replicated_pipeline`) next to the
//! machine's thread count — the reader decides which number their box can
//! honestly reproduce.

use brsmn_serve::{serve_trace, ServeConfig, Trace};
use brsmn_sim::simulate_replicated_pipeline;
use serde::Serialize;

#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    frames_per_sec: f64,
    wall_nanos: u64,
    rounds: u64,
    p99_ns: u64,
    speedup_vs_one: f64,
}

#[derive(Serialize)]
struct ServeBenchReport {
    n: usize,
    requests: usize,
    seed: u64,
    hardware_threads: usize,
    measured: Vec<ShardPoint>,
    speedup_4v1: f64,
    modeled_speedup_4_fabrics: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().map_or(64, |s| s.parse().expect("n"));
    let rounds: usize = args.get(1).map_or(48, |s| s.parse().expect("rounds"));
    let seed: u64 = args.get(2).map_or(42, |s| s.parse().expect("seed"));
    assert!(n.is_power_of_two() && n >= 8, "n must be a power of two >= 8");

    let base = ServeConfig::new(n);
    let trace = Trace::generate(base.queue, seed, rounds).expect("trace generates");

    // Best-of-3 per shard count, capacity sized so backpressure never
    // rejects — every run serves the identical request set.
    let mut measured = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut best: Option<(f64, u64, u64, u64)> = None;
        for _ in 0..3 {
            let mut cfg = ServeConfig::new(n);
            cfg.shards = shards;
            cfg.queue_capacity = trace.len().max(1);
            let report = serve_trace(cfg, &trace).expect("trace serves");
            assert_eq!(report.rejected, 0, "capacity must admit the whole trace");
            assert_eq!(report.served_err, 0, "every request must route");
            if best.is_none() || report.frames_per_sec > best.unwrap().0 {
                best = Some((
                    report.frames_per_sec,
                    report.wall_nanos,
                    report.rounds,
                    report.latency.p99_ns,
                ));
            }
        }
        let (fps, wall, served_rounds, p99) = best.unwrap();
        measured.push(ShardPoint {
            shards,
            frames_per_sec: fps,
            wall_nanos: wall,
            rounds: served_rounds,
            p99_ns: p99,
            speedup_vs_one: fps / measured.first().map_or(fps, |p: &ShardPoint| p.frames_per_sec),
        });
    }

    let speedup_4v1 = measured[2].frames_per_sec / measured[0].frames_per_sec;
    let report = ServeBenchReport {
        n,
        requests: trace.len(),
        seed,
        hardware_threads: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        measured,
        speedup_4v1,
        modeled_speedup_4_fabrics: simulate_replicated_pipeline(n, trace.len() as u64, 4).speedup(),
    };

    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    eprintln!(
        "n={n} requests={}: measured 4-shard speedup {:.2}x on {} thread(s), modeled {:.2}x",
        report.requests, report.speedup_4v1, report.hardware_threads, report.modeled_speedup_4_fabrics
    );
}
