//! Emits the exact hardware-cost curves behind the Section 7.4 complexity
//! analysis: switch counts of the unfolded BRSMN, the feedback version, the
//! classical copy-then-route composite, and the crossbar, over a sweep of
//! sizes — the data series for the cost figure in EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p brsmn-bench --bin cost_curves`

use brsmn_bench::{cost_sweep, markdown_table};
use brsmn_core::metrics;

fn main() {
    println!("## Hardware cost vs network size (exact switch counts)\n");
    let pts = cost_sweep(2, 16);
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                p.brsmn_switches.to_string(),
                p.feedback_switches.to_string(),
                p.classical_switches.to_string(),
                p.batcher_elements.to_string(),
                p.crossbar_points.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["n", "BRSMN", "feedback", "copy+Beneš", "Batcher–banyan", "crossbar"],
            &rows
        )
    );

    println!("### Normalized: switches / (n·log n)\n");
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            let m = (p.n as f64).log2();
            let norm = p.n as f64 * m;
            vec![
                p.n.to_string(),
                format!("{:.3}", p.brsmn_switches as f64 / norm),
                format!("{:.3}", p.feedback_switches as f64 / norm),
                format!("{:.3}", p.classical_switches as f64 / norm),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["n", "BRSMN/(n·lg n)", "feedback/(n·lg n)", "classical/(n·lg n)"], &rows)
    );
    println!(
        "The BRSMN column grows ~(lg n)/2 (Θ(n log² n)); the feedback and \
         classical columns are flat (Θ(n log n)); the crossbar is Θ(n²).\n"
    );

    println!("### Depth and routing time (gate delays)\n");
    let rows: Vec<Vec<String>> = (2u32..=16)
        .map(|m| {
            let n = 1usize << m;
            vec![
                n.to_string(),
                metrics::brsmn_depth(n).to_string(),
                brsmn_sim::brsmn_routing_time(n).total.to_string(),
                brsmn_sim::feedback_routing_time(n).total.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["n", "depth (stages)", "T_route BRSMN (gd)", "T_route feedback (gd)"],
            &rows
        )
    );
}
