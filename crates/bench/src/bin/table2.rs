//! Regenerates **Table 2** of the paper: cost, depth and routing time of the
//! recursively constructed multicast networks, plus the numeric sweeps
//! behind the asymptotic claims and a live comparison against the classical
//! copy-then-route baseline.
//!
//! Run: `cargo run --release -p brsmn-bench --bin table2`

use brsmn_baselines::NetworkKind;
use brsmn_bench::{classical_looping_time, markdown_table, table2_at, verify_all_engines};

fn main() {
    println!("## Table 2 — Comparisons of recursively constructed multicast networks\n");

    // The asymptotic table exactly as printed in the paper.
    let rows: Vec<Vec<String>> = NetworkKind::ALL
        .iter()
        .map(|&k| {
            let (c, d, t) = k.asymptotics();
            vec![k.label().into(), c.into(), d.into(), t.into()]
        })
        .collect();
    println!(
        "{}",
        markdown_table(&["Network", "Cost", "Depth", "Routing time"], &rows)
    );

    // Numeric evaluation: exact counts/measured gate delays for the paper's
    // designs, calibrated models for the published comparators.
    println!("### Numeric evaluation (gates / stages / gate delays)\n");
    for m in [6u32, 8, 10, 12, 14] {
        let n = 1usize << m;
        println!("n = {n}:");
        let rows: Vec<Vec<String>> = table2_at(n)
            .into_iter()
            .map(|r| {
                vec![
                    r.network,
                    format!("{:.3e}", r.cost_gates),
                    format!("{}", r.depth),
                    format!("{}", r.routing_time),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(&["Network", "Cost (gates)", "Depth", "Routing time (gd)"], &rows)
        );
    }

    // Shape checks the table implies.
    println!("### Shape checks\n");
    for m in [8u32, 12] {
        let n = 1usize << m;
        let rows = table2_at(n);
        let new = &rows[2];
        let lee = &rows[1];
        let fb = &rows[3];
        println!(
            "- n = {n}: routing-time advantage (Lee–Oruç / new) = {:.1}×; \
             cost advantage (new / feedback) = {:.1}×",
            lee.routing_time / new.routing_time,
            new.cost_gates / fb.cost_gates,
        );
    }

    // Live baseline: the classical distributor's measured looping time.
    println!("\n### Measured centralized looping (classical baseline distributor)\n");
    let rows: Vec<Vec<String>> = [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let t_loop = classical_looping_time(n, 7);
            let t_new = table2_at(n)[2].routing_time;
            vec![
                n.to_string(),
                t_loop.to_string(),
                format!("{t_new}"),
                format!("{:.1}×", t_loop as f64 / t_new),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["n", "looping (gd)", "self-routing (gd)", "advantage"],
            &rows
        )
    );

    // End-to-end sanity: every engine realizes a dense random assignment.
    let (a, b, c) = verify_all_engines(256, 42);
    println!("\nEnd-to-end verification at n=256 (BRSMN / feedback / classical): {a} / {b} / {c}");
    assert!(a && b && c);
}
