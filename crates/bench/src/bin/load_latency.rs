//! Load–latency curve of an input-queued switch built on the BRSMN: offered
//! load vs mean/max request wait and output utilization. Because the fabric
//! is nonblocking, every effect here is queueing/head-of-line — the fabric
//! itself never rejects a scheduled round.
//!
//! Run: `cargo run --release -p brsmn-bench --bin load_latency`

use brsmn_bench::markdown_table;
use brsmn_core::Brsmn;
use brsmn_workloads::{simulate_queueing, QueueConfig};

fn main() {
    let n = 128usize;
    let rounds = 600usize;
    let net = Brsmn::new(n).unwrap();
    println!("## Input-queued switch on a {n}×{n} BRSMN — {rounds} rounds per point\n");

    for max_fanout in [1usize, 4, 16] {
        println!("### max fanout {max_fanout}\n");
        let rows: Vec<Vec<String>> = [0.05f64, 0.2, 0.4, 0.6, 0.8, 0.95]
            .iter()
            .map(|&p| {
                let stats = simulate_queueing(
                    QueueConfig {
                        n,
                        p_arrival: p,
                        max_fanout,
                    },
                    42,
                    rounds,
                    |asg| net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false),
                )
                .expect("valid config and a nonblocking fabric");
                vec![
                    format!("{p:.2}"),
                    stats.served.to_string(),
                    stats.backlog.to_string(),
                    format!("{:.2}", stats.mean_wait),
                    stats.max_wait.to_string(),
                    format!("{:.1}%", stats.output_utilization * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "arrival rate",
                    "served",
                    "backlog",
                    "mean wait",
                    "max wait",
                    "output util"
                ],
                &rows
            )
        );
    }
    println!(
        "Higher fanout saturates outputs sooner (each admitted request claims\n\
         several), shifting the knee of the latency curve left — classic\n\
         multicast head-of-line behaviour, with zero fabric blocking."
    );
}
