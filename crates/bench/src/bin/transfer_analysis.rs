//! Message-transfer crossover analysis: routing set-up vs payload streaming.
//!
//! The self-routing design's advantage is its `O(log² n)` set-up. This
//! harness quantifies when that matters: per message size, total transfer
//! time on the BRSMN vs the classical copy+Beneš switch (with its measured
//! centralized looping set-up), and the payload size at which the classical
//! fabric finally amortizes its set-up penalty.
//!
//! Run: `cargo run --release -p brsmn-bench --bin transfer_analysis`

use brsmn_baselines::BenesNetwork;
use brsmn_bench::markdown_table;
use brsmn_sim::{setup_amortization_point, simulate_pipeline, transfer_time, Fabric};
use brsmn_workloads::random_permutation;

fn measured_loop_steps(n: usize) -> u64 {
    let benes = BenesNetwork::new(n).unwrap();
    let asg = random_permutation(n, 7);
    let perm: Vec<Option<usize>> = (0..n).map(|i| asg.dests(i).first().copied()).collect();
    benes.route(&perm).unwrap().1.steps
}

fn main() {
    println!("## Transfer time vs message size (gate delays)\n");
    for n in [256usize, 4096] {
        let loop_steps = measured_loop_steps(n);
        println!("n = {n} (measured looping: {loop_steps} serial steps):");
        let rows: Vec<Vec<String>> = [64u64, 512, 4096, 1 << 15, 1 << 18, 1 << 21]
            .iter()
            .map(|&bits| {
                let ours = transfer_time(Fabric::Brsmn, n, bits).total();
                let fb = transfer_time(Fabric::Feedback, n, bits).total();
                let classical =
                    transfer_time(Fabric::Classical { loop_steps }, n, bits).total();
                vec![
                    format!("{bits}"),
                    ours.to_string(),
                    fb.to_string(),
                    classical.to_string(),
                    format!("{:.2}×", classical as f64 / ours as f64),
                ]
            })
            .collect();
        println!(
            "{}",
            markdown_table(
                &[
                    "payload (bits)",
                    "BRSMN",
                    "feedback",
                    "classical",
                    "classical/BRSMN"
                ],
                &rows
            )
        );
    }

    println!("### Set-up amortization point\n");
    println!("Payload size at which the classical switch's total comes within 5% of ours:\n");
    let rows: Vec<Vec<String>> = [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let steps = measured_loop_steps(n);
            let point = setup_amortization_point(n, steps, 1.05, 1 << 40)
                .map(|b| format!("{} Kib", b >> 10))
                .unwrap_or_else(|| "none".into());
            vec![n.to_string(), point]
        })
        .collect();
    println!("{}", markdown_table(&["n", "amortization payload"], &rows));
    println!(
        "Below these sizes — i.e. for control traffic, barrier releases, cache\n\
         lines, RPCs — the self-routing set-up advantage is the whole game,\n\
         which is the paper's motivation for Table 2's routing-time column."
    );

    println!("\n### Pipelined assignment throughput (unfolded network)\n");
    println!(
        "The unfolded BRSMN's levels are distinct hardware: level 1 can set up\n\
         assignment k+1 while deeper levels still route assignment k. Sustained\n\
         initiation interval = the first level's time (Θ(log n)), not the full\n\
         Θ(log² n) latency:\n"
    );
    let rows: Vec<Vec<String>> = [64usize, 1024, 16384]
        .iter()
        .map(|&n| {
            let s = simulate_pipeline(n, 1000);
            vec![
                n.to_string(),
                s.latency.to_string(),
                s.interval.to_string(),
                format!("{:.1}×", s.latency as f64 / s.interval as f64),
            ]
        })
        .collect();
    println!(
        "{}",
        markdown_table(
            &["n", "latency (gd)", "interval (gd)", "pipelining speedup"],
            &rows
        )
    );
}
