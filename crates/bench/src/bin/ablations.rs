//! Ablation studies for the design choices in DESIGN.md:
//!
//! 1. **Scatter target position `s`** — Theorem 3 says any `s` works; sweep
//!    it and measure active (non-parallel) switches to show the choice is
//!    free in correctness and nearly free in switching activity.
//! 2. **Multicast support tax** — the BRSMN vs the Cheng–Chen permutation
//!    network it generalizes: hardware ratio per size.
//! 3. **Feedback reprogramming overhead** — switch-setting writes per routed
//!    assignment in the feedback network vs the unfolded network's
//!    one-shot programming.
//! 4. **Self-routing tag-stream overhead** — total routing-tag bits carried
//!    per assignment vs the destination-list encoding.
//!
//! Run: `cargo run --release -p brsmn-bench --bin ablations`

use brsmn_baselines::ChengChenNetwork;
use brsmn_bench::{dense_workload, markdown_table};
use brsmn_core::{metrics, Brsmn, FeedbackBrsmn, SelfRoutedMsg};
use brsmn_rbn::plan_scatter;
use brsmn_switch::Tag;

fn main() {
    ablation_scatter_target();
    ablation_multicast_tax();
    ablation_feedback_reprogramming();
    ablation_tag_overhead();
}

fn ablation_scatter_target() {
    println!("## Ablation 1 — scatter target position s\n");
    let n = 256usize;
    let tags: Vec<Tag> = (0..n)
        .map(|i| match i.wrapping_mul(2654435761) >> 28 & 7 {
            0 => Tag::Alpha,
            1..=3 => Tag::Eps,
            4 | 5 => Tag::Zero,
            _ => Tag::One,
        })
        .collect();
    let mut rows = Vec::new();
    let mut min = usize::MAX;
    let mut max = 0usize;
    for s in (0..n).step_by(32) {
        let plan = plan_scatter(&tags, s);
        let active = plan.settings.active_switches();
        min = min.min(active);
        max = max.max(active);
        rows.push(vec![s.to_string(), active.to_string()]);
    }
    println!("{}", markdown_table(&["s", "active switches"], &rows));
    println!(
        "spread: {min}–{max} of {} total switches — the target position is a \
         free parameter, as Theorem 3 promises.\n",
        (n / 2) * 8
    );
}

fn ablation_multicast_tax() {
    println!("## Ablation 2 — what multicast support costs over permutation-only\n");
    let mut rows = Vec::new();
    for m in [4u32, 6, 8, 10, 12, 14] {
        let n = 1usize << m;
        let brsmn = metrics::brsmn_switches(n);
        let cc = ChengChenNetwork::new(n).unwrap().switches();
        rows.push(vec![
            n.to_string(),
            brsmn.to_string(),
            cc.to_string(),
            format!("{:.2}×", brsmn as f64 / cc as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["n", "BRSMN (multicast)", "Cheng–Chen (permutation)", "tax"],
            &rows
        )
    );
    println!(
        "The scatter networks double the per-level hardware: multicast costs \
         asymptotically 2× the permutation-only design.\n"
    );
}

fn ablation_feedback_reprogramming() {
    println!("## Ablation 3 — feedback reprogramming overhead\n");
    let mut rows = Vec::new();
    for m in [4u32, 6, 8, 10] {
        let n = 1usize << m;
        let asg = dense_workload(n, 11);
        let (_, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
        let unfolded_once = metrics::brsmn_switches(n);
        rows.push(vec![
            n.to_string(),
            stats.reprogrammed_switches.to_string(),
            unfolded_once.to_string(),
            format!(
                "{:.2}×",
                stats.reprogrammed_switches as f64 / unfolded_once as f64
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "feedback switch writes",
                "unfolded switch count",
                "ratio"
            ],
            &rows
        )
    );
    println!(
        "Reprogramming work equals the unfolded network's one-shot programming \
         (same total switch settings) — reuse costs time multiplexing, not \
         extra setting computations.\n"
    );
}

fn ablation_tag_overhead() {
    println!("## Ablation 4 — routing-tag stream size vs destination lists\n");
    let mut rows = Vec::new();
    for m in [4u32, 6, 8, 10] {
        let n = 1usize << m;
        let asg = dense_workload(n, 3);
        // SEQ: n−1 tags × 3 bits each, per active input.
        let seq_bits: usize = (0..n)
            .filter(|&i| !asg.dests(i).is_empty())
            .map(|i| {
                let msg = SelfRoutedMsg::prepare(n, i, asg.dests(i));
                msg.seq.len() * 3
            })
            .sum();
        // Destination list: |I_i| × log n bits per active input.
        let list_bits: usize = (0..n).map(|i| asg.dests(i).len() * m as usize).sum();
        rows.push(vec![
            n.to_string(),
            seq_bits.to_string(),
            list_bits.to_string(),
            format!("{:.2}×", seq_bits as f64 / list_bits.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["n", "SEQ header bits", "dest-list bits", "overhead"],
            &rows
        )
    );
    println!(
        "The SEQ format trades header size (Θ(n) bits per message worst case) \
         for O(1)-buffer self-routing at every switch — the paper's Section 7.1 \
         overhead made concrete.\n"
    );

    // Sanity: everything still routes.
    let asg = dense_workload(256, 3);
    let net = Brsmn::new(256).unwrap();
    assert!(net.route_self_routing(&asg).unwrap().realizes(&asg));
}
