//! `parallel_report` — measures the batched parallel routing engine and
//! emits the full [`brsmn_bench::ParallelReport`] as JSON on stdout.
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin parallel_report            # defaults
//! cargo run --release -p brsmn-bench --bin parallel_report 256 128 7  # n frames seed
//! ```
//!
//! The JSON includes, per worker count, the wall time, frames/s, measured
//! speedup over one worker, and the engine's per-stage instrumentation
//! (per-level wall time, switch settings, sweep passes). See EXPERIMENTS.md
//! for how to read it.

use brsmn_bench::parallel_sweep;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().map_or(64, |s| s.parse().expect("n"));
    let frames: usize = args.get(1).map_or(64, |s| s.parse().expect("frames"));
    let seed: u64 = args.get(2).map_or(7, |s| s.parse().expect("seed"));
    assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");

    let report = parallel_sweep(n, frames, seed, &[1, 2, 4]);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    let best = report
        .points
        .iter()
        .map(|p| p.speedup_vs_one)
        .fold(0.0f64, f64::max);
    eprintln!(
        "n={n} frames={frames}: best measured speedup {best:.2}x, modeled 4-fabric speedup {:.2}x",
        report.modeled_speedup_4_fabrics
    );
}
