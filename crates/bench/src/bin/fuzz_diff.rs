//! Differential fuzzing harness: hammers every engine with seeded random
//! assignments and fails loudly on the first disagreement with the crossbar
//! reference. Useful as a long-running soak test:
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin fuzz_diff -- 10000 42
//! ```
//! (arguments: iterations, base seed; defaults 500, 1.)

use brsmn_baselines::{CopyBenesMulticast, Crossbar};
use brsmn_core::{Brsmn, FeedbackBrsmn};
use brsmn_workloads::{random_multicast, RandomSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iterations: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(500);
    let base_seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let sizes = [4usize, 8, 16, 32, 64, 128, 256];
    let mut checked = 0u64;
    for it in 0..iterations {
        let seed = base_seed.wrapping_add(it);
        let n = sizes[(seed % sizes.len() as u64) as usize];
        let load = 0.2 + (seed % 8) as f64 * 0.1;
        let source_fraction = 0.05 + (seed % 10) as f64 * 0.1;
        let asg = random_multicast(
            RandomSpec {
                n,
                load,
                source_fraction,
            },
            seed,
        );

        let reference = Crossbar::new(n).route(&asg).expect("crossbar");
        assert!(reference.realizes(&asg));

        let net = Brsmn::new(n).unwrap();
        let sem = net.route(&asg).unwrap_or_else(|e| panic!("seed {seed}: semantic: {e}"));
        assert_eq!(sem, reference, "seed {seed}: semantic vs crossbar");

        let slf = net
            .route_self_routing(&asg)
            .unwrap_or_else(|e| panic!("seed {seed}: self-routing: {e}"));
        assert_eq!(slf, reference, "seed {seed}: self-routing vs crossbar");

        let (fb, _) = FeedbackBrsmn::new(n)
            .unwrap()
            .route(&asg)
            .unwrap_or_else(|e| panic!("seed {seed}: feedback: {e}"));
        assert_eq!(fb, reference, "seed {seed}: feedback vs crossbar");

        let (classical, _) = CopyBenesMulticast::new(n)
            .unwrap()
            .route(&asg)
            .unwrap_or_else(|e| panic!("seed {seed}: classical: {e}"));
        assert_eq!(classical, reference, "seed {seed}: classical vs crossbar");

        checked += 1;
        if it % 100 == 99 {
            eprintln!("… {checked} cases clean");
        }
    }
    println!("differential fuzz: {checked} random assignments, 4 engines each, all agree ✓");
}
