//! Emits a machine-readable JSON report of every measured quantity the
//! repository produces — the reproducibility artifact behind EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p brsmn-bench --bin report > report.json`

use brsmn_baselines::{BenesNetwork, ChengChenNetwork, CopyBenesMulticast};
use brsmn_bench::{cost_sweep, table2_at};
use brsmn_core::{metrics, Brsmn, FeedbackBrsmn};
use brsmn_sim::{
    brsmn_routing_time, feedback_routing_time, rbn_sweep_latency, setup_amortization_point,
    transfer_time, Fabric,
};
use brsmn_workloads::{random_multicast, random_permutation, RandomSpec};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    table2: Vec<brsmn_bench::MeasuredRow>,
    cost_sweep: Vec<brsmn_bench::CostPoint>,
    routing_time: Vec<RoutingTimePoint>,
    looping: Vec<LoopingPoint>,
    transfer: Vec<TransferPoint>,
    verification: Vec<VerificationPoint>,
}

#[derive(Serialize)]
struct RoutingTimePoint {
    n: usize,
    sweep_latency_gd: u64,
    brsmn_total_gd: u64,
    feedback_total_gd: u64,
    depth_stages: u64,
}

#[derive(Serialize)]
struct LoopingPoint {
    n: usize,
    steps: u64,
    ratio_vs_self_routing: f64,
}

#[derive(Serialize)]
struct TransferPoint {
    n: usize,
    payload_bits: u64,
    brsmn_gd: u64,
    classical_gd: u64,
    amortization_bits: Option<u64>,
}

#[derive(Serialize)]
struct VerificationPoint {
    n: usize,
    seed: u64,
    connections: usize,
    brsmn_ok: bool,
    self_routing_ok: bool,
    feedback_ok: bool,
    classical_ok: bool,
    chengchen_permutation_ok: bool,
}

fn main() {
    let table2 = [64usize, 256, 1024, 4096, 16384]
        .iter()
        .flat_map(|&n| table2_at(n))
        .collect();

    let routing_time = (2u32..=16)
        .map(|m| {
            let n = 1usize << m;
            RoutingTimePoint {
                n,
                sweep_latency_gd: rbn_sweep_latency(n),
                brsmn_total_gd: brsmn_routing_time(n).total,
                feedback_total_gd: feedback_routing_time(n).total,
                depth_stages: metrics::brsmn_depth(n),
            }
        })
        .collect();

    let looping = [64usize, 256, 1024, 4096]
        .iter()
        .map(|&n| {
            let benes = BenesNetwork::new(n).unwrap();
            let asg = random_permutation(n, 7);
            let perm: Vec<Option<usize>> =
                (0..n).map(|i| asg.dests(i).first().copied()).collect();
            let steps = benes.route(&perm).unwrap().1.steps;
            LoopingPoint {
                n,
                steps,
                ratio_vs_self_routing: (steps * brsmn_sim::timing::LOOPING_STEP_DELAY) as f64
                    / brsmn_routing_time(n).total as f64,
            }
        })
        .collect();

    let transfer = [256usize, 4096]
        .iter()
        .flat_map(|&n| {
            let benes = BenesNetwork::new(n).unwrap();
            let asg = random_permutation(n, 7);
            let perm: Vec<Option<usize>> =
                (0..n).map(|i| asg.dests(i).first().copied()).collect();
            let steps = benes.route(&perm).unwrap().1.steps;
            [64u64, 4096, 1 << 18].into_iter().map(move |bits| TransferPoint {
                n,
                payload_bits: bits,
                brsmn_gd: transfer_time(Fabric::Brsmn, n, bits).total(),
                classical_gd: transfer_time(Fabric::Classical { loop_steps: steps }, n, bits)
                    .total(),
                amortization_bits: setup_amortization_point(n, steps, 1.05, 1 << 40),
            })
        })
        .collect();

    let verification = [(64usize, 1u64), (256, 2), (1024, 3)]
        .iter()
        .map(|&(n, seed)| {
            let asg = random_multicast(RandomSpec::dense(n), seed);
            let net = Brsmn::new(n).unwrap();
            let perm = random_permutation(n, seed);
            VerificationPoint {
                n,
                seed,
                connections: asg.total_connections(),
                brsmn_ok: net.route(&asg).map(|r| r.realizes(&asg)).unwrap_or(false),
                self_routing_ok: net
                    .route_self_routing(&asg)
                    .map(|r| r.realizes(&asg))
                    .unwrap_or(false),
                feedback_ok: FeedbackBrsmn::new(n)
                    .unwrap()
                    .route(&asg)
                    .map(|(r, _)| r.realizes(&asg))
                    .unwrap_or(false),
                classical_ok: CopyBenesMulticast::new(n)
                    .unwrap()
                    .route(&asg)
                    .map(|(r, _)| r.realizes(&asg))
                    .unwrap_or(false),
                chengchen_permutation_ok: ChengChenNetwork::new(n)
                    .unwrap()
                    .route(&perm)
                    .map(|r| r.realizes(&perm))
                    .unwrap_or(false),
            }
        })
        .collect();

    let report = Report {
        table2,
        cost_sweep: cost_sweep(2, 16),
        routing_time,
        looping,
        transfer,
        verification,
    };
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
}
