//! Regenerates **Table 1** of the paper: the 3-bit encoding scheme for tag
//! values, straight from the implementation in `brsmn-switch`.
//!
//! Run: `cargo run -p brsmn-bench --bin table1`

use brsmn_bench::markdown_table;
use brsmn_switch::encoding::{encode_qtag, encode_tag};
use brsmn_switch::{QTag, Tag};

fn main() {
    println!("## Table 1 — An encoding scheme for tag values\n");
    let fmt = |c: brsmn_switch::encoding::TagCode| {
        format!(
            "{}{}{}",
            c.b0 as u8,
            c.b1 as u8,
            c.b2 as u8
        )
    };
    let rows = vec![
        vec!["0".into(), fmt(encode_tag(Tag::Zero))],
        vec!["1".into(), fmt(encode_tag(Tag::One))],
        vec!["α".into(), fmt(encode_tag(Tag::Alpha))],
        vec!["ε".into(), "11X".into()],
        vec!["ε₀".into(), fmt(encode_qtag(QTag::Eps0))],
        vec!["ε₁".into(), fmt(encode_qtag(QTag::Eps1))],
    ];
    println!("{}", markdown_table(&["Tag", "b0 b1 b2"], &rows));

    println!("Counting predicates (Section 7.2):");
    println!("- α counter: b0 ∧ ¬b1  — true only for code 100");
    println!("- ε counter: b0 ∧ b1   — true only for codes 11X");
    println!("- 1s counter (quasisort inputs): b2");
}
