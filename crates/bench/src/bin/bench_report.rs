//! `bench_report` — records the fast-path bench trajectory as
//! `BENCH_route.json`: frames/s and ns/frame for the scratch-arena fast
//! path, the PR-1 allocating reference path, the plan-capture cache
//! (cold capture / warm replay), and the cache-less cold planners
//! (per-frame `simd-cold` vs SoA lockstep `batch-cold`) at
//! n ∈ {64, 256, 1024}, sequential and on 4 workers, over dense 64-frame
//! batches.
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin bench_report             # writes ./BENCH_route.json
//! cargo run --release -p brsmn-bench --bin bench_report out.json 5  # path + repeats
//! ```
//!
//! Headline numbers:
//! * `speedup_fast_vs_reference_seq_n256` — fast ≥ 2× reference frames/s at
//!   n = 256, batch 64, sequential (the fast-path PR's acceptance bar);
//! * `speedup_fast_vs_reference_seq_n1024` — the same ratio at n = 1024;
//! * `speedup_warm_replay_vs_fast_seq_n256` — warm plan-cache replay over
//!   fresh fast-path planning at n = 256, sequential (the plan-cache PR's
//!   acceptance bar: ≥ 2×);
//! * `speedup_batch_cold_vs_simd_cold_seq_n256` — SoA lockstep batch
//!   planning over per-frame planning on a cache-less engine at n = 256,
//!   sequential (how much the batch transpose buys with no replay to hide
//!   behind; the 1.5× cold-vs-warm target itself is gated by
//!   `tests/cold_speedup.rs`).
//!
//! `hardware_threads` records the host's available parallelism: when it is
//! 1, the 4-worker points time-slice one core and their throughput matching
//! the sequential points (busy/wall ≈ 1.0 per point) is expected, not a
//! scheduling defect.

use brsmn_bench::{measure_cold_path, measure_replay_path, measure_route_path, RoutePoint};
use brsmn_core::PlanOpProfile;
use serde::{Deserialize, Serialize};

const FRAMES: usize = 64;
const SEED: u64 = 7;
/// Distinct assignments cycled by the warm-replay batch.
const DISTINCT: usize = 8;

/// The recorded trajectory (`BENCH_route.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RouteBenchReport {
    /// Frames per batch.
    batch: usize,
    /// Workload seed.
    seed: u64,
    /// Best-of-N repeats per point.
    repeats: usize,
    /// Hardware threads available to this run
    /// (`std::thread::available_parallelism`).
    hardware_threads: usize,
    /// Fast over reference frames/s at n = 256, sequential — the fast-path
    /// PR's acceptance headline.
    speedup_fast_vs_reference_seq_n256: f64,
    /// Fast over reference frames/s at n = 1024, sequential.
    speedup_fast_vs_reference_seq_n1024: f64,
    /// Warm plan-cache replay over fresh fast-path planning at n = 256,
    /// sequential — the plan-cache PR's acceptance headline.
    speedup_warm_replay_vs_fast_seq_n256: f64,
    /// SoA lockstep batch planning over per-frame planning on a cache-less
    /// engine at n = 256, sequential — the batch-planner PR's headline.
    speedup_batch_cold_vs_simd_cold_seq_n256: f64,
    /// Where cold planning time goes, per op category, at n = 256
    /// sequential on the per-frame wide-lane kernels. Op counts are always
    /// exact; nanosecond columns need the `plan-profile` cargo feature.
    plan_profile_simd_cold_seq_n256: PlanOpProfile,
    /// The same breakdown on the SoA lockstep batch planner.
    plan_profile_batch_cold_seq_n256: PlanOpProfile,
    /// One measurement per (n, workers, path); every point also embeds its
    /// own `plan_profile`.
    points: Vec<RoutePoint>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_route.json");
    let repeats: usize = args.get(1).map_or(5, |s| s.parse().expect("repeats"));

    let mut points = Vec::new();
    let mut seq_fast = [0.0f64; 2]; // [n=256, n=1024]
    let mut seq_ref = [0.0f64; 2];
    let mut seq_warm_n256 = 0.0f64;
    let mut seq_cold_n256 = [0.0f64; 2]; // [simd-cold, batch-cold]
    let mut seq_cold_profiles: [PlanOpProfile; 2] = Default::default();
    for n in [64usize, 256, 1024] {
        for workers in [1usize, 4] {
            for use_scratch in [true, false] {
                let p = measure_route_path(n, FRAMES, SEED, workers, use_scratch, repeats);
                print_point(&p);
                if workers == 1 {
                    let slot = match n {
                        256 => Some(0),
                        1024 => Some(1),
                        _ => None,
                    };
                    if let Some(s) = slot {
                        if use_scratch {
                            seq_fast[s] = p.frames_per_sec;
                        } else {
                            seq_ref[s] = p.frames_per_sec;
                        }
                    }
                }
                points.push(p);
            }
            for batch_plan in [false, true] {
                let p = measure_cold_path(n, FRAMES, SEED, workers, batch_plan, repeats);
                print_point(&p);
                if n == 256 && workers == 1 {
                    seq_cold_n256[batch_plan as usize] = p.frames_per_sec;
                    seq_cold_profiles[batch_plan as usize] = p.plan_profile.clone();
                }
                points.push(p);
            }
            for warm in [false, true] {
                let p = measure_replay_path(n, FRAMES, SEED, workers, DISTINCT, warm, repeats);
                print_point(&p);
                if n == 256 && workers == 1 && warm {
                    seq_warm_n256 = p.frames_per_sec;
                }
                points.push(p);
            }
        }
    }

    let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { 0.0 };
    let report = RouteBenchReport {
        batch: FRAMES,
        seed: SEED,
        repeats,
        hardware_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        speedup_fast_vs_reference_seq_n256: ratio(seq_fast[0], seq_ref[0]),
        speedup_fast_vs_reference_seq_n1024: ratio(seq_fast[1], seq_ref[1]),
        speedup_warm_replay_vs_fast_seq_n256: ratio(seq_warm_n256, seq_fast[0]),
        speedup_batch_cold_vs_simd_cold_seq_n256: ratio(seq_cold_n256[1], seq_cold_n256[0]),
        plan_profile_simd_cold_seq_n256: seq_cold_profiles[0].clone(),
        plan_profile_batch_cold_seq_n256: seq_cold_profiles[1].clone(),
        points,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(out_path, format!("{json}\n")).expect("write report");
    eprintln!(
        "wrote {out_path}: fast/reference n=256 = {:.2}x, n=1024 = {:.2}x, \
         warm-replay/fast n=256 = {:.2}x, batch-cold/simd-cold n=256 = {:.2}x",
        report.speedup_fast_vs_reference_seq_n256,
        report.speedup_fast_vs_reference_seq_n1024,
        report.speedup_warm_replay_vs_fast_seq_n256,
        report.speedup_batch_cold_vs_simd_cold_seq_n256,
    );
}

fn print_point(p: &RoutePoint) {
    eprintln!(
        "n={:5} workers={} path={:12}: {:>12.0} frames/s, {:>10.0} ns/frame, busy/wall {:.2}",
        p.n, p.workers, p.path, p.frames_per_sec, p.ns_per_frame, p.busy_over_wall
    );
}
