//! `bench_report` — records the fast-path bench trajectory as
//! `BENCH_route.json`: frames/s and ns/frame for the scratch-arena fast
//! path and the PR-1 allocating reference path at n ∈ {64, 256, 1024},
//! sequential and on 4 workers, over dense 64-frame batches.
//!
//! ```text
//! cargo run --release -p brsmn-bench --bin bench_report             # writes ./BENCH_route.json
//! cargo run --release -p brsmn-bench --bin bench_report out.json 5  # path + repeats
//! ```
//!
//! The headline number — the acceptance bar of the fast-path PR — is
//! `speedup_fast_vs_reference_seq_n256`: fast ≥ 2× reference frames/s at
//! n = 256, batch 64, sequential.

use brsmn_bench::{measure_route_path, RoutePoint};
use serde::{Deserialize, Serialize};

const FRAMES: usize = 64;
const SEED: u64 = 7;

/// The recorded trajectory (`BENCH_route.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RouteBenchReport {
    /// Frames per batch.
    batch: usize,
    /// Workload seed.
    seed: u64,
    /// Best-of-N repeats per point.
    repeats: usize,
    /// One measurement per (n, workers, path).
    points: Vec<RoutePoint>,
    /// Fast over reference frames/s at n = 256, sequential — the PR's
    /// acceptance headline.
    speedup_fast_vs_reference_seq_n256: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_route.json");
    let repeats: usize = args.get(1).map_or(5, |s| s.parse().expect("repeats"));

    let mut points = Vec::new();
    let mut seq_fast_n256 = 0.0f64;
    let mut seq_ref_n256 = 0.0f64;
    for n in [64usize, 256, 1024] {
        for workers in [1usize, 4] {
            for use_scratch in [true, false] {
                let p = measure_route_path(n, FRAMES, SEED, workers, use_scratch, repeats);
                eprintln!(
                    "n={:5} workers={} path={:9}: {:>12.0} frames/s, {:>10.0} ns/frame",
                    p.n, p.workers, p.path, p.frames_per_sec, p.ns_per_frame
                );
                if n == 256 && workers == 1 {
                    if use_scratch {
                        seq_fast_n256 = p.frames_per_sec;
                    } else {
                        seq_ref_n256 = p.frames_per_sec;
                    }
                }
                points.push(p);
            }
        }
    }

    let speedup = if seq_ref_n256 > 0.0 {
        seq_fast_n256 / seq_ref_n256
    } else {
        0.0
    };
    let report = RouteBenchReport {
        batch: FRAMES,
        seed: SEED,
        repeats,
        points,
        speedup_fast_vs_reference_seq_n256: speedup,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(out_path, format!("{json}\n")).expect("write report");
    eprintln!("wrote {out_path}: fast/reference at n=256 sequential = {speedup:.2}x");
}
