//! Criterion bench for the batched parallel routing engine: the same dense
//! batch routed by 1, 2 and 4 workers, at batch sizes from 16 to 128
//! frames. The acceptance bar for this workspace is ≥ 1.5× speedup at 4
//! workers on batches of ≥ 64 frames (see EXPERIMENTS.md); the worker
//! counts bracket that point so the scaling shape is visible in one run.

use brsmn_bench::dense_batch;
use brsmn_core::{Engine, EngineConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_worker_scaling(c: &mut Criterion) {
    let n = 64usize;
    let mut group = c.benchmark_group("parallel_throughput_n64");
    for frames in [16usize, 64, 128] {
        let batch = dense_batch(n, frames, 7);
        group.throughput(Throughput::Elements(frames as u64));
        for workers in [1usize, 2, 4] {
            let engine = Engine::with_config(n, EngineConfig::batch(workers)).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("{frames}frames"), workers),
                &batch,
                |b, batch| b.iter(|| black_box(engine.route_batch(black_box(batch)))),
            );
        }
    }
    group.finish();
}

fn bench_intra_frame(c: &mut Criterion) {
    // Concurrent-halves recursion on single large frames: latency, not
    // throughput — the win only appears once blocks are big enough to
    // amortize a thread spawn.
    let mut group = c.benchmark_group("parallel_halves");
    for n in [256usize, 1024] {
        let batch = dense_batch(n, 1, 11);
        for (label, cfg) in [
            ("seq", EngineConfig::sequential()),
            ("fork2", EngineConfig::single_frame(2)),
        ] {
            let engine = Engine::with_config(n, cfg).unwrap();
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &batch[0],
                |b, asg| b.iter(|| black_box(engine.route_one(black_box(asg)))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_intra_frame);
criterion_main!(benches);
