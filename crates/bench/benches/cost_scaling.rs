//! Criterion bench for the cost-scaling claim: end-to-end simulated routing
//! work of the BRSMN vs the feedback implementation across a size sweep.
//! The feedback network does the same *logical* work on (log n + 1)/2 times
//! fewer switches; per-assignment wall-clock should track the Θ(n log² n)
//! total switch-visit count for both.

use brsmn_bench::dense_workload;
use brsmn_core::{Brsmn, FeedbackBrsmn};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_scaling");
    for m in [4u32, 6, 8, 10, 11] {
        let n = 1usize << m;
        let asg = dense_workload(n, 5);
        group.throughput(Throughput::Elements(n as u64));

        let net = Brsmn::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("unfolded", n), &asg, |b, asg| {
            b.iter(|| black_box(net.route(black_box(asg)).unwrap()))
        });

        let fb = FeedbackBrsmn::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("feedback", n), &asg, |b, asg| {
            b.iter(|| black_box(fb.route(black_box(asg)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
