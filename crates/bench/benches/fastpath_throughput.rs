//! Criterion bench for the zero-allocation routing fast path: the same
//! dense 64-frame batch routed by the scratch-arena path
//! (`Brsmn::route_into`, buffers reused across frames) and by the PR-1
//! allocating reference router, at n ∈ {64, 256, 1024}.
//!
//! The recorded trajectory lives in `BENCH_route.json` (regenerate with
//! `cargo run --release -p brsmn-bench --bin bench_report`); the
//! acceptance bar is fast ≥ 2× reference frames/s at n = 256 sequential.

use brsmn_bench::dense_batch;
use brsmn_core::{Brsmn, RouteScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

const FRAMES: usize = 64;

fn bench_fast_vs_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_throughput");
    for n in [64usize, 256, 1024] {
        let batch = dense_batch(n, FRAMES, 7);
        let net = Brsmn::new(n).unwrap();
        group.throughput(Throughput::Elements(FRAMES as u64));

        let mut scratch = RouteScratch::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("fast", n), &batch, |b, batch| {
            b.iter(|| {
                for asg in batch {
                    net.route_into(black_box(asg), &mut scratch).unwrap();
                    black_box(scratch.output_sources().flatten().count());
                }
            })
        });

        group.bench_with_input(BenchmarkId::new("reference", n), &batch, |b, batch| {
            b.iter(|| {
                for asg in batch {
                    black_box(net.route_reference(black_box(asg)).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fast_vs_reference);
criterion_main!(benches);
