//! Criterion bench over the motivating workload patterns of Section 1:
//! broadcast (barrier), conference groups, replica updates, matrix-row
//! broadcast, and permutation traffic, all at a fixed size — showing the
//! BRSMN's routing work is insensitive to fanout shape (nonblocking for
//! *arbitrary* multicast assignments, not just friendly ones).

use brsmn_core::Brsmn;
use brsmn_workloads::{
    barrier_broadcast, even_conferences, matrix_row_broadcast, random_permutation, replica_update,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_patterns(c: &mut Criterion) {
    let n = 256usize;
    let net = Brsmn::new(n).unwrap();
    let mut group = c.benchmark_group("patterns_n256");

    let cases = vec![
        ("broadcast", barrier_broadcast(n, 0)),
        ("conferences_x16", even_conferences(n, 16)),
        ("replica_x8", replica_update(n, 8)),
        ("matrix_rows", matrix_row_broadcast(16)),
        ("permutation", random_permutation(n, 1)),
    ];
    for (name, asg) in cases {
        group.bench_function(name, |b| {
            b.iter(|| black_box(net.route(black_box(&asg)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
