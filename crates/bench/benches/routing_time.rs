//! Criterion bench for the *routing set-up* cost alone (no data movement):
//! the distributed planning algorithms of the self-routing design versus the
//! centralized looping algorithm of the Beneš distributor. This is the
//! "Routing time" column of Table 2 in wall-clock form: self-routing
//! planning is near-linear work spread over stages, looping is a serial
//! chain walk.

use brsmn_baselines::BenesNetwork;
use brsmn_rbn::{plan_bitsort, plan_quasisort, plan_scatter};
use brsmn_switch::Tag;
use brsmn_workloads::random_permutation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn tags_for(n: usize, seed: u64) -> Vec<Tag> {
    (0..n)
        .map(|i| {
            match (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 61 {
                0 => Tag::Alpha,
                1..=3 => Tag::Eps,
                4 | 5 => Tag::Zero,
                _ => Tag::One,
            }
        })
        .collect()
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_time");
    for m in [6u32, 8, 10] {
        let n = 1usize << m;

        let tags = tags_for(n, 3);
        group.bench_with_input(BenchmarkId::new("plan_scatter", n), &tags, |b, tags| {
            b.iter(|| black_box(plan_scatter(black_box(tags), 0)))
        });

        let chi: Vec<Tag> = tags
            .iter()
            .map(|&t| if t == Tag::Alpha { Tag::Zero } else { t })
            .collect();
        // Keep the quasisort precondition: trim overfull halves to ε.
        let mut qs = chi.clone();
        for want in [Tag::Zero, Tag::One] {
            let mut count = 0;
            for t in qs.iter_mut() {
                if *t == want {
                    count += 1;
                    if count > n / 2 {
                        *t = Tag::Eps;
                    }
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("plan_quasisort", n), &qs, |b, qs| {
            b.iter(|| black_box(plan_quasisort(black_box(qs)).unwrap()))
        });

        let gamma: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        group.bench_with_input(BenchmarkId::new("plan_bitsort", n), &gamma, |b, g| {
            b.iter(|| black_box(plan_bitsort(black_box(g), n / 2)))
        });

        let benes = BenesNetwork::new(n).unwrap();
        let asg = random_permutation(n, 9);
        let perm: Vec<Option<usize>> = (0..n).map(|i| asg.dests(i).first().copied()).collect();
        group.bench_with_input(BenchmarkId::new("benes_looping", n), &perm, |b, perm| {
            b.iter(|| black_box(benes.route(black_box(perm)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
