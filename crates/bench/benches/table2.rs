//! Criterion bench behind Table 2: wall-clock end-to-end routing of one
//! dense multicast assignment through each network, across sizes. The
//! paper's unit is gate delays (see the `table2` binary for that); this
//! bench confirms the same ordering holds for simulated wall-clock.

use brsmn_baselines::{CopyBenesMulticast, Crossbar};
use brsmn_bench::dense_workload;
use brsmn_core::{Brsmn, FeedbackBrsmn};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_route");
    for m in [5u32, 7, 9] {
        let n = 1usize << m;
        let asg = dense_workload(n, 42);

        let net = Brsmn::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("brsmn", n), &asg, |b, asg| {
            b.iter(|| black_box(net.route(black_box(asg)).unwrap()))
        });

        let net = Brsmn::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("brsmn_self_routing", n), &asg, |b, asg| {
            b.iter(|| black_box(net.route_self_routing(black_box(asg)).unwrap()))
        });

        let fb = FeedbackBrsmn::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("feedback", n), &asg, |b, asg| {
            b.iter(|| black_box(fb.route(black_box(asg)).unwrap()))
        });

        let classical = CopyBenesMulticast::new(n).unwrap();
        group.bench_with_input(BenchmarkId::new("copy_benes", n), &asg, |b, asg| {
            b.iter(|| black_box(classical.route(black_box(asg)).unwrap()))
        });

        let xbar = Crossbar::new(n);
        group.bench_with_input(BenchmarkId::new("crossbar", n), &asg, |b, asg| {
            b.iter(|| black_box(xbar.route(black_box(asg)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
