//! The structured collective-communication patterns the paper's introduction
//! motivates: replicated-database updates, matrix multiplication, barrier
//! synchronization, and video/teleconference calls.

use brsmn_core::MulticastAssignment;

/// Barrier-synchronization release: one `root` input broadcasts to all `n`
//  outputs (the wake-up phase of a barrier).
pub fn barrier_broadcast(n: usize, root: usize) -> MulticastAssignment {
    assert!(root < n);
    let mut sets = vec![Vec::new(); n];
    sets[root] = (0..n).collect();
    MulticastAssignment::from_sets(n, sets).expect("valid broadcast")
}

/// Row broadcast in block matrix multiplication: with `n = r²` processors in
/// an `r × r` grid, the diagonal holder of each row multicasts its A-block
/// to the whole row.
pub fn matrix_row_broadcast(r: usize) -> MulticastAssignment {
    let n = r * r;
    let mut sets = vec![Vec::new(); n];
    for row in 0..r {
        let holder = row * r + (row % r); // the diagonal processor of the row
        sets[holder] = (row * r..(row + 1) * r).collect();
    }
    MulticastAssignment::from_sets(n, sets).expect("rows are disjoint")
}

/// Video-conference traffic: outputs are partitioned into `groups.len()`
/// conferences; the current speaker of each conference (an input index)
/// multicasts to every participant of that conference.
///
/// `groups[g] = (speaker, participants)`; participant lists must be
/// disjoint across groups.
pub fn conference_groups(
    n: usize,
    groups: &[(usize, Vec<usize>)],
) -> Result<MulticastAssignment, brsmn_core::AssignmentError> {
    let mut sets = vec![Vec::new(); n];
    for (speaker, participants) in groups {
        sets[*speaker].extend(participants.iter().copied());
    }
    MulticastAssignment::from_sets(n, sets)
}

/// Evenly partitioned conferences: `k` groups of `n/k` consecutive outputs,
/// speaker `g·(n/k)` for each.
pub fn even_conferences(n: usize, k: usize) -> MulticastAssignment {
    assert!(k > 0 && n.is_multiple_of(k));
    let span = n / k;
    let groups: Vec<(usize, Vec<usize>)> = (0..k)
        .map(|g| (g * span, (g * span..(g + 1) * span).collect()))
        .collect();
    conference_groups(n, &groups).expect("partition is disjoint")
}

/// Replicated-database update: `primaries` nodes each push an update to
/// their replica group; outputs are striped round-robin over the primaries.
pub fn replica_update(n: usize, primaries: usize) -> MulticastAssignment {
    assert!(primaries >= 1 && primaries <= n);
    let mut sets = vec![Vec::new(); n];
    for output in 0..n {
        sets[output % primaries].push(output);
    }
    MulticastAssignment::from_sets(n, sets).expect("striping is disjoint")
}

/// A unicast ring shift by `k` (classic permutation workload): input `i`
/// sends to output `(i + k) mod n`.
pub fn ring_shift(n: usize, k: usize) -> MulticastAssignment {
    let perm: Vec<Option<usize>> = (0..n).map(|i| Some((i + k) % n)).collect();
    MulticastAssignment::from_permutation(&perm).expect("rotation is a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::Brsmn;

    #[test]
    fn barrier_covers_everything() {
        let asg = barrier_broadcast(16, 3);
        assert_eq!(asg.total_connections(), 16);
        assert_eq!(asg.active_inputs(), 1);
        assert_eq!(asg.max_fanout(), 16);
    }

    #[test]
    fn matrix_rows_partition_outputs() {
        let asg = matrix_row_broadcast(4); // n = 16
        assert_eq!(asg.n(), 16);
        assert_eq!(asg.total_connections(), 16);
        assert_eq!(asg.active_inputs(), 4);
        for o in 0..16 {
            assert!(asg.source_of_output(o).is_some());
        }
    }

    #[test]
    fn even_conferences_partition() {
        let asg = even_conferences(16, 4);
        assert_eq!(asg.active_inputs(), 4);
        assert_eq!(asg.max_fanout(), 4);
        assert_eq!(asg.total_connections(), 16);
    }

    #[test]
    fn conference_overlap_rejected() {
        let err = conference_groups(8, &[(0, vec![0, 1, 2]), (4, vec![2, 3])]);
        assert!(err.is_err());
    }

    #[test]
    fn replica_striping() {
        let asg = replica_update(8, 3);
        assert_eq!(asg.dests(0), &[0, 3, 6]);
        assert_eq!(asg.dests(1), &[1, 4, 7]);
        assert_eq!(asg.dests(2), &[2, 5]);
    }

    #[test]
    fn ring_shift_is_permutation() {
        let asg = ring_shift(8, 3);
        assert!(asg.is_permutation());
        assert_eq!(asg.dests(6), &[1]);
    }

    #[test]
    fn all_patterns_route_through_brsmn() {
        for asg in [
            barrier_broadcast(32, 7),
            matrix_row_broadcast(4),
            even_conferences(32, 8),
            replica_update(32, 5),
            ring_shift(32, 11),
        ] {
            let net = Brsmn::new(asg.n()).unwrap();
            let r = net.route(&asg).unwrap();
            assert!(r.realizes(&asg), "{asg}");
        }
    }
}
