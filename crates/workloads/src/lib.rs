//! Multicast-assignment generators: the traffic patterns that motivate the
//! paper (Section 1) plus parameterized random workloads for benchmarks.
//!
//! Every generator returns a valid [`brsmn_core::MulticastAssignment`]
//! (pairwise-disjoint destination sets), so anything produced here is
//! realizable by the BRSMN — that is the paper's nonblocking theorem, and
//! the test suites exercise it with exactly these workloads.

//! ```
//! use brsmn_workloads::{random_multicast, RandomSpec, schedule_rounds, Request};
//!
//! // Seeded random traffic is reproducible:
//! let a = random_multicast(RandomSpec::dense(64), 7);
//! assert_eq!(a, random_multicast(RandomSpec::dense(64), 7));
//!
//! // Overlapping requests pack into conflict-free rounds:
//! let sched = schedule_rounds(8, &[
//!     Request::new(0, vec![3, 4]),
//!     Request::new(1, vec![4, 5]), // contends for output 4
//! ]);
//! assert_eq!(sched.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod patterns;
pub mod queueing;
pub mod random;
pub mod schedule;
pub mod sessions;

pub use patterns::{
    barrier_broadcast, conference_groups, even_conferences, matrix_row_broadcast, replica_update,
    ring_shift,
};
pub use random::{random_multicast, random_partial_permutation, random_permutation, RandomSpec};
pub use queueing::{simulate_queueing, QueueConfig, QueueError, QueueStats};
pub use schedule::{rounds_lower_bound, schedule_rounds, Request, Schedule};
pub use sessions::{simulate, SessionConfig, SessionRouteError, SessionSim, SessionStats};
