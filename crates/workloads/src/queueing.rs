//! Input-queued switch simulation: random multicast request arrivals, FIFO
//! queues per input, one BRSMN pass per round — the throughput/latency
//! evaluation a deployed fabric faces.
//!
//! Every round, each input may receive a new multicast request (geometric
//! arrivals at rate `p_arrival`, random fanout). The round scheduler
//! admits a conflict-free set of *queue heads* (rotating priority to avoid
//! starvation), which forms one valid assignment; the network — being
//! nonblocking — routes whatever the scheduler admits, so all contention
//! effects measured here are head-of-line/queueing effects, never fabric
//! blocking.

use brsmn_core::MulticastAssignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Arrival-process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Network size.
    pub n: usize,
    /// Probability a new request arrives at each input each round.
    pub p_arrival: f64,
    /// Maximum fanout of a request (destinations drawn uniformly).
    pub max_fanout: usize,
}

/// Aggregate results of one queueing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests fully served.
    pub served: usize,
    /// Requests still queued at the end.
    pub backlog: usize,
    /// Mean rounds a served request waited (arrival → service).
    pub mean_wait: f64,
    /// Worst wait observed.
    pub max_wait: usize,
    /// Mean fraction of outputs busy per round.
    pub output_utilization: f64,
}

struct Pending {
    dests: Vec<usize>,
    arrived_round: usize,
}

/// Runs the input-queued simulation for `rounds` rounds, calling `router`
/// on every admitted assignment (must return `true` = realized; the BRSMN
/// always does).
pub fn simulate_queueing<F: FnMut(&MulticastAssignment) -> bool>(
    config: QueueConfig,
    seed: u64,
    rounds: usize,
    mut router: F,
) -> QueueStats {
    let n = config.n;
    assert!(n.is_power_of_two() && n >= 2);
    assert!(config.max_fanout >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queues: Vec<VecDeque<Pending>> = (0..n).map(|_| VecDeque::new()).collect();

    let mut stats = QueueStats {
        rounds,
        arrived: 0,
        served: 0,
        backlog: 0,
        mean_wait: 0.0,
        max_wait: 0,
        output_utilization: 0.0,
    };
    let mut total_wait = 0usize;
    let mut busy_outputs = 0usize;

    for round in 0..rounds {
        // Arrivals.
        for queue in queues.iter_mut() {
            if rng.gen_bool(config.p_arrival.clamp(0.0, 1.0)) {
                let fan = rng.gen_range(1..=config.max_fanout);
                let mut dests: Vec<usize> = (0..fan).map(|_| rng.gen_range(0..n)).collect();
                dests.sort_unstable();
                dests.dedup();
                queue.push_back(Pending {
                    dests,
                    arrived_round: round,
                });
                stats.arrived += 1;
            }
        }

        // Admission: rotating-priority scan over queue heads.
        let mut output_free = vec![true; n];
        let mut sets = vec![Vec::new(); n];
        let mut admitted: Vec<usize> = Vec::new();
        for k in 0..n {
            let input = (round + k) % n;
            if let Some(head) = queues[input].front() {
                if head.dests.iter().all(|&d| output_free[d]) {
                    for &d in &head.dests {
                        output_free[d] = false;
                    }
                    sets[input] = head.dests.clone();
                    admitted.push(input);
                }
            }
        }

        // Route the admitted round.
        let asg = MulticastAssignment::from_sets(n, sets).expect("admission keeps outputs disjoint");
        busy_outputs += asg.total_connections();
        assert!(router(&asg), "round {round} failed to route");

        // Dequeue served heads.
        for input in admitted {
            let head = queues[input].pop_front().expect("admitted head exists");
            let wait = round - head.arrived_round;
            total_wait += wait;
            stats.max_wait = stats.max_wait.max(wait);
            stats.served += 1;
        }
    }

    stats.backlog = queues.iter().map(|q| q.len()).sum();
    stats.mean_wait = if stats.served > 0 {
        total_wait as f64 / stats.served as f64
    } else {
        0.0
    };
    stats.output_utilization = busy_outputs as f64 / (rounds * n) as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::Brsmn;

    fn run(n: usize, p: f64, fan: usize, rounds: usize, seed: u64) -> QueueStats {
        let net = Brsmn::new(n).unwrap();
        simulate_queueing(
            QueueConfig {
                n,
                p_arrival: p,
                max_fanout: fan,
            },
            seed,
            rounds,
            |asg| net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false),
        )
    }

    #[test]
    fn conservation_of_requests() {
        let s = run(32, 0.4, 4, 300, 1);
        assert_eq!(s.arrived, s.served + s.backlog);
        assert!(s.served > 0);
    }

    #[test]
    fn light_load_has_negligible_wait() {
        let s = run(64, 0.02, 2, 400, 2);
        assert!(s.mean_wait < 0.5, "{s:?}");
        assert!(s.backlog <= 2, "{s:?}");
    }

    #[test]
    fn heavy_load_builds_queues() {
        let light = run(32, 0.05, 4, 300, 3);
        let heavy = run(32, 0.9, 8, 300, 3);
        assert!(heavy.mean_wait > light.mean_wait * 3.0, "{light:?} vs {heavy:?}");
        assert!(heavy.output_utilization > light.output_utilization);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let s = run(16, 1.0, 16, 200, 4);
        assert!(s.output_utilization <= 1.0);
        assert!(s.output_utilization > 0.3, "{s:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(16, 0.5, 4, 100, 9);
        let b = run(16, 0.5, 4, 100, 9);
        assert_eq!(a, b);
        let c = run(16, 0.5, 4, 100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_arrivals_idle() {
        let s = run(16, 0.0, 4, 50, 5);
        assert_eq!(s.arrived, 0);
        assert_eq!(s.served, 0);
        assert_eq!(s.output_utilization, 0.0);
    }
}
