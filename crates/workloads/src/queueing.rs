//! Input-queued switch simulation: random multicast request arrivals, FIFO
//! queues per input, one BRSMN pass per round — the throughput/latency
//! evaluation a deployed fabric faces.
//!
//! Every round, each input may receive a new multicast request (geometric
//! arrivals at rate `p_arrival`, random fanout). The round scheduler
//! admits a conflict-free set of *queue heads* (rotating priority to avoid
//! starvation), which forms one valid assignment; the network — being
//! nonblocking — routes whatever the scheduler admits, so all contention
//! effects measured here are head-of-line/queueing effects, never fabric
//! blocking.

use brsmn_core::MulticastAssignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Arrival-process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Network size.
    pub n: usize,
    /// Probability a new request arrives at each input each round.
    pub p_arrival: f64,
    /// Maximum fanout of a request (destinations drawn uniformly). Must be
    /// at least 1; values above `n` are clamped to `n` at validation.
    pub max_fanout: usize,
}

impl QueueConfig {
    /// Validates and normalizes the configuration: `n` must be a power of
    /// two ≥ 2 and `max_fanout` nonzero; `max_fanout > n` clamps to `n` (a
    /// request cannot address more outputs than exist) and `p_arrival`
    /// clamps into `[0, 1]`.
    pub fn validate(mut self) -> Result<QueueConfig, QueueError> {
        if !self.n.is_power_of_two() || self.n < 2 {
            return Err(QueueError::InvalidSize { n: self.n });
        }
        if self.max_fanout == 0 {
            return Err(QueueError::ZeroFanout);
        }
        self.max_fanout = self.max_fanout.min(self.n);
        self.p_arrival = self.p_arrival.clamp(0.0, 1.0);
        Ok(self)
    }
}

/// A queueing simulation that could not run (or complete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueError {
    /// `n` is not a power of two ≥ 2.
    InvalidSize {
        /// The offending size.
        n: usize,
    },
    /// `max_fanout` is 0 — every request needs at least one destination.
    ZeroFanout,
    /// The router callback reported a round it could not realize.
    RoutingFailed {
        /// The failed round.
        round: usize,
    },
}

impl fmt::Display for QueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueError::InvalidSize { n } => {
                write!(f, "queue config: n must be a power of two >= 2, got {n}")
            }
            QueueError::ZeroFanout => {
                write!(f, "queue config: max_fanout must be >= 1")
            }
            QueueError::RoutingFailed { round } => {
                write!(f, "router failed to realize the admitted round {round}")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// Aggregate results of one queueing simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Requests that arrived.
    pub arrived: usize,
    /// Requests fully served.
    pub served: usize,
    /// Requests still queued at the end.
    pub backlog: usize,
    /// Mean rounds a served request waited (arrival → service).
    pub mean_wait: f64,
    /// Worst wait observed.
    pub max_wait: usize,
    /// Mean fraction of outputs busy per round.
    pub output_utilization: f64,
}

struct Pending {
    dests: Vec<usize>,
    arrived_round: usize,
}

/// Runs the input-queued simulation for `rounds` rounds, calling `router`
/// on every admitted assignment (must return `true` = realized; the BRSMN
/// always does).
///
/// The configuration is [validated](QueueConfig::validate) up front, so a
/// degenerate `max_fanout` (0, or larger than `n`) yields a typed
/// [`QueueError`] or a clamped draw rather than a mid-simulation panic.
pub fn simulate_queueing<F: FnMut(&MulticastAssignment) -> bool>(
    config: QueueConfig,
    seed: u64,
    rounds: usize,
    mut router: F,
) -> Result<QueueStats, QueueError> {
    let config = config.validate()?;
    let n = config.n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queues: Vec<VecDeque<Pending>> = (0..n).map(|_| VecDeque::new()).collect();

    let mut stats = QueueStats {
        rounds,
        arrived: 0,
        served: 0,
        backlog: 0,
        mean_wait: 0.0,
        max_wait: 0,
        output_utilization: 0.0,
    };
    let mut total_wait = 0usize;
    let mut busy_outputs = 0usize;

    for round in 0..rounds {
        // Arrivals.
        for queue in queues.iter_mut() {
            if rng.gen_bool(config.p_arrival) {
                let fan = rng.gen_range(1..=config.max_fanout);
                let mut dests: Vec<usize> = (0..fan).map(|_| rng.gen_range(0..n)).collect();
                dests.sort_unstable();
                dests.dedup();
                queue.push_back(Pending {
                    dests,
                    arrived_round: round,
                });
                stats.arrived += 1;
            }
        }

        // Admission: rotating-priority scan over queue heads.
        let mut output_free = vec![true; n];
        let mut sets = vec![Vec::new(); n];
        let mut admitted: Vec<usize> = Vec::new();
        for k in 0..n {
            let input = (round + k) % n;
            if let Some(head) = queues[input].front() {
                if head.dests.iter().all(|&d| output_free[d]) {
                    for &d in &head.dests {
                        output_free[d] = false;
                    }
                    sets[input] = head.dests.clone();
                    admitted.push(input);
                }
            }
        }

        // Route the admitted round.
        let asg = MulticastAssignment::from_sets(n, sets).expect("admission keeps outputs disjoint");
        busy_outputs += asg.total_connections();
        if !router(&asg) {
            return Err(QueueError::RoutingFailed { round });
        }

        // Dequeue served heads.
        for input in admitted {
            let head = queues[input].pop_front().expect("admitted head exists");
            let wait = round - head.arrived_round;
            total_wait += wait;
            stats.max_wait = stats.max_wait.max(wait);
            stats.served += 1;
        }
    }

    stats.backlog = queues.iter().map(|q| q.len()).sum();
    stats.mean_wait = if stats.served > 0 {
        total_wait as f64 / stats.served as f64
    } else {
        0.0
    };
    stats.output_utilization = busy_outputs as f64 / (rounds * n) as f64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::Brsmn;

    fn run(n: usize, p: f64, fan: usize, rounds: usize, seed: u64) -> QueueStats {
        let net = Brsmn::new(n).unwrap();
        simulate_queueing(
            QueueConfig {
                n,
                p_arrival: p,
                max_fanout: fan,
            },
            seed,
            rounds,
            |asg| net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false),
        )
        .unwrap()
    }

    #[test]
    fn conservation_of_requests() {
        let s = run(32, 0.4, 4, 300, 1);
        assert_eq!(s.arrived, s.served + s.backlog);
        assert!(s.served > 0);
    }

    #[test]
    fn light_load_has_negligible_wait() {
        let s = run(64, 0.02, 2, 400, 2);
        assert!(s.mean_wait < 0.5, "{s:?}");
        assert!(s.backlog <= 2, "{s:?}");
    }

    #[test]
    fn heavy_load_builds_queues() {
        let light = run(32, 0.05, 4, 300, 3);
        let heavy = run(32, 0.9, 8, 300, 3);
        assert!(heavy.mean_wait > light.mean_wait * 3.0, "{light:?} vs {heavy:?}");
        assert!(heavy.output_utilization > light.output_utilization);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let s = run(16, 1.0, 16, 200, 4);
        assert!(s.output_utilization <= 1.0);
        assert!(s.output_utilization > 0.3, "{s:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(16, 0.5, 4, 100, 9);
        let b = run(16, 0.5, 4, 100, 9);
        assert_eq!(a, b);
        let c = run(16, 0.5, 4, 100, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_fanout_is_a_typed_error_not_a_panic() {
        let err = simulate_queueing(
            QueueConfig {
                n: 16,
                p_arrival: 0.5,
                max_fanout: 0,
            },
            1,
            10,
            |_| true,
        )
        .unwrap_err();
        assert_eq!(err, QueueError::ZeroFanout);
        assert!(err.to_string().contains("max_fanout"));
    }

    #[test]
    fn oversized_fanout_clamps_to_n() {
        // max_fanout = 10 * n used to draw out-of-range fanouts; now it
        // clamps and the simulation runs to completion.
        let net = Brsmn::new(16).unwrap();
        let stats = simulate_queueing(
            QueueConfig {
                n: 16,
                p_arrival: 0.8,
                max_fanout: 160,
            },
            6,
            100,
            |asg| {
                assert!(asg.max_fanout() <= 16);
                net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false)
            },
        )
        .unwrap();
        assert_eq!(stats.arrived, stats.served + stats.backlog);
        assert!(stats.served > 0);
    }

    #[test]
    fn invalid_size_and_clamped_config_validate() {
        assert_eq!(
            QueueConfig {
                n: 7,
                p_arrival: 0.5,
                max_fanout: 2
            }
            .validate()
            .unwrap_err(),
            QueueError::InvalidSize { n: 7 }
        );
        let cfg = QueueConfig {
            n: 8,
            p_arrival: 3.0,
            max_fanout: 100,
        }
        .validate()
        .unwrap();
        assert_eq!(cfg.max_fanout, 8);
        assert_eq!(cfg.p_arrival, 1.0);
    }

    #[test]
    fn router_failure_surfaces_as_error() {
        let err = simulate_queueing(
            QueueConfig {
                n: 16,
                p_arrival: 1.0,
                max_fanout: 2,
            },
            1,
            10,
            |_| false,
        )
        .unwrap_err();
        assert!(matches!(err, QueueError::RoutingFailed { .. }));
    }

    #[test]
    fn zero_arrivals_idle() {
        let s = run(16, 0.0, 4, 50, 5);
        assert_eq!(s.arrived, 0);
        assert_eq!(s.served, 0);
        assert_eq!(s.output_utilization, 0.0);
    }
}
