//! Conference-session churn: a multi-round traffic model for the
//! teleconference scenario of Section 1.
//!
//! A [`SessionSim`] maintains a set of live conferences over the `n`
//! endpoints; each round, random events fire (conference starts, ends,
//! endpoints join/leave, the speaker changes), and the resulting state is
//! emitted as one multicast assignment. Because conference memberships are
//! kept disjoint, every emitted round is a *valid* assignment — which the
//! BRSMN then realizes without blocking, whatever the churn did.

use brsmn_core::MulticastAssignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the churn model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Network size.
    pub n: usize,
    /// Probability a new conference starts each round (if capacity allows).
    pub p_start: f64,
    /// Probability a live conference ends each round.
    pub p_end: f64,
    /// Probability each idle endpoint joins some conference each round.
    pub p_join: f64,
    /// Probability each member leaves its conference each round.
    pub p_leave: f64,
    /// Probability a conference's speaker changes each round.
    pub p_speaker_change: f64,
}

impl SessionConfig {
    /// A lively default: frequent joins/leaves, occasional conference churn.
    pub fn default_for(n: usize) -> Self {
        SessionConfig {
            n,
            p_start: 0.3,
            p_end: 0.05,
            p_join: 0.2,
            p_leave: 0.05,
            p_speaker_change: 0.1,
        }
    }
}

/// One live conference: a speaker (an input) and its member outputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Conference {
    speaker: usize,
    members: Vec<usize>,
}

/// Aggregate statistics over a simulated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Total (input, output) connections routed.
    pub total_connections: usize,
    /// Largest single-conference fanout observed.
    pub max_fanout: usize,
    /// Most conferences live at once.
    pub max_live_conferences: usize,
    /// Rounds in which at least one event changed the configuration.
    pub churn_rounds: usize,
}

/// The churn simulator.
#[derive(Debug, Clone)]
pub struct SessionSim {
    config: SessionConfig,
    rng: StdRng,
    conferences: Vec<Conference>,
    /// `owner[o] = Some(conference index)` when output `o` is a member.
    owner: Vec<Option<usize>>,
}

impl SessionSim {
    /// Creates a simulator with the given config and seed.
    pub fn new(config: SessionConfig, seed: u64) -> Self {
        assert!(config.n.is_power_of_two() && config.n >= 2);
        SessionSim {
            owner: vec![None; config.n],
            conferences: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Advances one round of churn and returns the round's assignment.
    pub fn step(&mut self) -> (MulticastAssignment, bool) {
        let n = self.config.n;
        let mut changed = false;

        // Conferences may end.
        let mut k = 0;
        while k < self.conferences.len() {
            if self.rng.gen_bool(self.config.p_end) {
                for &m in &self.conferences[k].members {
                    self.owner[m] = None;
                }
                self.conferences.swap_remove(k);
                changed = true;
                // swap_remove moved (at most) the last conference into slot
                // k; only its members' owner entries are stale. Every other
                // conference kept its index, so re-indexing just the moved
                // one keeps the step linear instead of quadratic in the
                // number of live conferences.
                if k < self.conferences.len() {
                    for &m in &self.conferences[k].members {
                        self.owner[m] = Some(k);
                    }
                }
            } else {
                k += 1;
            }
        }

        // A conference may start, seeded with one free endpoint as member
        // and a random speaker input.
        if self.rng.gen_bool(self.config.p_start) {
            if let Some(first_free) = self.first_free_output() {
                let speaker = self.rng.gen_range(0..n);
                self.owner[first_free] = Some(self.conferences.len());
                self.conferences.push(Conference {
                    speaker,
                    members: vec![first_free],
                });
                changed = true;
            }
        }

        // Idle endpoints may join a random conference.
        if !self.conferences.is_empty() {
            for o in 0..n {
                if self.owner[o].is_none() && self.rng.gen_bool(self.config.p_join) {
                    let ci = self.rng.gen_range(0..self.conferences.len());
                    self.owner[o] = Some(ci);
                    self.conferences[ci].members.push(o);
                    changed = true;
                }
            }
        }

        // Members may leave (conferences keep at least one member).
        for ci in 0..self.conferences.len() {
            let mut j = 0;
            while j < self.conferences[ci].members.len() {
                if self.conferences[ci].members.len() > 1
                    && self.rng.gen_bool(self.config.p_leave)
                {
                    let gone = self.conferences[ci].members.swap_remove(j);
                    self.owner[gone] = None;
                    changed = true;
                } else {
                    j += 1;
                }
            }
        }

        // Speakers may change.
        for conf in self.conferences.iter_mut() {
            if self.rng.gen_bool(self.config.p_speaker_change) {
                conf.speaker = self.rng.gen_range(0..n);
                changed = true;
            }
        }

        (self.assignment(), changed)
    }

    /// The current configuration as a multicast assignment. Two conferences
    /// may share a speaker input; their member sets merge under that input.
    pub fn assignment(&self) -> MulticastAssignment {
        let n = self.config.n;
        let mut sets = vec![Vec::new(); n];
        for conf in &self.conferences {
            sets[conf.speaker].extend(conf.members.iter().copied());
        }
        MulticastAssignment::from_sets(n, sets).expect("memberships kept disjoint")
    }

    /// Number of live conferences.
    pub fn live(&self) -> usize {
        self.conferences.len()
    }

    /// The live conferences as `(speaker, members)` views — one multicast
    /// request each. Multi-tenant serving drives each conference as its own
    /// single-source frame instead of merging them into one assignment.
    pub fn conferences(&self) -> impl Iterator<Item = (usize, &[usize])> + '_ {
        self.conferences
            .iter()
            .map(|c| (c.speaker, c.members.as_slice()))
    }

    fn first_free_output(&mut self) -> Option<usize> {
        let n = self.config.n;
        let start = self.rng.gen_range(0..n);
        (0..n)
            .map(|k| (start + k) % n)
            .find(|&o| self.owner[o].is_none())
    }
}

/// A churn round whose assignment the router under test failed to realize.
///
/// Carries everything needed to reproduce the failure offline: which round
/// failed and the exact assignment it was handed. A multi-tenant campaign
/// can log it and keep the other tenants running instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRouteError {
    /// Zero-based round index that failed.
    pub round: usize,
    /// The assignment the router could not realize.
    pub assignment: MulticastAssignment,
    /// Statistics accumulated over the rounds that did route.
    pub stats: SessionStats,
}

impl std::fmt::Display for SessionRouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "churn round {} failed to route ({} connections, max fanout {})",
            self.round,
            self.assignment.total_connections(),
            self.assignment.max_fanout()
        )
    }
}

impl std::error::Error for SessionRouteError {}

/// Runs `rounds` of churn, routing every round through `router` (which
/// returns whether the round was realized), and accumulates statistics.
///
/// A round the router fails to realize returns a typed
/// [`SessionRouteError`] naming the round and carrying the failing
/// assignment (plus the stats accumulated so far) — with the BRSMN that
/// cannot happen, but campaigns over lossy or faulty backends must not
/// abort mid-run.
pub fn simulate<F: FnMut(&MulticastAssignment) -> bool>(
    config: SessionConfig,
    seed: u64,
    rounds: usize,
    mut router: F,
) -> Result<SessionStats, SessionRouteError> {
    let mut sim = SessionSim::new(config, seed);
    let mut stats = SessionStats::default();
    for round in 0..rounds {
        let (asg, changed) = sim.step();
        if !router(&asg) {
            return Err(SessionRouteError {
                round,
                assignment: asg,
                stats,
            });
        }
        stats.rounds += 1;
        stats.total_connections += asg.total_connections();
        stats.max_fanout = stats.max_fanout.max(asg.max_fanout());
        stats.max_live_conferences = stats.max_live_conferences.max(sim.live());
        if changed {
            stats.churn_rounds += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::{Brsmn, FeedbackBrsmn};

    #[test]
    fn every_round_is_a_valid_assignment() {
        let mut sim = SessionSim::new(SessionConfig::default_for(64), 42);
        for _ in 0..200 {
            let (asg, _) = sim.step();
            // from_sets validated it; spot-check disjointness via ownership.
            assert!(asg.total_connections() <= 64);
        }
    }

    #[test]
    fn churn_session_routes_through_brsmn() {
        let n = 64;
        let net = Brsmn::new(n).unwrap();
        let stats = simulate(SessionConfig::default_for(n), 7, 300, |asg| {
            net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false)
        })
        .expect("BRSMN routes every churn round");
        assert_eq!(stats.rounds, 300);
        assert!(stats.churn_rounds > 100, "{stats:?}");
        assert!(stats.max_live_conferences >= 2);
        assert!(stats.total_connections > 0);
    }

    #[test]
    fn churn_session_routes_through_feedback_network() {
        let n = 32;
        let net = FeedbackBrsmn::new(n).unwrap();
        let stats = simulate(SessionConfig::default_for(n), 11, 150, |asg| {
            net.route(asg).map(|(r, _)| r.realizes(asg)).unwrap_or(false)
        })
        .expect("feedback network routes every churn round");
        assert_eq!(stats.rounds, 150);
    }

    #[test]
    fn routing_failure_is_a_typed_error_not_a_panic() {
        // A router that gives up on round 3: the error names the round,
        // carries the failing assignment, and keeps the stats up to there.
        let mut calls = 0usize;
        let err = simulate(SessionConfig::default_for(16), 5, 50, |_| {
            calls += 1;
            calls <= 3
        })
        .unwrap_err();
        assert_eq!(err.round, 3);
        assert_eq!(err.stats.rounds, 3);
        assert_eq!(err.assignment.n(), 16);
        assert!(err.to_string().contains("round 3"), "{err}");
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = SessionSim::new(SessionConfig::default_for(16), seed);
            (0..50).map(|_| sim.step().0).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn quiet_config_produces_no_churn() {
        let config = SessionConfig {
            n: 16,
            p_start: 0.0,
            p_end: 0.0,
            p_join: 0.0,
            p_leave: 0.0,
            p_speaker_change: 0.0,
        };
        let stats = simulate(config, 1, 20, |asg| asg.total_connections() == 0).unwrap();
        assert_eq!(stats.churn_rounds, 0);
        assert_eq!(stats.total_connections, 0);
    }

    /// FNV-1a over the JSON of every emitted assignment — a stable digest
    /// of the whole churn stream.
    fn stream_digest(n: usize, seed: u64, rounds: usize) -> u64 {
        let mut sim = SessionSim::new(SessionConfig::default_for(n), seed);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for _ in 0..rounds {
            let (asg, _) = sim.step();
            for byte in serde_json::to_string(&asg).unwrap().bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        }
        hash
    }

    #[test]
    fn seed_determinism_regression() {
        // Pinned digests of the churn stream: the linear swap_remove
        // re-index must keep emitting bit-identical rounds (it only touches
        // the conference that swap_remove moved — every other index is
        // already correct), and any future change to event ordering or RNG
        // consumption shows up here as a digest drift, not a silent shift.
        assert_eq!(stream_digest(16, 3, 120), stream_digest(16, 3, 120));
        assert_eq!(stream_digest(64, 42, 200), 0xf785_bf19_7528_e454);
        assert_eq!(stream_digest(16, 7, 120), 0x09c9_461a_ff4a_84e2);
    }

    #[test]
    fn conferences_view_matches_assignment() {
        let mut sim = SessionSim::new(SessionConfig::default_for(32), 9);
        for _ in 0..50 {
            sim.step();
            let asg = sim.assignment();
            let mut by_view = 0usize;
            for (speaker, members) in sim.conferences() {
                assert!(speaker < 32);
                assert!(!members.is_empty());
                by_view += members.len();
            }
            assert_eq!(by_view, asg.total_connections());
            assert_eq!(sim.conferences().count(), sim.live());
        }
    }
}
