//! Conference-session churn: a multi-round traffic model for the
//! teleconference scenario of Section 1.
//!
//! A [`SessionSim`] maintains a set of live conferences over the `n`
//! endpoints; each round, random events fire (conference starts, ends,
//! endpoints join/leave, the speaker changes), and the resulting state is
//! emitted as one multicast assignment. Because conference memberships are
//! kept disjoint, every emitted round is a *valid* assignment — which the
//! BRSMN then realizes without blocking, whatever the churn did.

use brsmn_core::MulticastAssignment;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tunable parameters of the churn model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Network size.
    pub n: usize,
    /// Probability a new conference starts each round (if capacity allows).
    pub p_start: f64,
    /// Probability a live conference ends each round.
    pub p_end: f64,
    /// Probability each idle endpoint joins some conference each round.
    pub p_join: f64,
    /// Probability each member leaves its conference each round.
    pub p_leave: f64,
    /// Probability a conference's speaker changes each round.
    pub p_speaker_change: f64,
}

impl SessionConfig {
    /// A lively default: frequent joins/leaves, occasional conference churn.
    pub fn default_for(n: usize) -> Self {
        SessionConfig {
            n,
            p_start: 0.3,
            p_end: 0.05,
            p_join: 0.2,
            p_leave: 0.05,
            p_speaker_change: 0.1,
        }
    }
}

/// One live conference: a speaker (an input) and its member outputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Conference {
    speaker: usize,
    members: Vec<usize>,
}

/// Aggregate statistics over a simulated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Rounds simulated.
    pub rounds: usize,
    /// Total (input, output) connections routed.
    pub total_connections: usize,
    /// Largest single-conference fanout observed.
    pub max_fanout: usize,
    /// Most conferences live at once.
    pub max_live_conferences: usize,
    /// Rounds in which at least one event changed the configuration.
    pub churn_rounds: usize,
}

/// The churn simulator.
#[derive(Debug, Clone)]
pub struct SessionSim {
    config: SessionConfig,
    rng: StdRng,
    conferences: Vec<Conference>,
    /// `owner[o] = Some(conference index)` when output `o` is a member.
    owner: Vec<Option<usize>>,
}

impl SessionSim {
    /// Creates a simulator with the given config and seed.
    pub fn new(config: SessionConfig, seed: u64) -> Self {
        assert!(config.n.is_power_of_two() && config.n >= 2);
        SessionSim {
            owner: vec![None; config.n],
            conferences: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Advances one round of churn and returns the round's assignment.
    pub fn step(&mut self) -> (MulticastAssignment, bool) {
        let n = self.config.n;
        let mut changed = false;

        // Conferences may end.
        let mut k = 0;
        while k < self.conferences.len() {
            if self.rng.gen_bool(self.config.p_end) {
                for &m in &self.conferences[k].members {
                    self.owner[m] = None;
                }
                self.conferences.swap_remove(k);
                changed = true;
                // Re-index owners after swap_remove.
                for (ci, conf) in self.conferences.iter().enumerate() {
                    for &m in &conf.members {
                        self.owner[m] = Some(ci);
                    }
                }
            } else {
                k += 1;
            }
        }

        // A conference may start, seeded with one free endpoint as member
        // and a random speaker input.
        if self.rng.gen_bool(self.config.p_start) {
            if let Some(first_free) = self.first_free_output() {
                let speaker = self.rng.gen_range(0..n);
                self.owner[first_free] = Some(self.conferences.len());
                self.conferences.push(Conference {
                    speaker,
                    members: vec![first_free],
                });
                changed = true;
            }
        }

        // Idle endpoints may join a random conference.
        if !self.conferences.is_empty() {
            for o in 0..n {
                if self.owner[o].is_none() && self.rng.gen_bool(self.config.p_join) {
                    let ci = self.rng.gen_range(0..self.conferences.len());
                    self.owner[o] = Some(ci);
                    self.conferences[ci].members.push(o);
                    changed = true;
                }
            }
        }

        // Members may leave (conferences keep at least one member).
        for ci in 0..self.conferences.len() {
            let mut j = 0;
            while j < self.conferences[ci].members.len() {
                if self.conferences[ci].members.len() > 1
                    && self.rng.gen_bool(self.config.p_leave)
                {
                    let gone = self.conferences[ci].members.swap_remove(j);
                    self.owner[gone] = None;
                    changed = true;
                } else {
                    j += 1;
                }
            }
        }

        // Speakers may change.
        for conf in self.conferences.iter_mut() {
            if self.rng.gen_bool(self.config.p_speaker_change) {
                conf.speaker = self.rng.gen_range(0..n);
                changed = true;
            }
        }

        (self.assignment(), changed)
    }

    /// The current configuration as a multicast assignment. Two conferences
    /// may share a speaker input; their member sets merge under that input.
    pub fn assignment(&self) -> MulticastAssignment {
        let n = self.config.n;
        let mut sets = vec![Vec::new(); n];
        for conf in &self.conferences {
            sets[conf.speaker].extend(conf.members.iter().copied());
        }
        MulticastAssignment::from_sets(n, sets).expect("memberships kept disjoint")
    }

    /// Number of live conferences.
    pub fn live(&self) -> usize {
        self.conferences.len()
    }

    fn first_free_output(&mut self) -> Option<usize> {
        let n = self.config.n;
        let start = self.rng.gen_range(0..n);
        (0..n)
            .map(|k| (start + k) % n)
            .find(|&o| self.owner[o].is_none())
    }
}

/// Runs `rounds` of churn, routing every round through `router` (which
/// returns whether the round was realized), and accumulates statistics.
/// Panics if any round fails to route — with the BRSMN that cannot happen.
pub fn simulate<F: FnMut(&MulticastAssignment) -> bool>(
    config: SessionConfig,
    seed: u64,
    rounds: usize,
    mut router: F,
) -> SessionStats {
    let mut sim = SessionSim::new(config, seed);
    let mut stats = SessionStats::default();
    for round in 0..rounds {
        let (asg, changed) = sim.step();
        assert!(router(&asg), "round {round} failed to route");
        stats.rounds += 1;
        stats.total_connections += asg.total_connections();
        stats.max_fanout = stats.max_fanout.max(asg.max_fanout());
        stats.max_live_conferences = stats.max_live_conferences.max(sim.live());
        if changed {
            stats.churn_rounds += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::{Brsmn, FeedbackBrsmn};

    #[test]
    fn every_round_is_a_valid_assignment() {
        let mut sim = SessionSim::new(SessionConfig::default_for(64), 42);
        for _ in 0..200 {
            let (asg, _) = sim.step();
            // from_sets validated it; spot-check disjointness via ownership.
            assert!(asg.total_connections() <= 64);
        }
    }

    #[test]
    fn churn_session_routes_through_brsmn() {
        let n = 64;
        let net = Brsmn::new(n).unwrap();
        let stats = simulate(SessionConfig::default_for(n), 7, 300, |asg| {
            net.route(asg).map(|r| r.realizes(asg)).unwrap_or(false)
        });
        assert_eq!(stats.rounds, 300);
        assert!(stats.churn_rounds > 100, "{stats:?}");
        assert!(stats.max_live_conferences >= 2);
        assert!(stats.total_connections > 0);
    }

    #[test]
    fn churn_session_routes_through_feedback_network() {
        let n = 32;
        let net = FeedbackBrsmn::new(n).unwrap();
        let stats = simulate(SessionConfig::default_for(n), 11, 150, |asg| {
            net.route(asg).map(|(r, _)| r.realizes(asg)).unwrap_or(false)
        });
        assert_eq!(stats.rounds, 150);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut sim = SessionSim::new(SessionConfig::default_for(16), seed);
            (0..50).map(|_| sim.step().0).collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn quiet_config_produces_no_churn() {
        let config = SessionConfig {
            n: 16,
            p_start: 0.0,
            p_end: 0.0,
            p_join: 0.0,
            p_leave: 0.0,
            p_speaker_change: 0.0,
        };
        let stats = simulate(config, 1, 20, |asg| asg.total_connections() == 0);
        assert_eq!(stats.churn_rounds, 0);
        assert_eq!(stats.total_connections, 0);
    }
}
