//! Batch scheduling of *conflicting* multicast requests.
//!
//! A multicast assignment requires disjoint destination sets — every output
//! listens to at most one input at a time. Real traffic (Section 1's
//! video-on-demand, replicated databases) produces overlapping requests;
//! the switching layer serves them in **rounds**, each round a valid
//! assignment realized by one pass through the (nonblocking) network.
//!
//! [`schedule_rounds`] greedily packs requests into the fewest rounds it
//! can: first-fit over rounds, checking both output-disjointness and the
//! one-message-per-input constraint. First-fit is within the classic
//! approximation bounds of interval/graph coloring and — more importantly
//! here — every produced round is valid by construction, so the BRSMN's
//! nonblocking theorem guarantees the whole batch is served.

use brsmn_core::MulticastAssignment;
use serde::{Deserialize, Serialize};

/// One multicast request: a source input and the outputs it must reach.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Source input.
    pub source: usize,
    /// Requested outputs (need not be disjoint from other requests).
    pub dests: Vec<usize>,
}

impl Request {
    /// Creates a request (destinations are sorted and deduplicated).
    pub fn new(source: usize, mut dests: Vec<usize>) -> Self {
        dests.sort_unstable();
        dests.dedup();
        Request { source, dests }
    }
}

/// The outcome of scheduling: the per-round assignments plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// One valid multicast assignment per round.
    pub rounds: Vec<MulticastAssignment>,
    /// `placement[r]` = indices (into the request slice) served in round `r`.
    pub placement: Vec<Vec<usize>>,
}

impl Schedule {
    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// `true` when no rounds were needed (no requests).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Packs `requests` into rounds (first-fit). Panics if a request is out of
/// range for an `n × n` network or has no destinations.
pub fn schedule_rounds(n: usize, requests: &[Request]) -> Schedule {
    #[derive(Clone)]
    struct Round {
        output_used: Vec<bool>,
        input_used: Vec<bool>,
        members: Vec<usize>,
    }
    let mut rounds: Vec<Round> = Vec::new();

    for (idx, req) in requests.iter().enumerate() {
        assert!(req.source < n, "source {} out of range", req.source);
        assert!(!req.dests.is_empty(), "request {idx} has no destinations");
        assert!(
            req.dests.iter().all(|&d| d < n),
            "request {idx} has an out-of-range destination"
        );
        let slot = rounds.iter_mut().find(|r| {
            !r.input_used[req.source] && req.dests.iter().all(|&d| !r.output_used[d])
        });
        let round = match slot {
            Some(r) => r,
            None => {
                rounds.push(Round {
                    output_used: vec![false; n],
                    input_used: vec![false; n],
                    members: Vec::new(),
                });
                rounds.last_mut().expect("just pushed")
            }
        };
        round.input_used[req.source] = true;
        for &d in &req.dests {
            round.output_used[d] = true;
        }
        round.members.push(idx);
    }

    let mut assignments = Vec::with_capacity(rounds.len());
    let mut placement = Vec::with_capacity(rounds.len());
    for r in rounds {
        let mut sets = vec![Vec::new(); n];
        for &idx in &r.members {
            sets[requests[idx].source] = requests[idx].dests.clone();
        }
        assignments.push(
            MulticastAssignment::from_sets(n, sets).expect("rounds are disjoint by construction"),
        );
        placement.push(r.members);
    }
    Schedule {
        rounds: assignments,
        placement,
    }
}

/// A lower bound on the rounds any scheduler needs: the maximum number of
/// requests contending for a single output (or issued by a single input).
pub fn rounds_lower_bound(n: usize, requests: &[Request]) -> usize {
    let mut out_load = vec![0usize; n];
    let mut in_load = vec![0usize; n];
    for r in requests {
        in_load[r.source] += 1;
        for &d in &r.dests {
            out_load[d] += 1;
        }
    }
    out_load
        .into_iter()
        .chain(in_load)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_core::Brsmn;

    #[test]
    fn non_conflicting_requests_fit_one_round() {
        let reqs = vec![
            Request::new(0, vec![0, 1]),
            Request::new(3, vec![4, 5, 6]),
            Request::new(7, vec![2]),
        ];
        let sched = schedule_rounds(8, &reqs);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.placement[0], vec![0, 1, 2]);
    }

    #[test]
    fn contending_outputs_split_rounds() {
        // Three requests all want output 5.
        let reqs = vec![
            Request::new(0, vec![5]),
            Request::new(1, vec![5, 6]),
            Request::new(2, vec![5, 7]),
        ];
        let sched = schedule_rounds(8, &reqs);
        assert_eq!(sched.len(), 3);
        assert_eq!(rounds_lower_bound(8, &reqs), 3);
    }

    #[test]
    fn same_input_cannot_send_twice_per_round() {
        let reqs = vec![Request::new(2, vec![0]), Request::new(2, vec![1])];
        let sched = schedule_rounds(8, &reqs);
        assert_eq!(sched.len(), 2);
    }

    #[test]
    fn every_request_served_exactly_once() {
        // Deterministic pseudo-random batch with heavy overlap.
        let n = 64usize;
        let reqs: Vec<Request> = (0..120)
            .map(|i| {
                // Hash in u64 and only cast the final value: `as usize`
                // on the constant would truncate it on 32-bit targets and
                // change the batch this test locks in.
                let h = |x: usize| (((x as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 8) as usize;
                let src = h(i) % n;
                let fan = 1 + h(i * 3 + 1) % 6;
                let dests = (0..fan).map(|k| h(i * 7 + k) % n).collect();
                Request::new(src, dests)
            })
            .collect();
        let sched = schedule_rounds(n, &reqs);
        let mut served = vec![0usize; reqs.len()];
        for members in &sched.placement {
            for &idx in members {
                served[idx] += 1;
            }
        }
        assert!(served.iter().all(|&c| c == 1));
        // Each request's sets appear verbatim in its round.
        for (r, members) in sched.placement.iter().enumerate() {
            for &idx in members {
                assert_eq!(sched.rounds[r].dests(reqs[idx].source), &reqs[idx].dests[..]);
            }
        }
        // First-fit respects the trivial bounds.
        assert!(sched.len() >= rounds_lower_bound(n, &reqs));
        assert!(sched.len() <= reqs.len());
    }

    #[test]
    fn every_round_routes_through_the_brsmn() {
        let n = 32usize;
        let reqs: Vec<Request> = (0..50)
            .map(|i| {
                let h = |x: usize| x.wrapping_mul(2654435761) >> 5;
                Request::new(h(i) % n, vec![h(i + 99) % n, h(i + 7) % n])
            })
            .collect();
        let sched = schedule_rounds(n, &reqs);
        let net = Brsmn::new(n).unwrap();
        for asg in &sched.rounds {
            let r = net.route(asg).unwrap();
            assert!(r.realizes(asg));
        }
    }

    #[test]
    fn empty_batch() {
        let sched = schedule_rounds(16, &[]);
        assert!(sched.is_empty());
        assert_eq!(rounds_lower_bound(16, &[]), 0);
    }
}
