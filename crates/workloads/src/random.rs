//! Seeded random workloads for benchmarks and property tests.

use brsmn_core::MulticastAssignment;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a random multicast workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomSpec {
    /// Network size (power of two).
    pub n: usize,
    /// Probability that an output is covered by some input (traffic load).
    pub load: f64,
    /// Concentration: expected number of *distinct sources*, as a fraction of
    /// `n`. Small values produce high-fanout multicasts; `1.0` approaches a
    /// partial permutation.
    pub source_fraction: f64,
}

impl RandomSpec {
    /// A balanced default: 90% load spread over about a quarter of the
    /// inputs (average fanout ≈ 3.6).
    pub fn dense(n: usize) -> Self {
        RandomSpec {
            n,
            load: 0.9,
            source_fraction: 0.25,
        }
    }

    /// Sparse unicast-like traffic.
    pub fn sparse(n: usize) -> Self {
        RandomSpec {
            n,
            load: 0.3,
            source_fraction: 1.0,
        }
    }
}

/// Draws a random multicast assignment: each output independently picks
/// whether it is covered (probability `load`) and, if so, by which of the
/// eligible source inputs.
pub fn random_multicast(spec: RandomSpec, seed: u64) -> MulticastAssignment {
    let RandomSpec {
        n,
        load,
        source_fraction,
    } = spec;
    let mut rng = StdRng::seed_from_u64(seed);
    let k = ((n as f64 * source_fraction).round() as usize).clamp(1, n);
    // Choose the eligible source pool.
    let mut inputs: Vec<usize> = (0..n).collect();
    inputs.shuffle(&mut rng);
    let pool = &inputs[..k];

    let mut sets = vec![Vec::new(); n];
    for output in 0..n {
        if rng.gen_bool(load.clamp(0.0, 1.0)) {
            let src = pool[rng.gen_range(0..k)];
            sets[src].push(output);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("disjoint by construction")
}

/// Draws a uniformly random full permutation assignment.
pub fn random_permutation(n: usize, seed: u64) -> MulticastAssignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outputs: Vec<usize> = (0..n).collect();
    outputs.shuffle(&mut rng);
    MulticastAssignment::from_permutation(&outputs.into_iter().map(Some).collect::<Vec<_>>())
        .expect("valid permutation")
}

/// Draws a random partial permutation where each input is active with
/// probability `load`.
pub fn random_partial_permutation(n: usize, load: f64, seed: u64) -> MulticastAssignment {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outputs: Vec<usize> = (0..n).collect();
    outputs.shuffle(&mut rng);
    let perm: Vec<Option<usize>> = outputs
        .into_iter()
        .map(|o| rng.gen_bool(load.clamp(0.0, 1.0)).then_some(o))
        .collect();
    MulticastAssignment::from_permutation(&perm).expect("valid partial permutation")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_multicast_is_valid_and_deterministic() {
        let spec = RandomSpec::dense(64);
        let a = random_multicast(spec, 7);
        let b = random_multicast(spec, 7);
        assert_eq!(a, b);
        let c = random_multicast(spec, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn load_controls_coverage() {
        let lo = random_multicast(
            RandomSpec {
                n: 256,
                load: 0.1,
                source_fraction: 0.5,
            },
            1,
        );
        let hi = random_multicast(
            RandomSpec {
                n: 256,
                load: 0.95,
                source_fraction: 0.5,
            },
            1,
        );
        assert!(lo.total_connections() < hi.total_connections());
        assert!(hi.total_connections() > 200);
    }

    #[test]
    fn source_fraction_controls_fanout() {
        let concentrated = random_multicast(
            RandomSpec {
                n: 256,
                load: 0.9,
                source_fraction: 0.02,
            },
            3,
        );
        let spread = random_multicast(
            RandomSpec {
                n: 256,
                load: 0.9,
                source_fraction: 1.0,
            },
            3,
        );
        assert!(concentrated.max_fanout() > spread.max_fanout());
        assert!(concentrated.active_inputs() <= 6);
    }

    #[test]
    fn permutations_are_full_and_valid() {
        let p = random_permutation(128, 42);
        assert!(p.is_permutation());
        assert_eq!(p.total_connections(), 128);
        assert_eq!(p.active_inputs(), 128);
    }

    #[test]
    fn partial_permutation_load() {
        let p = random_partial_permutation(256, 0.5, 9);
        assert!(p.is_permutation());
        let active = p.active_inputs();
        assert!(active > 80 && active < 176, "active={active}");
    }

    #[test]
    fn extreme_loads() {
        let empty = random_multicast(
            RandomSpec {
                n: 16,
                load: 0.0,
                source_fraction: 0.5,
            },
            1,
        );
        assert_eq!(empty.total_connections(), 0);
        let full = random_multicast(
            RandomSpec {
                n: 16,
                load: 1.0,
                source_fraction: 0.5,
            },
            1,
        );
        assert_eq!(full.total_connections(), 16);
    }
}
