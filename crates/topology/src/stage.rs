//! Merging-stage geometry of a reverse banyan network.
//!
//! An `n × n` RBN (Fig. 5) is two `n/2 × n/2` RBNs followed by an `n × n`
//! *merging network*: one stage of `n/2` 2×2 switches whose external links are
//! wired by the perfect shuffle, so that merging-network switch `i` connects
//! external lines `{i, i + n/2}` on both its input and output side (Fig. 6 and
//! the property `|shuffle(a) − shuffle(ā)| = n/2`).
//!
//! Unrolling the recursion, stage `j` (0-indexed from the input side,
//! `j = 0 … m−1`) of the full RBN consists of merging networks of size
//! `2^{j+1}`: the lines are partitioned into blocks of `2^{j+1}` consecutive
//! lines, and within each block, switch `i` pairs lines `base + i` and
//! `base + i + 2^j`.

use crate::{check_size, log2_exact, SizeError};
use serde::{Deserialize, Serialize};

/// Identifies one 2×2 switch inside a staged network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchCoord {
    /// Stage index, 0-based from the input side.
    pub stage: usize,
    /// Switch index within the stage, 0-based from the top.
    pub index: usize,
}

/// The geometry of one merging stage acting on a block of `block` consecutive
/// lines starting at `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeStage {
    /// First line of the block this merging network spans.
    pub base: usize,
    /// Block size (the merging network is `block × block`); a power of two ≥ 2.
    pub block: usize,
}

impl MergeStage {
    /// Creates the merging stage of a `block × block` RBN at line offset `base`.
    pub fn new(base: usize, block: usize) -> Result<Self, SizeError> {
        check_size(block)?;
        Ok(Self { base, block })
    }

    /// Number of 2×2 switches in this merging stage (`block / 2`).
    #[inline]
    pub fn switches(&self) -> usize {
        self.block / 2
    }

    /// The two line positions entering (and leaving) switch `i` of this stage:
    /// `(base + i, base + i + block/2)`.
    ///
    /// The upper element is the one coming from the *upper* half-size RBN, the
    /// lower from the *lower* one — exactly the alignment Lemma 1's proof
    /// relies on (element `i` of the upper compact sequence meets element `i`
    /// of the lower one).
    #[inline]
    pub fn pair(&self, i: usize) -> (usize, usize) {
        debug_assert!(i < self.switches());
        (self.base + i, self.base + i + self.block / 2)
    }

    /// The switch index (within this stage) that line `pos` connects to, and
    /// whether it is the upper (`false`) or lower (`true`) port.
    #[inline]
    pub fn switch_of(&self, pos: usize) -> (usize, bool) {
        let off = pos - self.base;
        debug_assert!(off < self.block);
        let half = self.block / 2;
        if off < half {
            (off, false)
        } else {
            (off - half, true)
        }
    }
}

/// Enumerates the merging stages of stage `j` of an `n × n` RBN: one
/// [`MergeStage`] per block of `2^{j+1}` lines.
pub fn rbn_stage_blocks(n: usize, j: u32) -> Vec<MergeStage> {
    let m = log2_exact(n);
    assert!(j < m, "stage {j} out of range for n={n}");
    let block = 1usize << (j + 1);
    (0..n / block)
        .map(|b| MergeStage {
            base: b * block,
            block,
        })
        .collect()
}

/// Total number of 2×2 switches in an `n × n` RBN: `(n/2)·log2 n`.
pub fn rbn_switch_count(n: usize) -> usize {
    (n / 2) * log2_exact(n) as usize
}

/// Depth (number of stages) of an `n × n` RBN: `log2 n`.
pub fn rbn_depth(n: usize) -> usize {
    log2_exact(n) as usize
}

/// For every stage `j` of an `n × n` RBN, the pair of lines meeting at each
/// switch, as a flat list of [`SwitchCoord`] → `(upper_line, lower_line)`.
pub fn rbn_all_pairs(n: usize) -> Vec<(SwitchCoord, (usize, usize))> {
    let m = log2_exact(n);
    let mut out = Vec::with_capacity(rbn_switch_count(n));
    for j in 0..m {
        let mut idx = 0usize;
        for blockstage in rbn_stage_blocks(n, j) {
            for i in 0..blockstage.switches() {
                out.push((
                    SwitchCoord {
                        stage: j as usize,
                        index: idx,
                    },
                    blockstage.pair(i),
                ));
                idx += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_stage_pairs_half_apart() {
        let s = MergeStage::new(0, 8).unwrap();
        assert_eq!(s.switches(), 4);
        assert_eq!(s.pair(0), (0, 4));
        assert_eq!(s.pair(3), (3, 7));
    }

    #[test]
    fn merge_stage_with_base_offset() {
        let s = MergeStage::new(8, 4).unwrap();
        assert_eq!(s.pair(0), (8, 10));
        assert_eq!(s.pair(1), (9, 11));
    }

    #[test]
    fn merge_stage_rejects_bad_block() {
        assert!(MergeStage::new(0, 3).is_err());
        assert!(MergeStage::new(0, 1).is_err());
        assert!(MergeStage::new(0, 0).is_err());
    }

    #[test]
    fn switch_of_inverts_pair() {
        let s = MergeStage::new(4, 8).unwrap();
        for i in 0..s.switches() {
            let (u, l) = s.pair(i);
            assert_eq!(s.switch_of(u), (i, false));
            assert_eq!(s.switch_of(l), (i, true));
        }
    }

    #[test]
    fn stage_zero_pairs_adjacent_lines() {
        let blocks = rbn_stage_blocks(8, 0);
        assert_eq!(blocks.len(), 4);
        assert_eq!(blocks[0].pair(0), (0, 1));
        assert_eq!(blocks[1].pair(0), (2, 3));
        assert_eq!(blocks[3].pair(0), (6, 7));
    }

    #[test]
    fn last_stage_is_single_block() {
        let blocks = rbn_stage_blocks(8, 2);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].pair(0), (0, 4));
        assert_eq!(blocks[0].pair(3), (3, 7));
    }

    #[test]
    fn switch_count_formula() {
        assert_eq!(rbn_switch_count(2), 1);
        assert_eq!(rbn_switch_count(4), 4);
        assert_eq!(rbn_switch_count(8), 12);
        assert_eq!(rbn_switch_count(16), 32);
        assert_eq!(rbn_switch_count(1024), 512 * 10);
    }

    #[test]
    fn depth_is_log_n() {
        assert_eq!(rbn_depth(2), 1);
        assert_eq!(rbn_depth(1024), 10);
    }

    #[test]
    fn all_pairs_cover_every_line_once_per_stage() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let m = log2_exact(n) as usize;
            let pairs = rbn_all_pairs(n);
            assert_eq!(pairs.len(), rbn_switch_count(n));
            for j in 0..m {
                let mut seen = vec![false; n];
                for (c, (u, l)) in pairs.iter().filter(|(c, _)| c.stage == j) {
                    assert!(c.index < n / 2);
                    for &line in [u, l].iter() {
                        assert!(!seen[*line], "n={n} stage={j} line {line} reused");
                        seen[*line] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} stage={j} missing lines");
            }
        }
    }
}
