//! The reverse banyan network as an explicit stage graph.
//!
//! In the in-place line model used throughout this workspace (see [`crate::stage`]),
//! stage `j` of an `n × n` RBN pairs lines whose positions differ exactly in
//! bit `j`. A message sitting on line `x` before stage `j` leaves the stage on
//! either `x` or `x ^ 2^j`; later stages never touch bits `< j` again. Hence
//! the network has the *banyan property*: exactly one switch-by-switch path
//! from every input to every output, with the stage-`j` decision fixing bit
//! `j` of the destination.

use crate::stage::{rbn_stage_blocks, MergeStage, SwitchCoord};
use crate::{check_size, log2_exact, SizeError};
use serde::{Deserialize, Serialize};

/// One hop of a path through the network: the switch traversed, the input
/// port used, and the output port taken (`false` = upper, `true` = lower).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathHop {
    /// Switch traversed.
    pub switch: SwitchCoord,
    /// Port the message entered on (`false` = upper).
    pub in_lower: bool,
    /// Port the message left on (`false` = upper).
    pub out_lower: bool,
}

/// An `n × n` reverse banyan network topology (structure only, no state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReverseBanyanTopology {
    n: usize,
    m: u32,
}

impl ReverseBanyanTopology {
    /// Creates the topology for size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, SizeError> {
        check_size(n)?;
        Ok(Self {
            n,
            m: log2_exact(n),
        })
    }

    /// Network size.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Address width `m = log2 n` (= number of stages).
    #[inline]
    pub fn stages(&self) -> u32 {
        self.m
    }

    /// The merging blocks making up stage `j`.
    pub fn stage_blocks(&self, j: u32) -> Vec<MergeStage> {
        rbn_stage_blocks(self.n, j)
    }

    /// The global switch index (within stage `j`) that line `pos` meets, plus
    /// which port. Lines pair with their `bit j` complement.
    pub fn switch_at(&self, j: u32, pos: usize) -> (SwitchCoord, bool) {
        debug_assert!(pos < self.n && j < self.m);
        let bit = 1usize << j;
        let lower = pos & bit != 0;
        // Switch index within the stage: drop bit j from the position.
        let idx = ((pos >> (j + 1)) << j) | (pos & (bit - 1));
        (
            SwitchCoord {
                stage: j as usize,
                index: idx,
            },
            lower,
        )
    }

    /// The unique path from `input` to `output`, as a sequence of hops.
    ///
    /// At stage `j` the message must leave on the line whose bit `j` matches
    /// bit `j` of `output`; this determines the whole path.
    pub fn unique_path(&self, input: usize, output: usize) -> Vec<PathHop> {
        assert!(input < self.n && output < self.n);
        let mut pos = input;
        let mut hops = Vec::with_capacity(self.m as usize);
        for j in 0..self.m {
            let bit = 1usize << j;
            let (switch, in_lower) = self.switch_at(j, pos);
            let out_lower = output & bit != 0;
            hops.push(PathHop {
                switch,
                in_lower,
                out_lower,
            });
            pos = (pos & !bit) | (output & bit);
        }
        debug_assert_eq!(pos, output);
        hops
    }

    /// Counts the distinct switch-level paths from `input` to `output` by
    /// dynamic programming over stages (used to validate the banyan property).
    pub fn path_count(&self, input: usize, output: usize) -> u64 {
        let mut reach = vec![0u64; self.n];
        reach[input] = 1;
        for j in 0..self.m {
            let bit = 1usize << j;
            let mut next = vec![0u64; self.n];
            for pos in 0..self.n {
                if reach[pos] > 0 {
                    next[pos] += reach[pos];
                    next[pos ^ bit] += reach[pos];
                }
            }
            reach = next;
        }
        reach[output]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn banyan_property_exactly_one_path() {
        for n in [2usize, 4, 8, 16, 32] {
            let t = ReverseBanyanTopology::new(n).unwrap();
            for i in 0..n {
                for o in 0..n {
                    assert_eq!(t.path_count(i, o), 1, "n={n} {i}->{o}");
                }
            }
        }
    }

    #[test]
    fn unique_path_has_one_hop_per_stage() {
        let t = ReverseBanyanTopology::new(16).unwrap();
        let path = t.unique_path(5, 12);
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn unique_path_endpoint_positions_follow_bits() {
        let t = ReverseBanyanTopology::new(8).unwrap();
        // From 0 to 7 the message must take the lower output at every stage.
        for hop in t.unique_path(0, 7) {
            assert!(hop.out_lower);
        }
        // From 7 to 0 it takes the upper output at every stage.
        for hop in t.unique_path(7, 0) {
            assert!(!hop.out_lower);
        }
    }

    #[test]
    fn switch_at_pairs_complementary_lines() {
        let t = ReverseBanyanTopology::new(16).unwrap();
        for j in 0..4u32 {
            for pos in 0..16usize {
                let (sw, lower) = t.switch_at(j, pos);
                let (sw2, lower2) = t.switch_at(j, pos ^ (1 << j));
                assert_eq!(sw, sw2);
                assert_ne!(lower, lower2);
            }
        }
    }

    #[test]
    fn switch_at_agrees_with_stage_blocks() {
        let t = ReverseBanyanTopology::new(32).unwrap();
        for j in 0..5u32 {
            let blocks = t.stage_blocks(j);
            let mut global = 0usize;
            for b in &blocks {
                for i in 0..b.switches() {
                    let (u, l) = b.pair(i);
                    let (su, pu) = t.switch_at(j, u);
                    let (sl, pl) = t.switch_at(j, l);
                    assert_eq!(su.index, global);
                    assert_eq!(sl.index, global);
                    assert!(!pu && pl);
                    global += 1;
                }
            }
            assert_eq!(global, 16);
        }
    }

    proptest! {
        #[test]
        fn prop_unique_path_is_consistent(m in 1u32..8, seed in any::<u64>()) {
            let n = 1usize << m;
            let input = (seed as usize) % n;
            let output = ((seed >> 16) as usize) % n;
            let t = ReverseBanyanTopology::new(n).unwrap();
            let path = t.unique_path(input, output);
            prop_assert_eq!(path.len(), m as usize);
            // Replay the path and check it ends at `output`.
            let mut pos = input;
            for (j, hop) in path.iter().enumerate() {
                let bit = 1usize << j;
                let (sw, in_lower) = t.switch_at(j as u32, pos);
                prop_assert_eq!(sw, hop.switch);
                prop_assert_eq!(in_lower, hop.in_lower);
                pos = if hop.out_lower { pos | bit } else { pos & !bit };
            }
            prop_assert_eq!(pos, output);
        }
    }
}
