//! Explicitly **wired** multistage interconnection networks (Hwang \[15\],
//! reference of Section 4) — and the proof-by-execution that the workspace's
//! *in-place pairing* model of the reverse banyan network is the same
//! network as a conventionally wired one.
//!
//! A wired network is `log n` switch columns of `n/2` adjacent-pair switches
//! (ports `2k`, `2k+1`), with a *link permutation* in front of every column
//! and one behind the last. The famous topologies differ only in those
//! permutations:
//!
//! * **Omega**: the perfect shuffle before every column.
//! * **In-place RBN wiring**: before column `j`, the permutation that brings
//!   the lines differing in address bit `j` together; after the column, its
//!   inverse — so the column operates "in place" on bit `j`. Composing these
//!   permutations away is exactly the model `brsmn-rbn` executes, and
//!   [`WiredNetwork::mapping`] lets tests verify the two agree switch for
//!   switch.
//!
//! All of these are *banyan* networks (unique path), which the tests check
//! by path counting.

use crate::perm::{compose, identity, invert, is_permutation, unshuffle};
use crate::{check_size, log2_exact, SizeError};
use serde::{Deserialize, Serialize};

/// A wired multistage network: per-column input link permutations plus a
/// final output permutation. `pre[j][x] = y` wires line `x` of the previous
/// interface to port `y` of column `j`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WiredNetwork {
    n: usize,
    pre: Vec<Vec<usize>>,
    post: Vec<usize>,
}

impl WiredNetwork {
    /// Builds a network from explicit wiring tables.
    pub fn new(n: usize, pre: Vec<Vec<usize>>, post: Vec<usize>) -> Result<Self, SizeError> {
        check_size(n)?;
        assert!(pre.iter().all(|p| p.len() == n && is_permutation(p)));
        assert!(post.len() == n && is_permutation(&post));
        Ok(WiredNetwork { n, pre, post })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of switch columns.
    pub fn columns(&self) -> usize {
        self.pre.len()
    }

    /// The **omega network**: perfect shuffle (numeric left rotation —
    /// `unshuffle` in this crate's naming) before every column, identity
    /// after.
    pub fn omega(n: usize) -> Result<Self, SizeError> {
        check_size(n)?;
        let m = log2_exact(n) as usize;
        let shuffle_perm: Vec<usize> = (0..n).map(|x| unshuffle(x, n)).collect();
        Ok(WiredNetwork {
            n,
            pre: vec![shuffle_perm; m],
            post: identity(n),
        })
    }

    /// The wired equivalent of the workspace's in-place RBN model: column
    /// `j`'s input permutation gathers bit-`j` partners onto one switch, and
    /// the *next* column's permutation starts from the scattered-back
    /// positions (equivalently: each pre-permutation is `gather_j ∘
    /// scatter_{j-1}`), with the final scatter as the output permutation.
    pub fn inplace_rbn(n: usize) -> Result<Self, SizeError> {
        check_size(n)?;
        let m = log2_exact(n) as usize;
        // gather_j: line x → switch port. Switch k = (block << j) | i where
        // i = x mod 2^j within its 2^{j+1} block; port = bit j of x.
        let gather = |j: usize| -> Vec<usize> {
            (0..n)
                .map(|x| {
                    let low = x & ((1 << j) - 1);
                    let port = (x >> j) & 1;
                    let block = x >> (j + 1);
                    (block << (j + 1)) | (low << 1) | port
                })
                .collect()
        };
        let mut pre = Vec::with_capacity(m);
        let mut prev_scatter = identity(n);
        for j in 0..m {
            let g = gather(j);
            pre.push(compose(&prev_scatter, &g));
            prev_scatter = invert(&g);
        }
        Ok(WiredNetwork {
            n,
            pre,
            post: prev_scatter,
        })
    }

    /// Evaluates the network on per-column switch settings
    /// (`true` = crossing): returns the input→output mapping.
    ///
    /// `settings[j][k]` controls column `j`'s switch `k` over ports
    /// `(2k, 2k+1)`.
    pub fn mapping(&self, settings: &[Vec<bool>]) -> Vec<usize> {
        assert_eq!(settings.len(), self.columns());
        let mut lines: Vec<usize> = identity(self.n);
        for (j, col) in settings.iter().enumerate() {
            assert_eq!(col.len(), self.n / 2);
            // Wire into the column.
            lines = crate::perm::apply_permutation(&lines, &self.pre[j]);
            // Apply switches on adjacent pairs.
            for (k, &cross) in col.iter().enumerate() {
                if cross {
                    lines.swap(2 * k, 2 * k + 1);
                }
            }
        }
        let out = crate::perm::apply_permutation(&lines, &self.post);
        // out[position] = source input; invert to input→output.
        invert(&out)
    }

    /// Counts switch-level paths from `input` to `output` (both switch
    /// branches allowed at every column). A banyan network has exactly one.
    pub fn path_count(&self, input: usize, output: usize) -> u64 {
        let mut reach = vec![0u64; self.n];
        reach[input] = 1;
        for j in 0..self.columns() {
            // Wire into the column.
            let mut wired = vec![0u64; self.n];
            for (x, &y) in self.pre[j].iter().enumerate() {
                wired[y] = reach[x];
            }
            // Both switch outputs reachable.
            let mut next = vec![0u64; self.n];
            for k in 0..self.n / 2 {
                let sum = wired[2 * k] + wired[2 * k + 1];
                next[2 * k] = sum;
                next[2 * k + 1] = sum;
            }
            reach = next;
        }
        let mut out = vec![0u64; self.n];
        for (x, &y) in self.post.iter().enumerate() {
            out[y] = reach[x];
        }
        out[output]
    }

    /// `true` if the network has the banyan (unique path) property.
    pub fn is_banyan(&self) -> bool {
        (0..self.n).all(|i| (0..self.n).all(|o| self.path_count(i, o) == 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_is_banyan() {
        for n in [2usize, 4, 8, 16, 32] {
            assert!(WiredNetwork::omega(n).unwrap().is_banyan(), "n={n}");
        }
    }

    #[test]
    fn inplace_rbn_is_banyan() {
        for n in [2usize, 4, 8, 16, 32] {
            assert!(WiredNetwork::inplace_rbn(n).unwrap().is_banyan(), "n={n}");
        }
    }

    #[test]
    fn identity_settings_yield_identity_mapping_inplace() {
        // All-parallel in the in-place wiring is the identity (gather and
        // scatter cancel).
        let net = WiredNetwork::inplace_rbn(16).unwrap();
        let settings = vec![vec![false; 8]; 4];
        assert_eq!(net.mapping(&settings), identity(16));
    }

    #[test]
    fn inplace_wiring_matches_bit_pair_model() {
        // Crossing exactly one switch of column j must swap the two lines
        // that differ in bit j — the defining behaviour of the in-place
        // model in brsmn-topology::stage.
        let n = 16usize;
        let net = WiredNetwork::inplace_rbn(n).unwrap();
        for j in 0..4usize {
            for k in 0..n / 2 {
                let mut settings = vec![vec![false; n / 2]; 4];
                settings[j][k] = true;
                let map = net.mapping(&settings);
                // Find the swapped pair.
                let moved: Vec<usize> = (0..n).filter(|&x| map[x] != x).collect();
                assert_eq!(moved.len(), 2, "j={j} k={k}");
                let (a, b) = (moved[0], moved[1]);
                assert_eq!(a ^ b, 1 << j, "j={j} k={k}: swapped {a} and {b}");
                assert_eq!(map[a], b);
                assert_eq!(map[b], a);
            }
        }
    }

    #[test]
    fn inplace_wiring_agrees_with_rbn_stage_pairs() {
        // Column j's switch k must gather exactly the pair that
        // stage::rbn_stage_blocks assigns to stage j's k-th switch.
        use crate::stage::rbn_stage_blocks;
        let n = 32usize;
        let net = WiredNetwork::inplace_rbn(n).unwrap();
        for j in 0..5usize {
            // Where does each line sit entering column j? Track through the
            // prefix with all-parallel settings: position = composition of
            // pre/post pieces. Easier: gather_j directly from the wiring
            // tables: accumulated permutation up to column j's ports.
            let mut acc = identity(n);
            for jj in 0..=j {
                acc = compose(&acc, &net.pre[jj]);
            }
            // acc[x] = port of column j holding line x (parallel switches
            // don't move lines between columns in this construction).
            let mut global = 0usize;
            for block in rbn_stage_blocks(n, j as u32) {
                for i in 0..block.switches() {
                    let (u, l) = block.pair(i);
                    assert_eq!(acc[u] / 2, global, "upper j={j}");
                    assert_eq!(acc[l] / 2, global, "lower j={j}");
                    assert_eq!(acc[u] % 2, 0);
                    assert_eq!(acc[l] % 2, 1);
                    global += 1;
                }
            }
        }
    }

    #[test]
    fn omega_all_parallel_is_identity() {
        // All-parallel omega composes m perfect shuffles: the address
        // left-rotates m times and returns to itself.
        let n = 16usize;
        let net = WiredNetwork::omega(n).unwrap();
        let settings = vec![vec![false; n / 2]; 4];
        assert_eq!(net.mapping(&settings), identity(n));
    }

    #[test]
    fn omega_self_routes_by_destination_bits() {
        // The classic omega property: a message reaches destination d by
        // exiting column j on the port equal to bit (m−1−j) of d. Verify for
        // every (input, output) pair by deriving the column settings from
        // the message's position and the destination bit.
        let n = 16usize;
        let m = 4usize;
        let net = WiredNetwork::omega(n).unwrap();
        for input in 0..n {
            for output in 0..n {
                let mut settings = vec![vec![false; n / 2]; m];
                // Walk the message through, choosing each switch.
                let mut pos = input;
                for (j, column) in settings.iter_mut().enumerate() {
                    let port = net.pre[j][pos];
                    let want = (output >> (m - 1 - j)) & 1;
                    if port & 1 != want {
                        column[port / 2] = true;
                    }
                    pos = (port & !1) | want;
                }
                let map = net.mapping(&settings);
                assert_eq!(map[input], output, "{input}→{output}");
            }
        }
    }

    #[test]
    fn wiring_tables_are_permutations() {
        for n in [4usize, 8, 64] {
            for net in [
                WiredNetwork::omega(n).unwrap(),
                WiredNetwork::inplace_rbn(n).unwrap(),
            ] {
                assert_eq!(net.columns(), log2_exact(n) as usize);
                for p in &net.pre {
                    assert!(is_permutation(p));
                }
                assert!(is_permutation(&net.post));
            }
        }
    }
}
