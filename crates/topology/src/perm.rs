//! Shuffle / exchange interconnection functions and bit-permutation helpers.
//!
//! The paper (Section 4, Fig. 6) uses a *perfect shuffle* `σ` between the
//! switch ports of a merging network and its external links, with the defining
//! property `|σ(a) − σ(ā)| = n/2` where `ā = exchange(a)`. With addresses
//! written `a_0 a_1 … a_{m-1}` (MSB first), that `σ` is the cyclic *right*
//! rotation of the numeric value: the least-significant bit moves to the
//! most-significant position. Its inverse (the numeric left rotation) is
//! [`unshuffle`] here. Both directions are provided because the literature is
//! split on naming; what matters for the merging network is the pairing
//! `σ(2i) = i`, `σ(2i+1) = i + n/2`.

use crate::log2_exact;

/// The exchange function: flips the least significant address bit.
///
/// `exchange(a)` is the other port of the 2×2 switch that port `a` belongs to.
#[inline]
pub fn exchange(a: usize) -> usize {
    a ^ 1
}

/// The perfect-shuffle map used by the paper's merging network: cyclic right
/// rotation of the `m`-bit address `a` (LSB moves to the MSB position).
///
/// Satisfies `shuffle(2i, n) = i` and `shuffle(2i + 1, n) = i + n/2`, hence
/// `|shuffle(a) − shuffle(exchange(a))| = n/2` as required by Fig. 6.
#[inline]
pub fn shuffle(a: usize, n: usize) -> usize {
    debug_assert!(n.is_power_of_two() && a < n);
    let m = log2_exact(n);
    (a >> 1) | ((a & 1) << (m - 1))
}

/// Inverse of [`shuffle`]: cyclic left rotation of the `m`-bit address (MSB
/// moves to the LSB position).
#[inline]
pub fn unshuffle(a: usize, n: usize) -> usize {
    debug_assert!(n.is_power_of_two() && a < n);
    let m = log2_exact(n);
    ((a << 1) & (n - 1)) | (a >> (m - 1))
}

/// Reverses the `m` low bits of `a`.
#[inline]
pub fn bit_reverse(a: usize, n: usize) -> usize {
    debug_assert!(n.is_power_of_two() && a < n);
    let m = log2_exact(n);
    let mut out = 0usize;
    for k in 0..m {
        out |= ((a >> k) & 1) << (m - 1 - k);
    }
    out
}

/// The `i`-th most significant bit of the `m`-bit address `a`
/// (`i = 1` is the MSB, matching the paper's "ith most significant bit").
#[inline]
pub fn msb(a: usize, m: u32, i: u32) -> u8 {
    debug_assert!(i >= 1 && i <= m);
    ((a >> (m - i)) & 1) as u8
}

/// Returns `a` as an MSB-first bit string of width `m`, e.g. `bits(5, 4) == "0101"`.
pub fn bits(a: usize, m: u32) -> String {
    (1..=m).map(|i| char::from(b'0' + msb(a, m, i))).collect()
}

/// Applies a permutation given as a table: `out[perm[i]] = in[i]`.
///
/// Used to realize an explicit link permutation between stages when drawing or
/// validating a network. Panics if `perm` is not a permutation of `0..len`.
pub fn apply_permutation<T: Clone>(input: &[T], perm: &[usize]) -> Vec<T> {
    assert_eq!(input.len(), perm.len());
    let mut out: Vec<Option<T>> = vec![None; input.len()];
    for (i, &p) in perm.iter().enumerate() {
        assert!(out[p].is_none(), "not a permutation: duplicate target {p}");
        out[p] = Some(input[i].clone());
    }
    out.into_iter().map(|x| x.unwrap()).collect()
}

/// Checks that `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

/// Composes two permutation tables: `compose(f, g)[i] = g[f[i]]`
/// (apply `f` first, then `g`).
pub fn compose(f: &[usize], g: &[usize]) -> Vec<usize> {
    assert_eq!(f.len(), g.len());
    f.iter().map(|&i| g[i]).collect()
}

/// Inverts a permutation table.
pub fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

/// The identity permutation on `0..n`.
pub fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exchange_flips_low_bit() {
        assert_eq!(exchange(0), 1);
        assert_eq!(exchange(1), 0);
        assert_eq!(exchange(6), 7);
        assert_eq!(exchange(7), 6);
    }

    #[test]
    fn shuffle_pairs_ports_to_half_separated_links() {
        // The defining property from Fig. 6 of the paper.
        for m in 1..=8 {
            let n = 1usize << m;
            for i in 0..n / 2 {
                assert_eq!(shuffle(2 * i, n), i);
                assert_eq!(shuffle(2 * i + 1, n), i + n / 2);
            }
            for a in 0..n {
                let d = shuffle(a, n).abs_diff(shuffle(exchange(a), n));
                assert_eq!(d, n / 2, "n={n} a={a}");
            }
        }
    }

    #[test]
    fn unshuffle_inverts_shuffle() {
        for m in 1..=8 {
            let n = 1usize << m;
            for a in 0..n {
                assert_eq!(unshuffle(shuffle(a, n), n), a);
                assert_eq!(shuffle(unshuffle(a, n), n), a);
            }
        }
    }

    #[test]
    fn shuffle_n2_is_identity_like() {
        // For n = 2 both rotations are the identity on {0, 1}.
        assert_eq!(shuffle(0, 2), 0);
        assert_eq!(shuffle(1, 2), 1);
        assert_eq!(unshuffle(0, 2), 0);
        assert_eq!(unshuffle(1, 2), 1);
    }

    #[test]
    fn bit_reverse_is_involution() {
        for m in 1..=8 {
            let n = 1usize << m;
            for a in 0..n {
                assert_eq!(bit_reverse(bit_reverse(a, n), n), a);
            }
        }
    }

    #[test]
    fn bit_reverse_examples() {
        assert_eq!(bit_reverse(0b001, 8), 0b100);
        assert_eq!(bit_reverse(0b110, 8), 0b011);
        assert_eq!(bit_reverse(0b1011, 16), 0b1101);
    }

    #[test]
    fn msb_indexing_matches_paper_convention() {
        // Address 011 (n = 8): a_0 = 0, a_1 = 1, a_2 = 1.
        assert_eq!(msb(0b011, 3, 1), 0);
        assert_eq!(msb(0b011, 3, 2), 1);
        assert_eq!(msb(0b011, 3, 3), 1);
    }

    #[test]
    fn bits_renders_msb_first() {
        assert_eq!(bits(0b011, 3), "011");
        assert_eq!(bits(5, 4), "0101");
    }

    #[test]
    fn apply_permutation_routes_values() {
        let input = vec!['a', 'b', 'c', 'd'];
        // out[perm[i]] = in[i]
        let perm = vec![2, 0, 3, 1];
        assert_eq!(apply_permutation(&input, &perm), vec!['b', 'd', 'a', 'c']);
    }

    #[test]
    fn compose_and_invert_are_consistent() {
        let f = vec![1usize, 2, 0, 3];
        let g = invert(&f);
        assert_eq!(compose(&f, &g), identity(4));
        assert_eq!(compose(&g, &f), identity(4));
    }

    #[test]
    fn is_permutation_detects_duplicates() {
        assert!(is_permutation(&[0, 1, 2]));
        assert!(!is_permutation(&[0, 0, 2]));
        assert!(!is_permutation(&[0, 1, 3]));
    }

    proptest! {
        #[test]
        fn prop_shuffle_is_bijection(m in 1u32..10) {
            let n = 1usize << m;
            let table: Vec<usize> = (0..n).map(|a| shuffle(a, n)).collect();
            prop_assert!(is_permutation(&table));
        }

        #[test]
        fn prop_unshuffle_doubles_mod_n(m in 1u32..10, a in 0usize..1024) {
            let n = 1usize << m;
            let a = a % n;
            // Numeric left rotation acts as a = 2a mod (n-1) style doubling:
            // low m-1 bits shift up, MSB wraps to bit 0.
            let expected = ((a << 1) & (n - 1)) | (a >> (m - 1));
            prop_assert_eq!(unshuffle(a, n), expected);
        }

        #[test]
        fn prop_compose_with_inverse_is_identity(seed in proptest::collection::vec(0usize..1000, 2..64)) {
            // Build a permutation by arg-sorting the random seed.
            let mut idx: Vec<usize> = (0..seed.len()).collect();
            idx.sort_by_key(|&i| (seed[i], i));
            prop_assert!(is_permutation(&idx));
            let inv = invert(&idx);
            prop_assert_eq!(compose(&idx, &inv), identity(seed.len()));
        }
    }
}
