//! Interconnection-topology substrate for the self-routing multicast network.
//!
//! This crate provides the address arithmetic and stage geometry that every
//! network in the workspace is built on:
//!
//! * [`perm`] — the shuffle / exchange family of bit-permutation interconnection
//!   functions (Hwang \[15\] in the paper), plus general bit-manipulation helpers.
//! * [`stage`] — the geometry of a *merging stage*: which pairs of lines enter a
//!   common 2×2 switch at each stage of a reverse banyan network (Figs. 5–7 of
//!   the paper).
//! * [`banyan`] — the full reverse-banyan topology as an explicit stage graph,
//!   with structural validation (perfect matchings per stage, the unique-path
//!   banyan property).
//!
//! Sizes are always powers of two; `m = log2(n)` is the address width, and
//! output addresses are written `a_0 a_1 … a_{m-1}` with `a_0` the most
//! significant bit, following Section 2 of the paper.
//!
//! ```
//! use brsmn_topology::{shuffle, ReverseBanyanTopology};
//!
//! // The merging network's defining pairing (Fig. 6): |σ(a) − σ(ā)| = n/2.
//! assert_eq!(shuffle(2 * 3, 16), 3);
//! assert_eq!(shuffle(2 * 3 + 1, 16), 3 + 8);
//!
//! // A reverse banyan network has exactly one path between any input and
//! // output (the banyan property).
//! let topo = ReverseBanyanTopology::new(16).unwrap();
//! assert_eq!(topo.path_count(5, 12), 1);
//! assert_eq!(topo.unique_path(5, 12).len(), 4); // one hop per stage
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banyan;
pub mod networks;
pub mod perm;
pub mod stage;

pub use banyan::ReverseBanyanTopology;
pub use networks::WiredNetwork;
pub use perm::{exchange, shuffle, unshuffle};
pub use stage::{MergeStage, SwitchCoord};

/// Error raised when a network size is not a power of two (or is below the
/// minimum size of 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeError {
    /// The offending size.
    pub n: usize,
}

impl std::fmt::Display for SizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network size must be a power of two and at least 2, got {}",
            self.n
        )
    }
}

impl std::error::Error for SizeError {}

/// Checks that `n` is a valid network size (`n = 2^m`, `m >= 1`).
pub fn check_size(n: usize) -> Result<(), SizeError> {
    if n >= 2 && n.is_power_of_two() {
        Ok(())
    } else {
        Err(SizeError { n })
    }
}

/// `log2` of a power of two. Panics if `n` is not a power of two.
pub fn log2_exact(n: usize) -> u32 {
    assert!(n.is_power_of_two(), "log2_exact: {n} is not a power of two");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_size_accepts_powers_of_two() {
        for m in 1..16 {
            assert!(check_size(1 << m).is_ok());
        }
    }

    #[test]
    fn check_size_rejects_non_powers() {
        for n in [0usize, 1, 3, 5, 6, 7, 9, 12, 100] {
            assert!(check_size(n).is_err(), "size {n} should be rejected");
        }
    }

    #[test]
    fn size_error_displays_value() {
        let e = check_size(12).unwrap_err();
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn log2_exact_matches_shift() {
        for m in 0..20 {
            assert_eq!(log2_exact(1usize << m), m);
        }
    }

    #[test]
    #[should_panic]
    fn log2_exact_panics_on_non_power() {
        let _ = log2_exact(12);
    }
}
