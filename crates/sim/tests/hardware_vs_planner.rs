//! Property-based differential testing: the gate-level routing circuits vs
//! the software planners, on random inputs beyond the exhaustive unit tests.

use brsmn_rbn::{eps_divide, plan_bitsort, plan_scatter};
use brsmn_sim::{
    bitsort_router, eps_divider, run_bitsort_router, run_eps_divider, run_scatter_router,
    scatter_router,
};
use brsmn_switch::{QTag, SwitchSetting, Tag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitsort_circuit_matches_planner(gamma in proptest::collection::vec(any::<bool>(), 16), s in 0usize..16) {
        let router = bitsort_router(16);
        let hw = run_bitsort_router(&router, &gamma, s);
        let plan = plan_bitsort(&gamma, s);
        for (j, stage) in hw.iter().enumerate() {
            for (k, &cross) in stage.iter().enumerate() {
                prop_assert_eq!(
                    cross,
                    plan.settings.stage(j)[k] == SwitchSetting::Crossing,
                    "stage {} switch {}", j, k
                );
            }
        }
    }

    #[test]
    fn scatter_circuit_matches_planner(raw in proptest::collection::vec(0u8..4, 8), s in 0usize..8) {
        let tags: Vec<Tag> = raw.iter().map(|&r| match r {
            0 => Tag::Zero,
            1 => Tag::One,
            2 => Tag::Alpha,
            _ => Tag::Eps,
        }).collect();
        let router = scatter_router(8);
        let hw = run_scatter_router(&router, &tags, s);
        let plan = plan_scatter(&tags, s);
        for (j, stage) in hw.iter().enumerate() {
            for (k, &code) in stage.iter().enumerate() {
                prop_assert_eq!(code, plan.settings.stage(j)[k].code(), "stage {} switch {}", j, k);
            }
        }
    }

    #[test]
    fn eps_divider_circuit_matches_planner(raw in proptest::collection::vec(0u8..3, 16)) {
        let mut tags: Vec<Tag> = raw.iter().map(|&r| match r {
            0 => Tag::Zero,
            1 => Tag::One,
            _ => Tag::Eps,
        }).collect();
        // Enforce the quasisort precondition.
        for want in [Tag::Zero, Tag::One] {
            let mut count = 0usize;
            for t in tags.iter_mut() {
                if *t == want {
                    count += 1;
                    if count > 8 {
                        *t = Tag::Eps;
                    }
                }
            }
        }
        let div = eps_divider(16);
        let is_eps: Vec<bool> = tags.iter().map(|&t| t == Tag::Eps).collect();
        let is_one: Vec<bool> = tags.iter().map(|&t| t == Tag::One).collect();
        let hw = run_eps_divider(&div, &is_eps, &is_one);
        let sw = eps_divide(&tags).unwrap();
        for (i, qt) in sw.qtags.iter().enumerate() {
            prop_assert_eq!(hw[i], *qt == QTag::Eps0, "input {}", i);
        }
    }
}
