//! Acceptance test for the fault-injection subsystem: a deterministic
//! seeded single-fault campaign at n = 64.
//!
//! The acceptance criteria of the fault work are checked directly:
//! * every injected fault that corrupts an output is **detected** (zero
//!   false negatives);
//! * the fault-free control run raises **zero false positives**;
//! * recovered and failed frames **account** exactly for the corrupted ones.

#![cfg(feature = "faults")]

use brsmn_sim::run_single_fault_campaign;

#[test]
fn seeded_single_fault_campaign_n64() {
    let report = run_single_fault_campaign(64, 64, 4, 2024).unwrap();

    assert_eq!(report.n, 64);
    assert_eq!(report.faults_injected, 64);
    assert_eq!(
        report.faults_corrupting + report.faults_harmless,
        report.faults_injected
    );

    // Zero false negatives: every corrupted frame was flagged.
    assert_eq!(report.false_negatives, 0, "undetected corruption:\n{report}");
    for rec in &report.records {
        assert_eq!(
            rec.frames_corrupted, rec.frames_detected,
            "fault {} evaded detection",
            rec.fault
        );
    }

    // Zero false positives on the healthy control fabric.
    assert_eq!(report.control_false_positives, 0, "{report}");

    // Accounting: corrupted = retried + degraded + failed.
    assert!(report.accounts(), "ladder accounting broken:\n{report}");

    // The campaign must actually exercise the fabric.
    assert!(report.faults_corrupting > 0, "{report}");
    assert!(report.frames_corrupted > 0, "{report}");

    // Determinism: the same seed reproduces the same report.
    let again = run_single_fault_campaign(64, 64, 4, 2024).unwrap();
    assert_eq!(again, report);
}
