//! Acceptance tests for the fault-injection subsystem: deterministic seeded
//! campaigns at n = 64 — single faults, two simultaneous faults, and
//! correlated whole-column failures.
//!
//! The acceptance criteria of the fault work are checked directly:
//! * every injected fault (plan) that corrupts an output is **detected**
//!   (zero false negatives) — this holds structurally for *any* number of
//!   simultaneous faults, because the delivered source table is uniquely
//!   determined by the assignment, so any divergence from the healthy
//!   delivery fails `verify_routing`;
//! * the fault-free control run raises **zero false positives**;
//! * recovered and failed frames **account** exactly for the corrupted ones;
//! * recovery rates stay inside recorded bounds (single/dual faults recover
//!   often; whole persistent columns mostly do not — the ladder's honesty
//!   is the point, not a 100% rate).

#![cfg(feature = "faults")]

use brsmn_sim::{run_fault_plan_campaign, run_single_fault_campaign, FaultKind, FaultPlan};

#[test]
fn seeded_single_fault_campaign_n64() {
    let report = run_single_fault_campaign(64, 64, 4, 2024).unwrap();

    assert_eq!(report.n, 64);
    assert_eq!(report.faults_injected, 64);
    assert_eq!(
        report.faults_corrupting + report.faults_harmless,
        report.faults_injected
    );

    // Zero false negatives: every corrupted frame was flagged.
    assert_eq!(report.false_negatives, 0, "undetected corruption:\n{report}");
    for rec in &report.records {
        assert_eq!(
            rec.frames_corrupted, rec.frames_detected,
            "fault {} evaded detection",
            rec.fault
        );
    }

    // Zero false positives on the healthy control fabric.
    assert_eq!(report.control_false_positives, 0, "{report}");

    // Accounting: corrupted = retried + degraded + failed.
    assert!(report.accounts(), "ladder accounting broken:\n{report}");

    // The campaign must actually exercise the fabric.
    assert!(report.faults_corrupting > 0, "{report}");
    assert!(report.frames_corrupted > 0, "{report}");

    // Determinism: the same seed reproduces the same report.
    let again = run_single_fault_campaign(64, 64, 4, 2024).unwrap();
    assert_eq!(again, report);
}

#[test]
fn two_simultaneous_fault_campaign_n64() {
    let plans: Vec<FaultPlan> = (0..16)
        .map(|i| FaultPlan::random_pair(64, 9000 + i))
        .collect();
    for plan in &plans {
        assert_eq!(plan.faults().len(), 2);
        assert_ne!(
            plan.faults()[0].site,
            plan.faults()[1].site,
            "pair draws distinct sites"
        );
    }

    let report = run_fault_plan_campaign(64, plans.clone(), 4, 2025).unwrap();

    assert_eq!(report.plans_injected, 16);
    assert_eq!(
        report.plans_corrupting + report.plans_harmless,
        report.plans_injected
    );

    // Zero false negatives, even with two faults interacting.
    assert_eq!(report.false_negatives, 0, "undetected corruption:\n{report}");
    for rec in &report.records {
        assert_eq!(
            rec.frames_corrupted, rec.frames_detected,
            "plan evaded detection: {:?}",
            rec.plan
        );
    }
    assert_eq!(report.control_false_positives, 0, "{report}");
    assert!(report.accounts(), "ladder accounting broken:\n{report}");

    // Dual faults must actually bite.
    assert!(report.plans_corrupting > 0, "{report}");
    assert!(report.frames_corrupted > 0, "{report}");

    // Recorded recovery-rate bounds. Measured for this seeded campaign:
    // 53.1% (22 by retry, 4 by degraded re-plan, 23 failed of 49 corrupted).
    // The band leaves margin for planner evolution while catching a
    // collapse of the ladder (everything failing) or a silently trivialized
    // campaign (everything recovering).
    let recovery = report.recovery_rate();
    assert!(
        (0.30..=0.85).contains(&recovery),
        "dual-fault recovery rate {recovery:.3} left the recorded band:\n{report}"
    );
    assert!(report.frames_recovered_retry > 0, "{report}");

    // Determinism.
    let again = run_fault_plan_campaign(64, plans, 4, 2025).unwrap();
    assert_eq!(again, report);
}

#[test]
fn correlated_whole_column_campaign_n64() {
    // Whole switch columns (32 stuck switches) and a whole line column (64
    // dead links) at representative coordinates: level-1 scatter and
    // quasisort stages, deep levels, and the final 2×2 column.
    let plans = vec![
        FaultPlan::whole_column(64, 1, 0, FaultKind::StuckThrough),
        FaultPlan::whole_column(64, 1, 11, FaultKind::StuckCross),
        FaultPlan::whole_column(64, 2, 3, FaultKind::StuckUpperBroadcast),
        FaultPlan::whole_column(64, 3, 1, FaultKind::StuckLowerBroadcast),
        FaultPlan::whole_column(64, 6, 0, FaultKind::StuckCross),
        FaultPlan::whole_column(64, 1, 6, FaultKind::DeadLink),
    ];
    for plan in &plans {
        assert!(plan.faults().len() >= 32);
        assert!(plan.faults().iter().all(|f| !f.transient));
    }

    let report = run_fault_plan_campaign(64, plans.clone(), 4, 2026).unwrap();

    // The hard invariant survives correlated failure: zero false negatives.
    assert_eq!(report.false_negatives, 0, "undetected corruption:\n{report}");
    for rec in &report.records {
        assert_eq!(rec.frames_corrupted, rec.frames_detected);
    }
    assert_eq!(report.control_false_positives, 0, "{report}");
    assert!(report.accounts(), "{report}");

    // A whole column leaves no room for luck: every plan corrupts every
    // frame of the workload.
    assert_eq!(report.plans_corrupting, report.plans_injected, "{report}");
    assert_eq!(
        report.frames_corrupted,
        report.plans_injected * report.frames_per_plan,
        "{report}"
    );

    // Recorded recovery-rate bound. Measured for this campaign: 0.0% — a
    // persistent whole column defeats both the reference retry (same
    // hardware) and the single-block rotation re-plan, and the ladder
    // reports that honestly rather than claiming recovery. The bound only
    // caps it: a smarter re-planner may legitimately start recovering some.
    assert!(
        report.recovery_rate() <= 0.25,
        "whole-column recovery {:.3} left the recorded bound — if the \
         re-planner improved, update the bound:\n{report}",
        report.recovery_rate()
    );

    // Determinism.
    let again = run_fault_plan_campaign(64, plans, 4, 2026).unwrap();
    assert_eq!(again, report);
}
