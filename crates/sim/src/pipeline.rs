//! Pipelined multi-assignment throughput of the unfolded BRSMN.
//!
//! The paper reports the routing *latency* of one assignment
//! (`O(log² n)`). The unfolded architecture buys something more that the
//! feedback version gives up: the `log n` BSN levels are **physically
//! distinct**, so while level 2 routes assignment `k`, level 1 can already
//! set up assignment `k+1`. Back-to-back assignments then flow at an
//! initiation interval equal to the *slowest level* — the first,
//! `T_bsn(n) = O(log n)` gate delays — not the full `O(log² n)` latency.
//!
//! This module computes the analytic latency/interval/makespan and verifies
//! them with a discrete-event simulation of the level pipeline.

use crate::timing::bsn_routing_time;
use brsmn_switch::cost::SWITCH_TRAVERSAL_DELAY;
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};

/// Pipelined-schedule figures for a batch of assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Gate delays from injection to delivery for one assignment
    /// (the paper's routing time).
    pub latency: u64,
    /// Sustained initiation interval between back-to-back assignments
    /// (the slowest level's occupancy).
    pub interval: u64,
    /// Total gate delays to drain `k` assignments.
    pub makespan: u64,
    /// Assignments scheduled.
    pub assignments: u64,
}

/// Per-level service times of an `n × n` BRSMN: the BSN levels plus the
/// final 2×2 stage.
pub fn level_times(n: usize) -> Vec<u64> {
    let m = log2_exact(n) as usize;
    let mut t: Vec<u64> = (1..m).map(|i| bsn_routing_time(n >> (i - 1))).collect();
    t.push(SWITCH_TRAVERSAL_DELAY);
    t
}

/// Discrete-event simulation of `k` assignments flowing through the level
/// pipeline: assignment `a` enters level `i` when both the level is free
/// and its own level `i−1` has finished.
pub fn simulate_pipeline(n: usize, k: u64) -> PipelineStats {
    let times = level_times(n);
    let levels = times.len();
    let mut level_free = vec![0u64; levels];
    let mut first_finish = 0u64;
    let mut last_finish = 0u64;
    for a in 0..k {
        let mut t = 0u64; // this assignment's progress time
        for (i, &service) in times.iter().enumerate() {
            let start = t.max(level_free[i]);
            let finish = start + service;
            level_free[i] = finish;
            t = finish;
        }
        if a == 0 {
            first_finish = t;
        }
        last_finish = t;
    }
    let latency = first_finish;
    let interval = times.iter().copied().max().unwrap_or(0);
    PipelineStats {
        latency,
        interval,
        makespan: last_finish,
        assignments: k,
    }
}

/// Pipelined-schedule figures for a batch spread over several replicated
/// fabrics (the hardware analogue of the software engine's worker pool in
/// `brsmn-core::engine`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelPipelineStats {
    /// Independent BRSMN copies frames were spread over.
    pub fabrics: u64,
    /// Assignments scheduled across all fabrics.
    pub assignments: u64,
    /// Gate delays until the most-loaded fabric drains.
    pub makespan: u64,
    /// Makespan of the same batch on a single fabric.
    pub single_fabric_makespan: u64,
}

impl ParallelPipelineStats {
    /// Modeled speedup over a single pipelined fabric. Saturates below the
    /// fabric count because each fabric still pays the fill latency.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.single_fabric_makespan as f64 / self.makespan as f64
        }
    }
}

/// Models `k` assignments spread round-robin over `fabrics` independent
/// pipelined BRSMNs — the hardware counterpart of frame-level parallelism
/// in the batched software engine. The makespan is set by the most-loaded
/// fabric, i.e. one carrying `⌈k / fabrics⌉` assignments.
pub fn simulate_replicated_pipeline(n: usize, k: u64, fabrics: u64) -> ParallelPipelineStats {
    let fabrics = fabrics.max(1);
    let heaviest = k.div_ceil(fabrics);
    ParallelPipelineStats {
        fabrics,
        assignments: k,
        makespan: simulate_pipeline(n, heaviest).makespan,
        single_fabric_makespan: simulate_pipeline(n, k).makespan,
    }
}

/// The closed-form makespan the pipeline achieves:
/// `latency + (k−1)·interval` (valid because level times are monotonically
/// non-increasing along the pipeline, so the first level is the bottleneck
/// and no bubble forms downstream).
pub fn makespan_closed_form(n: usize, k: u64) -> u64 {
    let times = level_times(n);
    let latency: u64 = times.iter().sum();
    let interval = times.iter().copied().max().unwrap_or(0);
    if k == 0 {
        0
    } else {
        latency + (k - 1) * interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::brsmn_routing_time;

    #[test]
    fn latency_matches_routing_time() {
        for n in [8usize, 64, 1024] {
            let stats = simulate_pipeline(n, 1);
            assert_eq!(stats.latency, brsmn_routing_time(n).total);
            assert_eq!(stats.makespan, stats.latency);
        }
    }

    #[test]
    fn simulation_matches_closed_form() {
        for n in [8usize, 64, 512] {
            for k in [1u64, 2, 5, 20, 100] {
                let sim = simulate_pipeline(n, k);
                assert_eq!(sim.makespan, makespan_closed_form(n, k), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn interval_is_first_level_time() {
        // Level times shrink with depth, so the first (full-width) BSN is
        // the bottleneck.
        for n in [16usize, 256, 4096] {
            let times = level_times(n);
            assert!(times.windows(2).all(|w| w[0] >= w[1]));
            assert_eq!(
                simulate_pipeline(n, 3).interval,
                times[0],
                "n={n}"
            );
        }
    }

    #[test]
    fn pipelining_beats_serial_by_about_log_n() {
        // k assignments pipelined vs serial: speedup → latency/interval ≈
        // Θ(log n) for large k.
        let n = 1024usize;
        let k = 1000u64;
        let pipelined = simulate_pipeline(n, k).makespan as f64;
        let serial = (brsmn_routing_time(n).total * k) as f64;
        let speedup = serial / pipelined;
        assert!(speedup > 3.0, "speedup {speedup:.1}");
        assert!(speedup < 20.0, "speedup {speedup:.1}");
    }

    #[test]
    fn zero_assignments() {
        assert_eq!(makespan_closed_form(64, 0), 0);
    }

    #[test]
    fn replicated_single_fabric_is_identity() {
        let s = simulate_replicated_pipeline(64, 40, 1);
        assert_eq!(s.makespan, simulate_pipeline(64, 40).makespan);
        assert!((s.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replicated_fabrics_split_the_load() {
        let s = simulate_replicated_pipeline(64, 64, 4);
        // Most-loaded fabric carries 16 frames.
        assert_eq!(s.makespan, simulate_pipeline(64, 16).makespan);
        let speedup = s.speedup();
        assert!(speedup > 2.0, "speedup {speedup:.2}");
        assert!(speedup <= 4.0, "speedup {speedup:.2}");
    }

    #[test]
    fn replicated_speedup_grows_with_batch() {
        // Fill latency amortizes: bigger batches approach the fabric count.
        let small = simulate_replicated_pipeline(256, 16, 4).speedup();
        let large = simulate_replicated_pipeline(256, 4096, 4).speedup();
        assert!(large > small);
        assert!(large > 3.5, "large-batch speedup {large:.2}");
    }
}
