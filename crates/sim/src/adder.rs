//! The pipelined one-bit (bit-serial) adder of Fig. 12 and its composition
//! into adder trees.
//!
//! Operands stream LSB-first, one bit per gate-delay tick; a one-bit full
//! adder with a carry flip-flop emits sum bit `i` a fixed
//! [`ADDER_STAGE_DELAY`] after both operand bits `i` are present (the carry
//! for bit `i` was latched while bit `i−1` was summed, so it is never the
//! bottleneck on the monotone streams modeled here). A tree of such adders
//! is fully pipelined: total latency is `(bits − 1) + depth · delay`, linear
//! in depth instead of `depth × bits`.
//!
//! This module simulates *bit arrival times* explicitly rather than assuming
//! the closed form, so the timing claims in EXPERIMENTS.md are measured.

use brsmn_switch::cost::ADDER_STAGE_DELAY;

/// Arrival times of the bits of a leaf operand: bit `i` is on the wire at
/// tick `i` (LSB first).
pub fn leaf_arrivals(bits: usize) -> Vec<u64> {
    (0..bits as u64).collect()
}

/// Arrival times of the sum bits of one pipelined serial adder, given the
/// arrival times of its operand bits.
///
/// Sum bit `i` appears [`ADDER_STAGE_DELAY`] after `max(a_i, b_i)`, and
/// never earlier than one tick after sum bit `i−1` (the carry dependency).
pub fn add_arrivals(a: &[u64], b: &[u64]) -> Vec<u64> {
    let w = a.len().max(b.len());
    let mut out = Vec::with_capacity(w + 1);
    let mut prev: u64 = 0;
    for i in 0..=w {
        // Missing high bits of a shorter operand are zeros that continue
        // streaming one per tick after its last real bit.
        let ai = stream_bit(a, i);
        let bi = stream_bit(b, i);
        // Combinational delay after the operand bits; the latched carry only
        // enforces one output bit per clock tick.
        let mut t = ai.max(bi) + ADDER_STAGE_DELAY;
        if i > 0 {
            t = t.max(prev + 1);
        }
        out.push(t);
        prev = t;
    }
    out
}

fn stream_bit(x: &[u64], i: usize) -> u64 {
    if i < x.len() {
        x[i]
    } else {
        // The stream keeps clocking zeros after its payload.
        x.last().map_or(i as u64, |&last| last + (i - x.len()) as u64 + 1)
    }
}

/// Latency (in gate delays) until the **last** sum bit of a balanced adder
/// tree over `leaves` operands of `bits` bits each has settled.
///
/// This is the forward-phase cost of the distributed algorithms: the tree of
/// Fig. 8a folded over the pipelined adders of Fig. 12.
pub fn adder_tree_latency(leaves: usize, bits: usize) -> u64 {
    assert!(leaves.is_power_of_two() && leaves >= 1);
    let mut level: Vec<Vec<u64>> = (0..leaves).map(|_| leaf_arrivals(bits)).collect();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| add_arrivals(&pair[0], &pair[1]))
            .collect();
    }
    *level[0].last().expect("non-empty result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_bits_stream_one_per_tick() {
        assert_eq!(leaf_arrivals(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_adder_is_pipelined() {
        let a = leaf_arrivals(4);
        let out = add_arrivals(&a, &a);
        // Bit i settles at i + delay; one extra carry-out bit at the end.
        for (i, &t) in out.iter().enumerate().take(4) {
            assert_eq!(t, i as u64 + ADDER_STAGE_DELAY);
        }
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn tree_latency_is_linear_in_depth_plus_bits() {
        // Fully pipelined: each level adds one carry-out bit and one stage
        // delay, so latency = (bits − 1) + depth·(delay + 1) — linear in
        // depth, NOT depth·bits.
        for depth in 1..10u32 {
            let leaves = 1usize << depth;
            let bits = 8usize;
            let measured = adder_tree_latency(leaves, bits);
            let expected = bits as u64 - 1 + depth as u64 * (ADDER_STAGE_DELAY + 1);
            assert_eq!(measured, expected, "depth={depth}");
        }
    }

    #[test]
    fn unpipelined_would_be_quadratically_worse() {
        // Sanity on the claim of Section 7.2: a non-pipelined tree would pay
        // bits·delay per level; the simulated pipelined latency is far less.
        let depth = 10u32;
        let bits = 11usize; // log(1024) + 1
        let pipelined = adder_tree_latency(1 << depth, bits);
        let unpipelined = depth as u64 * (bits as u64 * ADDER_STAGE_DELAY);
        assert!(pipelined * 3 < unpipelined);
    }

    #[test]
    fn mismatched_widths_zero_extend() {
        let a = leaf_arrivals(2);
        let b = leaf_arrivals(6);
        let out = add_arrivals(&a, &b);
        assert_eq!(out.len(), 7);
        // The longer operand dominates arrival times.
        assert_eq!(out[5], 5 + ADDER_STAGE_DELAY);
    }

    #[test]
    fn degenerate_single_leaf() {
        assert_eq!(adder_tree_latency(1, 5), 4);
    }
}
