//! The scatter algorithm's **forward phase** in gates (Table 4, §7.2).
//!
//! The paper's forward rule — add runs of the same dominating type, subtract
//! runs of different types, and let the larger magnitude's type win — is
//! exactly **two's-complement addition** once a sub-RBN's state is encoded
//! as the signed count `v = nα − nε`:
//!
//! * leaf `α` contributes `+1`, leaf `ε` contributes `−1`, leaf `χ` is `0`;
//! * any node's `v` is just the sum of its children's `v`s;
//! * the dominating type is `sign(v)` and the run length `l = |v|`.
//!
//! So the entire Table 4 forward phase is the same serial-adder tree as the
//! bit-sorting one — no comparators, no case analysis — which is why the
//! paper's "constant number of one-bit adders per switch" suffices even for
//! the scatter network. Streams here are `width`-bit two's-complement, fed
//! LSB first; leaves emit `+1` as `1,0,0,…` and `−1` as `1,1,1,…`
//! (sign extension is free on a serial wire: keep repeating the last bit).

use crate::gates::{GateKind, Netlist, NodeId};
use brsmn_rbn::DomType;
use brsmn_switch::Tag;
use brsmn_topology::log2_exact;

/// Builds the signed forward tree: `2n` inputs (per leaf: an `is_alpha` bit
/// and an `is_eps` bit, presented every tick — the leaf's serial encoding is
/// derived internally), one serial output `v` carrying the root's signed
/// count, plus per-node outputs `v_{j}_{b}` for verification.
pub fn scatter_forward_tree(n: usize) -> Netlist {
    let m = log2_exact(n) as usize;
    let mut nl = Netlist::new();
    // Tick-0 marker input (drives the +1 encoding: 1 at tick 0 then 0s).
    let tick0 = nl.input();
    // Per leaf: is_alpha, is_eps (static levels, held by the driver).
    let mut leaves: Vec<NodeId> = Vec::with_capacity(n);
    for _ in 0..n {
        let is_alpha = nl.input();
        let is_eps = nl.input();
        // +1 stream: is_alpha ∧ tick0 (bit 0 only).
        let plus = nl.gate(GateKind::And, vec![is_alpha, tick0]);
        // −1 stream: all ones while is_eps (two's complement of 1).
        // v_leaf = plus OR minus: the tags are mutually exclusive so the
        // two encodings never overlap.
        let v = nl.gate(GateKind::Or, vec![plus, is_eps]);
        leaves.push(v);
    }

    let mut level = leaves;
    let mut j = 0usize;
    while level.len() > 1 {
        j += 1;
        let mut next = Vec::with_capacity(level.len() / 2);
        for (b, pair) in level.chunks(2).enumerate() {
            let (a, c) = (pair[0], pair[1]);
            let carry = nl.dff_deferred();
            let axb = nl.gate(GateKind::Xor, vec![a, c]);
            let sum = nl.gate(GateKind::Xor, vec![axb, carry]);
            let ab = nl.gate(GateKind::And, vec![a, c]);
            let c_axb = nl.gate(GateKind::And, vec![carry, axb]);
            let carry_next = nl.gate(GateKind::Or, vec![ab, c_axb]);
            nl.connect_dff(carry, carry_next);
            nl.mark_output(&format!("v_{j}_{b}"), sum);
            next.push(sum);
        }
        level = next;
    }
    nl.mark_output("v", level[0]);
    let _ = m;
    nl
}

/// Drives a [`scatter_forward_tree`] netlist on a tag vector and decodes
/// every tree node's signed count into `(dominating type, run length)`
/// pairs, level by level (index `[j-1][b]` = node of height `j`).
pub fn run_scatter_forward(nl: &Netlist, tags: &[Tag]) -> Vec<Vec<(DomType, usize)>> {
    let n = tags.len();
    let m = log2_exact(n) as usize;
    let width = m + 2; // signed counts in [−n, n]
    let mut sim = nl.simulator();
    // raw[j-1][b] accumulates the serial bits of node (j, b).
    let mut raw: Vec<Vec<u64>> = (1..=m).map(|j| vec![0u64; n >> j]).collect();
    for t in 0..width {
        let mut inputs = Vec::with_capacity(1 + 2 * n);
        inputs.push(t == 0);
        for &tag in tags {
            inputs.push(tag == Tag::Alpha);
            inputs.push(tag == Tag::Eps);
        }
        let out = sim.tick(&inputs);
        for j in 1..=m {
            for b in 0..(n >> j) {
                if out[&format!("v_{j}_{b}")] {
                    raw[j - 1][b] |= 1 << t;
                }
            }
        }
    }
    // Decode two's complement at the stream width.
    raw.into_iter()
        .map(|level| {
            level
                .into_iter()
                .map(|bits| {
                    let signed = if bits >> (width - 1) & 1 == 1 {
                        bits as i64 - (1i64 << width)
                    } else {
                        bits as i64
                    };
                    if signed >= 0 {
                        (DomType::Alpha, signed as usize)
                    } else {
                        (DomType::Eps, (-signed) as usize)
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_rbn::plan_scatter;

    fn check(tags: &[Tag]) {
        let n = tags.len();
        let nl = scatter_forward_tree(n);
        let hw = run_scatter_forward(&nl, tags);
        let plan = plan_scatter(tags, 0);
        for (j, level) in hw.iter().enumerate() {
            for (b, &(ty, l)) in level.iter().enumerate() {
                let sw = plan.nodes[j + 1][b];
                assert_eq!(l, sw.l, "node ({}, {b}) of {tags:?}", j + 1);
                if l > 0 {
                    assert_eq!(ty, sw.ty, "node ({}, {b}) of {tags:?}", j + 1);
                }
            }
        }
    }

    #[test]
    fn matches_planner_exhaustively_n4() {
        let all = [Tag::Zero, Tag::One, Tag::Alpha, Tag::Eps];
        for a in all {
            for b in all {
                for c in all {
                    for d in all {
                        check(&[a, b, c, d]);
                    }
                }
            }
        }
    }

    #[test]
    fn matches_planner_sampled_n32() {
        for seed in 0..20u64 {
            let tags: Vec<Tag> = (0..32)
                .map(|i| {
                    match (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 62 {
                        0 => Tag::Alpha,
                        1 => Tag::Eps,
                        2 => Tag::Zero,
                        _ => Tag::One,
                    }
                })
                .collect();
            check(&tags);
        }
    }

    #[test]
    fn all_eps_is_minus_n() {
        let n = 8;
        let nl = scatter_forward_tree(n);
        let hw = run_scatter_forward(&nl, &[Tag::Eps; 8]);
        assert_eq!(hw[2][0], (DomType::Eps, n));
    }

    #[test]
    fn all_alpha_is_plus_n() {
        let nl = scatter_forward_tree(8);
        let hw = run_scatter_forward(&nl, &[Tag::Alpha; 8]);
        assert_eq!(hw[2][0], (DomType::Alpha, 8));
    }

    #[test]
    fn balanced_cancels_to_zero() {
        let nl = scatter_forward_tree(8);
        let tags = [
            Tag::Alpha,
            Tag::Eps,
            Tag::Alpha,
            Tag::Eps,
            Tag::Zero,
            Tag::One,
            Tag::Alpha,
            Tag::Eps,
        ];
        let hw = run_scatter_forward(&nl, &tags);
        assert_eq!(hw[2][0].1, 0);
    }

    #[test]
    fn hardware_cost_is_one_adder_per_node() {
        let nl = scatter_forward_tree(64);
        // 63 adders × 5 gates + 64 leaf encoders × 2 gates.
        assert_eq!(nl.gate_count(), 63 * 5 + 64 * 2);
        assert_eq!(nl.dff_count(), 63);
    }
}
