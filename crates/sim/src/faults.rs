//! Fault injection and graceful degradation for the BRSMN fabric.
//!
//! The paper proves that a *healthy* BRSMN realizes every multicast
//! assignment; this module asks what happens when the fabric is not healthy.
//! It models the physical failure modes of the network hardware:
//!
//! * **stuck-at switches** — a 2×2 switch frozen in one of its four Fig. 2
//!   states (`parallel`, `crossing`, `upper-`/`lower-broadcast`) regardless
//!   of what the planner programmed;
//! * **dead links** — a line that drops whatever frame it carries;
//! * **tag bit-flips** — one bit of the 3-bit Table 1 code word (`b0 b1 b2`)
//!   of a line's tag XOR-ed, possibly turning a message into a phantom, an
//!   `α` into an `ε`, or an idle line into a spurious tag.
//!
//! Faults are addressed by [`FaultSite`] coordinates `(level, stage, index)`
//! and collected into a [`FaultPlan`], either explicitly or seeded randomly.
//! [`FaultyBrsmn`] executes routes on the damaged fabric: it plans each BSN
//! exactly like the healthy reference router, then *executes* the plan
//! permissively ([`brsmn_switch::apply_switch_forced`]) with the plan's
//! settings overridden at stuck switches and lines corrupted at fault sites,
//! so damage propagates to the outputs instead of erroring mid-route.
//!
//! Detection is end-to-end: [`brsmn_core::verify_routing`] compares the
//! delivered source table against the assignment. Recovery uses the
//! [`ResilientRouter`] ladder of `brsmn-core`: retry (clears transient
//! upsets), then degraded re-planning that exploits the compact-sequence
//! freedom of Lemmas 1–5 — the scatter planner accepts *any* rotation
//! `s_target` of its compact run, so [`FaultyBrsmn::route_degraded`] sweeps
//! rotations of the faulty block until the plan happens to agree with (or
//! route around) the stuck element.
//!
//! [`run_single_fault_campaign`] ties it together: a seeded campaign of
//! single faults over a random workload, reporting detection and recovery
//! rates (the `brsmn-cli faults` command prints it).

use brsmn_core::{
    verify_routing, Brsmn, CoreError, Engine, EngineConfig, FaultReport, FrameOutcome,
    MulticastAssignment, ResilientRouter, RoutingResult,
};
use brsmn_rbn::{plan_quasisort, plan_scatter, RbnSettings, RbnWiring};
use brsmn_switch::encoding::{decode_tag, encode_tag, TagCode};
use brsmn_switch::{apply_switch_forced, Line, SwitchSetting, Tag};
use brsmn_topology::log2_exact;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::mem;

/// What is broken at a [`FaultSite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Switch frozen in the `r = 0` parallel state (Fig. 2).
    StuckThrough,
    /// Switch frozen in the `r = 1` crossing state (Fig. 2).
    StuckCross,
    /// Switch frozen in the `r = 2` upper-broadcast state (Fig. 2).
    StuckUpperBroadcast,
    /// Switch frozen in the `r = 3` lower-broadcast state (Fig. 2).
    StuckLowerBroadcast,
    /// The line drops its frame entirely.
    DeadLink,
    /// Bit `b` (0 = `b2` … 2 = `b0` of Table 1) of the line's tag code word
    /// is inverted. Codes that decode to `ε` or to an unused word (`01X`)
    /// drop the frame — the receiver treats the line as idle.
    TagFlip(u8),
}

impl FaultKind {
    /// The forced setting of a stuck switch, `None` for line faults.
    pub fn stuck_setting(self) -> Option<SwitchSetting> {
        match self {
            FaultKind::StuckThrough => Some(SwitchSetting::Parallel),
            FaultKind::StuckCross => Some(SwitchSetting::Crossing),
            FaultKind::StuckUpperBroadcast => Some(SwitchSetting::UpperBroadcast),
            FaultKind::StuckLowerBroadcast => Some(SwitchSetting::LowerBroadcast),
            FaultKind::DeadLink | FaultKind::TagFlip(_) => None,
        }
    }

    /// `true` for faults that corrupt a line rather than a switch.
    pub fn is_line_fault(self) -> bool {
        matches!(self, FaultKind::DeadLink | FaultKind::TagFlip(_))
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckThrough => write!(f, "stuck-through"),
            FaultKind::StuckCross => write!(f, "stuck-cross"),
            FaultKind::StuckUpperBroadcast => write!(f, "stuck-upper-broadcast"),
            FaultKind::StuckLowerBroadcast => write!(f, "stuck-lower-broadcast"),
            FaultKind::DeadLink => write!(f, "dead-link"),
            FaultKind::TagFlip(b) => write!(f, "tag-flip(bit {b})"),
        }
    }
}

/// Physical coordinate of a fault.
///
/// * `level` — 1-based level of the Fig. 1 recursion: levels `1 … m−1`
///   (`m = log2(n)`) hold BSNs of size `n/2^{level−1}`; level `m` is the
///   final column of plain 2×2 switches.
/// * `stage` — 0-based switch stage *within* the level: a size-`2^k` BSN
///   runs `k` scatter stages (`0 … k−1`) then `k` quasisort stages
///   (`k … 2k−1`); the final level has the single stage `0`.
/// * `index` — for switch faults, the global switch index within the stage
///   (`0 … n/2`); for line faults, the global line index (`0 … n`). Line
///   faults corrupt the line *entering* the given stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSite {
    /// 1-based level of the recursion.
    pub level: usize,
    /// 0-based stage within the level.
    pub stage: usize,
    /// Global switch index (switch faults) or line index (line faults).
    pub index: usize,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "level {} stage {} index {}",
            self.level, self.stage, self.index
        )
    }
}

/// One injected fault: a site, a kind and a persistence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Where.
    pub site: FaultSite,
    /// What.
    pub kind: FaultKind,
    /// Transient faults (particle upsets) afflict only the first attempt on
    /// a frame and vanish on retry; persistent faults (hard failures) afflict
    /// every attempt.
    pub transient: bool,
}

impl Fault {
    /// Whether the fault afflicts attempt number `attempt` of a frame
    /// (attempt 0 = primary, 1 = retry, 2+ = degraded re-plans).
    pub fn active(&self, attempt: usize) -> bool {
        !self.transient || attempt == 0
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({})",
            self.kind,
            self.site,
            if self.transient {
                "transient"
            } else {
                "persistent"
            }
        )
    }
}

/// A set of faults to inflict on a fabric.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A healthy fabric.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// A plan containing exactly one fault.
    pub fn single(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Adds a fault.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Draws one uniformly random fault for an `n × n` network from `seed`:
    /// a random level, stage, kind, coordinate and persistence class.
    pub fn random_single(n: usize, seed: u64) -> Fault {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = log2_exact(n) as usize;
        let level = rng.gen_range(1..=m);
        let kind = match rng.gen_range(0..6usize) {
            0 => FaultKind::StuckThrough,
            1 => FaultKind::StuckCross,
            2 => FaultKind::StuckUpperBroadcast,
            3 => FaultKind::StuckLowerBroadcast,
            4 => FaultKind::DeadLink,
            _ => FaultKind::TagFlip(rng.gen_range(0..3u8)),
        };
        let stage = if level < m {
            let k = log2_exact(n >> (level - 1)) as usize;
            rng.gen_range(0..2 * k)
        } else {
            0
        };
        let index = if kind.is_line_fault() {
            rng.gen_range(0..n)
        } else {
            rng.gen_range(0..n / 2)
        };
        Fault {
            site: FaultSite {
                level,
                stage,
                index,
            },
            kind,
            transient: rng.gen_bool(0.5),
        }
    }

    /// A seeded plan of `count` independent random faults.
    pub fn random(n: usize, seed: u64, count: usize) -> Self {
        FaultPlan {
            faults: (0..count)
                .map(|i| Self::random_single(n, seed.wrapping_add(i as u64)))
                .collect(),
        }
    }

    /// A seeded plan of two **simultaneous** random faults at distinct
    /// sites — the multi-fault campaign's unit of injection. Both faults
    /// keep their drawn persistence class, so transient/persistent
    /// combinations occur across a campaign's plans.
    pub fn random_pair(n: usize, seed: u64) -> Self {
        let first = Self::random_single(n, seed);
        let mut bump = 0u64;
        let second = loop {
            let candidate =
                Self::random_single(n, seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(bump));
            if candidate.site != first.site {
                break candidate;
            }
            bump += 1;
        };
        FaultPlan {
            faults: vec![first, second],
        }
    }

    /// A correlated whole-column failure: **every** switch of stage
    /// `(level, stage)` stuck at `kind` (or, for line kinds, every line
    /// entering the stage afflicted). Persistent — a shared driver or
    /// power rail failing takes the column down for every attempt. Both
    /// switch and line kinds are accepted and sized accordingly (`n/2`
    /// switches vs `n` lines).
    pub fn whole_column(n: usize, level: usize, stage: usize, kind: FaultKind) -> Self {
        let count = if kind.is_line_fault() { n } else { n / 2 };
        FaultPlan {
            faults: (0..count)
                .map(|index| Fault {
                    site: FaultSite {
                        level,
                        stage,
                        index,
                    },
                    kind,
                    transient: false,
                })
                .collect(),
        }
    }

    /// The forced setting of the switch at `(level, stage, switch)` on this
    /// attempt, if a stuck-at fault sits there.
    fn stuck_setting_at(
        &self,
        level: usize,
        stage: usize,
        switch: usize,
        attempt: usize,
    ) -> Option<SwitchSetting> {
        self.faults.iter().find_map(|f| {
            (f.active(attempt)
                && f.site == FaultSite {
                    level,
                    stage,
                    index: switch,
                })
            .then(|| f.kind.stuck_setting())
            .flatten()
        })
    }

    /// Line faults afflicting lines entering `(level, stage)` on this
    /// attempt.
    fn active_line_faults(
        &self,
        level: usize,
        stage: usize,
        attempt: usize,
    ) -> impl Iterator<Item = &Fault> {
        self.faults.iter().filter(move |f| {
            f.kind.is_line_fault()
                && f.active(attempt)
                && f.site.level == level
                && f.site.stage == stage
        })
    }
}

/// The message model of the faulty executor: source plus the *absolute*
/// destination set.
///
/// The healthy `SemanticMsg` asserts at every split that its destinations
/// lie inside the current block — exactly the invariant a fault breaks — so
/// the faulty fabric carries this tolerant payload instead. A message's tag
/// at each level is recomputed from `dests ∩ block` (the distributed
/// hardware reads its real inputs, so planning adapts to whatever actually
/// arrived); a misrouted message with no destination in its block is
/// arbitrarily tagged `0` and keeps flowing until the output verifier
/// catches it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultyMsg {
    source: usize,
    dests: Vec<usize>,
}

/// The routing tag of `dests` relative to the block `[base, base + size)`.
fn block_tag(dests: &[usize], base: usize, size: usize) -> Tag {
    let half = base + size / 2;
    let end = base + size;
    let mut upper = false;
    let mut lower = false;
    for &d in dests {
        if d >= base && d < half {
            upper = true;
        } else if d >= half && d < end {
            lower = true;
        }
    }
    match (upper, lower) {
        (true, true) => Tag::Alpha,
        (true, false) => Tag::Zero,
        (false, true) => Tag::One,
        // Misrouted here: no legal branch exists, the hardware still forwards
        // it somewhere. Pick the upper branch deterministically.
        (false, false) => Tag::Zero,
    }
}

/// Applies one line fault in place. Lines here may be *inconsistent*
/// (non-`ε` tag with no payload = a phantom tag, which perturbs downstream
/// planning exactly like a corrupted wire would).
fn apply_line_fault(line: &mut Line<FaultyMsg>, kind: FaultKind) {
    match kind {
        FaultKind::DeadLink => *line = Line::empty(),
        FaultKind::TagFlip(bit) => {
            let code = encode_tag(line.tag).as_u8() ^ (1 << (bit % 3));
            match TagCode::from_u8(code).and_then(decode_tag) {
                // ε (or an unused 01X word): the receiver sees no frame.
                Some(Tag::Eps) | None => *line = Line::empty(),
                Some(t) => line.tag = t,
            }
        }
        _ => unreachable!("switch faults are not line faults"),
    }
}

/// Scatter-rotation override for one block — the degraded re-plan's handle
/// on the compact-sequence freedom of Lemmas 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScatterRotation {
    level: usize,
    block: usize,
    s: usize,
}

/// A BRSMN executing routes over a fabric damaged by a [`FaultPlan`].
///
/// Planning is identical to the healthy reference router (each BSN plans a
/// scatter and a quasisort from the tags that *actually* arrived); execution
/// is stage-by-stage and permissive, with stuck switches overriding their
/// planned setting and line faults corrupting stage inputs. A fault-free
/// plan reproduces [`Brsmn::route`] bit for bit.
#[derive(Debug, Clone)]
pub struct FaultyBrsmn {
    n: usize,
    plan: FaultPlan,
    /// `wirings[level − 1]` = local stage pairs of the size-`n/2^{level−1}`
    /// BSN RBNs.
    wirings: Vec<RbnWiring>,
}

impl FaultyBrsmn {
    /// A faulty `n × n` fabric (`n` a power of two ≥ 4).
    pub fn new(n: usize, plan: FaultPlan) -> Result<Self, CoreError> {
        // Validate n through the healthy constructor.
        let _ = Brsmn::new(n)?;
        let m = log2_exact(n) as usize;
        let wirings = (1..m).map(|lvl| RbnWiring::new(n >> (lvl - 1))).collect();
        Ok(FaultyBrsmn { n, plan, wirings })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The injected faults.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Routes `asg` through the damaged fabric. `attempt` selects which
    /// faults are live (transients afflict only attempt 0); `rotation`
    /// overrides the scatter target of one block (the degraded re-plan).
    ///
    /// `Err` means the fault was *detected at plan time* (the quasisort
    /// planner rejected the tags the damaged scatter produced); `Ok` carries
    /// whatever the fabric delivered, right or wrong — the caller verifies.
    fn execute(
        &self,
        asg: &MulticastAssignment,
        attempt: usize,
        rotation: Option<ScatterRotation>,
    ) -> Result<RoutingResult, CoreError> {
        assert_eq!(asg.n(), self.n, "assignment size mismatch");
        let n = self.n;
        let m = log2_exact(n) as usize;

        let mut lines: Vec<Line<FaultyMsg>> = (0..n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps,
                        payload: Some(FaultyMsg {
                            source: i,
                            dests: dests.to_vec(),
                        }),
                    }
                }
            })
            .collect();

        // Levels 1 … m−1: BSNs of halving size.
        let mut size = n;
        let mut level = 1usize;
        while size > 2 {
            let k = log2_exact(size) as usize;
            let wiring = &self.wirings[level - 1];
            for b in 0..n / size {
                let base = b * size;
                for line in lines[base..base + size].iter_mut() {
                    line.tag = match &line.payload {
                        Some(msg) => block_tag(&msg.dests, base, size),
                        None => Tag::Eps,
                    };
                }
                let tags: Vec<Tag> = lines[base..base + size].iter().map(|l| l.tag).collect();
                let s_target = match rotation {
                    Some(r) if r.level == level && r.block == b => r.s % size,
                    _ => 0,
                };
                let scatter = plan_scatter(&tags, s_target);
                self.run_stages(&mut lines, base, size, level, 0, &scatter.settings, wiring, attempt);

                let mid: Vec<Tag> = lines[base..base + size].iter().map(|l| l.tag).collect();
                // A plan rejection here IS detection: the damaged scatter
                // left tags no healthy quasisort accepts.
                let (_, sort) = plan_quasisort(&mid)?;
                self.run_stages(&mut lines, base, size, level, k, &sort.settings, wiring, attempt);
            }
            size /= 2;
            level += 1;
        }

        // Final level m: n/2 plain 2×2 switches.
        for f in self.plan.active_line_faults(m, 0, attempt) {
            if f.site.index < n {
                apply_line_fault(&mut lines[f.site.index], f.kind);
            }
        }
        for sw in 0..n / 2 {
            let lo = 2 * sw;
            for line in lines[lo..lo + 2].iter_mut() {
                if let Some(msg) = &line.payload {
                    line.tag = block_tag(&msg.dests, lo, 2);
                }
                // Phantom tags keep whatever the flip left (no payload to
                // re-derive a tag from).
            }
            let mut setting = final_setting(lines[lo].tag, lines[lo + 1].tag);
            if let Some(s) = self.plan.stuck_setting_at(m, 0, sw, attempt) {
                setting = s;
            }
            let up = mem::replace(&mut lines[lo], Line::empty());
            let dn = mem::replace(&mut lines[lo + 1], Line::empty());
            let (ou, ol) = apply_switch_forced(setting, up, dn);
            lines[lo] = ou;
            lines[lo + 1] = ol;
        }

        Ok(RoutingResult::new(
            lines
                .into_iter()
                .map(|l| l.payload.map(|msg| msg.source))
                .collect(),
        ))
    }

    /// Executes the `settings` stages of one RBN over the block at `base`,
    /// permissively, with faults applied. `stage_offset` maps local RBN
    /// stages onto the level's fault coordinates (0 for the scatter RBN,
    /// `log2(size)` for the quasisort RBN).
    #[allow(clippy::too_many_arguments)]
    fn run_stages(
        &self,
        lines: &mut [Line<FaultyMsg>],
        base: usize,
        size: usize,
        level: usize,
        stage_offset: usize,
        settings: &RbnSettings,
        wiring: &RbnWiring,
        attempt: usize,
    ) {
        let b = base / size;
        for j in 0..settings.num_stages() {
            let stage = stage_offset + j;
            for f in self.plan.active_line_faults(level, stage, attempt) {
                let idx = f.site.index;
                if idx >= base && idx < base + size {
                    apply_line_fault(&mut lines[idx], f.kind);
                }
            }
            let stage_settings = settings.stage(j);
            let pairs = wiring.stage(j);
            for sw in 0..size / 2 {
                let mut setting = stage_settings[sw];
                let global_sw = b * (size / 2) + sw;
                if let Some(s) = self.plan.stuck_setting_at(level, stage, global_sw, attempt) {
                    setting = s;
                }
                let (u, l) = pairs[sw];
                let (u, l) = (base + u as usize, base + l as usize);
                let up = mem::replace(&mut lines[u], Line::empty());
                let dn = mem::replace(&mut lines[l], Line::empty());
                let (ou, ol) = apply_switch_forced(setting, up, dn);
                lines[u] = ou;
                lines[l] = ol;
            }
        }
    }
}

/// The healthy final-switch decision table of `brsmn-core`, totalized:
/// combinations the healthy router rejects as output conflicts resolve to a
/// deterministic unicast (the hardware delivers both frames *somewhere*).
fn final_setting(tu: Tag, tl: Tag) -> SwitchSetting {
    match (tu, tl) {
        (Tag::Alpha, Tag::Eps) => SwitchSetting::UpperBroadcast,
        (Tag::Eps, Tag::Alpha) => SwitchSetting::LowerBroadcast,
        (Tag::Zero, _) | (Tag::Eps, Tag::One) | (Tag::Eps, Tag::Eps) => SwitchSetting::Parallel,
        (Tag::One, _) | (Tag::Eps, Tag::Zero) => SwitchSetting::Crossing,
        (Tag::Alpha, _) => SwitchSetting::Parallel,
    }
}

impl ResilientRouter for FaultyBrsmn {
    fn route_primary(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.execute(asg, 0, None)
    }

    fn route_retry(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.execute(asg, 1, None)
    }

    /// Sweeps scatter rotations (`s_target` of Lemmas 1–5) of the block the
    /// verifier localized — then of each enclosing ancestor block — until
    /// one re-plan routes around the persistent fault and verifies.
    fn route_degraded(
        &self,
        asg: &MulticastAssignment,
        report: &FaultReport,
    ) -> Option<Result<RoutingResult, CoreError>> {
        let m = log2_exact(self.n) as usize;
        if m < 2 {
            return None;
        }
        // The final level has no scatter; steer its parent BSN instead.
        let deepest = report.first_divergent_level.clamp(1, m - 1);
        let block0 = report.first_divergent_block >> (report.first_divergent_level - deepest);
        for level in (1..=deepest).rev() {
            let block = block0 >> (deepest - level);
            let size = self.n >> (level - 1);
            for s in 1..size {
                let rot = ScatterRotation { level, block, s };
                if let Ok(r) = self.execute(asg, 2, Some(rot)) {
                    if verify_routing(asg, &r).is_ok() {
                        return Some(Ok(r));
                    }
                }
            }
        }
        None
    }
}

/// A seeded random multicast assignment: a shuffled subset of the outputs,
/// partitioned into small fanout groups over a shuffled subset of inputs,
/// with some groups left idle.
pub fn random_assignment(n: usize, rng: &mut StdRng) -> MulticastAssignment {
    let mut outputs: Vec<usize> = (0..n).collect();
    outputs.shuffle(rng);
    let mut inputs: Vec<usize> = (0..n).collect();
    inputs.shuffle(rng);

    let mut sets = vec![Vec::new(); n];
    let mut pos = 0;
    for &input in &inputs {
        if pos >= n {
            break;
        }
        let fanout = rng.gen_range(1..=4usize).min(n - pos);
        if rng.gen_bool(0.25) {
            // Leave these outputs idle.
            pos += fanout;
            continue;
        }
        sets[input] = outputs[pos..pos + fanout].to_vec();
        pos += fanout;
    }
    MulticastAssignment::from_sets(n, sets).expect("disjoint by construction")
}

/// Outcome of one injected fault across the campaign's workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The fault.
    pub fault: Fault,
    /// Frames whose primary route differed from the healthy delivery (or
    /// errored at plan time).
    pub frames_corrupted: usize,
    /// Corrupted frames the verifier (or a plan-time error) flagged.
    pub frames_detected: usize,
    /// Frames recovered by the reference retry.
    pub recovered_retry: usize,
    /// Frames recovered by the degraded re-plan.
    pub recovered_degraded: usize,
    /// Frames that exhausted the ladder.
    pub frames_failed: usize,
}

/// Aggregate result of a seeded single-fault campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Network size.
    pub n: usize,
    /// Faults injected (one run of the workload each).
    pub faults_injected: usize,
    /// Frames routed per fault.
    pub frames_per_fault: usize,
    /// Faults that corrupted at least one frame.
    pub faults_corrupting: usize,
    /// Faults whose every frame matched the healthy delivery.
    pub faults_harmless: usize,
    /// Corrupted frames whose verification nevertheless passed — the
    /// campaign's hard invariant is that this stays 0.
    pub false_negatives: usize,
    /// Frames corrupted across all faults.
    pub frames_corrupted: usize,
    /// … of which recovered by the reference retry.
    pub frames_recovered_retry: usize,
    /// … of which recovered by the degraded re-plan.
    pub frames_recovered_degraded: usize,
    /// … of which failed outright.
    pub frames_failed: usize,
    /// Frames of the fault-free control run that did *not* verify on the
    /// primary attempt — must be 0.
    pub control_false_positives: usize,
    /// Per-fault breakdown.
    pub records: Vec<FaultRecord>,
}

impl CampaignReport {
    /// Detection rate over corrupted frames (1.0 when nothing corrupted).
    pub fn detection_rate(&self) -> f64 {
        if self.frames_corrupted == 0 {
            1.0
        } else {
            1.0 - self.false_negatives as f64 / self.frames_corrupted as f64
        }
    }

    /// Share of corrupted frames recovered by retry or degradation.
    pub fn recovery_rate(&self) -> f64 {
        if self.frames_corrupted == 0 {
            1.0
        } else {
            (self.frames_recovered_retry + self.frames_recovered_degraded) as f64
                / self.frames_corrupted as f64
        }
    }

    /// The accounting identity the acceptance criteria demand: every
    /// corrupted frame is either recovered (retry or degraded) or failed.
    pub fn accounts(&self) -> bool {
        self.frames_corrupted
            == self.frames_recovered_retry + self.frames_recovered_degraded + self.frames_failed
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "single-fault campaign: n={} faults={} frames/fault={}",
            self.n, self.faults_injected, self.frames_per_fault
        )?;
        writeln!(
            f,
            "  faults: {} corrupting, {} harmless",
            self.faults_corrupting, self.faults_harmless
        )?;
        writeln!(
            f,
            "  detection: {:.1}% ({} corrupted frames, {} false negatives)",
            100.0 * self.detection_rate(),
            self.frames_corrupted,
            self.false_negatives
        )?;
        writeln!(
            f,
            "  recovery: {:.1}% ({} by retry, {} by degraded re-plan, {} failed)",
            100.0 * self.recovery_rate(),
            self.frames_recovered_retry,
            self.frames_recovered_degraded,
            self.frames_failed
        )?;
        write!(
            f,
            "  control: {} false positives on the fault-free run",
            self.control_false_positives
        )
    }
}

/// Outcome of one injected [`FaultPlan`] (any number of simultaneous
/// faults) across the campaign's workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanRecord {
    /// The injected plan.
    pub plan: FaultPlan,
    /// Frames whose primary route differed from the healthy delivery (or
    /// errored at plan time).
    pub frames_corrupted: usize,
    /// Corrupted frames the verifier (or a plan-time error) flagged.
    pub frames_detected: usize,
    /// Frames recovered by the reference retry.
    pub recovered_retry: usize,
    /// Frames recovered by the degraded re-plan.
    pub recovered_degraded: usize,
    /// Frames that exhausted the ladder.
    pub frames_failed: usize,
}

/// Aggregate result of a fault-**plan** campaign — the multi-fault
/// generalization of [`CampaignReport`], covering simultaneous and
/// correlated failures.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanCampaignReport {
    /// Network size.
    pub n: usize,
    /// Plans injected (one run of the workload each).
    pub plans_injected: usize,
    /// Frames routed per plan.
    pub frames_per_plan: usize,
    /// Plans that corrupted at least one frame.
    pub plans_corrupting: usize,
    /// Plans whose every frame matched the healthy delivery.
    pub plans_harmless: usize,
    /// Corrupted frames whose verification nevertheless passed — the
    /// campaign's hard invariant is that this stays 0 (see
    /// `crates/core/src/verify.rs`: the delivered source table is uniquely
    /// determined by the assignment, so *any* divergence from the healthy
    /// delivery fails verification, however many faults caused it).
    pub false_negatives: usize,
    /// Frames corrupted across all plans.
    pub frames_corrupted: usize,
    /// … of which recovered by the reference retry.
    pub frames_recovered_retry: usize,
    /// … of which recovered by the degraded re-plan.
    pub frames_recovered_degraded: usize,
    /// … of which failed outright.
    pub frames_failed: usize,
    /// Frames of the fault-free control run that did *not* verify on the
    /// primary attempt — must be 0.
    pub control_false_positives: usize,
    /// Per-plan breakdown.
    pub records: Vec<PlanRecord>,
}

impl PlanCampaignReport {
    /// Detection rate over corrupted frames (1.0 when nothing corrupted).
    pub fn detection_rate(&self) -> f64 {
        if self.frames_corrupted == 0 {
            1.0
        } else {
            1.0 - self.false_negatives as f64 / self.frames_corrupted as f64
        }
    }

    /// Share of corrupted frames recovered by retry or degradation.
    pub fn recovery_rate(&self) -> f64 {
        if self.frames_corrupted == 0 {
            1.0
        } else {
            (self.frames_recovered_retry + self.frames_recovered_degraded) as f64
                / self.frames_corrupted as f64
        }
    }

    /// Every corrupted frame is either recovered (retry or degraded) or
    /// failed.
    pub fn accounts(&self) -> bool {
        self.frames_corrupted
            == self.frames_recovered_retry + self.frames_recovered_degraded + self.frames_failed
    }
}

impl fmt::Display for PlanCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max_faults = self
            .records
            .iter()
            .map(|r| r.plan.faults().len())
            .max()
            .unwrap_or(0);
        writeln!(
            f,
            "fault-plan campaign: n={} plans={} (up to {} simultaneous faults) frames/plan={}",
            self.n, self.plans_injected, max_faults, self.frames_per_plan
        )?;
        writeln!(
            f,
            "  plans: {} corrupting, {} harmless",
            self.plans_corrupting, self.plans_harmless
        )?;
        writeln!(
            f,
            "  detection: {:.1}% ({} corrupted frames, {} false negatives)",
            100.0 * self.detection_rate(),
            self.frames_corrupted,
            self.false_negatives
        )?;
        writeln!(
            f,
            "  recovery: {:.1}% ({} by retry, {} by degraded re-plan, {} failed)",
            100.0 * self.recovery_rate(),
            self.frames_recovered_retry,
            self.frames_recovered_degraded,
            self.frames_failed
        )?;
        write!(
            f,
            "  control: {} false positives on the fault-free run",
            self.control_false_positives
        )
    }
}

/// Runs a seeded fault-plan campaign: each plan in `plans` is inflicted on
/// a fresh fabric and exercised by the same `frames`-frame random workload
/// (drawn from `seed`), plus a fault-free control run. Detection is judged
/// against the healthy router's delivery; recovery runs the full engine
/// ladder ([`Engine::route_batch_resilient`]).
///
/// This is the campaign core; [`run_single_fault_campaign`] is the
/// single-fault specialization that feeds it one-fault plans.
pub fn run_fault_plan_campaign(
    n: usize,
    plans: Vec<FaultPlan>,
    frames: usize,
    seed: u64,
) -> Result<PlanCampaignReport, CoreError> {
    let healthy = Brsmn::new(n)?;
    let engine = Engine::with_config(n, EngineConfig::default())?;

    let mut rng = StdRng::seed_from_u64(seed);
    let workload: Vec<MulticastAssignment> =
        (0..frames).map(|_| random_assignment(n, &mut rng)).collect();
    let expected: Vec<RoutingResult> = workload
        .iter()
        .map(|asg| healthy.route(asg))
        .collect::<Result<_, _>>()?;

    let mut report = PlanCampaignReport {
        n,
        plans_injected: plans.len(),
        frames_per_plan: frames,
        plans_corrupting: 0,
        plans_harmless: 0,
        false_negatives: 0,
        frames_corrupted: 0,
        frames_recovered_retry: 0,
        frames_recovered_degraded: 0,
        frames_failed: 0,
        control_false_positives: 0,
        records: Vec::with_capacity(plans.len()),
    };

    for plan in plans {
        let fabric = FaultyBrsmn::new(n, plan.clone())?;

        let mut record = PlanRecord {
            plan,
            frames_corrupted: 0,
            frames_detected: 0,
            recovered_retry: 0,
            recovered_degraded: 0,
            frames_failed: 0,
        };

        // Detection pass: primary attempt only, judged against the healthy
        // delivery (corruption) and the verifier (detection).
        for (asg, exp) in workload.iter().zip(&expected) {
            match fabric.route_primary(asg) {
                Ok(r) => {
                    if &r != exp {
                        record.frames_corrupted += 1;
                        if verify_routing(asg, &r).is_err() {
                            record.frames_detected += 1;
                        } else {
                            report.false_negatives += 1;
                        }
                    }
                }
                Err(_) => {
                    // Plan-time rejection: corrupted and detected at once.
                    record.frames_corrupted += 1;
                    record.frames_detected += 1;
                }
            }
        }

        // Recovery pass: the full verify → retry → degrade ladder.
        let (_, outcomes) = engine.route_batch_resilient(&workload, &fabric);
        for outcome in outcomes {
            match outcome {
                FrameOutcome::Ok => {}
                FrameOutcome::Retried => record.recovered_retry += 1,
                FrameOutcome::Degraded => record.recovered_degraded += 1,
                FrameOutcome::Failed => record.frames_failed += 1,
            }
        }

        if record.frames_corrupted > 0 {
            report.plans_corrupting += 1;
        } else {
            report.plans_harmless += 1;
        }
        report.frames_corrupted += record.frames_corrupted;
        report.frames_recovered_retry += record.recovered_retry;
        report.frames_recovered_degraded += record.recovered_degraded;
        report.frames_failed += record.frames_failed;
        report.records.push(record);
    }

    // Control: a fault-free fabric must sail through the ladder untouched.
    let clean = FaultyBrsmn::new(n, FaultPlan::empty())?;
    let (_, outcomes) = engine.route_batch_resilient(&workload, &clean);
    report.control_false_positives = outcomes
        .iter()
        .filter(|o| **o != FrameOutcome::Ok)
        .count();

    Ok(report)
}

/// Runs a seeded single-fault campaign: `num_faults` independently drawn
/// faults, each inflicted on a fresh fabric and exercised by the same
/// `frames`-frame random workload, plus a fault-free control run. A thin
/// wrapper over [`run_fault_plan_campaign`] with one-fault plans; the
/// workload, fault draws and all counters are identical to the pre-refactor
/// implementation (`seed` feeds the workload, `seed + 1 + i` feeds fault
/// `i`).
pub fn run_single_fault_campaign(
    n: usize,
    num_faults: usize,
    frames: usize,
    seed: u64,
) -> Result<CampaignReport, CoreError> {
    let plans: Vec<FaultPlan> = (0..num_faults)
        .map(|i| {
            FaultPlan::single(FaultPlan::random_single(n, seed.wrapping_add(1 + i as u64)))
        })
        .collect();
    let report = run_fault_plan_campaign(n, plans, frames, seed)?;
    Ok(CampaignReport {
        n: report.n,
        faults_injected: report.plans_injected,
        frames_per_fault: report.frames_per_plan,
        faults_corrupting: report.plans_corrupting,
        faults_harmless: report.plans_harmless,
        false_negatives: report.false_negatives,
        frames_corrupted: report.frames_corrupted,
        frames_recovered_retry: report.frames_recovered_retry,
        frames_recovered_degraded: report.frames_recovered_degraded,
        frames_failed: report.frames_failed,
        control_false_positives: report.control_false_positives,
        records: report
            .records
            .into_iter()
            .map(|r| FaultRecord {
                fault: r.plan.faults()[0],
                frames_corrupted: r.frames_corrupted,
                frames_detected: r.frames_detected,
                recovered_retry: r.recovered_retry,
                recovered_degraded: r.recovered_degraded,
                frames_failed: r.frames_failed,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fault_free_fabric_matches_healthy_router() {
        for n in [8usize, 16, 32] {
            let healthy = Brsmn::new(n).unwrap();
            let fabric = FaultyBrsmn::new(n, FaultPlan::empty()).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..12 {
                let asg = random_assignment(n, &mut rng);
                let expect = healthy.route(&asg).unwrap();
                assert_eq!(fabric.route_primary(&asg).unwrap(), expect);
            }
        }
    }

    /// The campaign's core guarantee, proven exhaustively at n = 8: EVERY
    /// possible single fault either leaves the delivery identical to the
    /// healthy one or is caught by the verifier (or a plan-time error).
    /// Zero false negatives, by enumeration rather than sampling.
    #[test]
    fn every_single_fault_detected_or_harmless_n8() {
        let n = 8;
        let healthy = Brsmn::new(n).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let workload: Vec<MulticastAssignment> = std::iter::once(paper_assignment())
            .chain((0..4).map(|_| random_assignment(n, &mut rng)))
            .collect();
        let expected: Vec<RoutingResult> =
            workload.iter().map(|a| healthy.route(a).unwrap()).collect();

        let m = log2_exact(n) as usize;
        let mut sites = Vec::new();
        for level in 1..=m {
            let stages = if level < m {
                2 * log2_exact(n >> (level - 1)) as usize
            } else {
                1
            };
            for stage in 0..stages {
                sites.push((level, stage));
            }
        }

        let switch_kinds = [
            FaultKind::StuckThrough,
            FaultKind::StuckCross,
            FaultKind::StuckUpperBroadcast,
            FaultKind::StuckLowerBroadcast,
        ];
        let line_kinds = [
            FaultKind::DeadLink,
            FaultKind::TagFlip(0),
            FaultKind::TagFlip(1),
            FaultKind::TagFlip(2),
        ];

        let mut checked = 0usize;
        for &(level, stage) in &sites {
            for kind in switch_kinds.into_iter().map(Some).chain([None]) {
                let (kinds, indices): (&[FaultKind], usize) = match kind {
                    Some(_) => (&switch_kinds, n / 2),
                    None => (&line_kinds, n),
                };
                for &k in kinds {
                    for index in 0..indices {
                        let fault = Fault {
                            site: FaultSite {
                                level,
                                stage,
                                index,
                            },
                            kind: k,
                            transient: false,
                        };
                        let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
                        for (asg, exp) in workload.iter().zip(&expected) {
                            match fabric.route_primary(asg) {
                                Ok(r) => {
                                    if &r != exp {
                                        assert!(
                                            verify_routing(asg, &r).is_err(),
                                            "FALSE NEGATIVE: {fault} corrupted \
                                             {} but verified",
                                            asg.set_notation()
                                        );
                                    }
                                }
                                Err(_) => {} // plan-time detection
                            }
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 2000, "exhaustive sweep ran ({checked} routes)");
    }

    #[test]
    fn stuck_cross_misroutes_and_is_detected() {
        // Freeze level-1 switches at n=8 into crossing and route the paper
        // example: some position must corrupt the route, and every corruption
        // must be flagged — at plan time or by the output verifier.
        let n = 8;
        let asg = paper_assignment();
        let expect = Brsmn::new(n).unwrap().route(&asg).unwrap();
        let mut corrupted_any = false;
        for stage in 0..6 {
            for index in 0..n / 2 {
                let fault = Fault {
                    site: FaultSite {
                        level: 1,
                        stage,
                        index,
                    },
                    kind: FaultKind::StuckCross,
                    transient: false,
                };
                let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
                match fabric.route_primary(&asg) {
                    Ok(r) if r != expect => {
                        corrupted_any = true;
                        assert!(verify_routing(&asg, &r).is_err(), "undetected: {fault}");
                    }
                    Ok(_) => {}
                    Err(_) => corrupted_any = true, // plan-time detection
                }
            }
        }
        assert!(corrupted_any, "no stuck-cross position corrupted the route");
    }

    #[test]
    fn dead_link_at_final_stage_loses_exactly_that_output() {
        let n = 8;
        let fault = Fault {
            site: FaultSite {
                level: 3, // final level of n=8
                stage: 0,
                index: 3, // line 3 entering its final switch
            },
            kind: FaultKind::DeadLink,
            transient: false,
        };
        let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
        let asg = paper_assignment();
        let r = fabric.route_primary(&asg).unwrap();
        let report = verify_routing(&asg, &r).unwrap_err();
        assert_eq!(report.losses(), 1);
        assert_eq!(report.misdeliveries(), 0);
    }

    #[test]
    fn transient_fault_recovers_on_retry_through_the_ladder() {
        let n = 8;
        let fault = Fault {
            site: FaultSite {
                level: 1,
                stage: 0,
                index: 1,
            },
            kind: FaultKind::StuckCross,
            transient: true,
        };
        let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
        let engine = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let batch = vec![paper_assignment(); 4];
        let (out, outcomes) = engine.route_batch_resilient(&batch, &fabric);
        // Every frame must end verified (retry clears the transient); any
        // frame the fault corrupted must be accounted as retried.
        assert_eq!(out.stats.frames_failed, 0);
        assert_eq!(out.stats.frames_degraded, 0);
        assert_eq!(out.stats.frames_ok, 4);
        for (res, oc) in out.results.iter().zip(&outcomes) {
            assert!(res.is_ok());
            assert!(matches!(oc, FrameOutcome::Ok | FrameOutcome::Retried));
        }
    }

    #[test]
    fn persistent_fault_accounting_holds_on_the_ladder() {
        let n = 16;
        let engine = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let batch: Vec<MulticastAssignment> =
            (0..6).map(|_| random_assignment(n, &mut rng)).collect();
        for seed in 0..24u64 {
            let fault = Fault {
                transient: false,
                ..FaultPlan::random_single(n, 1000 + seed)
            };
            let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
            let (out, _) = engine.route_batch_resilient(&batch, &fabric);
            assert_eq!(
                out.stats.frames_ok + out.stats.frames_failed,
                batch.len(),
                "fault {fault}: ok/failed don't partition the batch"
            );
            assert_eq!(
                out.stats.frames_retried + out.stats.frames_degraded + out.stats.frames_failed,
                batch
                    .iter()
                    .zip(&out.results)
                    .filter(|(asg, r)| match r {
                        Ok(res) => verify_routing(asg, res).is_err(),
                        Err(_) => true,
                    })
                    .count()
                    + out.stats.frames_retried
                    + out.stats.frames_degraded,
                "fault {fault}: failed frames must be exactly the unverified results"
            );
        }
    }

    #[test]
    fn degraded_replan_routes_around_some_persistent_fault() {
        // Sweep persistent stuck faults until one is recovered by the
        // rotation re-plan — the Lemmas 1–5 freedom must pay off somewhere.
        let n = 16;
        let engine = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let batch: Vec<MulticastAssignment> =
            (0..4).map(|_| random_assignment(n, &mut rng)).collect();
        let mut degraded_total = 0usize;
        for seed in 0..60u64 {
            let fault = Fault {
                transient: false,
                ..FaultPlan::random_single(n, 5000 + seed)
            };
            let fabric = FaultyBrsmn::new(n, FaultPlan::single(fault)).unwrap();
            let (out, _) = engine.route_batch_resilient(&batch, &fabric);
            degraded_total += out.stats.frames_degraded;
        }
        assert!(
            degraded_total > 0,
            "no persistent fault was ever recovered by the degraded re-plan"
        );
    }

    #[test]
    fn campaign_smoke_n16() {
        let report = run_single_fault_campaign(16, 24, 6, 42).unwrap();
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.control_false_positives, 0);
        assert!(report.accounts());
        assert_eq!(
            report.faults_corrupting + report.faults_harmless,
            report.faults_injected
        );
        assert!(report.faults_corrupting > 0, "campaign exercised nothing");
        // Per-fault detection must cover every corrupted frame.
        for rec in &report.records {
            assert_eq!(rec.frames_corrupted, rec.frames_detected);
        }
        let shown = report.to_string();
        assert!(shown.contains("false negatives"));
    }

    #[test]
    fn fault_plan_serde_round_trip() {
        let plan = FaultPlan::random(16, 9, 5);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.faults().len(), 5);
    }
}
