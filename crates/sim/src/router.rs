//! The complete **self-routing circuit** of a bit-sorting RBN, elaborated as
//! one clocked gate netlist — Section 7.2 made fully concrete.
//!
//! Everything of Tables 3 and 5 is hardware here:
//!
//! * the **forward phase** is a tree of Fig. 12 serial adders computing the
//!   per-node γ counts from the leaf activity bits;
//! * the **backward phase** streams the starting positions down the tree:
//!   `s mod n′/2` is a mask gate (powers of two!), `s + l₀` is another
//!   serial adder, and `b = bit_{j−1}(s + l₀)` is a one-bit capture
//!   register;
//! * the **switch-setting phase** deserializes each node's `s₁` into a small
//!   register and lets every switch compare its own (hard-wired) address
//!   against it — emitting one `crossing` bit per switch.
//!
//! [`run_bitsort_router`] clocks the netlist and returns the settings, which
//! the tests check **bit-for-bit** against the software planner
//! `brsmn_rbn::plan_bitsort` for every input pattern at n = 8.
//!
//! The construction is deliberately unpipelined (combinational chains across
//! tree levels) — simplest correct hardware; the pipelined latency story is
//! measured by [`crate::adder`] and [`crate::circuits::count_tree`].

use crate::gates::{GateKind, Netlist, NodeId};
use brsmn_topology::log2_exact;

/// One serial adder instance inside a larger netlist; returns the sum node.
fn add_serial(nl: &mut Netlist, a: NodeId, b: NodeId) -> NodeId {
    let carry = nl.dff_deferred();
    let axb = nl.gate(GateKind::Xor, vec![a, b]);
    let sum = nl.gate(GateKind::Xor, vec![axb, carry]);
    let ab = nl.gate(GateKind::And, vec![a, b]);
    let c_axb = nl.gate(GateKind::And, vec![carry, axb]);
    let carry_next = nl.gate(GateKind::Or, vec![ab, c_axb]);
    nl.connect_dff(carry, carry_next);
    sum
}

/// A capture register: latches `stream` when `enable` is high, holds
/// otherwise. Returns the register output.
fn capture(nl: &mut Netlist, stream: NodeId, enable: NodeId) -> NodeId {
    let q = nl.dff_deferred();
    let not_en = nl.gate(GateKind::Not, vec![enable]);
    let take = nl.gate(GateKind::And, vec![enable, stream]);
    let hold = nl.gate(GateKind::And, vec![not_en, q]);
    let d = nl.gate(GateKind::Or, vec![take, hold]);
    nl.connect_dff(q, d);
    // The captured value is visible on the mux output in the same tick.
    d
}

/// Comparator `i < value` for a hard-wired constant `i` against a small
/// register vector (LSB first). Returns a node that is true iff `i < value`.
fn const_less_than(nl: &mut Netlist, i: usize, value_bits: &[NodeId], zero: NodeId) -> NodeId {
    let mut lt = zero;
    for (k, &vk) in value_bits.iter().enumerate() {
        lt = if (i >> k) & 1 == 0 {
            // here = v_k; eq = ¬v_k: lt = v_k ∨ (¬v_k ∧ lt) = v_k ∨ lt.
            nl.gate(GateKind::Or, vec![vk, lt])
        } else {
            // here = 0; eq = v_k: lt = v_k ∧ lt.
            nl.gate(GateKind::And, vec![vk, lt])
        };
    }
    lt
}

/// The elaborated router netlist plus its interface metadata.
#[derive(Debug, Clone)]
pub struct BitsortRouter {
    /// The netlist. Inputs, in order: `start` pulse, `s_target` serial
    /// stream, then the `n` leaf activity bits (streamed: value at tick 0).
    pub netlist: Netlist,
    /// Network size.
    pub n: usize,
    /// Ticks to clock before the setting outputs are valid.
    pub ticks: usize,
}

/// Elaborates the complete self-routing circuit for an `n × n` bit-sorting
/// RBN. Output `r_{j}_{k}` is the crossing bit of stage `j` switch `k`.
pub fn bitsort_router(n: usize) -> BitsortRouter {
    let m = log2_exact(n) as usize;
    let mut nl = Netlist::new();

    // Interface.
    let start = nl.input();
    let s_in = nl.input();
    let gammas: Vec<NodeId> = (0..n).map(|_| nl.input()).collect();

    // Constants and the tick ring: tick[t] is high exactly at tick t.
    let not_start = nl.gate(GateKind::Not, vec![start]);
    let zero = nl.gate(GateKind::And, vec![start, not_start]);
    let ticks_needed = m + 2;
    let mut tick = Vec::with_capacity(ticks_needed);
    tick.push(start);
    for t in 1..ticks_needed {
        let prev = tick[t - 1];
        tick.push(nl.dff(prev));
    }

    // Forward phase: l streams per node, fwd[j][b] (j = node height).
    let mut fwd: Vec<Vec<NodeId>> = Vec::with_capacity(m + 1);
    fwd.push(gammas);
    for j in 1..=m {
        let prev = fwd[j - 1].clone();
        let level: Vec<NodeId> = (0..n >> j)
            .map(|b| add_serial(&mut nl, prev[2 * b], prev[2 * b + 1]))
            .collect();
        fwd.push(level);
    }

    // Backward phase: s streams per node, top-down, plus per-node setting
    // logic.
    let mut back: Vec<Vec<NodeId>> = (0..=m).map(|_| Vec::new()).collect();
    back[m] = vec![s_in];
    for j in (1..=m).rev() {
        let half_bits = j - 1; // s0, s1 live in [0, 2^{j-1})
        // keep-mask: high for ticks < j−1.
        let mask = if half_bits == 0 {
            zero
        } else if half_bits == 1 {
            tick[0]
        } else {
            nl.gate(GateKind::Or, tick[..half_bits].to_vec())
        };
        let mut next_level = vec![0usize; n >> (j - 1)];
        for b in 0..(n >> j) {
            let s = back[j][b];
            let l0 = fwd[j - 1][2 * b];
            let sum = add_serial(&mut nl, s, l0); // s + l0, serial
            let s0 = nl.gate(GateKind::And, vec![s, mask]);
            let s1 = nl.gate(GateKind::And, vec![sum, mask]);
            // b = bit_{j−1}(s + l0), captured at tick j−1.
            let b_bit = capture(&mut nl, sum, tick[j - 1]);
            let not_b = nl.gate(GateKind::Not, vec![b_bit]);
            // Deserialize s1 into half_bits registers.
            let s1_regs: Vec<NodeId> = (0..half_bits)
                .map(|t| capture(&mut nl, s1, tick[t]))
                .collect();
            // Switch settings of this node's merging stage (stage j−1,
            // block b): W_{0, s1; b̄, b} → crossing iff (i < s1 ? b : b̄)
            // says crossing; b encodes 1 = crossing directly.
            for i in 0..(1usize << (j - 1)) {
                let in_run = const_less_than(&mut nl, i, &s1_regs, zero);
                let not_in = nl.gate(GateKind::Not, vec![in_run]);
                let a1 = nl.gate(GateKind::And, vec![in_run, b_bit]);
                let a2 = nl.gate(GateKind::And, vec![not_in, not_b]);
                let r = nl.gate(GateKind::Or, vec![a1, a2]);
                let global = b * (1 << (j - 1)) + i;
                nl.mark_output(&format!("r_{}_{}", j - 1, global), r);
            }
            next_level[2 * b] = s0;
            next_level[2 * b + 1] = s1;
        }
        back[j - 1] = next_level;
    }

    BitsortRouter {
        netlist: nl,
        n,
        ticks: ticks_needed,
    }
}

/// Clocks a [`bitsort_router`] netlist with the given inputs and returns the
/// per-stage crossing bits: `result[j][k]` = stage `j` switch `k` crossing.
pub fn run_bitsort_router(router: &BitsortRouter, gamma: &[bool], s_target: usize) -> Vec<Vec<bool>> {
    let n = router.n;
    assert_eq!(gamma.len(), n);
    assert!(s_target < n);
    let m = log2_exact(n) as usize;
    let mut sim = router.netlist.simulator();
    let mut last = None;
    for t in 0..router.ticks {
        let mut inputs = Vec::with_capacity(2 + n);
        inputs.push(t == 0); // start pulse
        inputs.push((s_target >> t) & 1 == 1); // s_target, LSB first
        for &g in gamma {
            inputs.push(g && t == 0); // leaf value streams
        }
        last = Some(sim.tick(&inputs));
    }
    let out = last.expect("ticks >= 1");
    (0..m)
        .map(|j| (0..n / 2).map(|k| out[&format!("r_{j}_{k}")]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_rbn::plan_bitsort;
    use brsmn_switch::SwitchSetting;

    fn planner_crossings(gamma: &[bool], s: usize) -> Vec<Vec<bool>> {
        let plan = plan_bitsort(gamma, s);
        (0..plan.settings.num_stages())
            .map(|j| {
                plan.settings
                    .stage(j)
                    .iter()
                    .map(|&x| x == SwitchSetting::Crossing)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn hardware_equals_planner_exhaustively_n8() {
        let router = bitsort_router(8);
        for pattern in 0..256u32 {
            let gamma: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
            for s in 0..8 {
                let hw = run_bitsort_router(&router, &gamma, s);
                let sw = planner_crossings(&gamma, s);
                assert_eq!(hw, sw, "pattern={pattern:#010b} s={s}");
            }
        }
    }

    #[test]
    fn hardware_equals_planner_sampled_n16() {
        let router = bitsort_router(16);
        for seed in 0..40u64 {
            let gamma: Vec<bool> = (0..16)
                .map(|i| (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 61 & 1 == 1)
                .collect();
            let s = (seed as usize * 5) % 16;
            assert_eq!(
                run_bitsort_router(&router, &gamma, s),
                planner_crossings(&gamma, s),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn hardware_equals_planner_sampled_n32() {
        let router = bitsort_router(32);
        for seed in 0..10u64 {
            let gamma: Vec<bool> = (0..32)
                .map(|i| (i as u64 ^ seed.rotate_left(7)).wrapping_mul(0x2545F4914F6CDD1D) >> 60 & 1 == 1)
                .collect();
            let s = (seed as usize * 11) % 32;
            assert_eq!(
                run_bitsort_router(&router, &gamma, s),
                planner_crossings(&gamma, s),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn circuit_cost_scales_linearly_per_switch() {
        // The whole routing circuit costs O(1) gates per switch
        // asymptotically — gates/switch must stay bounded as n grows.
        let per_switch = |n: usize| {
            let router = bitsort_router(n);
            let switches = (n / 2) * (n.trailing_zeros() as usize);
            router.netlist.gate_count() as f64 / switches as f64
        };
        let g8 = per_switch(8);
        let g64 = per_switch(64);
        let g256 = per_switch(256);
        assert!(g256 < g64 * 1.5, "{g64} vs {g256}");
        assert!(g256 < 20.0, "per-switch gates should be small: {g256}");
        assert!(g8 > 0.0);
    }

    #[test]
    fn trivial_sorts() {
        let router = bitsort_router(4);
        // All-zero input with s=0: any compact arrangement works; the
        // planner's exact settings must still be reproduced.
        for (gamma, s) in [
            ([false; 4], 0usize),
            ([true; 4], 2),
            ([true, false, false, false], 3),
        ] {
            assert_eq!(
                run_bitsort_router(&router, &gamma, s),
                planner_crossings(&gamma, s)
            );
        }
    }
}
