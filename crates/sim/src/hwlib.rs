//! Shared hardware builders for the §7.2 circuits: serial adders, capture
//! registers, parallel arithmetic (ripple add/sub, comparators, conditional
//! negate) and constant wiring. Everything operates on LSB-first bit
//! vectors of [`crate::gates::NodeId`]s.

use crate::gates::{GateKind, Netlist, NodeId};

/// Instantiates a Fig. 12 bit-serial adder on streams `a`, `b`; returns the
/// sum stream.
pub fn serial_adder_node(nl: &mut Netlist, a: NodeId, b: NodeId) -> NodeId {
    let carry = nl.dff_deferred();
    let axb = nl.gate(GateKind::Xor, vec![a, b]);
    let sum = nl.gate(GateKind::Xor, vec![axb, carry]);
    let ab = nl.gate(GateKind::And, vec![a, b]);
    let c_axb = nl.gate(GateKind::And, vec![carry, axb]);
    let cn = nl.gate(GateKind::Or, vec![ab, c_axb]);
    nl.connect_dff(carry, cn);
    sum
}

/// A capture register: latches `stream` when `enable` is high; the captured
/// value is visible on the returned node immediately and held afterwards.
pub fn capture(nl: &mut Netlist, stream: NodeId, enable: NodeId) -> NodeId {
    let q = nl.dff_deferred();
    let not_en = nl.gate(GateKind::Not, vec![enable]);
    let take = nl.gate(GateKind::And, vec![enable, stream]);
    let hold = nl.gate(GateKind::And, vec![not_en, q]);
    let d = nl.gate(GateKind::Or, vec![take, hold]);
    nl.connect_dff(q, d);
    d
}

/// Deserializes a stream into registers using per-tick enables.
pub fn deserialize(nl: &mut Netlist, stream: NodeId, ticks: &[NodeId]) -> Vec<NodeId> {
    ticks.iter().map(|&en| capture(nl, stream, en)).collect()
}

/// Ripple-carry parallel adder `a + b` (same width, wrap-around).
pub fn add_parallel(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len());
    let mut carry: Option<NodeId> = None;
    let mut out = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let axb = nl.gate(GateKind::Xor, vec![ai, bi]);
        let (sum, new_carry) = match carry {
            None => {
                let c = nl.gate(GateKind::And, vec![ai, bi]);
                (axb, c)
            }
            Some(c) => {
                let sum = nl.gate(GateKind::Xor, vec![axb, c]);
                let t1 = nl.gate(GateKind::And, vec![ai, bi]);
                let t2 = nl.gate(GateKind::And, vec![axb, c]);
                let nc = nl.gate(GateKind::Or, vec![t1, t2]);
                (sum, nc)
            }
        };
        out.push(sum);
        carry = Some(new_carry);
    }
    out
}

/// Ripple-borrow parallel subtractor `a − b` (unsigned wrap-around; for
/// `a ≥ b` the result is exact).
pub fn sub_parallel(nl: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len());
    let mut borrow: Option<NodeId> = None;
    let mut out = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let axb = nl.gate(GateKind::Xor, vec![ai, bi]);
        let (diff, new_borrow) = match borrow {
            None => {
                let na = nl.gate(GateKind::Not, vec![ai]);
                let brw = nl.gate(GateKind::And, vec![na, bi]);
                (axb, brw)
            }
            Some(brw) => {
                let diff = nl.gate(GateKind::Xor, vec![axb, brw]);
                let na = nl.gate(GateKind::Not, vec![ai]);
                let t1 = nl.gate(GateKind::And, vec![na, bi]);
                let nx = nl.gate(GateKind::Not, vec![axb]);
                let t2 = nl.gate(GateKind::And, vec![nx, brw]);
                let b2 = nl.gate(GateKind::Or, vec![t1, t2]);
                (diff, b2)
            }
        };
        out.push(diff);
        borrow = Some(new_borrow);
    }
    out
}

/// Parallel comparator `a < b` (unsigned, LSB-first vectors).
pub fn lt_parallel(nl: &mut Netlist, a: &[NodeId], b: &[NodeId], zero: NodeId) -> NodeId {
    assert_eq!(a.len(), b.len());
    let mut lt = zero;
    for (&ai, &bi) in a.iter().zip(b) {
        let na = nl.gate(GateKind::Not, vec![ai]);
        let here = nl.gate(GateKind::And, vec![na, bi]);
        let eq = nl.gate(GateKind::Xor, vec![ai, bi]);
        let neq = nl.gate(GateKind::Not, vec![eq]);
        let keep = nl.gate(GateKind::And, vec![neq, lt]);
        lt = nl.gate(GateKind::Or, vec![here, keep]);
    }
    lt
}

/// Comparator `c < b` for a hard-wired constant `c`.
pub fn const_lt_value(nl: &mut Netlist, c: usize, b: &[NodeId], zero: NodeId) -> NodeId {
    let mut lt = zero;
    for (k, &bk) in b.iter().enumerate() {
        lt = if (c >> k) & 1 == 0 {
            nl.gate(GateKind::Or, vec![bk, lt])
        } else {
            nl.gate(GateKind::And, vec![bk, lt])
        };
    }
    lt
}

/// Per-bit mux: `sel ? a : b`.
pub fn mux_bits(nl: &mut Netlist, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len());
    let nsel = nl.gate(GateKind::Not, vec![sel]);
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| {
            let t = nl.gate(GateKind::And, vec![sel, ai]);
            let f = nl.gate(GateKind::And, vec![nsel, bi]);
            nl.gate(GateKind::Or, vec![t, f])
        })
        .collect()
}

/// Single-bit mux.
pub fn mux_bit(nl: &mut Netlist, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
    let nsel = nl.gate(GateKind::Not, vec![sel]);
    let t = nl.gate(GateKind::And, vec![sel, a]);
    let f = nl.gate(GateKind::And, vec![nsel, b]);
    nl.gate(GateKind::Or, vec![t, f])
}

/// OR over a vector (`false` for empty).
pub fn or_all(nl: &mut Netlist, bits: &[NodeId], zero: NodeId) -> NodeId {
    match bits.len() {
        0 => zero,
        1 => bits[0],
        _ => nl.gate(GateKind::Or, bits.to_vec()),
    }
}

/// Two's-complement conditional negate: `neg ? −a : a` (width preserved).
pub fn cond_negate(nl: &mut Netlist, neg: NodeId, a: &[NodeId], zero: NodeId) -> Vec<NodeId> {
    // invert bits where neg, then add neg as carry-in (ripple).
    let mut carry = neg;
    let mut out = Vec::with_capacity(a.len());
    for &ai in a {
        let flipped = nl.gate(GateKind::Xor, vec![ai, neg]);
        let sum = nl.gate(GateKind::Xor, vec![flipped, carry]);
        let nc = nl.gate(GateKind::And, vec![flipped, carry]);
        out.push(sum);
        carry = nc;
    }
    let _ = zero;
    out
}

/// Wires a constant as bit nodes using the provided `zero`/`one` sources.
pub fn const_bits(c: usize, width: usize, zero: NodeId, one: NodeId) -> Vec<NodeId> {
    (0..width)
        .map(|k| if (c >> k) & 1 == 1 { one } else { zero })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Helper: evaluate a combinational circuit over parallel inputs.
    fn eval2(width: usize, x: u64, y: u64, f: impl Fn(&mut Netlist, &[NodeId], &[NodeId], NodeId, NodeId) -> Vec<NodeId>) -> u64 {
        let mut nl = Netlist::new();
        let xs: Vec<NodeId> = (0..width).map(|_| nl.input()).collect();
        let ys: Vec<NodeId> = (0..width).map(|_| nl.input()).collect();
        let marker = nl.input(); // always true: derives constants
        let nm = nl.gate(GateKind::Not, vec![marker]);
        let zero = nl.gate(GateKind::And, vec![marker, nm]);
        let one = nl.gate(GateKind::Or, vec![marker, nm]);
        let out = f(&mut nl, &xs, &ys, zero, one);
        for (k, &o) in out.iter().enumerate() {
            nl.mark_output(&format!("o{k}"), o);
        }
        let mut sim = nl.simulator();
        let mut inputs = Vec::new();
        for k in 0..width {
            inputs.push((x >> k) & 1 == 1);
        }
        for k in 0..width {
            inputs.push((y >> k) & 1 == 1);
        }
        inputs.push(true);
        let res = sim.tick(&inputs);
        (0..out.len()).fold(0u64, |acc, k| acc | (res[&format!("o{k}")] as u64) << k)
    }

    #[test]
    fn parallel_add_sub_exhaustive_4bit() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let sum = eval2(4, x, y, |nl, a, b, _, _| add_parallel(nl, a, b));
                assert_eq!(sum, (x + y) & 15, "{x}+{y}");
                let diff = eval2(4, x, y, |nl, a, b, _, _| sub_parallel(nl, a, b));
                assert_eq!(diff, x.wrapping_sub(y) & 15, "{x}-{y}");
            }
        }
    }

    #[test]
    fn parallel_lt_exhaustive_4bit() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                let lt = eval2(4, x, y, |nl, a, b, zero, _| {
                    vec![lt_parallel(nl, a, b, zero)]
                });
                assert_eq!(lt == 1, x < y, "{x}<{y}");
            }
        }
    }

    #[test]
    fn const_lt_exhaustive() {
        for c in 0..16usize {
            for y in 0..16u64 {
                let lt = eval2(4, 0, y, |nl, _, b, zero, _| {
                    vec![const_lt_value(nl, c, b, zero)]
                });
                assert_eq!(lt == 1, (c as u64) < y, "{c}<{y}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                let a = eval2(3, x, y, |nl, a, b, zero, _| {
                    let nz = nl.gate(GateKind::Not, vec![zero]);
                    mux_bits(nl, nz, a, b)
                });
                assert_eq!(a, x);
                let b = eval2(3, x, y, |nl, a, b, zero, _| mux_bits(nl, zero, a, b));
                assert_eq!(b, y);
            }
        }
    }

    #[test]
    fn cond_negate_two_complement() {
        for x in 0..16u64 {
            // neg = 1: expect two's complement negation at width 4.
            let negated = eval2(4, x, 0, |nl, a, _, zero, one| cond_negate(nl, one, a, zero));
            assert_eq!(negated, x.wrapping_neg() & 15, "neg {x}");
            let same = eval2(4, x, 0, |nl, a, _, zero, _| cond_negate(nl, zero, a, zero));
            assert_eq!(same, x);
        }
    }
}
