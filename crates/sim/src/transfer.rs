//! End-to-end message-transfer timing: routing set-up plus cut-through data
//! streaming — and the makespan of multi-round schedules.
//!
//! The paper evaluates *routing time* (switch set-up). A deployed fabric
//! also streams payload: once paths are set, a `B`-bit message cut-throughs
//! the `D(n)` switch stages, taking `D(n)·d_sw + B` gate delays on bit-serial
//! links (first bit pays the full pipeline, the rest follow one per tick).
//! This module combines the two and exposes the crossover analysis: for
//! short messages the set-up term — where the self-routing design wins —
//! dominates; for bulk transfers the wire time amortizes it.

use crate::timing::{brsmn_routing_time, feedback_routing_time, looping_routing_time};
use brsmn_core::metrics;
use brsmn_switch::cost::SWITCH_TRAVERSAL_DELAY;
use serde::{Deserialize, Serialize};

/// Which fabric a transfer runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fabric {
    /// The unfolded BRSMN (self-routing set-up).
    Brsmn,
    /// The feedback implementation (self-routing set-up, multi-pass data).
    Feedback,
    /// The classical copy+Beneš switch (centralized looping set-up);
    /// `loop_steps` must come from an actual looping run.
    Classical {
        /// Serial looping steps measured for the assignment.
        loop_steps: u64,
    },
}

/// Timing of one multicast transfer of `payload_bits` per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferTime {
    /// Gate delays to set every switch.
    pub setup: u64,
    /// Gate delays for the payload to drain through the fabric.
    pub stream: u64,
}

impl TransferTime {
    /// Total gate delays.
    pub fn total(&self) -> u64 {
        self.setup + self.stream
    }
}

/// Computes the transfer time of one assignment on a fabric.
///
/// Streaming model: cut-through over `depth` stages at
/// [`SWITCH_TRAVERSAL_DELAY`] per stage for the first bit, then one bit per
/// gate delay. The feedback fabric streams the payload once per pass
/// (messages recirculate), so its stream term multiplies by the pass count.
pub fn transfer_time(fabric: Fabric, n: usize, payload_bits: u64) -> TransferTime {
    match fabric {
        Fabric::Brsmn => TransferTime {
            setup: brsmn_routing_time(n).total,
            stream: metrics::brsmn_depth(n) * SWITCH_TRAVERSAL_DELAY + payload_bits,
        },
        Fabric::Feedback => {
            let passes = metrics::feedback_passes(n);
            let per_pass =
                metrics::rbn_switches(n) / (n as u64 / 2) * SWITCH_TRAVERSAL_DELAY + payload_bits;
            TransferTime {
                setup: feedback_routing_time(n).total,
                stream: passes * per_pass,
            }
        }
        Fabric::Classical { loop_steps } => TransferTime {
            setup: looping_routing_time(loop_steps),
            // Concentrator + copy banyan + Beneš stages.
            stream: (4 * (n.trailing_zeros() as u64) - 1) * SWITCH_TRAVERSAL_DELAY + payload_bits,
        },
    }
}

/// The payload size (bits) at which the classical fabric's total transfer
/// time falls within `tolerance` (e.g. 1.05 = 5%) of the self-routing
/// BRSMN's — i.e. where set-up no longer matters. Returns `None` if no
/// crossover at or below `max_bits`.
pub fn setup_amortization_point(
    n: usize,
    loop_steps: u64,
    tolerance: f64,
    max_bits: u64,
) -> Option<u64> {
    let mut bits = 1u64;
    while bits <= max_bits {
        let ours = transfer_time(Fabric::Brsmn, n, bits).total() as f64;
        let theirs = transfer_time(Fabric::Classical { loop_steps }, n, bits).total() as f64;
        if theirs <= ours * tolerance {
            return Some(bits);
        }
        bits *= 2;
    }
    None
}

/// Makespan of a multi-round schedule on one fabric: rounds are serialized
/// (each needs the previous round's switches released).
pub fn schedule_makespan(fabric: Fabric, n: usize, payload_bits: u64, rounds: usize) -> u64 {
    transfer_time(fabric, n, payload_bits).total() * rounds as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_messages_are_setup_dominated() {
        let t = transfer_time(Fabric::Brsmn, 1024, 64);
        assert!(t.setup > t.stream, "{t:?}");
    }

    #[test]
    fn bulk_messages_are_stream_dominated() {
        let t = transfer_time(Fabric::Brsmn, 1024, 1 << 20);
        assert!(t.stream > 10 * t.setup, "{t:?}");
    }

    #[test]
    fn self_routing_wins_at_small_payloads() {
        // Per-assignment looping steps ≈ n·log n for a dense load.
        let n = 1024usize;
        let loop_steps = (n as u64) * 10;
        let ours = transfer_time(Fabric::Brsmn, n, 512).total();
        let theirs = transfer_time(Fabric::Classical { loop_steps }, n, 512).total();
        assert!(theirs > 5 * ours, "ours {ours}, theirs {theirs}");
    }

    #[test]
    fn crossover_exists_and_grows_with_n() {
        let cross = |n: usize| {
            let m = n.trailing_zeros() as u64;
            setup_amortization_point(n, (n as u64) * m, 1.05, 1 << 40).expect("crossover")
        };
        let c256 = cross(256);
        let c4096 = cross(4096);
        assert!(c4096 > c256, "{c256} vs {c4096}");
        // At n=256 the classical switch needs tens of kilobits per message
        // before its centralized set-up stops hurting.
        assert!(c256 > 1 << 13, "{c256}");
    }

    #[test]
    fn feedback_streams_once_per_pass() {
        let n = 64usize;
        let t = transfer_time(Fabric::Feedback, n, 1000);
        let passes = metrics::feedback_passes(n);
        assert!(t.stream >= passes * 1000);
        // The unfolded network streams the payload once.
        let u = transfer_time(Fabric::Brsmn, n, 1000);
        assert!(t.stream > u.stream);
    }

    #[test]
    fn makespan_scales_linearly_in_rounds() {
        let one = schedule_makespan(Fabric::Brsmn, 128, 4096, 1);
        let ten = schedule_makespan(Fabric::Brsmn, 128, 4096, 10);
        assert_eq!(ten, 10 * one);
    }
}
