//! The **complete scatter-network routing circuit** (Table 4 + Table 5 +
//! Lemmas 1–5) in gates — the hardest of the paper's three distributed
//! algorithms, elaborated as one clocked netlist and verified bit-for-bit
//! against the software planner.
//!
//! Organization (two epochs, as the forward/backward structure dictates):
//!
//! 1. **Serial forward epoch**: the signed adder tree of
//!    [`crate::scatter_hw`] (α = +1, ε = −1, two's complement) streams every
//!    node's count `v` LSB-first; each node deserializes its `v` into a
//!    small register bank.
//! 2. **Combinational resolve**: once the registers settle, a bottom-up pass
//!    derives every node's run length `l = |v|` and stored dominating type
//!    (Table 4's tie-breaking: a zero node reports `ε`), and a top-down pass
//!    evaluates the backward phase — `s mod n′/2` is bit masking, `s + l` a
//!    ripple adder, the four Lemma cases are tests on the high bits of the
//!    sums, and each switch compares its hard-wired address against the run
//!    boundaries (binary *and* trinary compact settings, with circular
//!    wrap-around for the binary case).
//!
//! Outputs: two bits per switch encoding the full four-valued setting
//! (`00` parallel, `01` crossing, `10` upper broadcast, `11` lower
//! broadcast).

use crate::gates::{GateKind, Netlist, NodeId};
use crate::hwlib::{
    add_parallel, cond_negate, const_lt_value, deserialize, lt_parallel, mux_bit, or_all,
    serial_adder_node,
};
use brsmn_topology::log2_exact;

/// The elaborated scatter router.
#[derive(Debug, Clone)]
pub struct ScatterRouter {
    /// Inputs: `start` pulse; per leaf `is_alpha`, `is_eps` (static); then
    /// `m` parallel bits of the target position `s` (static, LSB first).
    /// Outputs `rhi_{stage}_{k}` / `rlo_{stage}_{k}` encode each switch's
    /// setting.
    pub netlist: Netlist,
    /// Network size.
    pub n: usize,
    /// Ticks to clock before outputs are valid.
    pub ticks: usize,
}

struct NodeInfo {
    /// Run length |v| (width bits).
    l: Vec<NodeId>,
    /// Stored dominating type bit: 1 = α.
    is_alpha: NodeId,
}

/// Elaborates the scatter routing circuit for an `n × n` RBN.
pub fn scatter_router(n: usize) -> ScatterRouter {
    let m = log2_exact(n) as usize;
    let width = m + 2;
    let mut nl = Netlist::new();

    // ---- Interface -------------------------------------------------------
    let start = nl.input();
    let leaf_flags: Vec<(NodeId, NodeId)> = (0..n)
        .map(|_| {
            let a = nl.input();
            let e = nl.input();
            (a, e)
        })
        .collect();
    let s_in: Vec<NodeId> = (0..m).map(|_| nl.input()).collect();

    let not_start = nl.gate(GateKind::Not, vec![start]);
    let zero = nl.gate(GateKind::And, vec![start, not_start]);
    let ticks_needed = width + 1;
    let mut tick = Vec::with_capacity(ticks_needed);
    tick.push(start);
    for t in 1..ticks_needed {
        let prev = tick[t - 1];
        tick.push(nl.dff(prev));
    }

    // Width-extend the target position with zeros.
    let mut s_root = s_in.clone();
    s_root.extend(std::iter::repeat_n(zero, width - m));

    // ---- Epoch 1: serial signed forward tree with deserialization --------
    // Leaf streams: +1 = is_alpha at tick 0; −1 = all-ones while is_eps.
    let leaf_streams: Vec<NodeId> = leaf_flags
        .iter()
        .map(|&(a, e)| {
            let plus = nl.gate(GateKind::And, vec![a, tick[0]]);
            nl.gate(GateKind::Or, vec![plus, e])
        })
        .collect();

    // Leaf "registers": the signed value of a leaf is static (+1/−1/0).
    let leaf_nodes: Vec<NodeInfo> = leaf_flags
        .iter()
        .map(|&(a, e)| {
            let active = nl.gate(GateKind::Or, vec![a, e]);
            // l = |v| = active; type α iff is_alpha.
            let mut l = vec![active];
            l.extend(std::iter::repeat_n(zero, width - 1));
            NodeInfo { l, is_alpha: a }
        })
        .collect();

    // Internal nodes: stream adder + deserialize; l and type resolved
    // bottom-up combinationally.
    let mut levels: Vec<Vec<NodeInfo>> = vec![leaf_nodes];
    let mut streams = leaf_streams;
    for j in 1..=m {
        let mut next_streams = Vec::with_capacity(n >> j);
        let mut nodes = Vec::with_capacity(n >> j);
        for b in 0..(n >> j) {
            let sum = serial_adder_node(&mut nl, streams[2 * b], streams[2 * b + 1]);
            next_streams.push(sum);
            let v = deserialize(&mut nl, sum, &tick[..width]);
            let sign = v[width - 1];
            let l = cond_negate(&mut nl, sign, &v, zero); // run length = |v|
            // Stored type per Table 4: same types add (keep type0); else the
            // larger magnitude wins; χ/zero reports ε.
            let c0 = &levels[j - 1][2 * b];
            let c1 = &levels[j - 1][2 * b + 1];
            let same = {
                let x = nl.gate(GateKind::Xor, vec![c0.is_alpha, c1.is_alpha]);
                nl.gate(GateKind::Not, vec![x])
            };
            let l0_lt_l1 = lt_parallel(&mut nl, &c0.l, &c1.l, zero);
            let ge = nl.gate(GateKind::Not, vec![l0_lt_l1]);
            // Stored type exactly as Table 4 combines it: same types keep
            // type0; otherwise the larger magnitude wins (ties keep type0).
            // Zero-length nodes KEEP their stored type — the planner's
            // branch selection at the parent depends on it.
            let diff_type = mux_bit(&mut nl, ge, c0.is_alpha, c1.is_alpha);
            let is_alpha = mux_bit(&mut nl, same, c0.is_alpha, diff_type);
            nodes.push(NodeInfo { l, is_alpha });
        }
        levels.push(nodes);
        streams = next_streams;
    }

    // ---- Epoch 2: combinational backward phase ----------------------------
    // For each node (height j, block b): from its backward position s and
    // its children's (l, type), derive the children's positions and this
    // node's merging-stage settings.
    let mut back: Vec<Vec<NodeId>> = vec![s_root];
    for j in (1..=m).rev() {
        let half = 1usize << (j - 1);
        let mask_bits = j - 1; // s mod half keeps bits < j−1
        let mut next = Vec::with_capacity(2 * back.len());
        for (b, s) in back.iter().enumerate() {
            let c0 = &levels[j - 1][2 * b];
            let c1 = &levels[j - 1][2 * b + 1];
            let node = &levels[j][b];

            let same = {
                let x = nl.gate(GateKind::Xor, vec![c0.is_alpha, c1.is_alpha]);
                nl.gate(GateKind::Not, vec![x])
            };
            let l0_lt_l1 = lt_parallel(&mut nl, &c0.l, &c1.l, zero);
            let ge = nl.gate(GateKind::Not, vec![l0_lt_l1]);

            // Shared arithmetic.
            let mask = |x: &[NodeId]| -> Vec<NodeId> {
                (0..width)
                    .map(|k| if k < mask_bits { x[k] } else { zero })
                    .collect()
            };
            let s_mod = mask(s);
            let sl0 = add_parallel(&mut nl, s, &c0.l); // s + l0
            let sl0_mod = mask(&sl0);
            let sl = add_parallel(&mut nl, s, &node.l); // s + l
            let sl_mod = mask(&sl);

            // Same-types branch (Lemma 1): children (s_mod, sl0_mod);
            // setting value b = bit j−1 of (s + l0); W_{0, s1; b̄, b}.
            let b_same = sl0[j - 1];

            // Different-types branch: s_tmp = sl_mod, l_tmp = min(l0, l1);
            // s0/s1 depend on ge; case flags on the high bits of s, s+l.
            let l_tmp: Vec<NodeId> = (0..width)
                .map(|k| mux_bit(&mut nl, ge, c1.l[k], c0.l[k]))
                .collect();
            let ucast = l0_lt_l1; // 0 = parallel when l0 ≥ l1, else crossing
            let bcast_lo = {
                // lower broadcast iff the α side is the lower child.
                nl.gate(GateKind::Not, vec![c0.is_alpha])
            };
            let s_hi = or_all(&mut nl, &s[mask_bits..], zero); // s ≥ half
            let s_lo = nl.gate(GateKind::Not, vec![s_hi]);
            let sl_hi = or_all(&mut nl, &sl[mask_bits..], zero); // s+l ≥ half
            let sl_lo = nl.gate(GateKind::Not, vec![sl_hi]);
            let sl_ge_n = or_all(&mut nl, &sl[j..], zero); // s+l ≥ n′
            let sl_lt_n = nl.gate(GateKind::Not, vec![sl_ge_n]);
            let case1 = nl.gate(GateKind::And, vec![s_lo, sl_lo]);
            let case2 = nl.gate(GateKind::And, vec![s_lo, sl_hi]);
            let case3 = nl.gate(GateKind::And, vec![s_hi, sl_lt_n]);
            let case4 = nl.gate(GateKind::And, vec![s_hi, sl_ge_n]);

            // Run boundary e = s_tmp + l_tmp (for both binary wrap test and
            // trinary split).
            let e = add_parallel(&mut nl, &sl_mod, &l_tmp);

            // Children backward positions.
            for k in 0..width {
                // s0 = same ? s_mod : (ge ? s_mod : sl_mod)
                let diff0 = mux_bit(&mut nl, ge, s_mod[k], sl_mod[k]);
                let s0k = mux_bit(&mut nl, same, s_mod[k], diff0);
                // s1 = same ? sl0_mod : (ge ? sl_mod : s_mod)
                let diff1 = mux_bit(&mut nl, ge, sl_mod[k], s_mod[k]);
                let s1k = mux_bit(&mut nl, same, sl0_mod[k], diff1);
                if k == 0 {
                    next.push(Vec::with_capacity(width));
                    next.push(Vec::with_capacity(width));
                }
                let idx = next.len() - 2;
                next[idx].push(s0k);
                next[idx + 1].push(s1k);
            }

            // Per-switch settings.
            for i in 0..half {
                // Same branch: W_{0, s1=sl0_mod; b̄, b}: i < s1 → b.
                let in_same = const_lt_value(&mut nl, i, &sl0_mod, zero);
                let nb = nl.gate(GateKind::Not, vec![b_same]);
                let same_lo = mux_bit(&mut nl, in_same, b_same, nb);

                // Diff branch membership tests against [s_tmp, e) with
                // circular wrap for the binary cases.
                let ge_stmp = {
                    let lt = const_lt_value(&mut nl, i, &sl_mod, zero);
                    nl.gate(GateKind::Not, vec![lt])
                };
                let lt_e = const_lt_value(&mut nl, i, &e, zero);
                let straight = nl.gate(GateKind::And, vec![ge_stmp, lt_e]);
                let wrapped = const_lt_value(&mut nl, i + half, &e, zero);
                let in_bcast_binary = nl.gate(GateKind::Or, vec![straight, wrapped]);

                let not_ucast = nl.gate(GateKind::Not, vec![ucast]);
                // Binary cases: case1 → (ucast, bcast), case3 → (ūcast, bcast).
                let u1 = ucast;
                let u3 = not_ucast;
                // Trinary cases (no wrap): [0,s_tmp) → x1, [s_tmp,e) → bcast,
                // [e, half) → x3. case2: (x1 = ūcast, x3 = ucast);
                // case4: (x1 = ucast, x3 = ūcast).
                let lt_stmp = const_lt_value(&mut nl, i, &sl_mod, zero);
                let in_set2 = straight; // ge_stmp ∧ lt_e (trinary never wraps)
                let nlt = nl.gate(GateKind::Not, vec![lt_stmp]);
                let nin2 = nl.gate(GateKind::Not, vec![in_set2]);
                let in_set3 = nl.gate(GateKind::And, vec![nlt, nin2]);

                // Assemble the diff-branch code per case: hi = broadcast?,
                // lo = direction bit.
                // case1/3 (binary): hi = in_bcast; lo = in_bcast ? bcast_lo : u.
                let lo_c1 = mux_bit(&mut nl, in_bcast_binary, bcast_lo, u1);
                let lo_c3 = mux_bit(&mut nl, in_bcast_binary, bcast_lo, u3);
                // case2: set1 → ūcast, set2 → bcast, set3 → ucast.
                let lo_c2 = {
                    let t = mux_bit(&mut nl, in_set3, u1, not_ucast); // set3 vs set1 default
                    mux_bit(&mut nl, in_set2, bcast_lo, t)
                };
                // case4: set1 → ucast, set3 → ūcast.
                let lo_c4 = {
                    let t = mux_bit(&mut nl, in_set3, u3, ucast);
                    mux_bit(&mut nl, in_set2, bcast_lo, t)
                };
                let hi_binary = in_bcast_binary;
                let hi_trinary = in_set2;

                // Select by case (one-hot).
                let pick = |nl: &mut Netlist, v1: NodeId, v2: NodeId, v3: NodeId, v4: NodeId| {
                    let a = nl.gate(GateKind::And, vec![case1, v1]);
                    let b2 = nl.gate(GateKind::And, vec![case2, v2]);
                    let c = nl.gate(GateKind::And, vec![case3, v3]);
                    let d = nl.gate(GateKind::And, vec![case4, v4]);
                    nl.gate(GateKind::Or, vec![a, b2, c, d])
                };
                let diff_hi = pick(&mut nl, hi_binary, hi_trinary, hi_binary, hi_trinary);
                let diff_lo = pick(&mut nl, lo_c1, lo_c2, lo_c3, lo_c4);

                // Final: same-branch unicast vs diff-branch.
                let hi = {
                    let nsame = nl.gate(GateKind::Not, vec![same]);
                    nl.gate(GateKind::And, vec![nsame, diff_hi])
                };
                let lo = mux_bit(&mut nl, same, same_lo, diff_lo);

                let global = b * half + i;
                nl.mark_output(&format!("rhi_{}_{}", j - 1, global), hi);
                nl.mark_output(&format!("rlo_{}_{}", j - 1, global), lo);
            }
        }
        back = next;
    }

    ScatterRouter {
        netlist: nl,
        n,
        ticks: ticks_needed,
    }
}

/// Clocks a [`scatter_router`] and returns the per-stage setting codes
/// (`result[j][k]` ∈ 0..4, the paper's `r` values).
pub fn run_scatter_router(
    router: &ScatterRouter,
    tags: &[brsmn_switch::Tag],
    s_target: usize,
) -> Vec<Vec<u8>> {
    use brsmn_switch::Tag;
    let n = router.n;
    assert_eq!(tags.len(), n);
    assert!(s_target < n);
    let m = log2_exact(n) as usize;
    let mut sim = router.netlist.simulator();
    let mut last = None;
    for t in 0..router.ticks {
        let mut inputs = Vec::with_capacity(1 + 2 * n + m);
        inputs.push(t == 0);
        for &tag in tags {
            inputs.push(tag == Tag::Alpha);
            inputs.push(tag == Tag::Eps);
        }
        for k in 0..m {
            inputs.push((s_target >> k) & 1 == 1);
        }
        last = Some(sim.tick(&inputs));
    }
    let out = last.expect("ticks >= 1");
    (0..m)
        .map(|j| {
            (0..n / 2)
                .map(|k| {
                    let hi = out[&format!("rhi_{j}_{k}")] as u8;
                    let lo = out[&format!("rlo_{j}_{k}")] as u8;
                    hi << 1 | lo
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_rbn::plan_scatter;
    use brsmn_switch::Tag;

    fn planner_codes(tags: &[Tag], s: usize) -> Vec<Vec<u8>> {
        let plan = plan_scatter(tags, s);
        (0..plan.settings.num_stages())
            .map(|j| plan.settings.stage(j).iter().map(|x| x.code()).collect())
            .collect()
    }

    #[test]
    fn hardware_equals_planner_exhaustively_n4() {
        let all = [Tag::Zero, Tag::One, Tag::Alpha, Tag::Eps];
        let router = scatter_router(4);
        for a in all {
            for b in all {
                for c in all {
                    for d in all {
                        let tags = [a, b, c, d];
                        for s in 0..4 {
                            assert_eq!(
                                run_scatter_router(&router, &tags, s),
                                planner_codes(&tags, s),
                                "{tags:?} s={s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hardware_equals_planner_sampled_n8() {
        let router = scatter_router(8);
        for seed in 0..200u64 {
            let tags: Vec<Tag> = (0..8)
                .map(|i| {
                    match (i as u64 ^ seed).wrapping_mul(0x9E3779B97F4A7C15) >> 62 {
                        0 => Tag::Alpha,
                        1 => Tag::Eps,
                        2 => Tag::Zero,
                        _ => Tag::One,
                    }
                })
                .collect();
            let s = (seed as usize * 3) % 8;
            assert_eq!(
                run_scatter_router(&router, &tags, s),
                planner_codes(&tags, s),
                "seed={seed} {tags:?}"
            );
        }
    }

    #[test]
    fn hardware_equals_planner_sampled_n16() {
        let router = scatter_router(16);
        for seed in 0..40u64 {
            let tags: Vec<Tag> = (0..16)
                .map(|i| {
                    match (i as u64 ^ seed.rotate_left(11)).wrapping_mul(0x2545F4914F6CDD1D)
                        >> 62
                    {
                        0 => Tag::Alpha,
                        1 => Tag::Eps,
                        2 => Tag::Zero,
                        _ => Tag::One,
                    }
                })
                .collect();
            let s = (seed as usize * 7) % 16;
            assert_eq!(
                run_scatter_router(&router, &tags, s),
                planner_codes(&tags, s),
                "seed={seed}"
            );
        }
    }

    #[test]
    fn settings_drive_a_correct_scatter() {
        // End to end: hardware settings, loaded into the executable fabric,
        // must actually scatter.
        use brsmn_rbn::{clone_split, is_compact_at, RbnSettings};
        use brsmn_switch::{Line, SwitchSetting};
        let router = scatter_router(8);
        let tags = [
            Tag::One,
            Tag::Alpha,
            Tag::Eps,
            Tag::Zero,
            Tag::Eps,
            Tag::Alpha,
            Tag::Eps,
            Tag::Eps,
        ];
        let hw = run_scatter_router(&router, &tags, 0);
        let mut settings = RbnSettings::identity(8);
        for (j, stage) in hw.iter().enumerate() {
            for (k, &code) in stage.iter().enumerate() {
                settings.stage_mut(j)[k] = SwitchSetting::from_code(code).unwrap();
            }
        }
        let lines: Vec<Line<usize>> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if t == Tag::Eps {
                    Line::empty()
                } else {
                    Line::with(t, i)
                }
            })
            .collect();
        let out = settings.run(lines, &mut clone_split).unwrap();
        assert!(out.iter().all(|l| l.tag != Tag::Alpha));
        let eps_run: Vec<bool> = out.iter().map(|l| l.tag == Tag::Eps).collect();
        assert!(is_compact_at(&eps_run, 0, 2));
    }
}
