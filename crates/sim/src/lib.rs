//! Gate-delay timing simulation for the self-routing multicast network
//! (Sections 7.2 and 7.4 of the paper).
//!
//! The unit of time is one **gate delay**. The distributed routing
//! algorithms run on bit-serial hardware: counts and positions stream
//! LSB-first through pipelined one-bit adders (Fig. 12), so a forward or
//! backward sweep over the `log n`-deep tree of an RBN costs
//! `O(log n)` — not `O(log² n)` — gate delays, which is what makes the whole
//! BRSMN route in `O(log² n)` time.
//!
//! * [`gates`] — a synchronous gate-level netlist substrate (simulation,
//!   gate counts, combinational depth);
//! * [`circuits`] — the concrete Section 7.2 circuits: the Fig. 12 serial
//!   adder, the Table 1 tag predicates, the Table 5 run comparator;
//! * [`adder`] — the pipelined bit-serial adder-tree latency simulation;
//! * [`timing`] — per-network routing-time measurement built on it, for the
//!   Table 2 harness;
//! * [`faults`] *(feature `faults`)* — fault injection (stuck-at switches,
//!   dead links, tag bit-flips) and the graceful-degradation campaign.

//! ```
//! use brsmn_sim::{brsmn_routing_time, serial_add};
//!
//! // The Fig. 12 serial adder, as an actual gate netlist:
//! assert_eq!(serial_add(123, 456, 16), 579);
//!
//! // Measured routing time of a 1024-port BRSMN, in gate delays:
//! let t = brsmn_routing_time(1024);
//! assert_eq!(t.per_level.len(), 9); // levels 1..=9 of BSNs
//! assert!(t.total < 2000);          // Θ(log² n), not Θ(log³ n)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder;
pub mod circuits;
pub mod eps_hw;
#[cfg(feature = "faults")]
pub mod faults;
pub mod gates;
pub mod hwlib;
pub mod pipeline;
pub mod router;
pub mod scatter_hw;
pub mod scatter_router;
pub mod timing;
pub mod transfer;

pub use adder::{add_arrivals, adder_tree_latency, leaf_arrivals};
#[cfg(feature = "faults")]
pub use faults::{
    random_assignment, run_fault_plan_campaign, run_single_fault_campaign, CampaignReport, Fault,
    FaultKind, FaultPlan, FaultRecord, FaultSite, FaultyBrsmn, PlanCampaignReport, PlanRecord,
};
pub use circuits::{count_tree, run_count_tree, serial_add, serial_adder, tag_counter};
pub use gates::{GateKind, Netlist};
pub use pipeline::{
    makespan_closed_form, simulate_pipeline, simulate_replicated_pipeline, ParallelPipelineStats,
    PipelineStats,
};
pub use router::{bitsort_router, run_bitsort_router, BitsortRouter};
pub use eps_hw::{eps_divider, run_eps_divider, EpsDivider};
pub use scatter_hw::{run_scatter_forward, scatter_forward_tree};
pub use scatter_router::{run_scatter_router, scatter_router, ScatterRouter};
pub use timing::{
    brsmn_routing_time, bsn_routing_time, feedback_routing_time, looping_routing_time,
    rbn_sweep_latency, RoutingTimeBreakdown,
};
pub use transfer::{
    schedule_makespan, setup_amortization_point, transfer_time, Fabric, TransferTime,
};
