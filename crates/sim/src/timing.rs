//! Routing-time measurement in gate delays (Section 7.4).
//!
//! A BSN of size `k` runs, sequentially:
//!
//! 1. the scatter algorithm's forward sweep (an adder tree of depth
//!    `log k` over `log k + 1`-bit counts) and backward sweep (same shape,
//!    mod/add units instead of adders);
//! 2. the ε-dividing algorithm's forward + backward sweeps;
//! 3. the quasisorting bit-sort's forward + backward sweeps;
//! 4. the data-path traversal of its `2 log k` switch stages.
//!
//! Everything is pipelined bit-serially, so each sweep is `O(log k)` gate
//! delays — measured here with the explicit arrival-time simulation of
//! [`crate::adder`] rather than assumed. Levels of the BRSMN run these
//! set-ups sequentially (level `i+1` needs level `i`'s outputs), giving the
//! paper's `O(log² n)` total routing time.

use crate::adder::adder_tree_latency;
use brsmn_switch::cost::SWITCH_TRAVERSAL_DELAY;
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};

/// Gate delays one looping step of the Beneš distributor costs (follow the
/// chain pointer, read the pair, write a setting) — used when converting
/// [`LoopingStats`](../brsmn_baselines/benes/struct.LoopingStats.html) steps
/// to time.
pub const LOOPING_STEP_DELAY: u64 = 5;

/// Number of forward/backward sweep *pairs* a BSN performs: scatter,
/// ε-divide, bit-sort.
const SWEEP_PAIRS_PER_BSN: u64 = 3;

/// Latency of one forward (or backward) sweep over the distributed-algorithm
/// tree of an RBN of size `k`: a pipelined adder tree of depth `log k` on
/// `log k + 1`-bit operands.
pub fn rbn_sweep_latency(k: usize) -> u64 {
    let m = log2_exact(k) as usize;
    adder_tree_latency(k, m + 1)
}

/// Routing time of one `k × k` BSN in gate delays: all sweeps plus the data
/// path through both of its RBNs.
pub fn bsn_routing_time(k: usize) -> u64 {
    let m = log2_exact(k) as u64;
    SWEEP_PAIRS_PER_BSN * 2 * rbn_sweep_latency(k) + SWITCH_TRAVERSAL_DELAY * 2 * m
}

/// Per-level breakdown of a BRSMN routing-time measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingTimeBreakdown {
    /// Network size.
    pub n: usize,
    /// Gate delays spent at each BSN level (levels `1 … log n − 1`).
    pub per_level: Vec<u64>,
    /// Gate delays of the final 2×2 stage.
    pub final_stage: u64,
    /// Total routing time in gate delays.
    pub total: u64,
}

/// Measures the routing time of an unfolded `n × n` BRSMN: BSN levels run
/// sequentially (each needs the previous level's outputs), blocks within a
/// level run in parallel.
pub fn brsmn_routing_time(n: usize) -> RoutingTimeBreakdown {
    let m = log2_exact(n) as usize;
    let per_level: Vec<u64> = (1..m).map(|i| bsn_routing_time(n >> (i - 1))).collect();
    let final_stage = SWITCH_TRAVERSAL_DELAY;
    let total = per_level.iter().sum::<u64>() + final_stage;
    RoutingTimeBreakdown {
        n,
        per_level,
        final_stage,
        total,
    }
}

/// Measures the routing time of the feedback implementation: the same
/// sweeps (they run on the sub-RBNs of the single physical array), but every
/// pass traverses all `log n` physical stages on the way around the loop.
pub fn feedback_routing_time(n: usize) -> RoutingTimeBreakdown {
    let m = log2_exact(n) as u64;
    let mu = m as usize;
    let per_level: Vec<u64> = (1..mu)
        .map(|i| {
            let k = n >> (i - 1);
            // Sweeps as in the unfolded network, but two full-array
            // traversals (scatter pass + quasisort pass) instead of 2·log k
            // stages.
            SWEEP_PAIRS_PER_BSN * 2 * rbn_sweep_latency(k) + SWITCH_TRAVERSAL_DELAY * 2 * m
        })
        .collect();
    let final_stage = SWITCH_TRAVERSAL_DELAY * m;
    let total = per_level.iter().sum::<u64>() + final_stage;
    RoutingTimeBreakdown {
        n,
        per_level,
        final_stage,
        total,
    }
}

/// Routing time of a centralized looping run (the Beneš distributor of the
/// classical baseline): serial steps × per-step delay.
pub fn looping_routing_time(steps: u64) -> u64 {
    steps * LOOPING_STEP_DELAY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_latency_is_order_log() {
        // Measured sweep latency grows linearly in log k.
        let l4 = rbn_sweep_latency(16);
        let l8 = rbn_sweep_latency(256);
        let l16 = rbn_sweep_latency(1 << 16);
        // Differences per doubling of log k are ~constant.
        let d1 = l8 - l4;
        let d2 = l16 - l8;
        assert!(d2 < 2 * d1 + 8, "l4={l4} l8={l8} l16={l16}");
        assert!(l16 < 220, "must stay O(log n): {l16}");
    }

    #[test]
    fn brsmn_total_is_theta_log_squared() {
        let t = |m: u32| brsmn_routing_time(1usize << m).total as f64;
        // T(n)/m² roughly constant over a wide range.
        let r6 = t(6) / 36.0;
        let r14 = t(14) / 196.0;
        assert!(r6 / r14 < 2.5 && r14 / r6 < 2.5, "r6={r6:.1} r14={r14:.1}");
    }

    #[test]
    fn per_level_counts() {
        let b = brsmn_routing_time(64);
        assert_eq!(b.per_level.len(), 5); // levels 1..=5 for m = 6
        // Level sizes shrink, so per-level time decreases monotonically.
        assert!(b.per_level.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(
            b.total,
            b.per_level.iter().sum::<u64>() + b.final_stage
        );
    }

    #[test]
    fn feedback_time_close_to_unfolded() {
        // Same asymptotics; feedback pays slightly more traversal (full
        // array every pass) — within a small constant factor.
        for m in [4u32, 8, 12] {
            let n = 1usize << m;
            let a = brsmn_routing_time(n).total as f64;
            let b = feedback_routing_time(n).total as f64;
            assert!(b >= a * 0.9, "n={n}");
            assert!(b <= a * 2.0, "n={n}: unfolded {a}, feedback {b}");
        }
    }

    #[test]
    fn looping_dominates_at_scale() {
        // The classical distributor's serial looping (≈ n·log n steps)
        // dwarfs the self-routing set-up time, with a gap that widens in n:
        // Θ(n log n) vs Θ(log² n).
        let ratio = |m: u32| {
            let n = 1usize << m;
            looping_routing_time((n as u64) * m as u64) as f64
                / brsmn_routing_time(n).total as f64
        };
        assert!(ratio(6) > 2.0, "{}", ratio(6));
        assert!(ratio(10) > 20.0, "{}", ratio(10));
        assert!(ratio(14) > 200.0, "{}", ratio(14));
    }

    #[test]
    fn n2_degenerate() {
        let b = brsmn_routing_time(2);
        assert!(b.per_level.is_empty());
        assert_eq!(b.total, SWITCH_TRAVERSAL_DELAY);
    }
}
