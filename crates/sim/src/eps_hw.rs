//! The ε-dividing algorithm (Table 6, §7.2) in gates: serial forward
//! counting, then a combinational backward quota tree.
//!
//! * **Forward**: two Fig. 12 adder trees count the `ε` inputs and the `1`
//!   inputs per node (using exactly the Table 1 predicates `b0∧b1` and
//!   `b2`); every node deserializes its ε count into a small register.
//! * **Turnaround**: the root's dummy-0 quota is
//!   `n_ε0 = n_ε + n_1 − n/2` (parallel adder/subtractor on the latched
//!   counts).
//! * **Backward**: only the `ε0` quota needs to flow down —
//!   `u_ε0 = min(ε0, n_ε(upper))`, `l_ε0 = ε0 − u_ε0` — a comparator, a
//!   mux, and a subtractor per node, all combinational once the forward
//!   registers have settled.
//! * **Leaves**: input `i`'s dummy bit is just bit 0 of its quota.
//!
//! Verified exhaustively against `brsmn_rbn::eps_divide` at n = 8 (every
//! `{0,1,ε}` tag vector satisfying the quasisort precondition).

use crate::gates::{GateKind, Netlist, NodeId};
use crate::hwlib::{add_parallel, deserialize, lt_parallel, mux_bits, serial_adder_node, sub_parallel};
use brsmn_topology::log2_exact;

/// The ε-divide circuit plus interface metadata.
#[derive(Debug, Clone)]
pub struct EpsDivider {
    /// The netlist. Inputs: `start` pulse, then per leaf `is_eps`, `is_one`
    /// (static levels). Output `eps0_{i}` = leaf `i` is a dummy 0.
    pub netlist: Netlist,
    /// Network size.
    pub n: usize,
    /// Ticks to clock before outputs are valid.
    pub ticks: usize,
}

/// Elaborates the Table 6 circuit for `n` inputs.
pub fn eps_divider(n: usize) -> EpsDivider {
    let m = log2_exact(n) as usize;
    let width = m + 2;
    let mut nl = Netlist::new();

    let start = nl.input();
    let leaf_eps: Vec<(NodeId, NodeId)> = (0..n)
        .map(|_| {
            let e = nl.input();
            let o = nl.input();
            (e, o)
        })
        .collect();

    let not_start = nl.gate(GateKind::Not, vec![start]);
    let zero = nl.gate(GateKind::And, vec![start, not_start]);
    let ticks_needed = width + 1;
    let mut tick = Vec::with_capacity(ticks_needed);
    tick.push(start);
    for t in 1..ticks_needed {
        let prev = tick[t - 1];
        tick.push(nl.dff(prev));
    }

    // Forward: serial count trees for ε and 1 flags; every ε-tree node
    // deserializes its count.
    // ε streams: leaf value = is_eps at tick 0.
    let mut eps_level: Vec<NodeId> = leaf_eps
        .iter()
        .map(|&(e, _)| nl.gate(GateKind::And, vec![e, tick[0]]))
        .collect();
    // Registered ε counts per node, per height level: regs[j-1][b].
    let mut eps_regs: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(m);
    for _ in 1..=m {
        let mut next = Vec::with_capacity(eps_level.len() / 2);
        let mut regs_level = Vec::with_capacity(eps_level.len() / 2);
        for pair in eps_level.chunks(2) {
            let sum = serial_adder_node(&mut nl, pair[0], pair[1]);
            regs_level.push(deserialize(&mut nl, sum, &tick[..width]));
            next.push(sum);
        }
        eps_regs.push(regs_level);
        eps_level = next;
    }

    // 1-count tree: only the root total is needed.
    let mut one_level: Vec<NodeId> = leaf_eps
        .iter()
        .map(|&(_, o)| nl.gate(GateKind::And, vec![o, tick[0]]))
        .collect();
    while one_level.len() > 1 {
        one_level = one_level
            .chunks(2)
            .map(|pair| serial_adder_node(&mut nl, pair[0], pair[1]))
            .collect();
    }
    let n1_regs = deserialize(&mut nl, one_level[0], &tick[..width]);

    // Per-leaf ε registers for the backward min() at the lowest level: the
    // "count" of a leaf is its is_eps bit (width-extended with zeros).
    let leaf_count: Vec<Vec<NodeId>> = leaf_eps
        .iter()
        .map(|&(e, _)| {
            let mut bits = vec![e];
            bits.extend(std::iter::repeat_n(zero, width - 1));
            bits
        })
        .collect();

    // Turnaround: e0(root) = nε + n1 − n/2.
    let root_eps = eps_regs[m - 1][0].clone();
    let total = add_parallel(&mut nl, &root_eps, &n1_regs);
    // Constant n/2 as bit nodes.
    let one = nl.gate(GateKind::Or, vec![start, not_start]);
    let half_const: Vec<NodeId> = (0..width)
        .map(|k| if (n / 2) >> k & 1 == 1 { one } else { zero })
        .collect();
    let root_e0 = sub_parallel(&mut nl, &total, &half_const);

    // Backward: e0 quotas flow down; at each node
    // u = min(e0, nε_upper), l = e0 − u.
    let mut quotas: Vec<Vec<NodeId>> = vec![root_e0];
    for j in (1..=m).rev() {
        let mut next = Vec::with_capacity(2 * quotas.len());
        for (b, e0) in quotas.iter().enumerate() {
            let upper_count = if j == 1 {
                leaf_count[2 * b].clone()
            } else {
                eps_regs[j - 2][2 * b].clone()
            };
            let lt = lt_parallel(&mut nl, &upper_count, e0, zero);
            let u_e0 = mux_bits(&mut nl, lt, &upper_count, e0);
            let l_e0 = sub_parallel(&mut nl, e0, &u_e0);
            next.push(u_e0);
            next.push(l_e0);
        }
        quotas = next;
    }

    // Leaves: dummy-0 bit = quota bit 0 (quota ∈ {0, 1} at a leaf).
    for (i, quota) in quotas.iter().enumerate() {
        nl.mark_output(&format!("eps0_{i}"), quota[0]);
    }

    EpsDivider {
        netlist: nl,
        n,
        ticks: ticks_needed,
    }
}

/// Clocks an [`eps_divider`] and returns, per input, whether it was assigned
/// a dummy 0 (`ε₀`). Non-ε inputs report `false`.
pub fn run_eps_divider(div: &EpsDivider, is_eps: &[bool], is_one: &[bool]) -> Vec<bool> {
    let n = div.n;
    assert_eq!(is_eps.len(), n);
    assert_eq!(is_one.len(), n);
    let mut sim = div.netlist.simulator();
    let mut last = None;
    for t in 0..div.ticks {
        let mut inputs = Vec::with_capacity(1 + 2 * n);
        inputs.push(t == 0);
        for i in 0..n {
            inputs.push(is_eps[i]);
            inputs.push(is_one[i]);
        }
        last = Some(sim.tick(&inputs));
    }
    let out = last.expect("ticks >= 1");
    (0..n)
        .map(|i| is_eps[i] && out[&format!("eps0_{i}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_rbn::eps_divide;
    use brsmn_switch::{QTag, Tag};

    fn check(tags: &[Tag]) {
        let n = tags.len();
        let div = eps_divider(n);
        let is_eps: Vec<bool> = tags.iter().map(|&t| t == Tag::Eps).collect();
        let is_one: Vec<bool> = tags.iter().map(|&t| t == Tag::One).collect();
        let hw = run_eps_divider(&div, &is_eps, &is_one);
        let sw = eps_divide(tags).expect("valid quasisort input");
        for (i, qt) in sw.qtags.iter().enumerate() {
            assert_eq!(hw[i], *qt == QTag::Eps0, "input {i} of {tags:?}");
        }
    }

    #[test]
    fn matches_planner_exhaustively_n4() {
        let vals = [Tag::Zero, Tag::One, Tag::Eps];
        for a in vals {
            for b in vals {
                for c in vals {
                    for d in vals {
                        let tags = [a, b, c, d];
                        let n0 = tags.iter().filter(|&&t| t == Tag::Zero).count();
                        let n1 = tags.iter().filter(|&&t| t == Tag::One).count();
                        if n0 <= 2 && n1 <= 2 {
                            check(&tags);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn matches_planner_exhaustively_n8() {
        // All 3^8 = 6561 tag vectors over {0,1,ε}, filtered to the
        // quasisort precondition.
        let vals = [Tag::Zero, Tag::One, Tag::Eps];
        let div = eps_divider(8);
        let mut cases = 0usize;
        for code in 0..6561usize {
            let mut c = code;
            let tags: Vec<Tag> = (0..8)
                .map(|_| {
                    let t = vals[c % 3];
                    c /= 3;
                    t
                })
                .collect();
            let n0 = tags.iter().filter(|&&t| t == Tag::Zero).count();
            let n1 = tags.iter().filter(|&&t| t == Tag::One).count();
            if n0 > 4 || n1 > 4 {
                continue;
            }
            cases += 1;
            let is_eps: Vec<bool> = tags.iter().map(|&t| t == Tag::Eps).collect();
            let is_one: Vec<bool> = tags.iter().map(|&t| t == Tag::One).collect();
            let hw = run_eps_divider(&div, &is_eps, &is_one);
            let sw = eps_divide(&tags).unwrap();
            for (i, qt) in sw.qtags.iter().enumerate() {
                assert_eq!(hw[i], *qt == QTag::Eps0, "input {i} of {tags:?}");
            }
        }
        assert!(cases > 4000, "covered {cases} legal vectors");
    }

    #[test]
    fn all_eps_splits_half_half() {
        let div = eps_divider(8);
        let hw = run_eps_divider(&div, &[true; 8], &[false; 8]);
        assert_eq!(hw.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn circuit_cost_scales_linearly() {
        // O(width) gates per node → O(n log n) total; per input it grows
        // only with log n.
        let g8 = eps_divider(8).netlist.gate_count() as f64 / 8.0;
        let g64 = eps_divider(64).netlist.gate_count() as f64 / 64.0;
        assert!(g64 / g8 < 3.0, "{g8} vs {g64}");
    }
}
