//! Concrete circuits from Section 7.2, built on the [`crate::gates`]
//! netlist: the bit-serial adder of Fig. 12, the tag-counting predicates of
//! Table 1, and the per-switch compact-setting comparator of Table 5.
//!
//! Their measured gate counts and combinational depths back the calibration
//! constants in `brsmn_switch::cost` (asserted in the tests): a constant
//! number of gates per switch, two gate levels per bit-serial stage.

use crate::gates::{GateKind, Netlist, NodeId};

/// Builds the pipelined one-bit serial adder of Fig. 12: inputs `a`, `b`
/// (one bit per clock, LSB first), output `sum`; the carry lives in a
/// flip-flop.
///
/// sum = a ⊕ b ⊕ c;  c' = (a ∧ b) ∨ (c ∧ (a ⊕ b)).
pub fn serial_adder() -> Netlist {
    let mut nl = Netlist::new();
    let a = nl.input();
    let b = nl.input();
    let carry = nl.dff_deferred();
    let axb = nl.gate(GateKind::Xor, vec![a, b]);
    let sum = nl.gate(GateKind::Xor, vec![axb, carry]);
    let ab = nl.gate(GateKind::And, vec![a, b]);
    let c_axb = nl.gate(GateKind::And, vec![carry, axb]);
    let carry_next = nl.gate(GateKind::Or, vec![ab, c_axb]);
    nl.connect_dff(carry, carry_next);
    nl.mark_output("sum", sum);
    nl.mark_output("carry", carry_next);
    nl
}

/// Streams two unsigned integers through a serial-adder simulator and
/// returns their sum (verifying the circuit operationally).
pub fn serial_add(x: u64, y: u64, bits: u32) -> u64 {
    let nl = serial_adder();
    let mut sim = nl.simulator();
    let mut out = 0u64;
    for i in 0..bits + 1 {
        let a = i < 64 && (x >> i) & 1 == 1;
        let b = i < 64 && (y >> i) & 1 == 1;
        let o = sim.tick(&[a, b]);
        if o["sum"] {
            out |= 1 << i;
        }
    }
    out
}

/// Builds the tag-predicate circuit of Section 7.2: from the 3-bit code
/// `b0 b1 b2` of Table 1, outputs `is_alpha = b0 ∧ ¬b1`, `is_eps = b0 ∧ b1`,
/// and `is_one = b2`.
pub fn tag_counter() -> Netlist {
    let mut nl = Netlist::new();
    let b0 = nl.input();
    let b1 = nl.input();
    let b2 = nl.input();
    let not_b1 = nl.gate(GateKind::Not, vec![b1]);
    let is_alpha = nl.gate(GateKind::And, vec![b0, not_b1]);
    let is_eps = nl.gate(GateKind::And, vec![b0, b1]);
    nl.mark_output("is_alpha", is_alpha);
    nl.mark_output("is_eps", is_eps);
    nl.mark_output("is_one", b2);
    nl
}

/// Builds an unsigned `width`-bit comparator asserting `x < y` (parallel,
/// combinational) — the building block of the compact-setting circuit, which
/// each switch uses to decide whether its own address lies inside the
/// `[s, s+l)` run of `W^{n/2}_{s,l;…}` (Table 5).
pub fn less_than(width: usize) -> Netlist {
    let mut nl = Netlist::new();
    let xs: Vec<NodeId> = (0..width).map(|_| nl.input()).collect();
    let ys: Vec<NodeId> = (0..width).map(|_| nl.input()).collect();
    // LSB-first ripple: lt_{≤i} = (¬x_i ∧ y_i) ∨ (x_i = y_i ∧ lt_{<i}).
    let mut lt: Option<NodeId> = None;
    for i in 0..width {
        let nx = nl.gate(GateKind::Not, vec![xs[i]]);
        let here = nl.gate(GateKind::And, vec![nx, ys[i]]);
        lt = Some(match lt {
            None => here,
            Some(prev) => {
                let eq = nl.gate(GateKind::Xor, vec![xs[i], ys[i]]);
                let neq = nl.gate(GateKind::Not, vec![eq]);
                let keep = nl.gate(GateKind::And, vec![neq, prev]);
                nl.gate(GateKind::Or, vec![here, keep])
            }
        });
    }
    nl.mark_output("lt", lt.expect("width >= 1"));
    nl
}

/// Evaluates the `less_than` circuit on concrete values.
pub fn eval_less_than(width: usize, x: u64, y: u64) -> bool {
    let nl = less_than(width);
    let mut sim = nl.simulator();
    let mut inputs = Vec::with_capacity(2 * width);
    for i in 0..width {
        inputs.push((x >> i) & 1 == 1);
    }
    for i in 0..width {
        inputs.push((y >> i) & 1 == 1);
    }
    sim.tick(&inputs)["lt"]
}

/// Per-switch routing-circuit inventory (the paper's "constant cost added to
/// each switch"): one serial adder for the forward phase, one adder-like
/// unit for the backward mod/add, the tag predicates, and the in-run
/// comparator logic amortized over the stage.
pub fn per_switch_routing_gates() -> usize {
    let adder = serial_adder();
    let tags = tag_counter();
    // Two serial adders (forward count + backward position), one tag
    // predicate block, plus two 2-gate run-boundary cells of the stage
    // comparator that each switch contributes.
    2 * adder.gate_count() + tags.gate_count() + 4
}


/// Builds the **forward-phase counting tree** of the distributed algorithms
/// (Fig. 8a over Fig. 12 adders) as one clocked netlist: `leaves` one-bit
/// activity inputs, reduced by a binary tree of bit-serial adders to the
/// total count, emitted LSB-first on the `sum` output.
///
/// With `pipelined = true`, a flip-flop is inserted on every adder output
/// (sum and carry path already latched), so the *combinational depth* of the
/// whole tree stays constant — the property that makes a forward sweep cost
/// `O(log n)` gate delays instead of `O(log² n)`. With `pipelined = false`
/// the adders chain combinationally and the depth grows with the tree.
pub fn count_tree(leaves: usize, pipelined: bool) -> Netlist {
    assert!(leaves.is_power_of_two() && leaves >= 2);
    let mut nl = Netlist::new();
    let mut level: Vec<NodeId> = (0..leaves).map(|_| nl.input()).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            let carry = nl.dff_deferred();
            let axb = nl.gate(GateKind::Xor, vec![a, b]);
            let sum = nl.gate(GateKind::Xor, vec![axb, carry]);
            let ab = nl.gate(GateKind::And, vec![a, b]);
            let c_axb = nl.gate(GateKind::And, vec![carry, axb]);
            let carry_next = nl.gate(GateKind::Or, vec![ab, c_axb]);
            nl.connect_dff(carry, carry_next);
            let out = if pipelined { nl.dff(sum) } else { sum };
            next.push(out);
        }
        level = next;
    }
    nl.mark_output("sum", level[0]);
    nl
}

/// Drives a [`count_tree`] netlist: presents each leaf's activity bit at
/// tick 0 (zeros afterwards) and decodes the serial `sum` output back into
/// the count. `pipelined` must match the netlist's construction (it sets
/// the output latency).
pub fn run_count_tree(nl: &Netlist, gamma: &[bool], pipelined: bool) -> u64 {
    let leaves = gamma.len();
    let depth = leaves.trailing_zeros() as u64;
    let latency = if pipelined { depth } else { 0 };
    let bits = depth + 1;
    let mut sim = nl.simulator();
    let mut total = 0u64;
    for tick in 0..latency + bits {
        let inputs: Vec<bool> = gamma.iter().map(|&g| g && tick == 0).collect();
        let out = sim.tick(&inputs);
        if tick >= latency && out["sum"] {
            total |= 1 << (tick - latency);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_switch::cost::{ADDER_STAGE_DELAY, GATES_ROUTING_PER_SWITCH};
    use brsmn_switch::encoding::encode_tag;
    use brsmn_switch::Tag;


    #[test]
    fn count_tree_counts_exhaustively_n8() {
        for pipelined in [false, true] {
            let nl = count_tree(8, pipelined);
            for pattern in 0..256u32 {
                let gamma: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
                let expect = pattern.count_ones() as u64;
                assert_eq!(
                    run_count_tree(&nl, &gamma, pipelined),
                    expect,
                    "pattern={pattern:#010b} pipelined={pipelined}"
                );
            }
        }
    }

    #[test]
    fn count_tree_large_random() {
        let n = 256usize;
        let nl = count_tree(n, true);
        for seed in 0..4usize {
            let gamma: Vec<bool> = (0..n)
                .map(|i| (i ^ seed).wrapping_mul(2654435761) >> 30 & 1 == 1)
                .collect();
            let expect = gamma.iter().filter(|&&g| g).count() as u64;
            assert_eq!(run_count_tree(&nl, &gamma, true), expect);
        }
    }

    #[test]
    fn pipelining_bounds_combinational_depth() {
        // Unpipelined: depth grows with the tree (the carry/sum chains
        // stack). Pipelined: constant, whatever the tree size — the Fig. 12
        // claim at gate level.
        let d8 = count_tree(8, true).depth();
        let d256 = count_tree(256, true).depth();
        assert_eq!(d8, d256, "pipelined depth must not grow");

        let u8_ = count_tree(8, false).depth();
        let u256 = count_tree(256, false).depth();
        assert!(u256 > u8_, "unpipelined depth must grow: {u8_} vs {u256}");
        assert!(d256 < u256);
    }

    #[test]
    fn count_tree_gate_cost_is_linear() {
        // n−1 adders of 5 gates each.
        let nl = count_tree(64, true);
        assert_eq!(nl.gate_count(), 63 * 5);
        assert_eq!(nl.dff_count(), 63 /* carries */ + 63 /* pipeline regs */);
    }

    #[test]
    fn serial_adder_adds() {
        for (x, y) in [(0u64, 0u64), (1, 1), (5, 3), (255, 1), (123, 456), (1 << 20, 1 << 20)] {
            assert_eq!(serial_add(x, y, 40), x + y, "{x}+{y}");
        }
    }

    #[test]
    fn serial_adder_exhaustive_small() {
        for x in 0..32u64 {
            for y in 0..32u64 {
                assert_eq!(serial_add(x, y, 8), x + y);
            }
        }
    }

    #[test]
    fn serial_adder_matches_fig12_budget() {
        let nl = serial_adder();
        // 5 gates + 1 carry flip-flop, 2 combinational levels to the sum.
        assert_eq!(nl.gate_count(), 5);
        assert_eq!(nl.dff_count(), 1);
        assert_eq!(nl.depth(), ADDER_STAGE_DELAY + 1); // carry path is 3 levels
        assert!(nl.is_complete());
    }

    #[test]
    fn tag_counter_matches_section72() {
        let nl = tag_counter();
        let mut sim = nl.simulator();
        for t in Tag::ALL {
            let c = encode_tag(t);
            let out = sim.tick(&[c.b0, c.b1, c.b2]);
            assert_eq!(out["is_alpha"], t == Tag::Alpha, "{t}");
            assert_eq!(out["is_eps"], t == Tag::Eps, "{t}");
            assert_eq!(out["is_one"], t == Tag::One, "{t}");
        }
    }

    #[test]
    fn comparator_exhaustive_4bit() {
        for x in 0..16u64 {
            for y in 0..16u64 {
                assert_eq!(eval_less_than(4, x, y), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn comparator_wide_values() {
        assert!(eval_less_than(16, 12345, 54321));
        assert!(!eval_less_than(16, 54321, 12345));
        assert!(!eval_less_than(16, 777, 777));
    }

    #[test]
    fn per_switch_budget_within_calibration() {
        // The measured circuit inventory must fit the documented constant.
        let measured = per_switch_routing_gates() as u64;
        assert!(
            measured <= GATES_ROUTING_PER_SWITCH,
            "measured {measured} > calibrated {GATES_ROUTING_PER_SWITCH}"
        );
        // …and the calibration is not wildly padded either.
        assert!(measured * 2 >= GATES_ROUTING_PER_SWITCH);
    }

    #[test]
    fn comparator_cost_is_linear_in_width() {
        let g4 = less_than(4).gate_count();
        let g8 = less_than(8).gate_count();
        let g16 = less_than(16).gate_count();
        // Constant gates per additional comparator bit.
        assert_eq!((g8 - g4) / 4, (g16 - g8) / 8);
        assert_eq!((g8 - g4) % 4, 0);
    }
}
