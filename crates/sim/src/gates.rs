//! A small synchronous gate-level netlist substrate.
//!
//! Section 7.2 of the paper asserts its distributed algorithms "can be
//! implemented using proper logic circuits" with only a *constant* number of
//! gates per switch. This module makes that concrete: a netlist of boolean
//! gates and D flip-flops that can be (a) simulated cycle by cycle and
//! (b) measured — gate count and combinational depth (= gate delays per
//! clock) — so the calibration constants in `brsmn_switch::cost` are backed
//! by actual circuits (see [`crate::circuits`]).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A node in the netlist (gate output, input pin, or flip-flop output).
pub type NodeId = usize;

/// Kinds of netlist elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GateKind {
    /// External input pin.
    Input,
    /// Logical AND of all fan-ins.
    And,
    /// Logical OR of all fan-ins.
    Or,
    /// Logical NOT (single fan-in).
    Not,
    /// Logical XOR of all fan-ins (parity).
    Xor,
    /// D flip-flop: output is the fan-in value latched at the previous tick.
    Dff,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Gate {
    kind: GateKind,
    fanin: Vec<NodeId>,
}

/// A synchronous netlist: combinational gates between clocked flip-flops.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Netlist {
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: HashMap<String, NodeId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Netlist::default()
    }

    /// Adds an external input pin.
    pub fn input(&mut self) -> NodeId {
        let id = self.push(GateKind::Input, vec![]);
        self.inputs.push(id);
        id
    }

    /// Adds a combinational gate over the given fan-in nodes.
    pub fn gate(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        assert!(kind != GateKind::Input && kind != GateKind::Dff);
        if kind == GateKind::Not {
            assert_eq!(fanin.len(), 1, "NOT takes one input");
        } else {
            assert!(fanin.len() >= 2, "{kind:?} needs at least two inputs");
        }
        self.push(kind, fanin)
    }

    /// Adds a D flip-flop latching `d`.
    pub fn dff(&mut self, d: NodeId) -> NodeId {
        self.push(GateKind::Dff, vec![d])
    }

    /// Adds a D flip-flop whose data input will be wired later with
    /// [`Netlist::connect_dff`] — required for feedback loops (e.g. the
    /// carry of a serial adder).
    pub fn dff_deferred(&mut self) -> NodeId {
        self.gates.push(Gate {
            kind: GateKind::Dff,
            fanin: vec![],
        });
        self.gates.len() - 1
    }

    /// Wires the data input of a deferred flip-flop. The driving node may be
    /// downstream of the flip-flop's own output (feedback), which is legal
    /// because the value is only sampled at the clock edge.
    pub fn connect_dff(&mut self, dff: NodeId, d: NodeId) {
        assert_eq!(self.gates[dff].kind, GateKind::Dff);
        assert!(
            self.gates[dff].fanin.is_empty(),
            "flip-flop already connected"
        );
        assert!(d < self.gates.len());
        self.gates[dff].fanin = vec![d];
    }

    /// Names a node as an observable output.
    pub fn mark_output(&mut self, name: &str, node: NodeId) {
        self.outputs.insert(name.to_string(), node);
    }

    fn push(&mut self, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        for &f in &fanin {
            assert!(f < self.gates.len(), "fan-in {f} not yet defined");
        }
        self.gates.push(Gate { kind, fanin });
        self.gates.len() - 1
    }

    /// Checks that every flip-flop has been wired.
    pub fn is_complete(&self) -> bool {
        self.gates
            .iter()
            .all(|g| g.kind != GateKind::Dff || g.fanin.len() == 1)
    }

    /// Number of logic gates (excluding input pins and flip-flops).
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g.kind, GateKind::Input | GateKind::Dff))
            .count()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind == GateKind::Dff)
            .count()
    }

    /// Number of external input pins.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Combinational depth: the longest gate chain between clocked elements
    /// (inputs / flip-flops) and any node — the gate delays one clock period
    /// must accommodate.
    ///
    /// Because nodes are created in topological order (fan-ins precede the
    /// gate), one forward pass suffices.
    pub fn depth(&self) -> u64 {
        let mut d = vec![0u64; self.gates.len()];
        let mut max = 0;
        for (i, g) in self.gates.iter().enumerate() {
            d[i] = match g.kind {
                GateKind::Input | GateKind::Dff => 0,
                _ => 1 + g.fanin.iter().map(|&f| d[f]).max().unwrap_or(0),
            };
            max = max.max(d[i]);
        }
        max
    }

    /// The named outputs.
    pub fn output_names(&self) -> Vec<&str> {
        self.outputs.keys().map(|s| s.as_str()).collect()
    }

    /// Creates a cycle-by-cycle simulator for this netlist.
    pub fn simulator(&self) -> Simulator<'_> {
        Simulator {
            netlist: self,
            dff_state: vec![false; self.gates.len()],
            values: vec![false; self.gates.len()],
        }
    }
}

/// Cycle-accurate simulator: each [`Simulator::tick`] applies input values,
/// settles combinational logic, samples outputs, then clocks the flip-flops.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    dff_state: Vec<bool>,
    values: Vec<bool>,
}

impl Simulator<'_> {
    /// Runs one clock cycle with the given values on the input pins (in
    /// creation order) and returns the named output values.
    pub fn tick(&mut self, inputs: &[bool]) -> HashMap<String, bool> {
        assert_eq!(inputs.len(), self.netlist.inputs.len(), "input arity");
        // Settle combinational logic in topological (= creation) order.
        let mut next_input = 0usize;
        for (i, g) in self.netlist.gates.iter().enumerate() {
            self.values[i] = match g.kind {
                GateKind::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                GateKind::Dff => self.dff_state[i],
                GateKind::And => g.fanin.iter().all(|&f| self.values[f]),
                GateKind::Or => g.fanin.iter().any(|&f| self.values[f]),
                GateKind::Not => !self.values[g.fanin[0]],
                GateKind::Xor => g
                    .fanin
                    .iter()
                    .fold(false, |acc, &f| acc ^ self.values[f]),
            };
        }
        let out = self
            .netlist
            .outputs
            .iter()
            .map(|(name, &node)| (name.clone(), self.values[node]))
            .collect();
        // Clock edge: latch flip-flop inputs.
        for (i, g) in self.netlist.gates.iter().enumerate() {
            if g.kind == GateKind::Dff {
                self.dff_state[i] = self.values[g.fanin[0]];
            }
        }
        out
    }

    /// Resets all flip-flops to 0.
    pub fn reset(&mut self) {
        self.dff_state.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinational_gates_evaluate() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let and = nl.gate(GateKind::And, vec![a, b]);
        let or = nl.gate(GateKind::Or, vec![a, b]);
        let xor = nl.gate(GateKind::Xor, vec![a, b]);
        let not = nl.gate(GateKind::Not, vec![a]);
        nl.mark_output("and", and);
        nl.mark_output("or", or);
        nl.mark_output("xor", xor);
        nl.mark_output("not", not);

        let mut sim = nl.simulator();
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = sim.tick(&[x, y]);
            assert_eq!(out["and"], x && y);
            assert_eq!(out["or"], x || y);
            assert_eq!(out["xor"], x ^ y);
            assert_eq!(out["not"], !x);
        }
    }

    #[test]
    fn dff_delays_by_one_tick() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let q = nl.dff(a);
        nl.mark_output("q", q);
        let mut sim = nl.simulator();
        assert!(!sim.tick(&[true])["q"]); // latched value not yet visible
        assert!(sim.tick(&[false])["q"]); // previous input appears
        assert!(!sim.tick(&[false])["q"]);
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let b = nl.input();
        let x1 = nl.gate(GateKind::Xor, vec![a, b]); // depth 1
        let x2 = nl.gate(GateKind::Xor, vec![x1, b]); // depth 2
        let d = nl.dff(x2); // resets depth
        let x3 = nl.gate(GateKind::And, vec![d, a]); // depth 1
        nl.mark_output("x", x3);
        assert_eq!(nl.depth(), 2);
        assert_eq!(nl.gate_count(), 3);
        assert_eq!(nl.dff_count(), 1);
    }

    #[test]
    fn feedback_parity_accumulator() {
        // Running parity: q' = q XOR in — a genuine feedback loop through a
        // deferred flip-flop.
        let mut nl = Netlist::new();
        let inp = nl.input();
        let q = nl.dff_deferred();
        let parity = nl.gate(GateKind::Xor, vec![q, inp]);
        nl.connect_dff(q, parity);
        nl.mark_output("parity", parity);
        assert!(nl.is_complete());

        let mut sim = nl.simulator();
        let stream = [true, true, false, true, false, false, true];
        let mut expect = false;
        for bit in stream {
            expect ^= bit;
            assert_eq!(sim.tick(&[bit])["parity"], expect);
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut nl = Netlist::new();
        let a = nl.input();
        let q = nl.dff(a);
        nl.mark_output("q", q);
        let mut sim = nl.simulator();
        sim.tick(&[true]);
        sim.reset();
        assert!(!sim.tick(&[false])["q"]);
    }

    #[test]
    #[should_panic]
    fn forward_references_rejected() {
        let mut nl = Netlist::new();
        let _ = nl.gate(GateKind::And, vec![5, 6]);
    }
}
