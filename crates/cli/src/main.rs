//! `brsmn-cli` — command-line front end for the self-routing multicast
//! network workspace.
//!
//! ```text
//! brsmn-cli gen    --n 64 --workload dense --seed 7          # emit JSON assignment
//! brsmn-cli route  --n 64 --workload dense --engine feedback # generate + route
//! brsmn-cli route  --file asg.json --engine self-routing --trace
//! brsmn-cli info   --n 1024                                  # cost sheet
//! brsmn-cli seq    --n 8 --dests 3,4,7                       # routing-tag sequence
//! brsmn-cli faults --n 64 --faults 64 --seed 1               # fault campaign
//! brsmn-cli serve-sim --n 64 --shards 4 --rounds 32          # serving-loop replay
//! brsmn-cli cluster-sim --nodes 4 --seed 7 --drop 0.2        # control-plane campaign
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use brsmn_baselines::{ChengChenNetwork, CopyBenesMulticast, Crossbar};
use brsmn_core::{
    metrics, render_trace, Brsmn, Engine, EngineConfig, FeedbackBrsmn, MulticastAssignment,
    PlanCache, PlanCacheSnapshot, RoutingResult, TagTree,
};
use brsmn_cluster::{run_campaign, CampaignSpec};
use brsmn_serve::{serve_trace, serve_trace_warm, BackendKind, ServeConfig, Trace};
use brsmn_sim::{brsmn_routing_time, feedback_routing_time, run_single_fault_campaign};
use brsmn_workloads::{
    barrier_broadcast, even_conferences, random_multicast, random_permutation, replica_update,
    RandomSpec,
};

mod args;
use args::Args;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn usage() -> &'static str {
    "usage: brsmn-cli <command> [options]\n\
     commands:\n\
       gen    --n N --workload W [--seed S]            print a JSON assignment\n\
       route  (--file F | --n N --workload W [--seed S])\n\
              [--engine E] [--trace]                    route an assignment\n\
       route  --parallel [--batch B] [--workers K] [--fork-depth D] [--no-scratch]\n\
              [--no-batch-plan] [--cache [CAP]] [--cache-load F] [--cache-save F]\n\
              [--stats] [--plan-profile]\n\
              batched multi-threaded routing; --plan-profile prints per-op\n\
              planning tallies (nanos need the plan-profile cargo feature);\n\
              --no-batch-plan plans\n\
              every frame individually instead of grouping cache misses into\n\
              lockstep SoA chunks; --cache replays repeated (or\n\
              relabeled) frames from the two-tier plan cache (default capacity\n\
              256); --cache-load/--cache-save persist the working set as a\n\
              snapshot JSON (each implies --cache); --stats prints EngineStats\n\
              JSON; an output hash goes to stderr\n\
       info   --n N                                     cost/depth/time sheet\n\
       seq    --n N --dests A,B,C                       routing-tag sequence\n\
       faults --n N [--faults F] [--frames K] [--seed S] [--json] [--per-fault]\n\
              seeded single-fault injection campaign (detection/recovery rates)\n\
       serve-sim (--n N [--rounds R] [--seed S] [--p-arrival P] [--max-fanout F]\n\
              [--churn [--tenants T] [--deadline-slack D] [--p-expired P]]\n\
              [--save-trace OUT] | --trace-file F)\n\
              [--shards S] [--workers W] [--capacity C] [--batch-window B]\n\
              [--quota Q] [--weights W0,W1,..] [--backend B] [--record-outputs]\n\
              [--plan-cache CAP] [--cache-load F] [--cache-save F]\n\
              replay a workload trace through the multi-tenant serving loop;\n\
              --churn generates the conference-churn session workload (one\n\
              session per tenant, tenant-tagged requests with deadlines);\n\
              tenants are inferred from the trace, --quota bounds each\n\
              tenant's queue share and --weights skews round composition;\n\
              --cache-load warm-starts the plan cache from a snapshot and\n\
              --cache-save persists it after the run (brsmn backend only);\n\
              prints the JSON ServeReport on stdout, a summary plus\n\
              per-tenant lines and an output-hash on stderr\n\
       cluster-sim [--n N] [--nodes K] [--seed S] [--ticks T] [--drop P]\n\
              [--inbox C] [--frames F] [--invalidations I] [--partition A,B]\n\
              [--crash NODE,A,B] [--remove-node K] [--settle T]\n\
              run a deterministic fault campaign over the simulated\n\
              distributed control plane (virtual-time network, Paxos-style\n\
              membership, reliable invalidation broadcast, anti-entropy);\n\
              prints the JSON CampaignReport on stdout, a summary on stderr;\n\
              exits nonzero on a lost invalidation, split-brain decided\n\
              logs, non-convergence, or routing divergence from the\n\
              single-process sharded oracle\n\
     workloads: dense | sparse | broadcast | permutation | conferences | replicas\n\
     engines:   semantic | self-routing | feedback | classical | crossbar | chengchen\n\
                (--parallel supports semantic and self-routing)\n\
     backends (serve-sim): brsmn | reference | feedback | crossbar | copy-benes | cluster"
}

fn run(argv: &[String]) -> Result<(), String> {
    let cmd = argv.first().ok_or("missing command")?.as_str();
    let args = Args::parse(&argv[1..])?;
    match cmd {
        "gen" => cmd_gen(&args),
        "route" => cmd_route(&args),
        "info" => cmd_info(&args),
        "seq" => cmd_seq(&args),
        "faults" => cmd_faults(&args),
        "serve-sim" => cmd_serve_sim(&args),
        "cluster-sim" => cmd_cluster_sim(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Reads a [`PlanCacheSnapshot`] JSON file into `cache`, returning how many
/// plans survived validation (a corrupt file is a typed error, not a panic).
fn load_cache_snapshot(cache: &PlanCache, path: &str) -> Result<u64, String> {
    let buf = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap: PlanCacheSnapshot =
        serde_json::from_str(&buf).map_err(|e| format!("parse {path}: {e}"))?;
    let stats = cache
        .load_snapshot(&snap)
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(stats.loaded)
}

/// Writes `cache`'s exact-tier working set to `path` as snapshot JSON,
/// returning how many plans were persisted.
fn save_cache_snapshot(cache: &PlanCache, path: &str) -> Result<usize, String> {
    let snap = cache.snapshot();
    let json = serde_json::to_string(&snap).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    Ok(snap.entries.len())
}

fn load_workload(args: &Args) -> Result<MulticastAssignment, String> {
    if let Some(path) = args.get("file") {
        let mut buf = String::new();
        if path == "-" {
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| e.to_string())?;
        } else {
            buf = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        }
        return serde_json::from_str(&buf).map_err(|e| format!("parse {path}: {e}"));
    }
    let n: usize = args.get_parse("n")?.ok_or("--n is required")?;
    if !n.is_power_of_two() || n < 2 {
        return Err(format!("n must be a power of two >= 2, got {n}"));
    }
    let seed: u64 = args.get_parse("seed")?.unwrap_or(1);
    build_workload(n, args.get("workload").unwrap_or("dense"), seed)
}

fn build_workload(n: usize, workload: &str, seed: u64) -> Result<MulticastAssignment, String> {
    Ok(match workload {
        "dense" => random_multicast(RandomSpec::dense(n), seed),
        "sparse" => random_multicast(RandomSpec::sparse(n), seed),
        "broadcast" => barrier_broadcast(n, seed as usize % n),
        "permutation" => random_permutation(n, seed),
        "conferences" => even_conferences(n, (n / 8).max(1)),
        "replicas" => replica_update(n, (n / 16).max(1)),
        other => return Err(format!("unknown workload `{other}`")),
    })
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let asg = load_workload(args)?;
    println!(
        "{}",
        serde_json::to_string_pretty(&asg).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_route(args: &Args) -> Result<(), String> {
    if args.flag("parallel") {
        return cmd_route_parallel(args);
    }
    let asg = load_workload(args)?;
    let n = asg.n();
    let engine = args.get("engine").unwrap_or("semantic");
    let want_trace = args.flag("trace");

    let result: RoutingResult = match engine {
        "semantic" => {
            let net = Brsmn::new(n).map_err(|e| e.to_string())?;
            if want_trace {
                let (r, trace) = net.route_traced(&asg).map_err(|e| e.to_string())?;
                println!("{}", render_trace(&trace));
                r
            } else {
                net.route(&asg).map_err(|e| e.to_string())?
            }
        }
        "self-routing" => Brsmn::new(n)
            .and_then(|net| net.route_self_routing(&asg))
            .map_err(|e| e.to_string())?,
        "feedback" => {
            let (r, stats) = FeedbackBrsmn::new(n)
                .and_then(|net| net.route(&asg))
                .map_err(|e| e.to_string())?;
            eprintln!(
                "feedback: {} passes over {} physical switches",
                stats.passes, stats.physical_switches
            );
            r
        }
        "classical" => {
            let (r, stats) = CopyBenesMulticast::new(n)
                .map_err(|e| e.to_string())?
                .route(&asg)
                .map_err(|e| e.to_string())?;
            eprintln!(
                "classical copy+Beneš: {} copies, {} serial looping steps",
                stats.copies, stats.looping_steps
            );
            r
        }
        "crossbar" => Crossbar::new(n).route(&asg).map_err(|e| e.to_string())?,
        "chengchen" => {
            if !asg.is_permutation() {
                return Err("chengchen engine routes permutations only".into());
            }
            ChengChenNetwork::new(n)
                .and_then(|net| net.route(&asg))
                .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown engine `{other}`")),
    };

    for o in 0..n {
        if let Some(src) = result.output_source(o) {
            println!("output {o} <- input {src}");
        }
    }
    let ok = result.realizes(&asg);
    eprintln!(
        "{}: {} connections, engine `{engine}`",
        if ok { "realized" } else { "MISROUTED" },
        asg.total_connections()
    );
    if ok {
        Ok(())
    } else {
        Err("assignment not realized".into())
    }
}

/// `route --parallel`: batched multi-threaded routing through the
/// [`Engine`], with optional per-stage instrumentation as JSON.
fn cmd_route_parallel(args: &Args) -> Result<(), String> {
    let batch_size: usize = args.get_parse("batch")?.unwrap_or(16);
    if batch_size == 0 {
        return Err("--batch must be >= 1".into());
    }
    let workers: usize = args.get_parse("workers")?.unwrap_or(0);
    let fork_depth: usize = args.get_parse("fork-depth")?.unwrap_or(0);

    // One frame per seed `seed .. seed + batch`; a `--file` frame is
    // replicated `--batch` times (repeated-frame throughput).
    let batch: Vec<MulticastAssignment> = if args.get("file").is_some() {
        vec![load_workload(args)?; batch_size]
    } else {
        let n: usize = args.get_parse("n")?.ok_or("--n is required")?;
        if !n.is_power_of_two() || n < 2 {
            return Err(format!("n must be a power of two >= 2, got {n}"));
        }
        let seed: u64 = args.get_parse("seed")?.unwrap_or(1);
        let workload = args.get("workload").unwrap_or("dense");
        (0..batch_size)
            .map(|f| build_workload(n, workload, seed.wrapping_add(f as u64)))
            .collect::<Result<_, _>>()?
    };
    let n = batch[0].n();

    // --cache alone turns the plan cache on at the default capacity;
    // --cache CAP (or --cache=CAP) sizes it explicitly. --cache-load /
    // --cache-save imply the cache (snapshots need one to live in).
    let cache_load = args.get("cache-load").map(str::to_string);
    let cache_save = args.get("cache-save").map(str::to_string);
    let plan_cache: usize = match args.get_parse::<usize>("cache")? {
        Some(cap) => cap,
        None if args.flag("cache") || cache_load.is_some() || cache_save.is_some() => 256,
        None => 0,
    };
    let cfg = EngineConfig {
        workers,
        parallel_halves: fork_depth > 0,
        fork_depth,
        // --no-scratch: escape hatch back to the PR-1 allocating reference
        // router (results are bit-identical; only speed differs).
        use_scratch: !args.flag("no-scratch"),
        plan_cache,
        // --no-batch-plan: per-frame planning instead of lockstep SoA
        // chunks (results are bit-identical; only the schedule differs).
        batch_plan: !args.flag("no-batch-plan"),
    };
    let mut engine = Engine::with_config(n, cfg).map_err(|e| e.to_string())?;
    // Snapshot persistence wants a cache handle that outlives the engine.
    let cache: Option<Arc<PlanCache>> = if plan_cache > 0 {
        let cache = Arc::new(PlanCache::new(plan_cache));
        if let Some(path) = &cache_load {
            let loaded = load_cache_snapshot(&cache, path)?;
            eprintln!("plan cache: warm-started with {loaded} plan(s) from {path}");
        }
        engine.share_plan_cache(Arc::clone(&cache));
        Some(cache)
    } else {
        None
    };
    let engine_name = args.get("engine").unwrap_or("semantic");
    let out = match engine_name {
        "semantic" => engine.route_batch(&batch),
        "self-routing" => engine.route_batch_self_routing(&batch),
        other => {
            return Err(format!(
                "--parallel supports engines semantic|self-routing, got `{other}`"
            ))
        }
    };

    let mut failures = 0usize;
    for (f, (asg, result)) in batch.iter().zip(&out.results).enumerate() {
        match result {
            Ok(r) if r.realizes(asg) => {}
            Ok(_) => {
                failures += 1;
                eprintln!("frame {f}: MISROUTED");
            }
            Err(e) => {
                failures += 1;
                eprintln!("frame {f}: error: {e}");
            }
        }
    }
    let stats = &out.stats;
    eprintln!(
        "routed {} frames of n={} on {} worker(s){}: {:.1} frames/s, speedup {:.2}x",
        stats.batch,
        stats.n,
        stats.workers,
        if stats.parallel_halves {
            " + parallel halves"
        } else {
            ""
        },
        stats.frames_per_sec(),
        stats.speedup(),
    );
    if plan_cache > 0 {
        eprintln!(
            "plan cache: {} hits ({} exact, {} canonical), {} misses, {} evictions, \
             {} resident bytes",
            stats.plan_hits,
            stats.plan_exact_hits,
            stats.plan_canonical_hits,
            stats.plan_misses,
            stats.plan_evictions,
            stats.plan_cache_bytes
        );
    }
    if stats.batch_planned_frames > 0 {
        eprintln!(
            "simd: lane width {} words, {} frame(s) planned in lockstep SoA chunks",
            stats.simd_lane_width, stats.batch_planned_frames
        );
    }
    if args.flag("plan-profile") {
        // Op counts are always exact; the nanosecond columns need the
        // `plan-profile` cargo feature compiled in (zero otherwise).
        let p = &stats.stages.plan_profile;
        eprintln!("plan profile (op counts always on; nanos need the plan-profile feature):");
        eprintln!("  tag-derive: {:>12} ops {:>12} ns", p.tag_derive_ops, p.tag_derive_nanos);
        eprintln!("  rank:       {:>12} ops {:>12} ns", p.rank_ops, p.rank_nanos);
        eprintln!("  scatter:    {:>12} ops {:>12} ns", p.scatter_ops, p.scatter_nanos);
        eprintln!("  quasisort:  {:>12} ops {:>12} ns", p.quasisort_ops, p.quasisort_nanos);
        eprintln!("  total:      {:>12} ops {:>12} ns", p.total_ops(), p.total_nanos());
    }
    if let (Some(cache), Some(path)) = (&cache, &cache_save) {
        let saved = save_cache_snapshot(cache, path)?;
        eprintln!("plan cache: {saved} plan(s) saved to {path}");
    }
    // FNV-1a over every frame's delivered source table — two runs routed the
    // same batch identically iff the hashes match (the CI cache-smoke step
    // diffs this line between a cold and a warm run).
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fnv = |byte: u64| {
        hash ^= byte;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    };
    for result in out.results.iter().flatten() {
        for o in 0..result.n() {
            match result.output_source(o) {
                Some(s) => fnv(s as u64 + 1),
                None => fnv(0),
            }
        }
    }
    eprintln!("output-hash: {hash:016x}");
    if args.flag("stats") {
        println!(
            "{}",
            serde_json::to_string_pretty(stats).map_err(|e| e.to_string())?
        );
    }
    if failures == 0 {
        Ok(())
    } else {
        Err(format!("{failures} frame(s) failed"))
    }
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let n: usize = args.get_parse("n")?.ok_or("--n is required")?;
    if !n.is_power_of_two() || n < 2 {
        return Err(format!("n must be a power of two >= 2, got {n}"));
    }
    println!("n = {n} (m = {} levels)", n.trailing_zeros());
    println!();
    println!("unfolded BRSMN:");
    println!("  switches      : {}", metrics::brsmn_switches(n));
    println!("  gates         : {}", metrics::brsmn_gates(n));
    println!("  depth (stages): {}", metrics::brsmn_depth(n));
    println!(
        "  routing time  : {} gate delays",
        brsmn_routing_time(n).total
    );
    println!();
    println!("feedback implementation:");
    println!("  switches      : {}", metrics::feedback_switches(n));
    println!("  gates         : {}", metrics::feedback_gates(n));
    println!("  passes        : {}", metrics::feedback_passes(n));
    println!(
        "  routing time  : {} gate delays",
        feedback_routing_time(n).total
    );
    println!();
    println!("comparators:");
    println!(
        "  Cheng–Chen permutation network : {} switches",
        ChengChenNetwork::new(n).map_err(|e| e.to_string())?.switches()
    );
    println!(
        "  classical copy+Beneš multicast : {} switches",
        CopyBenesMulticast::new(n)
            .map_err(|e| e.to_string())?
            .switches()
    );
    println!("  crossbar                       : {} crosspoints", n * n);
    Ok(())
}

/// `faults`: a seeded single-fault injection campaign over a random
/// workload, printing detection and recovery rates of the graceful
/// degradation ladder (verify → reference retry → rotation re-plan).
fn cmd_faults(args: &Args) -> Result<(), String> {
    let n: usize = args.get_parse("n")?.ok_or("--n is required")?;
    if !n.is_power_of_two() || n < 8 {
        return Err(format!("n must be a power of two >= 8, got {n}"));
    }
    let num_faults: usize = args.get_parse("faults")?.unwrap_or(64);
    let frames: usize = args.get_parse("frames")?.unwrap_or(4);
    let seed: u64 = args.get_parse("seed")?.unwrap_or(1);

    let report =
        run_single_fault_campaign(n, num_faults, frames, seed).map_err(|e| e.to_string())?;

    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        println!("{report}");
        if args.flag("per-fault") {
            println!();
            for rec in &report.records {
                println!(
                    "  {}: {} corrupted, {} detected, {} retried, {} degraded, {} failed",
                    rec.fault,
                    rec.frames_corrupted,
                    rec.frames_detected,
                    rec.recovered_retry,
                    rec.recovered_degraded,
                    rec.frames_failed,
                );
            }
        }
    }

    if report.false_negatives > 0 {
        return Err(format!(
            "{} corrupted frame(s) evaded detection",
            report.false_negatives
        ));
    }
    if report.control_false_positives > 0 {
        return Err(format!(
            "{} false positive(s) on the fault-free control run",
            report.control_false_positives
        ));
    }
    if !report.accounts() {
        return Err("recovered + failed frames do not account for corrupted frames".into());
    }
    Ok(())
}

/// `serve-sim`: replay a workload trace (generated or loaded) through the
/// sharded serving loop and emit the JSON [`brsmn_serve::ServeReport`].
fn cmd_serve_sim(args: &Args) -> Result<(), String> {
    // The trace: replayed from a file, generated by the multi-tenant
    // conference-churn session model (`--churn`), or generated from the
    // same seeded flat arrival process the queueing model uses.
    let trace = if let Some(path) = args.get("trace-file") {
        let buf = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Trace::from_json(&buf).map_err(|e| format!("parse {path}: {e}"))?
    } else if args.flag("churn") {
        let n: usize = args.get_parse("n")?.ok_or("--n or --trace-file is required")?;
        let seed: u64 = args.get_parse("seed")?.unwrap_or(1);
        let mut spec = brsmn_serve::ChurnTraceSpec::default_for(n);
        if let Some(r) = args.get_parse::<usize>("rounds")? {
            spec.rounds = r;
        }
        if let Some(t) = args.get_parse::<u32>("tenants")? {
            spec.tenants = t;
        }
        if let Some(s) = args.get_parse::<u64>("deadline-slack")? {
            spec.deadline_slack = s;
        }
        if let Some(p) = args.get_parse::<f64>("p-expired")? {
            spec.p_expired = p;
        }
        Trace::from_churn(spec, seed)?
    } else {
        let n: usize = args.get_parse("n")?.ok_or("--n or --trace-file is required")?;
        let seed: u64 = args.get_parse("seed")?.unwrap_or(1);
        let rounds: usize = args.get_parse("rounds")?.unwrap_or(32);
        let mut queue = brsmn_serve::ServeConfig::new(n).queue;
        if let Some(p) = args.get_parse::<f64>("p-arrival")? {
            queue.p_arrival = p;
        }
        if let Some(f) = args.get_parse::<usize>("max-fanout")? {
            queue.max_fanout = f;
        }
        Trace::generate(queue, seed, rounds).map_err(|e| e.to_string())?
    };

    if let Some(path) = args.get("save-trace") {
        std::fs::write(path, trace.to_json_pretty()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace: {} requests saved to {path}", trace.len());
    }

    let mut cfg = ServeConfig::new(trace.n);
    cfg.queue.max_fanout = trace
        .requests
        .iter()
        .map(|r| r.dests.len())
        .max()
        .unwrap_or(cfg.queue.max_fanout)
        .max(1);
    if let Some(s) = args.get_parse::<usize>("shards")? {
        cfg.shards = s;
    }
    if let Some(w) = args.get_parse::<usize>("workers")? {
        cfg.workers_per_shard = w;
    }
    if let Some(c) = args.get_parse::<usize>("capacity")? {
        cfg.queue_capacity = c;
    }
    if let Some(b) = args.get_parse::<usize>("batch-window")? {
        cfg.batch_window = b;
    }
    if let Some(backend) = args.get("backend") {
        cfg.backend = backend.parse::<BackendKind>()?;
    }
    cfg.record_outputs = args.flag("record-outputs");
    // Tenants: sized to admit every tenant the trace names (old
    // single-tenant traces infer one). `--quota` caps each tenant's queue
    // share; `--weights a,b,c` skews the weighted-round-robin composer.
    let tenant_count = trace.tenant_count().max(1) as usize;
    let quota = match args.get_parse::<usize>("quota")? {
        Some(q) => q,
        None => cfg.queue_capacity.div_ceil(tenant_count).max(1),
    };
    cfg.tenants = vec![brsmn_serve::TenantSpec { quota, weight: 1 }; tenant_count];
    if let Some(raw) = args.get("weights") {
        let weights: Vec<u32> = raw
            .split(',')
            .map(|w| w.trim().parse::<u32>().map_err(|e| format!("--weights: {e}")))
            .collect::<Result<_, _>>()?;
        if weights.len() != tenant_count {
            return Err(format!(
                "--weights: got {} entries for {tenant_count} tenant(s)",
                weights.len()
            ));
        }
        for (spec, w) in cfg.tenants.iter_mut().zip(weights) {
            spec.weight = w;
        }
    }
    let cache_load = args.get("cache-load").map(str::to_string);
    let cache_save = args.get("cache-save").map(str::to_string);
    cfg.plan_cache = match args.get_parse::<usize>("plan-cache")? {
        Some(cap) => cap,
        // Snapshot flags imply a cache at the default capacity.
        None if cache_load.is_some() || cache_save.is_some() => 256,
        None => cfg.plan_cache,
    };

    // Snapshot persistence holds the cache outside the server so the
    // working set can be loaded before serving and saved after.
    let cache: Option<Arc<PlanCache>> = if cfg.plan_cache > 0
        && (cache_load.is_some() || cache_save.is_some())
    {
        let cache = Arc::new(PlanCache::new(cfg.plan_cache));
        if let Some(path) = &cache_load {
            let loaded = load_cache_snapshot(&cache, path)?;
            eprintln!("plan cache: warm-started with {loaded} plan(s) from {path}");
        }
        Some(cache)
    } else {
        None
    };

    let plan_cache = cfg.plan_cache;
    let report = match &cache {
        Some(cache) => {
            serve_trace_warm(cfg, &trace, Arc::clone(cache)).map_err(|e| e.to_string())?
        }
        None => serve_trace(cfg, &trace).map_err(|e| e.to_string())?,
    };

    if plan_cache > 0 {
        eprintln!(
            "plan cache: {} hits ({} canonical), {} misses, {} snapshot-loaded",
            report.plan_hits,
            report.plan_canonical_hits,
            report.plan_misses,
            report.plan_snapshot_loaded
        );
    }
    if let (Some(cache), Some(path)) = (&cache, &cache_save) {
        let saved = save_cache_snapshot(cache, path)?;
        eprintln!("plan cache: {saved} plan(s) saved to {path}");
    }

    eprintln!(
        "served {}/{} requests ({} drained, {} rejected) on {} shard(s), backend `{}`: \
         {:.1} frames/s, p99 {} ns",
        report.served_ok + report.served_err,
        report.submitted,
        report.drained,
        report.rejected,
        report.shards,
        report.backend,
        report.frames_per_sec,
        report.latency.p99_ns,
    );
    for t in &report.tenants {
        eprintln!(
            "tenant {}: {} submitted, {} served, {} rejected \
             ({} quota, {} deadline), peak queue {}/{} (weight {})",
            t.tenant,
            t.submitted,
            t.served_ok + t.served_err,
            t.rejected,
            t.rejections.quota_exceeded,
            t.rejections.deadline_exceeded,
            t.max_queued,
            t.quota,
            t.weight,
        );
    }
    // Order-independent digest of every delivered output; two replays of
    // the same trace must print the same hash (the CI determinism gate
    // diffs this line).
    eprintln!("output-hash: {:#018x}", report.output_hash);
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );

    if !report.conserves() {
        return Err("serving conservation law violated".into());
    }
    if !report.quotas_respected() {
        return Err("per-tenant quota exceeded".into());
    }
    if report.served_err > 0 {
        return Err(format!("{} request(s) failed to route", report.served_err));
    }
    Ok(())
}

/// `cluster-sim`: one scripted fault campaign over the simulated
/// distributed control plane, with every invariant checked — the CLI face
/// of [`brsmn_cluster::run_campaign`].
fn cmd_cluster_sim(args: &Args) -> Result<(), String> {
    let seed: u64 = args.get_parse("seed")?.unwrap_or(1);
    let mut spec = CampaignSpec::default_at(seed);
    if let Some(n) = args.get_parse::<usize>("n")? {
        if !n.is_power_of_two() || n < 2 {
            return Err(format!("n must be a power of two >= 2, got {n}"));
        }
        spec.n = n;
    }
    if let Some(k) = args.get_parse::<usize>("nodes")? {
        if k == 0 {
            return Err("--nodes must be >= 1".into());
        }
        spec.nodes = k;
    }
    if let Some(t) = args.get_parse::<u64>("ticks")? {
        spec.ticks = t;
    }
    if let Some(p) = args.get_parse::<f64>("drop")? {
        if !(0.0..1.0).contains(&p) {
            return Err(format!("--drop must be in [0, 1), got {p}"));
        }
        spec.drop_p = p;
    }
    if let Some(c) = args.get_parse::<usize>("inbox")? {
        spec.inbox_capacity = c.max(1);
    }
    if let Some(f) = args.get_parse::<usize>("frames")? {
        spec.frames = f;
    }
    if let Some(i) = args.get_parse::<usize>("invalidations")? {
        spec.invalidations = i;
    }
    if let Some(t) = args.get_parse::<u64>("settle")? {
        spec.settle_ticks = t;
    }
    // Windows parse as comma lists; `--partition none` / `--crash none`
    // clear the default windows.
    let parse_window = |raw: &str, what: &str| -> Result<Vec<u64>, String> {
        raw.split(',')
            .map(|v| v.trim().parse::<u64>().map_err(|e| format!("--{what}: {e}")))
            .collect()
    };
    if let Some(raw) = args.get("partition") {
        if raw == "none" {
            spec.partition = None;
        } else {
            let w = parse_window(raw, "partition")?;
            if w.len() != 2 || w[0] >= w[1] {
                return Err("--partition wants START,END with START < END".into());
            }
            spec.partition = Some((w[0], w[1]));
        }
    }
    if let Some(raw) = args.get("crash") {
        if raw == "none" {
            spec.crash = None;
        } else {
            let w = parse_window(raw, "crash")?;
            if w.len() != 3 || w[1] >= w[2] {
                return Err("--crash wants NODE,START,END with START < END".into());
            }
            if w[0] as usize >= spec.nodes {
                return Err(format!("--crash: node {} out of range", w[0]));
            }
            spec.crash = Some((w[0] as usize, w[1], w[2]));
        }
    }
    if let Some(k) = args.get_parse::<usize>("remove-node")? {
        if k >= spec.nodes {
            return Err(format!("--remove-node: node {k} out of range"));
        }
        spec.remove_node = Some(k);
    }
    if spec.nodes == 1 {
        // A single node has no peers to partition from or reconcile with.
        spec.partition = None;
        spec.crash = None;
    }

    let report = run_campaign(&spec).map_err(|e| e.to_string())?;

    eprintln!(
        "cluster-sim: {} node(s) x n={} over {} tick(s), drop {:.0}%, inbox {}: {} msg(s) sent, {} dropped, {} backpressure tick(s)",
        report.nodes,
        report.n,
        report.ticks_run,
        report.drop_p * 100.0,
        report.inbox_capacity,
        report.messages_sent,
        report.messages_dropped,
        report.backpressure_ticks,
    );
    eprintln!(
        "cluster-sim: epoch {}, members {:?}, {} frame(s) compared, trace-digest {:#018x}, state-digest {:#018x}",
        report.final_epoch,
        report.final_members,
        report.frames_compared,
        report.trace_digest,
        report.state_digest,
    );
    println!(
        "{}",
        serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
    );

    if !report.converged {
        return Err("cluster failed to converge within the settle budget".into());
    }
    if !report.single_leader {
        return Err("split leadership after heal".into());
    }
    if report.lost_invalidations > 0 {
        return Err(format!(
            "{} cache invalidation(s) lost",
            report.lost_invalidations
        ));
    }
    if !report.decided_logs_consistent {
        return Err("split brain: two nodes decided different views for one epoch".into());
    }
    if report.routing_divergence > 0 {
        return Err(format!(
            "{} frame(s) diverged from the sharded oracle",
            report.routing_divergence
        ));
    }
    Ok(())
}

fn cmd_seq(args: &Args) -> Result<(), String> {
    let n: usize = args.get_parse("n")?.ok_or("--n is required")?;
    let dests_raw = args.get("dests").ok_or("--dests is required")?;
    let mut dests: Vec<usize> = dests_raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse().map_err(|e| format!("dest `{s}`: {e}")))
        .collect::<Result<_, _>>()?;
    dests.sort_unstable();
    dests.dedup();
    let tree = TagTree::from_dests(n, &dests).map_err(|e| e.to_string())?;
    println!("multicast {{{dests_raw}}} on an {n}×{n} network");
    for i in 1..=tree.depth() {
        let tags: Vec<String> = (0..(1usize << (i - 1)))
            .map(|k| tree.tag(i, k).to_string())
            .collect();
        println!("  level {i}: {}", tags.join(" "));
    }
    let seq = tree.to_seq();
    println!("SEQ = {seq}  ({} tags, {} header bits)", seq.len(), seq.len() * 3);
    Ok(())
}
