//! Minimal `--key value` / `--flag` argument parsing (no external deps).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `--key value` pairs and bare `--flag`s.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let arg = &argv[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{arg}`"))?;
            if let Some((k, v)) = key.split_once('=') {
                args.values.insert(k.to_string(), v.to_string());
            } else if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                args.values.insert(key.to_string(), argv[i + 1].clone());
                i += 1;
            } else {
                args.flags.push(key.to_string());
            }
            i += 1;
        }
        Ok(args)
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Parses the value of `--key` into `T`, if present.
    pub fn get_parse<T: FromStr>(&self, key: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("--{key} {v}: {e}")),
        }
    }

    /// `true` if the bare flag `--key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&sv(&["--n", "64", "--trace", "--engine", "feedback"])).unwrap();
        assert_eq!(a.get("n"), Some("64"));
        assert_eq!(a.get("engine"), Some("feedback"));
        assert!(a.flag("trace"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn parses_equals_syntax() {
        let a = Args::parse(&sv(&["--n=128", "--seed=9"])).unwrap();
        assert_eq!(a.get_parse::<usize>("n").unwrap(), Some(128));
        assert_eq!(a.get_parse::<u64>("seed").unwrap(), Some(9));
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&sv(&["oops"])).is_err());
    }

    #[test]
    fn parse_errors_are_reported() {
        let a = Args::parse(&sv(&["--n", "abc"])).unwrap();
        assert!(a.get_parse::<usize>("n").is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = Args::parse(&sv(&["--trace"])).unwrap();
        assert!(a.flag("trace"));
    }
}
