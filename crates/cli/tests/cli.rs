//! End-to-end tests driving the compiled `brsmn-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_brsmn-cli"))
}

#[test]
fn info_prints_cost_sheet() {
    let out = bin().args(["info", "--n", "64"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("switches      : 1312"));
    assert!(text.contains("feedback implementation"));
}

#[test]
fn seq_matches_paper_example() {
    let out = bin()
        .args(["seq", "--n", "8", "--dests", "3,4,7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SEQ = α1αε011"), "{text}");
}

#[test]
fn gen_then_route_via_stdin() {
    let gen = bin()
        .args(["gen", "--n", "32", "--workload", "dense", "--seed", "5"])
        .output()
        .unwrap();
    assert!(gen.status.success());

    let mut route = bin()
        .args(["route", "--file", "-", "--engine", "self-routing"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    route
        .stdin
        .as_mut()
        .unwrap()
        .write_all(&gen.stdout)
        .unwrap();
    let out = route.wait_with_output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("realized"), "{err}");
}

#[test]
fn every_engine_routes_the_same_workload() {
    for engine in ["semantic", "self-routing", "feedback", "classical", "crossbar"] {
        let out = bin()
            .args([
                "route", "--n", "32", "--workload", "dense", "--seed", "9", "--engine", engine,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
    }
    // Permutation-only engine on a permutation workload.
    let out = bin()
        .args([
            "route",
            "--n",
            "32",
            "--workload",
            "permutation",
            "--engine",
            "chengchen",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn trace_renders_levels() {
    let out = bin()
        .args([
            "route", "--n", "8", "--workload", "broadcast", "--engine", "semantic", "--trace",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("L1 in"), "{text}");
    assert!(text.contains("final"));
}

#[test]
fn faults_campaign_detects_everything() {
    let out = bin()
        .args(["faults", "--n", "16", "--faults", "12", "--frames", "3", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 false negatives"), "{text}");
    assert!(text.contains("0 false positives"), "{text}");

    // --json emits the structured CampaignReport.
    let out = bin()
        .args(["faults", "--n", "16", "--faults", "4", "--seed", "7", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"false_negatives\": 0"), "{text}");
}

#[test]
fn serve_sim_reports_consistent_json() {
    let out = bin()
        .args([
            "serve-sim", "--n", "16", "--shards", "2", "--rounds", "8", "--seed", "3",
            "--capacity", "4096",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // stdout is the full machine-readable report; parse it back into the
    // typed struct and re-check the conservation law from outside.
    let report: brsmn_serve::ServeReport =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(report.conserves(), "{report:?}");
    assert_eq!(report.n, 16);
    assert_eq!(report.shards, 2);
    assert_eq!(report.backend, "brsmn");
    assert!(report.submitted > 0);
    assert_eq!(report.rejected, 0, "capacity 4096 admits the whole trace");
    assert_eq!(report.served_ok, report.submitted);
    assert!(report.frames_per_sec > 0.0);
    assert!(report.latency.p99_ns >= report.latency.p50_ns);
    assert!(report.wall_nanos > 0);

    // The human summary goes to stderr, not into the JSON stream.
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("frames/s"), "{err}");
}

#[test]
fn serve_sim_replays_committed_demo_trace() {
    // Integration tests run with the crate directory as cwd.
    let trace = "../../traces/serve_demo.json";
    let out = bin()
        .args([
            "serve-sim", "--trace-file", trace, "--shards", "4", "--capacity", "2048",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: brsmn_serve::ServeReport =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(report.conserves(), "{report:?}");
    assert_eq!(report.n, 64);
    assert_eq!(report.shards, 4);
    assert_eq!(report.submitted, 748, "demo trace length drifted");
    assert_eq!(report.served_err, 0);
}

/// Pull the `output-hash: 0x…` line out of serve-sim's stderr summary.
fn output_hash_line(stderr: &[u8]) -> String {
    String::from_utf8_lossy(stderr)
        .lines()
        .find(|l| l.starts_with("output-hash:"))
        .expect("serve-sim prints an output-hash line")
        .to_string()
}

#[test]
fn serve_sim_churn_builds_multi_tenant_report() {
    let out = bin()
        .args([
            "serve-sim", "--n", "32", "--churn", "--tenants", "3", "--rounds", "12",
            "--p-expired", "0.1", "--seed", "7", "--capacity", "64", "--quota", "24",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: brsmn_serve::ServeReport =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(report.conserves(), "{report:?}");
    assert!(report.quotas_respected(), "{report:?}");
    assert_eq!(report.tenants.len(), 3);
    assert!(report.rejections.deadline_exceeded > 0, "p-expired 0.1 must shed");
    for tr in &report.tenants {
        assert!(tr.submitted > 0, "tenant {} got no traffic", tr.tenant);
        assert_eq!(tr.quota, 24);
    }

    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("tenant 0:"), "{err}");
    assert!(err.contains("tenant 2:"), "{err}");
    assert!(err.contains("output-hash: 0x"), "{err}");
}

#[test]
fn serve_sim_committed_churn_trace_is_bit_deterministic() {
    // The committed 3-tenant churn trace must replay with identical
    // output hashes run to run and across queue capacities — the same
    // gate CI applies.
    let trace = "../../traces/churn_3tenants_n256.json";
    let run = |capacity: &str| {
        let out = bin()
            .args([
                "serve-sim", "--trace-file", trace, "--capacity", capacity, "--quota", "32",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let report: brsmn_serve::ServeReport =
            serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
        (report, output_hash_line(&out.stderr))
    };
    let (a, hash_a) = run("96");
    let (b, hash_b) = run("96");
    let (tiny, hash_tiny) = run("8");

    for r in [&a, &b, &tiny] {
        assert!(r.conserves(), "{r:?}");
        assert!(r.quotas_respected(), "{r:?}");
        assert_eq!(r.tenants.len(), 3, "tenant count inferred from the trace");
        assert_eq!(r.submitted, a.submitted, "trace replay lost requests");
        assert!(r.rejections.deadline_exceeded > 0, "trace carries expiries");
        assert_eq!(r.rejected, r.rejections.deadline_exceeded);
    }
    assert_eq!(hash_a, hash_b, "same capacity, different outputs");
    assert_eq!(hash_a, hash_tiny, "queue capacity leaked into outputs");
}

#[test]
fn serve_sim_rejects_bad_tenant_flags() {
    // Wrong number of --weights entries for the inferred tenant count.
    let out = bin()
        .args([
            "serve-sim", "--n", "16", "--churn", "--tenants", "3", "--rounds", "4",
            "--weights", "1,2",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--weights"), "{err}");

    // Zero quota is rejected by config validation.
    let out = bin()
        .args(["serve-sim", "--n", "16", "--rounds", "4", "--quota", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn serve_sim_alternate_backends_and_bad_backend() {
    let out = bin()
        .args([
            "serve-sim", "--n", "8", "--rounds", "4", "--backend", "reference", "--capacity",
            "1024",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: brsmn_serve::ServeReport =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(report.backend, "reference");
    assert!(report.conserves());

    let out = bin()
        .args(["serve-sim", "--n", "8", "--backend", "warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn cluster_sim_reports_healthy_campaign_json() {
    let out = bin()
        .args([
            "cluster-sim", "--n", "8", "--nodes", "3", "--seed", "7", "--ticks", "200",
            "--drop", "0.2", "--frames", "8", "--invalidations", "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(report["healthy"], serde_json::Value::Bool(true));
    assert_eq!(report["lost_invalidations"].as_u64(), Some(0));
    assert_eq!(report["routing_divergence"].as_u64(), Some(0));
    assert_eq!(report["decided_logs_consistent"], serde_json::Value::Bool(true));
}

#[test]
fn cluster_sim_same_seed_replays_identical_digests() {
    let run = || {
        let out = bin()
            .args(["cluster-sim", "--n", "8", "--nodes", "4", "--seed", "11", "--ticks", "150"])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let report: serde_json::Value =
            serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
        (
            report["trace_digest"].as_u64().unwrap(),
            report["state_digest"].as_u64().unwrap(),
        )
    };
    assert_eq!(run(), run(), "same seed must replay byte-identically");
}

#[test]
fn cluster_sim_removes_a_faulty_shard() {
    let out = bin()
        .args([
            "cluster-sim", "--n", "8", "--nodes", "4", "--seed", "23", "--ticks", "300",
            "--remove-node", "3", "--crash", "none",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    let members: Vec<u64> = report["final_members"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert_eq!(members, vec![0, 1, 2]);
}

#[test]
fn cluster_sim_rejects_bad_flags() {
    for bad in [
        vec!["cluster-sim", "--n", "7"],
        vec!["cluster-sim", "--drop", "1.5"],
        vec!["cluster-sim", "--nodes", "0"],
        vec!["cluster-sim", "--partition", "9"],
        vec!["cluster-sim", "--nodes", "3", "--crash", "7,10,20"],
        vec!["cluster-sim", "--nodes", "3", "--remove-node", "5"],
    ] {
        let out = bin().args(&bad).output().unwrap();
        assert!(!out.status.success(), "{bad:?} should fail");
    }
}

#[test]
fn serve_sim_cluster_backend_matches_brsmn_output_hash() {
    let run = |backend: &str| {
        let out = bin()
            .args([
                "serve-sim", "--n", "8", "--rounds", "6", "--seed", "3", "--capacity", "1024",
                "--backend", backend,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let report: brsmn_serve::ServeReport =
            serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
        report
    };
    let cluster = run("cluster");
    let brsmn = run("brsmn");
    assert_eq!(cluster.backend, "cluster");
    // The simulated control plane serves the very same bits as the
    // single-process fast path.
    assert_eq!(cluster.output_hash, brsmn.output_hash);
    assert_eq!(cluster.engine.cluster_nodes, cluster.shards as u64);
}

#[test]
fn bad_input_fails_cleanly() {
    let out = bin().args(["route", "--n", "7"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");

    let out = bin().args(["nonsense"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["route", "--n", "16", "--engine", "warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
