//! End-to-end tests driving the compiled `brsmn-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_brsmn-cli"))
}

#[test]
fn info_prints_cost_sheet() {
    let out = bin().args(["info", "--n", "64"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("switches      : 1312"));
    assert!(text.contains("feedback implementation"));
}

#[test]
fn seq_matches_paper_example() {
    let out = bin()
        .args(["seq", "--n", "8", "--dests", "3,4,7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SEQ = α1αε011"), "{text}");
}

#[test]
fn gen_then_route_via_stdin() {
    let gen = bin()
        .args(["gen", "--n", "32", "--workload", "dense", "--seed", "5"])
        .output()
        .unwrap();
    assert!(gen.status.success());

    let mut route = bin()
        .args(["route", "--file", "-", "--engine", "self-routing"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    route
        .stdin
        .as_mut()
        .unwrap()
        .write_all(&gen.stdout)
        .unwrap();
    let out = route.wait_with_output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("realized"), "{err}");
}

#[test]
fn every_engine_routes_the_same_workload() {
    for engine in ["semantic", "self-routing", "feedback", "classical", "crossbar"] {
        let out = bin()
            .args([
                "route", "--n", "32", "--workload", "dense", "--seed", "9", "--engine", engine,
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "engine {engine}");
    }
    // Permutation-only engine on a permutation workload.
    let out = bin()
        .args([
            "route",
            "--n",
            "32",
            "--workload",
            "permutation",
            "--engine",
            "chengchen",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
}

#[test]
fn trace_renders_levels() {
    let out = bin()
        .args([
            "route", "--n", "8", "--workload", "broadcast", "--engine", "semantic", "--trace",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("L1 in"), "{text}");
    assert!(text.contains("final"));
}

#[test]
fn faults_campaign_detects_everything() {
    let out = bin()
        .args(["faults", "--n", "16", "--faults", "12", "--frames", "3", "--seed", "7"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("0 false negatives"), "{text}");
    assert!(text.contains("0 false positives"), "{text}");

    // --json emits the structured CampaignReport.
    let out = bin()
        .args(["faults", "--n", "16", "--faults", "4", "--seed", "7", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("\"false_negatives\": 0"), "{text}");
}

#[test]
fn bad_input_fails_cleanly() {
    let out = bin().args(["route", "--n", "7"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("error:"), "{err}");

    let out = bin().args(["nonsense"]).output().unwrap();
    assert!(!out.status.success());

    let out = bin()
        .args(["route", "--n", "16", "--engine", "warp-drive"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
