//! Fault campaigns over the simulated control plane: under ≤ 30% message
//! drop, a healed two-way partition, a crash/recover window, and a
//! mid-campaign shard removal, the cluster must end with a single leader,
//! zero lost invalidations, consistent decided logs (no split brain), and
//! routing bit-identical to the single-process `ShardedEngine` oracle.

use brsmn_cluster::{run_campaign, CampaignSpec, Cluster, ClusterParams, NodeId};

fn assert_healthy(spec: &CampaignSpec, label: &str) {
    let report = run_campaign(spec).expect("campaign runs");
    assert!(
        report.converged,
        "{label}: cluster failed to converge within the settle budget"
    );
    assert!(report.single_leader, "{label}: split leadership after heal");
    assert_eq!(
        report.lost_invalidations, 0,
        "{label}: a cache invalidation was lost"
    );
    assert!(
        report.decided_logs_consistent,
        "{label}: two nodes decided different views for one epoch"
    );
    assert_eq!(
        report.routing_divergence, 0,
        "{label}: cluster routing diverged from the sharded oracle ({} frames compared)",
        report.frames_compared
    );
    assert!(report.healthy, "{label}: report not healthy");
}

#[test]
fn default_campaign_is_healthy() {
    for seed in [3u64, 17, 101] {
        assert_healthy(&CampaignSpec::default_at(seed), &format!("seed {seed}"));
    }
}

#[test]
fn thirty_percent_drop_with_partition_and_crash() {
    let spec = CampaignSpec {
        drop_p: 0.3,
        ..CampaignSpec::default_at(7)
    };
    assert_healthy(&spec, "30% drop");
}

#[test]
fn removing_a_faulty_shard_routes_around_it() {
    let spec = CampaignSpec {
        remove_node: Some(3),
        crash: None,
        ..CampaignSpec::default_at(23)
    };
    let report = run_campaign(&spec).expect("campaign runs");
    assert!(report.healthy, "removal campaign not healthy");
    assert_eq!(
        report.final_members,
        vec![0, 1, 2],
        "the faulty shard must be out of the member set"
    );
    assert!(report.final_epoch >= 1, "removal must have decided an epoch");
}

#[test]
fn partitioned_minority_cannot_split_brain() {
    // 5 nodes, leader isolated with one peer: the 3-node majority side can
    // elect, the 2-node minority cannot — decided logs stay consistent.
    let mut cluster = Cluster::new(ClusterParams::lossy(8, 5, 42, 0.1, 8)).expect("cluster");
    cluster.run(20);
    cluster.partition(&[NodeId(0), NodeId(1)]);
    cluster.run(400);
    cluster.heal();
    assert!(
        cluster.run_until_converged(4000),
        "cluster must converge after healing"
    );
    assert!(cluster.single_leader(), "exactly one leader after heal");
    assert!(
        cluster.decided_logs_consistent(),
        "no two nodes may decide different views for one epoch"
    );
    // The majority side must have moved leadership off the isolated node.
    let epoch = cluster.epoch();
    assert!(epoch >= 1, "majority side should have elected (epoch {epoch})");
}

#[test]
fn crashed_node_catches_up_on_recovery() {
    let mut cluster = Cluster::new(ClusterParams::lossy(8, 3, 9, 0.15, 8)).expect("cluster");
    cluster.run(20);
    cluster.crash(NodeId(2));
    // Invalidations originated while node 2 is down must reach it after
    // recovery (origin retransmits until every member acks).
    let frames: Vec<_> = (0..4)
        .map(|i| {
            brsmn_workloads::random_multicast(
                brsmn_workloads::RandomSpec {
                    n: 8,
                    load: 0.9,
                    source_fraction: 0.5,
                },
                900 + i,
            )
        })
        .collect();
    let live = cluster.live_members();
    cluster.route_batch_on(&frames, &live);
    let ids: Vec<_> = (0..3)
        .map(|i| cluster.invalidate_from(NodeId(0), brsmn_core::plan_fingerprint(&frames[i])))
        .collect();
    cluster.run(100);
    cluster.recover(NodeId(2));
    assert!(
        cluster.run_until_converged(4000),
        "cluster must converge after the crash heals"
    );
    for id in ids {
        assert!(
            cluster.node(NodeId(2)).has_applied(id),
            "recovered node must have applied invalidation {id:?}"
        );
    }
    assert_eq!(cluster.lost_invalidations(), 0);
}
