//! Anti-entropy convergence property: two nodes whose plan caches diverge
//! (each routed a disjoint set of frames on its own shard) reconcile by
//! exchanging snapshots until **both tiers'** fingerprint sets are equal —
//! exact and canonical — within a bounded number of virtual ticks. A
//! tombstoned (invalidated) fingerprint never resurrects through the
//! exchange.

use brsmn_cluster::{Cluster, ClusterParams, NodeId};
use brsmn_core::{plan_fingerprint, MulticastAssignment};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

fn frames(n: usize, count: usize) -> impl Strategy<Value = Vec<MulticastAssignment>> {
    vec(vec(option::weighted(0.8, 0..n), n), count)
        .prop_map(move |all| all.iter().map(|c| assignment_from_choices(n, c)).collect())
}

/// Runs the cluster in small steps until both tiers match, returning how
/// many ticks it took (or `None` if the bound was exhausted).
fn ticks_to_tier_convergence(cluster: &mut Cluster, bound: u64) -> Option<u64> {
    let tiers = |cluster: &Cluster, id: NodeId| {
        (
            cluster.node(id).cache().resident_fingerprints(),
            cluster.node(id).cache().resident_canonical_fingerprints(),
        )
    };
    let mut elapsed = 0;
    loop {
        if tiers(cluster, NodeId(0)) == tiers(cluster, NodeId(1)) {
            return Some(elapsed);
        }
        if elapsed >= bound {
            return None;
        }
        cluster.run(4);
        elapsed += 4;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn divergent_caches_reconcile_both_tiers(
        (n, left, right) in prop_oneof![Just(8usize), Just(16)]
            .prop_flat_map(|n| (Just(n), frames(n, 3), frames(n, 3))),
        seed in 0u64..1000,
    ) {
        let mut cluster = Cluster::new(ClusterParams::fault_free(n, 2, seed)).expect("cluster");
        cluster.route_batch_on(&left, &[NodeId(0)]);
        cluster.route_batch_on(&right, &[NodeId(1)]);

        // Two anti-entropy periods (plus message round trips) bound a full
        // pairwise reconciliation between two nodes.
        let ticks = ticks_to_tier_convergence(&mut cluster, 200);
        prop_assert!(
            ticks.is_some(),
            "caches failed to reconcile within 200 ticks"
        );
    }
}

#[test]
fn reconciliation_is_the_union_minus_tombstones() {
    let n = 16;
    let mk = |seed: u64| {
        brsmn_workloads::random_multicast(
            brsmn_workloads::RandomSpec {
                n,
                load: 0.9,
                source_fraction: 0.4,
            },
            seed,
        )
    };
    let left: Vec<_> = (0..4).map(|i| mk(100 + i)).collect();
    let right: Vec<_> = (0..4).map(|i| mk(200 + i)).collect();

    let mut cluster = Cluster::new(ClusterParams::fault_free(n, 2, 5)).expect("cluster");
    cluster.route_batch_on(&left, &[NodeId(0)]);
    cluster.route_batch_on(&right, &[NodeId(1)]);

    // Invalidate one of node 0's plans; the tombstone must hold on both
    // sides even though node 1 never held the plan.
    let dead = plan_fingerprint(&left[0]);
    cluster.invalidate_from(NodeId(0), dead);

    let converged = ticks_to_tier_convergence(&mut cluster, 400);
    assert!(converged.is_some(), "caches must reconcile");

    let resident = cluster.node(NodeId(0)).cache().resident_fingerprints();
    assert!(
        !resident.contains(&dead),
        "a tombstoned plan must not resurrect through anti-entropy"
    );
    let mut expected: Vec<u64> = left
        .iter()
        .chain(right.iter())
        .map(plan_fingerprint)
        .filter(|&fp| fp != dead)
        .collect();
    expected.sort_unstable();
    expected.dedup();
    assert_eq!(
        resident, expected,
        "converged exact tier must be the union of both working sets minus tombstones"
    );
}
