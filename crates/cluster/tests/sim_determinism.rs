//! Seed-determinism regression over the simulated control plane, the
//! cluster-side mirror of the serve layer's `replay_determinism`:
//!
//! * the same campaign replayed at the same configuration produces a
//!   **byte-identical event trace** (one `u64` digest compares every send,
//!   drop, delivery, timer, and protocol milestone in global order), and
//! * the same campaign replayed at **different inbox capacities** — which
//!   shift *when* messages are processed, never what the protocols
//!   converge to — lands on the same convergent **state digest** (member
//!   sets, applied-invalidation sets, exact-tier cache fingerprints) while
//!   the invariants (single leader, zero lost invalidations, consistent
//!   decided logs, zero routing divergence) hold at every capacity.

use brsmn_cluster::{run_campaign, CampaignSpec};

fn spec_at(seed: u64, inbox_capacity: usize) -> CampaignSpec {
    CampaignSpec {
        inbox_capacity,
        ..CampaignSpec::default_at(seed)
    }
}

#[test]
fn same_seed_same_capacity_replays_byte_identically() {
    for seed in [11u64, 29] {
        for capacity in [1usize, 64] {
            let a = run_campaign(&spec_at(seed, capacity)).expect("campaign runs");
            let b = run_campaign(&spec_at(seed, capacity)).expect("campaign runs");
            assert_eq!(
                a.trace_digest, b.trace_digest,
                "event trace must replay byte-identically (seed {seed}, capacity {capacity})"
            );
            assert_eq!(a.state_digest, b.state_digest);
            assert_eq!(a.ticks_run, b.ticks_run);
            assert_eq!(a.messages_sent, b.messages_sent);
            assert_eq!(a.messages_dropped, b.messages_dropped);
        }
    }
}

#[test]
fn inbox_capacity_shifts_timing_but_not_the_converged_state() {
    for seed in [11u64, 29] {
        let tight = run_campaign(&spec_at(seed, 1)).expect("campaign runs");
        let wide = run_campaign(&spec_at(seed, 64)).expect("campaign runs");

        for (label, r) in [("capacity 1", &tight), ("capacity 64", &wide)] {
            assert!(r.converged, "{label}: cluster must converge (seed {seed})");
            assert!(r.single_leader, "{label}: single leader (seed {seed})");
            assert_eq!(r.lost_invalidations, 0, "{label} (seed {seed})");
            assert!(r.decided_logs_consistent, "{label} (seed {seed})");
            assert_eq!(r.routing_divergence, 0, "{label} (seed {seed})");
        }

        assert_eq!(
            tight.state_digest, wide.state_digest,
            "convergent state must be inbox-capacity-independent (seed {seed})"
        );
        // The tight inbox must actually have exercised backpressure,
        // otherwise this test compares nothing.
        assert!(
            tight.backpressure_ticks > 0,
            "capacity 1 should see backlogged inboxes (seed {seed})"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let a = run_campaign(&spec_at(11, 8)).expect("campaign runs");
    let b = run_campaign(&spec_at(12, 8)).expect("campaign runs");
    assert_ne!(
        a.trace_digest, b.trace_digest,
        "distinct seeds must produce distinct event traces"
    );
}
