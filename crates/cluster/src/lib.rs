//! Simulated distributed control plane for the self-routing multicast fabric.
//!
//! This crate grows the single-process engines of `brsmn-core` into a
//! cluster of actor-style nodes, each owning one fabric shard plus its plan
//! cache, connected by a *deterministic* virtual-time network
//! ([`VirtualNet`]). Messages can be dropped, delayed, reordered, and
//! partitioned — all as pure functions of the seed, so a campaign replays
//! byte-for-byte: same seed ⇒ same event trace ⇒ same final state digest.
//!
//! Layering:
//!
//! * [`net`] — addresses, the message vocabulary, and the seeded
//!   virtual-time scheduler with bounded inboxes and fault injection.
//! * [`node`] — one control-plane actor: Paxos-style membership epochs,
//!   reliable broadcast of plan-cache invalidations, and anti-entropy
//!   reconciliation of cache contents over the snapshot wire format.
//! * [`cluster`] — the simulation loop tying nodes to the network, the
//!   invariant checks (single leader, no lost invalidation, decided-log
//!   consistency), and scripted fault campaigns.
//! * [`engine`] — [`DistributedEngine`], the cluster wrapped as a
//!   `RouterBackend`: bit-identical to `ShardedEngine` when fault-free.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod net;
pub mod node;

pub use cluster::{run_campaign, CampaignReport, CampaignSpec, Cluster, ClusterParams};
pub use engine::DistributedEngine;
pub use net::{Ballot, ClusterView, Envelope, Message, NetStats, NodeId, SimConfig, VirtualNet};
pub use node::{Node, NodeStats, Outbox, Protocol};
