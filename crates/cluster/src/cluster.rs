//! The simulation loop: nodes wired to the virtual network, invariant
//! checks over the whole cluster, and scripted fault campaigns.
//!
//! A [`Cluster`] owns one [`VirtualNet`] and one [`Node`] per shard. Each
//! [`tick`](Cluster::tick) advances the network one virtual tick, hands the
//! drained envelopes to their nodes in deterministic order, and flushes
//! each handler's [`Outbox`] back into the network. Nothing else moves
//! time, so two clusters built from the same [`ClusterParams`] replay the
//! same campaign byte for byte.
//!
//! Two digests summarize a run, with deliberately different scopes:
//!
//! * [`trace_digest`](Cluster::trace_digest) folds *every* event in global
//!   order — it is pinned identical across runs of the same configuration,
//!   and changes whenever anything (a delivery, a drop, a decide) moves.
//! * [`state_digest`](Cluster::state_digest) folds only the *convergent*
//!   facts — member sets, applied-invalidation sets, exact-tier cache
//!   fingerprints — and is pinned identical across inbox capacities, which
//!   shift *when* messages are processed but not what the protocols
//!   converge to. Timing-dependent outcomes (who leads, how many election
//!   rounds it took) are excluded by construction, the same way the serve
//!   layer's output hash is order-independent across worker interleavings.

use brsmn_core::{
    plan_fingerprint, BatchOutput, CoreError, EngineStats, MulticastAssignment, RoutingResult,
    ShardedEngine,
};
use brsmn_workloads::{random_multicast, RandomSpec};
use serde::Serialize;
use std::collections::BTreeSet;

use crate::net::{fold, mix, BroadcastId, ClusterView, NodeId, SimConfig, VirtualNet};
use crate::node::{Node, NodeStats, Outbox, Protocol};

/// Everything that determines a cluster's behavior. Two clusters built
/// from equal params replay identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Fabric size of every shard (power of two).
    pub n: usize,
    /// Number of control-plane nodes (one shard each).
    pub nodes: usize,
    /// Per-node plan-cache capacity (entries).
    pub plan_cache: usize,
    /// Virtual-network configuration.
    pub sim: SimConfig,
    /// Protocol timing knobs.
    pub protocol: Protocol,
}

impl ClusterParams {
    /// A perfectly reliable cluster — the configuration under which
    /// [`DistributedEngine`](crate::engine::DistributedEngine) is pinned
    /// bit-identical to `ShardedEngine`.
    pub fn fault_free(n: usize, nodes: usize, seed: u64) -> Self {
        ClusterParams {
            n,
            nodes,
            plan_cache: 64,
            sim: SimConfig::fault_free(seed),
            protocol: Protocol::default(),
        }
    }

    /// A lossy, reordering cluster for fault campaigns.
    pub fn lossy(n: usize, nodes: usize, seed: u64, drop_p: f64, inbox_capacity: usize) -> Self {
        ClusterParams {
            n,
            nodes,
            plan_cache: 64,
            sim: SimConfig::lossy(seed, drop_p, inbox_capacity),
            protocol: Protocol::default(),
        }
    }
}

/// A simulated distributed control plane: one node per fabric shard over a
/// seeded virtual-time network.
#[derive(Debug)]
pub struct Cluster {
    params: ClusterParams,
    net: VirtualNet,
    nodes: Vec<Node>,
    /// Every invalidation originated through the cluster API, for the
    /// lost-broadcast check: `(id, fingerprint)`.
    originated: Vec<(BroadcastId, u64)>,
}

impl Cluster {
    /// Builds and boots the cluster: every node starts at epoch 0 with
    /// node 0 as leader, and arms its timers.
    pub fn new(params: ClusterParams) -> Result<Self, CoreError> {
        if params.nodes == 0 {
            return Err(CoreError::Config(
                "cluster needs at least one node".to_string(),
            ));
        }
        let view = ClusterView::initial(params.nodes);
        let mut nodes = Vec::with_capacity(params.nodes);
        for i in 0..params.nodes {
            nodes.push(Node::new(
                NodeId(i),
                params.n,
                params.plan_cache,
                params.protocol,
                view.clone(),
            )?);
        }
        let net = VirtualNet::new(params.nodes, params.sim);
        let mut cluster = Cluster {
            params,
            net,
            nodes,
            originated: Vec::new(),
        };
        for i in 0..cluster.nodes.len() {
            let mut out = Outbox::default();
            cluster.nodes[i].on_start(&mut out);
            cluster.flush(NodeId(i), out);
        }
        Ok(cluster)
    }

    /// The construction parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// The underlying virtual network (read-only).
    pub fn net(&self) -> &VirtualNet {
        &self.net
    }

    /// One node, by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes (live or not).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.net.now()
    }

    fn flush(&mut self, from: NodeId, out: Outbox) {
        for (to, msg) in out.msgs {
            self.net.send(from, to, msg);
        }
        for (delay, kind) in out.timers {
            self.net.set_timer(from, delay, kind);
        }
        for (tag, value) in out.notes {
            self.net.note(from, tag, value);
        }
    }

    /// Advances one virtual tick: arrivals, bounded inbox drain, handler
    /// dispatch in node-id order, outbox flush.
    pub fn tick(&mut self) {
        let drained = self.net.advance();
        let now = self.net.now();
        for (id, batch) in drained {
            for env in batch {
                let mut out = Outbox::default();
                self.nodes[id.0].on_message(env.from, env.msg, now, &mut out);
                self.flush(id, out);
            }
        }
    }

    /// Runs `ticks` virtual ticks.
    pub fn run(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.tick();
        }
    }

    // ---- fault injection --------------------------------------------

    /// Splits the network (see [`VirtualNet::partition`]).
    pub fn partition(&mut self, side: &[NodeId]) {
        self.net.partition(side);
    }

    /// Heals any partition.
    pub fn heal(&mut self) {
        self.net.heal();
    }

    /// Crash-stops a node (fail-stop: inbox cleared, state frozen).
    pub fn crash(&mut self, id: NodeId) {
        self.net.crash(id);
    }

    /// Recovers a crashed node and re-arms its timers (its durable state —
    /// view, cache, tombstones — survived the crash; only liveness needs
    /// rebooting).
    pub fn recover(&mut self, id: NodeId) {
        self.net.recover(id);
        let mut out = Outbox::default();
        self.nodes[id.0].on_start(&mut out);
        self.flush(id, out);
    }

    // ---- control-plane operations -----------------------------------

    /// Originates a reliable-broadcast invalidation of `fp` from `id` and
    /// records it for the lost-broadcast check.
    pub fn invalidate_from(&mut self, id: NodeId, fp: u64) -> BroadcastId {
        let mut out = Outbox::default();
        let bid = self.nodes[id.0].broadcast_invalidate(fp, &mut out);
        self.flush(id, out);
        self.originated.push((bid, fp));
        bid
    }

    /// Starts a membership-change candidacy at `proposer`: the next epoch
    /// with `members` (sorted, deduplicated) led by `leader`. Scale-up,
    /// scale-down, and routing around a faulty shard are all this call.
    pub fn propose_reconfig(&mut self, proposer: NodeId, leader: NodeId, members: &[NodeId]) {
        let mut sorted: Vec<NodeId> = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let proposal = ClusterView {
            epoch: self.nodes[proposer.0].view().epoch + 1,
            leader,
            members: sorted,
        };
        let now = self.net.now();
        let mut out = Outbox::default();
        self.nodes[proposer.0].start_candidacy(proposal, now, &mut out);
        self.flush(proposer, out);
    }

    /// Routes around a faulty shard: proposes (from the lowest live member
    /// other than `faulty`) the current member set minus `faulty`. The
    /// proposer nominates itself leader if the faulty node was leading.
    pub fn mark_faulty(&mut self, faulty: NodeId) {
        let Some(proposer) = self
            .live_members()
            .into_iter()
            .find(|&m| m != faulty)
        else {
            return;
        };
        let view = self.nodes[proposer.0].view().clone();
        let members: Vec<NodeId> = view
            .members
            .iter()
            .copied()
            .filter(|&m| m != faulty)
            .collect();
        let leader = if view.leader == faulty { proposer } else { view.leader };
        self.propose_reconfig(proposer, leader, &members);
    }

    // ---- cluster-wide observations ----------------------------------

    /// The member set of the highest-epoch view held by any live node,
    /// minus crashed nodes — the nodes that should currently carry load.
    pub fn live_members(&self) -> Vec<NodeId> {
        let mut best: Option<&ClusterView> = None;
        for node in &self.nodes {
            if self.net.is_crashed(node.id()) {
                continue;
            }
            if best.is_none_or(|b| node.view().epoch > b.epoch) {
                best = Some(node.view());
            }
        }
        best.map(|v| {
            v.members
                .iter()
                .copied()
                .filter(|&m| !self.net.is_crashed(m))
                .collect()
        })
        .unwrap_or_default()
    }

    /// Exactly one live node leads the highest epoch present among live
    /// nodes, and every live node at that epoch agrees who it is.
    pub fn single_leader(&self) -> bool {
        let live: Vec<&Node> = self
            .nodes
            .iter()
            .filter(|nd| !self.net.is_crashed(nd.id()))
            .collect();
        let Some(max_epoch) = live.iter().map(|nd| nd.view().epoch).max() else {
            return false;
        };
        let leaders: BTreeSet<NodeId> = live
            .iter()
            .filter(|nd| nd.view().epoch == max_epoch)
            .map(|nd| nd.view().leader)
            .collect();
        if leaders.len() != 1 {
            return false;
        }
        // No live node may believe it leads a *different* configuration.
        let leader = *leaders.iter().next().expect("len checked");
        live.iter()
            .all(|nd| !nd.is_leader() || (nd.view().epoch == max_epoch && nd.id() == leader))
    }

    /// How many originated invalidations some live member has not applied.
    pub fn lost_invalidations(&self) -> usize {
        let members = self.live_members();
        self.originated
            .iter()
            .filter(|&&(id, _)| {
                members
                    .iter()
                    .any(|&m| !self.nodes[m.0].has_applied(id))
            })
            .count()
    }

    /// Split-brain check: any two nodes (live or crashed — decided facts
    /// are durable) that decided the same epoch decided the same view.
    pub fn decided_logs_consistent(&self) -> bool {
        let mut by_epoch: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for node in &self.nodes {
            for &(epoch, digest) in &node.decided_log {
                match by_epoch.get(&epoch) {
                    Some(&d) if d != digest => return false,
                    Some(_) => {}
                    None => {
                        by_epoch.insert(epoch, digest);
                    }
                }
            }
        }
        true
    }

    /// All live members hold equal exact-tier fingerprint sets and equal
    /// applied-invalidation sets — anti-entropy has converged.
    pub fn caches_converged(&self) -> bool {
        let members = self.live_members();
        let Some((&first, rest)) = members.split_first() else {
            return true;
        };
        let reference_fps = self.nodes[first.0].cache().resident_fingerprints();
        let reference_inv: Vec<BroadcastId> = self.nodes[first.0]
            .seen_invalidations()
            .map(|(&id, _)| id)
            .collect();
        rest.iter().all(|&m| {
            self.nodes[m.0].cache().resident_fingerprints() == reference_fps
                && self.nodes[m.0]
                    .seen_invalidations()
                    .map(|(&id, _)| id)
                    .collect::<Vec<_>>()
                    == reference_inv
        })
    }

    /// The cluster has settled: one leader, every originated invalidation
    /// applied everywhere, caches reconciled, no broadcast awaiting acks.
    pub fn converged(&self) -> bool {
        self.single_leader()
            && self.lost_invalidations() == 0
            && self.caches_converged()
            && self
                .live_members()
                .iter()
                .all(|&m| !self.nodes[m.0].has_unacked())
    }

    /// Runs until [`converged`](Cluster::converged) (checked every few
    /// ticks), at most `max_ticks`; returns `true` on convergence.
    pub fn run_until_converged(&mut self, max_ticks: u64) -> bool {
        let mut elapsed = 0;
        loop {
            if self.converged() {
                return true;
            }
            if elapsed >= max_ticks {
                return false;
            }
            let step = 8.min(max_ticks - elapsed);
            self.run(step);
            elapsed += step;
        }
    }

    /// Order-dependent digest of every event so far; identical across runs
    /// of the same configuration.
    pub fn trace_digest(&self) -> u64 {
        self.net.trace_digest()
    }

    /// Order-independent digest of the convergent facts: per live node, its
    /// member set, applied-invalidation set, and exact-tier cache
    /// fingerprints. Identical across inbox capacities once converged;
    /// deliberately excludes who leads and how many epochs it took, which
    /// are timing-dependent.
    pub fn state_digest(&self) -> u64 {
        let mut h = 0xC0A1_E5CE_D157_0000u64;
        for node in &self.nodes {
            if self.net.is_crashed(node.id()) {
                continue;
            }
            let mut d = fold(0, node.id().0 as u64);
            for &m in &node.view().members {
                d = fold(d, m.0 as u64 + 1);
            }
            for (&(origin, seq), &fp) in node.seen_invalidations() {
                d = fold(fold(fold(d, origin.0 as u64), seq), fp);
            }
            for fp in node.cache().resident_fingerprints() {
                d = fold(d, fp);
            }
            h = h.wrapping_add(mix(d));
        }
        h
    }

    /// Aggregated per-node protocol counters, id order.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.nodes.iter().map(|nd| nd.stats).collect()
    }

    // ---- data plane --------------------------------------------------

    /// The highest epoch any live node has decided.
    pub fn epoch(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|nd| !self.net.is_crashed(nd.id()))
            .map(|nd| nd.view().epoch)
            .max()
            .unwrap_or(0)
    }

    /// Routes a batch striped round-robin across **all** nodes — the exact
    /// `results[k + j * s]` interleave of `ShardedEngine::route_batch`, so
    /// a fault-free cluster is bit-identical to the sharded engine.
    pub fn route_batch(&mut self, batch: &[MulticastAssignment]) -> BatchOutput {
        let routers: Vec<NodeId> = (0..self.nodes.len()).map(NodeId).collect();
        self.route_batch_on(batch, &routers)
    }

    /// Routes a batch striped across `routers` (e.g. the current live
    /// members, so a faulty shard is routed around). Results come back in
    /// input order; every shard routes the full `n × n` fabric, so which
    /// node routes a frame never changes the result bits.
    pub fn route_batch_on(
        &mut self,
        batch: &[MulticastAssignment],
        routers: &[NodeId],
    ) -> BatchOutput {
        assert!(!routers.is_empty(), "no live node to route on");
        let s = routers.len();
        let mut out = if s == 1 || batch.len() <= 1 {
            self.nodes[routers[0].0].route_stripe(batch)
        } else {
            let stripes: Vec<Vec<MulticastAssignment>> = (0..s)
                .map(|k| batch.iter().skip(k).step_by(s).cloned().collect())
                .collect();
            let mut results: Vec<Option<Result<RoutingResult, CoreError>>> =
                (0..batch.len()).map(|_| None).collect();
            let mut stats = EngineStats::empty(self.params.n);
            for (k, stripe) in stripes.iter().enumerate() {
                let stripe_out = self.nodes[routers[k].0].route_stripe(stripe);
                for (j, r) in stripe_out.results.into_iter().enumerate() {
                    results[k + j * s] = Some(r);
                }
                stats.merge(&stripe_out.stats);
            }
            BatchOutput {
                results: results
                    .into_iter()
                    .map(|r| r.expect("striping covers every frame exactly once"))
                    .collect(),
                stats,
            }
        };
        out.stats.cluster_nodes = self.nodes.len() as u64;
        out.stats.cluster_messages = self.net.stats().sent;
        out.stats.cluster_messages_dropped = self.net.stats().dropped();
        out.stats.cluster_epoch = self.epoch();
        out
    }
}

// ---- scripted fault campaigns ---------------------------------------

/// A scripted fault campaign over one cluster: warm traffic, staggered
/// invalidations, an optional partition window, an optional crash window,
/// an optional shard removal, then heal-and-settle with every invariant
/// checked. All times are virtual ticks from the start of the fault phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Fabric size of each shard.
    pub n: usize,
    /// Node count.
    pub nodes: usize,
    /// Seed for the network and the workload.
    pub seed: u64,
    /// Per-message drop probability during the fault phase.
    pub drop_p: f64,
    /// Inbox drain bound per tick.
    pub inbox_capacity: usize,
    /// Length of the fault phase, ticks.
    pub ticks: u64,
    /// Warm frames routed (and compared bit-for-bit against the sharded
    /// oracle) before faults start.
    pub frames: usize,
    /// Invalidations originated, staggered over the fault phase from
    /// rotating live members.
    pub invalidations: usize,
    /// Two-way partition window `[start, end)`: the lower half of the node
    /// ids is split from the rest.
    pub partition: Option<(u64, u64)>,
    /// Crash window `(node, start, end)`: fail-stop then recover.
    pub crash: Option<(usize, u64, u64)>,
    /// Remove this shard mid-campaign (route around a faulty shard).
    pub remove_node: Option<usize>,
    /// Ticks allowed for post-heal convergence.
    pub settle_ticks: u64,
}

impl CampaignSpec {
    /// The default campaign at `seed`: 4 nodes × 16-port shards, 20% drop,
    /// a healed two-way partition, one crash window, 12 invalidations.
    pub fn default_at(seed: u64) -> Self {
        CampaignSpec {
            n: 16,
            nodes: 4,
            seed,
            drop_p: 0.2,
            inbox_capacity: 8,
            ticks: 400,
            frames: 24,
            invalidations: 12,
            partition: Some((60, 180)),
            crash: Some((2, 220, 300)),
            remove_node: None,
            settle_ticks: 3000,
        }
    }
}

/// Per-node protocol counters in serializable form.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// Node id.
    pub node: usize,
    /// Candidacies started.
    pub elections_started: u64,
    /// Configurations adopted.
    pub views_adopted: u64,
    /// Invalidations applied.
    pub invalidations_applied: u64,
    /// Anti-entropy exchanges initiated.
    pub ae_initiated: u64,
    /// Plans learned from peers.
    pub ae_plans_loaded: u64,
    /// Frames routed on this shard.
    pub frames_routed: u64,
}

/// The outcome of one [`run_campaign`], JSON-serializable for the CLI and
/// the CI gate.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Fabric size.
    pub n: usize,
    /// Node count.
    pub nodes: usize,
    /// Seed.
    pub seed: u64,
    /// Drop probability during the fault phase.
    pub drop_p: f64,
    /// Inbox drain bound.
    pub inbox_capacity: usize,
    /// Virtual ticks actually run.
    pub ticks_run: u64,
    /// Whether the cluster converged within the settle budget.
    pub converged: bool,
    /// Single-leader invariant at the end.
    pub single_leader: bool,
    /// Originated invalidations some live member never applied.
    pub lost_invalidations: usize,
    /// Split-brain check over all decided logs.
    pub decided_logs_consistent: bool,
    /// Frames whose cluster routing differed from the sharded oracle.
    pub routing_divergence: usize,
    /// Frames compared against the oracle (warm + post-heal).
    pub frames_compared: usize,
    /// Final decided epoch.
    pub final_epoch: u64,
    /// Final live member ids.
    pub final_members: Vec<usize>,
    /// Order-dependent event-trace digest (replay check).
    pub trace_digest: u64,
    /// Order-independent convergent-state digest (capacity check).
    pub state_digest: u64,
    /// Unicast messages offered to the network.
    pub messages_sent: u64,
    /// Messages delivered to handlers.
    pub messages_delivered: u64,
    /// Messages lost to the drop coin, partitions, and crashes.
    pub messages_dropped: u64,
    /// Ticks with a backlogged inbox.
    pub backpressure_ticks: u64,
    /// Per-node protocol counters.
    pub node_reports: Vec<NodeReport>,
    /// All invariants held and routing matched the oracle.
    pub healthy: bool,
}

/// Runs one scripted fault campaign and checks every invariant the issue
/// pins: single leader after healing, no lost invalidation, decided-log
/// consistency, and routing bit-identical to a single-process
/// [`ShardedEngine`].
pub fn run_campaign(spec: &CampaignSpec) -> Result<CampaignReport, CoreError> {
    let params = ClusterParams::lossy(spec.n, spec.nodes, spec.seed, spec.drop_p, spec.inbox_capacity);
    let mut cluster = Cluster::new(params)?;
    let oracle = ShardedEngine::new(spec.n, spec.nodes)?;

    // Workload: deterministic frames shared by cluster and oracle.
    let frames: Vec<MulticastAssignment> = (0..spec.frames.max(1))
        .map(|i| {
            random_multicast(
                RandomSpec {
                    n: spec.n,
                    load: 0.9,
                    source_fraction: 0.25,
                },
                spec.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    let oracle_out = oracle.route_batch(&frames);

    // Warm phase: the data plane never crosses the lossy network (each
    // frame routes on the shard it was striped to), so the comparison is
    // bit-for-bit even though control traffic is already being dropped.
    let warm = cluster.route_batch(&frames);
    let mut divergence = 0usize;
    let mut compared = 0usize;
    for (a, b) in warm.results.iter().zip(oracle_out.results.iter()) {
        compared += 1;
        match (a, b) {
            (Ok(x), Ok(y)) if x == y => {}
            _ => divergence += 1,
        }
    }
    cluster.run(8);

    // Fault phase: scripted windows, staggered invalidations, optional
    // membership change.
    let inval_every = (spec.ticks / (spec.invalidations.max(1) as u64 + 1)).max(1);
    let mut inval_issued = 0usize;
    let reconfig_at = spec.ticks / 2;
    let mut reconfig_target: Option<Vec<NodeId>> = None;
    for t in 0..spec.ticks {
        if let Some((start, end)) = spec.partition {
            if t == start {
                let side: Vec<NodeId> = (0..spec.nodes / 2).map(NodeId).collect();
                cluster.partition(&side);
            }
            if t == end {
                cluster.heal();
            }
        }
        if let Some((node, start, end)) = spec.crash {
            if t == start {
                cluster.crash(NodeId(node));
            }
            if t == end {
                cluster.recover(NodeId(node));
            }
        }
        if inval_issued < spec.invalidations && t % inval_every == 0 && t > 0 {
            let live = cluster.live_members();
            if !live.is_empty() {
                let origin = live[inval_issued % live.len()];
                let fp = plan_fingerprint(&frames[inval_issued % frames.len()]);
                cluster.invalidate_from(origin, fp);
                inval_issued += 1;
            }
        }
        if let Some(victim) = spec.remove_node {
            if t == reconfig_at {
                cluster.mark_faulty(NodeId(victim));
                reconfig_target = Some(
                    (0..spec.nodes)
                        .filter(|&i| i != victim)
                        .map(NodeId)
                        .collect(),
                );
            }
            // Re-propose until the removal sticks (an election may have
            // claimed the decree first).
            if t > reconfig_at && t % 64 == 0 {
                if let Some(target) = &reconfig_target {
                    if &cluster.live_members() != target {
                        cluster.mark_faulty(NodeId(victim));
                    }
                }
            }
        }
        cluster.tick();
    }

    // Heal everything and let the protocols settle.
    cluster.heal();
    if let Some((node, _, end)) = spec.crash {
        if end >= spec.ticks {
            cluster.recover(NodeId(node));
        }
    }
    if let Some(target) = &reconfig_target {
        // Keep nudging the removal through the settled network.
        let victim = spec.remove_node.expect("target implies remove_node");
        let mut tries = 0;
        while &cluster.live_members() != target && tries < 20 {
            cluster.mark_faulty(NodeId(victim));
            cluster.run(spec.protocol_settle_step());
            tries += 1;
        }
    }
    let converged = cluster.run_until_converged(spec.settle_ticks);

    // Post-heal routing over the surviving members, still bit-identical.
    let live = cluster.live_members();
    if !live.is_empty() {
        let post = cluster.route_batch_on(&frames, &live);
        for (a, b) in post.results.iter().zip(oracle_out.results.iter()) {
            compared += 1;
            match (a, b) {
                (Ok(x), Ok(y)) if x == y => {}
                _ => divergence += 1,
            }
        }
    }

    let single_leader = cluster.single_leader();
    let lost = cluster.lost_invalidations();
    let logs_ok = cluster.decided_logs_consistent();
    let net = *cluster.net().stats();
    let node_reports: Vec<NodeReport> = cluster
        .node_stats()
        .iter()
        .enumerate()
        .map(|(i, s)| NodeReport {
            node: i,
            elections_started: s.elections_started,
            views_adopted: s.views_adopted,
            invalidations_applied: s.invalidations_applied,
            ae_initiated: s.ae_initiated,
            ae_plans_loaded: s.ae_plans_loaded,
            frames_routed: s.frames_routed,
        })
        .collect();
    let healthy = converged && single_leader && lost == 0 && logs_ok && divergence == 0;

    Ok(CampaignReport {
        n: spec.n,
        nodes: spec.nodes,
        seed: spec.seed,
        drop_p: spec.drop_p,
        inbox_capacity: spec.inbox_capacity,
        ticks_run: cluster.now(),
        converged,
        single_leader,
        lost_invalidations: lost,
        decided_logs_consistent: logs_ok,
        routing_divergence: divergence,
        frames_compared: compared,
        final_epoch: cluster.epoch(),
        final_members: cluster.live_members().iter().map(|m| m.0).collect(),
        trace_digest: cluster.trace_digest(),
        state_digest: cluster.state_digest(),
        messages_sent: net.sent,
        messages_delivered: net.delivered,
        messages_dropped: net.dropped(),
        backpressure_ticks: net.backpressure_ticks,
        node_reports,
        healthy,
    })
}

impl CampaignSpec {
    /// Ticks per re-proposal nudge while a membership change settles.
    fn protocol_settle_step(&self) -> u64 {
        64
    }
}
