//! The seeded virtual-time message network under the simulated cluster.
//!
//! Every non-determinism a real deployment would face — message drops,
//! variable delivery delay, reordering, partitions, crashed peers, bounded
//! ingest rates — is reproduced here as a *pure function of the seed*:
//!
//! * **Drop and delay are decided at send time** from a hash of
//!   `(seed, from, to, per-link counter)`, not from a shared RNG stream, so
//!   the fate of the `i`-th message on a link never depends on how other
//!   links interleave.
//! * **Delivery order** is total: in-flight messages land in arrival order,
//!   ties broken by a global send sequence number.
//! * **Partitions** are checked at *arrival*, so healing a partition lets
//!   later traffic through while messages cut mid-flight stay lost.
//! * **Bounded inboxes** model a node's finite ingest rate: each node
//!   drains at most [`SimConfig::inbox_capacity`] messages per tick; the
//!   rest stay queued in FIFO order. Capacity therefore shifts *when*
//!   messages are processed, never *which* messages were sent or dropped on
//!   a link — the protocols converge to the same final state at any
//!   capacity, which is exactly what the determinism gate asserts.
//!
//! Everything that happens is folded into a running [trace
//! digest](VirtualNet::trace_digest): two runs with the same seed and
//! configuration produce byte-identical event streams, so a single `u64`
//! comparison replays the whole campaign.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use brsmn_core::PlanSnapshotEntry;

/// Explicit address of one control-plane node (also its index in the
/// cluster's node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A Paxos ballot: totally ordered, with the proposing node as tiebreak so
/// no two candidates ever share one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ballot {
    /// Monotone round counter (bumped past any ballot the node has seen).
    pub round: u64,
    /// Proposer, as tiebreak.
    pub node: NodeId,
}

/// One agreed cluster configuration: the value Paxos decides, one decree
/// per epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// Decree index: how many configurations precede this one.
    pub epoch: u64,
    /// The shard node the members currently follow.
    pub leader: NodeId,
    /// Member shard nodes, sorted by id.
    pub members: Vec<NodeId>,
}

impl ClusterView {
    /// The initial configuration every node boots with: node 0 leads all
    /// `nodes` shards at epoch 0.
    pub fn initial(nodes: usize) -> Self {
        ClusterView {
            epoch: 0,
            leader: NodeId(0),
            members: (0..nodes).map(NodeId).collect(),
        }
    }

    /// `true` when `id` is a member of this configuration.
    pub fn has_member(&self, id: NodeId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// Votes needed to decide a decree among these members.
    pub fn majority(&self) -> usize {
        self.members.len() / 2 + 1
    }

    /// Order-independent digest of the configuration, used by the
    /// split-brain check: two nodes that decided the same epoch must hold
    /// equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = fold(0x9E3779B97F4A7C15, self.epoch);
        h = fold(h, self.leader.0 as u64);
        for m in &self.members {
            h = fold(h, m.0 as u64 + 1);
        }
        h
    }
}

/// Identity of one reliable-broadcast invalidation: origin plus its
/// per-origin sequence number.
pub type BroadcastId = (NodeId, u64);

/// Node-local timers, delivered by the scheduler as self-addressed events
/// that are never dropped, delayed past their deadline, or partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// Periodic liveness check: start a candidacy when the leader's
    /// heartbeats have gone stale.
    Election,
    /// Leader's periodic heartbeat fan-out.
    Heartbeat,
    /// Re-flood invalidations still missing acknowledgements.
    Retransmit,
    /// Start one anti-entropy exchange with the next peer in rotation.
    AntiEntropy,
}

impl TimerKind {
    fn code(self) -> u64 {
        match self {
            TimerKind::Election => 1,
            TimerKind::Heartbeat => 2,
            TimerKind::Retransmit => 3,
            TimerKind::AntiEntropy => 4,
        }
    }
}

/// The control-plane wire protocol.
#[derive(Debug, Clone)]
pub enum Message {
    /// Paxos phase 1a for decree `epoch` (the proposer's `view.epoch + 1`).
    Prepare {
        /// Decree being contested.
        decree: u64,
        /// Proposer's ballot.
        ballot: Ballot,
    },
    /// Paxos phase 1b: a promise not to accept lower ballots, carrying any
    /// value already accepted for this decree.
    Promise {
        /// Decree being contested.
        decree: u64,
        /// The promised ballot.
        ballot: Ballot,
        /// Previously accepted `(ballot, value)` for this decree, if any.
        accepted: Option<(Ballot, ClusterView)>,
    },
    /// Paxos phase 2a: accept this configuration for the decree.
    Accept {
        /// Decree being decided.
        decree: u64,
        /// Proposer's ballot.
        ballot: Ballot,
        /// Proposed configuration (`value.epoch == decree`).
        value: ClusterView,
    },
    /// Paxos phase 2b acknowledgement.
    Accepted {
        /// Decree voted on.
        decree: u64,
        /// Ballot voted for.
        ballot: Ballot,
    },
    /// A decided configuration, flooded by the decider and replayed to
    /// stale peers (`value.epoch` is the decree).
    Decide {
        /// The decided configuration.
        value: ClusterView,
    },
    /// Leader liveness beacon; carries the full view so laggards catch up.
    Heartbeat {
        /// The leader's current view.
        view: ClusterView,
    },
    /// Reliable-broadcast plan-cache invalidation (flooded on first
    /// receipt, retransmitted by the origin until every member acks).
    Invalidate {
        /// `(origin, per-origin sequence)` — the dedup key.
        id: BroadcastId,
        /// Exact-tier fingerprint to evict and tombstone.
        fp: u64,
    },
    /// Acknowledgement of an invalidation, sent to its origin.
    InvalidateAck {
        /// The broadcast being acknowledged.
        id: BroadcastId,
    },
    /// Anti-entropy round trip 1/3: the initiator's cache digest.
    SyncDigest {
        /// Sorted exact-tier fingerprints resident at the initiator.
        exact: Vec<u64>,
        /// Invalidations the initiator has applied: `(origin, seq, fp)`.
        inval: Vec<(NodeId, u64, u64)>,
    },
    /// Anti-entropy 2/3: plans the peer has that the initiator lacks, the
    /// fingerprints the peer wants back, and invalidations the initiator
    /// was missing.
    SyncReply {
        /// Plans for the initiator, in snapshot wire format.
        entries: Vec<PlanSnapshotEntry>,
        /// Fingerprints the peer asks the initiator to push.
        want: Vec<u64>,
        /// Invalidations the initiator lacked.
        inval: Vec<(NodeId, u64, u64)>,
    },
    /// Anti-entropy 3/3: the plans the peer asked for.
    SyncPush {
        /// Plans for the peer, in snapshot wire format.
        entries: Vec<PlanSnapshotEntry>,
    },
    /// Self-addressed timer expiry (scheduler-internal).
    Timer {
        /// Which timer fired.
        kind: TimerKind,
    },
}

impl Message {
    fn code(&self) -> u64 {
        match self {
            Message::Prepare { .. } => 1,
            Message::Promise { .. } => 2,
            Message::Accept { .. } => 3,
            Message::Accepted { .. } => 4,
            Message::Decide { .. } => 5,
            Message::Heartbeat { .. } => 6,
            Message::Invalidate { .. } => 7,
            Message::InvalidateAck { .. } => 8,
            Message::SyncDigest { .. } => 9,
            Message::SyncReply { .. } => 10,
            Message::SyncPush { .. } => 11,
            Message::Timer { .. } => 12,
        }
    }

    /// Content hash folded into the event trace: covers every scalar field
    /// and summarizes bulk payloads, so a reordered, altered, or differently
    /// populated message changes the trace digest.
    fn content_hash(&self) -> u64 {
        let mut h = fold(0xA076_1D64_78BD_642F, self.code());
        let ballot = |h: u64, b: &Ballot| fold(fold(h, b.round), b.node.0 as u64);
        match self {
            Message::Prepare { decree, ballot: b } => {
                h = ballot(fold(h, *decree), b);
            }
            Message::Promise {
                decree,
                ballot: b,
                accepted,
            } => {
                h = ballot(fold(h, *decree), b);
                if let Some((ab, v)) = accepted {
                    h = ballot(h, ab);
                    h = fold(h, v.digest());
                }
            }
            Message::Accept {
                decree,
                ballot: b,
                value,
            } => {
                h = ballot(fold(h, *decree), b);
                h = fold(h, value.digest());
            }
            Message::Accepted { decree, ballot: b } => {
                h = ballot(fold(h, *decree), b);
            }
            Message::Decide { value } => h = fold(h, value.digest()),
            Message::Heartbeat { view } => h = fold(h, view.digest()),
            Message::Invalidate { id, fp } => {
                h = fold(fold(fold(h, id.0 .0 as u64), id.1), *fp);
            }
            Message::InvalidateAck { id } => {
                h = fold(fold(h, id.0 .0 as u64), id.1);
            }
            Message::SyncDigest { exact, inval } => {
                h = fold(h, exact.len() as u64);
                for fp in exact {
                    h = fold(h, *fp);
                }
                h = fold(h, inval.len() as u64);
                for (o, s, fp) in inval {
                    h = fold(fold(fold(h, o.0 as u64), *s), *fp);
                }
            }
            Message::SyncReply {
                entries,
                want,
                inval,
            } => {
                h = fold(h, entries.len() as u64);
                for e in entries {
                    h = fold(fold(h, e.n as u64), e.sets.iter().map(|s| s.len()).sum::<usize>() as u64);
                }
                h = fold(h, want.len() as u64);
                for fp in want {
                    h = fold(h, *fp);
                }
                h = fold(h, inval.len() as u64);
            }
            Message::SyncPush { entries } => {
                h = fold(h, entries.len() as u64);
                for e in entries {
                    h = fold(fold(h, e.n as u64), e.sets.iter().map(|s| s.len()).sum::<usize>() as u64);
                }
            }
            Message::Timer { kind } => h = fold(h, kind.code()),
        }
        h
    }
}

/// One addressed message, as the scheduler carries it.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Recipient.
    pub to: NodeId,
    /// Payload.
    pub msg: Message,
}

/// Virtual-network knobs; all behavior is a pure function of these plus the
/// send sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Seed of every drop/delay decision.
    pub seed: u64,
    /// Per-message drop probability on each unicast link (timers exempt).
    pub drop_p: f64,
    /// Minimum delivery delay, ticks (clamped to ≥ 1).
    pub min_delay: u64,
    /// Maximum delivery delay, ticks (≥ `min_delay`; the spread is what
    /// makes reordering happen).
    pub max_delay: u64,
    /// Messages a node may drain from its inbox per tick (≥ 1); the rest
    /// wait in FIFO order.
    pub inbox_capacity: usize,
}

impl SimConfig {
    /// A perfectly reliable network: no drops, unit delay, effectively
    /// unbounded ingest. This is the configuration under which
    /// `DistributedEngine` is pinned bit-identical to `ShardedEngine`.
    pub fn fault_free(seed: u64) -> Self {
        SimConfig {
            seed,
            drop_p: 0.0,
            min_delay: 1,
            max_delay: 1,
            inbox_capacity: usize::MAX,
        }
    }

    /// A lossy, reordering network: `drop_p` drops with delivery delays
    /// uniform in `[1, 4]` ticks and the given inbox drain bound.
    pub fn lossy(seed: u64, drop_p: f64, inbox_capacity: usize) -> Self {
        SimConfig {
            seed,
            drop_p,
            min_delay: 1,
            max_delay: 4,
            inbox_capacity,
        }
    }
}

/// Cumulative network counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Unicast messages offered to the network (timers excluded).
    pub sent: u64,
    /// Messages handed to a node's protocol handler.
    pub delivered: u64,
    /// Messages lost to the seeded drop coin.
    pub dropped_lossy: u64,
    /// Messages lost to an active partition at arrival time.
    pub dropped_partition: u64,
    /// Messages lost because the recipient was crashed at arrival.
    pub dropped_crashed: u64,
    /// Ticks on which some inbox held more than the drain bound (a
    /// backpressure signal, not a loss).
    pub backpressure_ticks: u64,
}

impl NetStats {
    /// Everything the network lost, for the `EngineStats` threading.
    pub fn dropped(&self) -> u64 {
        self.dropped_lossy + self.dropped_partition + self.dropped_crashed
    }
}

/// splitmix64 finalizer — the mixing primitive of every digest here.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds one value into a running digest.
#[inline]
pub(crate) fn fold(h: u64, v: u64) -> u64 {
    mix(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

const EV_SEND: u64 = 1;
const EV_DROP_LOSSY: u64 = 2;
const EV_DROP_PARTITION: u64 = 3;
const EV_DROP_CRASHED: u64 = 4;
const EV_DELIVER: u64 = 5;
const EV_TIMER: u64 = 6;
const EV_NOTE: u64 = 7;
const EV_CRASH: u64 = 8;
const EV_RECOVER: u64 = 9;
const EV_PARTITION: u64 = 10;
const EV_HEAL: u64 = 11;

/// The seeded virtual-time scheduler: owns the flights, the per-node FIFO
/// inboxes, the fault state, and the event-trace digest.
#[derive(Debug)]
pub struct VirtualNet {
    cfg: SimConfig,
    nodes: usize,
    now: u64,
    seq: u64,
    /// In-flight messages, totally ordered by `(arrival tick, send seq)`.
    flights: BTreeMap<(u64, u64), Envelope>,
    /// Per-node FIFO of arrived-but-unprocessed messages.
    inboxes: Vec<VecDeque<Envelope>>,
    /// Per-link send counters feeding the hash-based drop/delay decisions.
    link_seq: Vec<u64>,
    /// Partition group of each node (messages cross groups only when the
    /// groups are equal).
    group: Vec<u8>,
    crashed: Vec<bool>,
    stats: NetStats,
    trace_hash: u64,
    trace_len: u64,
}

impl VirtualNet {
    /// A network connecting `nodes` nodes under `cfg`.
    pub fn new(nodes: usize, cfg: SimConfig) -> Self {
        VirtualNet {
            cfg: SimConfig {
                min_delay: cfg.min_delay.max(1),
                max_delay: cfg.max_delay.max(cfg.min_delay.max(1)),
                inbox_capacity: cfg.inbox_capacity.max(1),
                ..cfg
            },
            nodes,
            now: 0,
            seq: 0,
            flights: BTreeMap::new(),
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
            link_seq: vec![0; nodes * nodes],
            group: vec![0; nodes],
            crashed: vec![false; nodes],
            stats: NetStats::default(),
            trace_hash: 0x0123_4567_89AB_CDEF,
            trace_len: 0,
        }
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Digest of every event so far (sends, fates, deliveries, timers,
    /// protocol notes, fault transitions) in global order. Equal seeds and
    /// configurations ⇒ equal digests, byte for byte.
    pub fn trace_digest(&self) -> u64 {
        fold(self.trace_hash, self.trace_len)
    }

    /// Events folded so far.
    pub fn trace_len(&self) -> u64 {
        self.trace_len
    }

    fn note_event(&mut self, code: u64, a: u64, b: u64, c: u64) {
        let mut h = self.trace_hash;
        h = fold(h, code);
        h = fold(h, self.now);
        h = fold(h, a);
        h = fold(h, b);
        h = fold(h, c);
        self.trace_hash = h;
        self.trace_len += 1;
    }

    /// Folds a protocol milestone (decide, apply, election, …) into the
    /// trace so node-level behavior is digested alongside deliveries.
    pub fn note(&mut self, node: NodeId, tag: u64, value: u64) {
        self.note_event(EV_NOTE, node.0 as u64, tag, value);
    }

    /// `true` while `id` is crash-stopped.
    pub fn is_crashed(&self, id: NodeId) -> bool {
        self.crashed[id.0]
    }

    /// Crash-stops a node: its pending and future arrivals are dropped, it
    /// processes nothing, and (being fail-stop, not Byzantine) its state
    /// freezes until [`VirtualNet::recover`].
    pub fn crash(&mut self, id: NodeId) {
        if !self.crashed[id.0] {
            self.crashed[id.0] = true;
            self.inboxes[id.0].clear();
            self.note_event(EV_CRASH, id.0 as u64, 0, 0);
        }
    }

    /// Ends a crash; the caller must re-arm the node's timers.
    pub fn recover(&mut self, id: NodeId) {
        if self.crashed[id.0] {
            self.crashed[id.0] = false;
            self.note_event(EV_RECOVER, id.0 as u64, 0, 0);
        }
    }

    /// Splits the network: nodes in `side` form one group, everyone else
    /// the other; cross-group messages are dropped at arrival until
    /// [`VirtualNet::heal`].
    pub fn partition(&mut self, side: &[NodeId]) {
        for g in self.group.iter_mut() {
            *g = 0;
        }
        let mut digest = 0u64;
        for id in side {
            self.group[id.0] = 1;
            digest = fold(digest, id.0 as u64);
        }
        self.note_event(EV_PARTITION, digest, side.len() as u64, 0);
    }

    /// Removes any partition.
    pub fn heal(&mut self) {
        for g in self.group.iter_mut() {
            *g = 0;
        }
        self.note_event(EV_HEAL, 0, 0, 0);
    }

    fn link_rand(&mut self, from: NodeId, to: NodeId) -> u64 {
        let slot = from.0 * self.nodes + to.0;
        let counter = self.link_seq[slot];
        self.link_seq[slot] += 1;
        mix(self
            .cfg
            .seed
            .wrapping_add(mix((slot as u64) << 32 | counter)))
    }

    /// Offers one message to the network. Its fate (drop, delay) is decided
    /// now from the per-link hash; partition and crash checks happen at
    /// arrival.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.seq += 1;
        let seq = self.seq;
        self.stats.sent += 1;
        self.note_event(EV_SEND, from.0 as u64, to.0 as u64, msg.content_hash());
        let r = self.link_rand(from, to);
        // Top 53 bits → uniform in [0, 1): the drop coin.
        if ((r >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < self.cfg.drop_p {
            self.stats.dropped_lossy += 1;
            self.note_event(EV_DROP_LOSSY, from.0 as u64, to.0 as u64, msg.content_hash());
            return;
        }
        let span = self.cfg.max_delay - self.cfg.min_delay + 1;
        let delay = self.cfg.min_delay + mix(r) % span;
        self.flights
            .insert((self.now + delay, seq), Envelope { from, to, msg });
    }

    /// Arms a timer: a self-addressed delivery after `delay` ticks that no
    /// fault model touches.
    pub fn set_timer(&mut self, node: NodeId, delay: u64, kind: TimerKind) {
        self.seq += 1;
        self.flights.insert(
            (self.now + delay.max(1), self.seq),
            Envelope {
                from: node,
                to: node,
                msg: Message::Timer { kind },
            },
        );
    }

    /// Advances one tick: moves due flights into inboxes (applying
    /// partition and crash fates at arrival), then drains up to the inbox
    /// bound per node, handing each message to `handle` in deterministic
    /// `(arrival, seq)` / node-id order. `handle` receives `(now, envelope)`
    /// and may call back into the net via the returned outbox pattern —
    /// the caller (the cluster) owns that loop; this method only returns
    /// the drained envelopes per node.
    pub fn advance(&mut self) -> Vec<(NodeId, Vec<Envelope>)> {
        self.now += 1;
        // Arrivals.
        let due: Vec<(u64, u64)> = self
            .flights
            .range(..=(self.now, u64::MAX))
            .map(|(k, _)| *k)
            .collect();
        for key in due {
            let env = self.flights.remove(&key).expect("due flight present");
            let is_timer = matches!(env.msg, Message::Timer { .. });
            if self.crashed[env.to.0] {
                if !is_timer {
                    self.stats.dropped_crashed += 1;
                }
                self.note_event(
                    EV_DROP_CRASHED,
                    env.from.0 as u64,
                    env.to.0 as u64,
                    env.msg.content_hash(),
                );
                continue;
            }
            if !is_timer && self.group[env.from.0] != self.group[env.to.0] {
                self.stats.dropped_partition += 1;
                self.note_event(
                    EV_DROP_PARTITION,
                    env.from.0 as u64,
                    env.to.0 as u64,
                    env.msg.content_hash(),
                );
                continue;
            }
            self.inboxes[env.to.0].push_back(env);
        }
        // Bounded drain, node-id order.
        let mut drained = Vec::new();
        let mut saw_backpressure = false;
        for i in 0..self.nodes {
            if self.crashed[i] {
                continue;
            }
            if self.inboxes[i].len() > self.cfg.inbox_capacity {
                saw_backpressure = true;
            }
            let k = self.inboxes[i].len().min(self.cfg.inbox_capacity);
            if k == 0 {
                continue;
            }
            let mut batch = Vec::with_capacity(k);
            for _ in 0..k {
                let env = self.inboxes[i].pop_front().expect("counted above");
                match env.msg {
                    Message::Timer { kind } => {
                        self.note_event(EV_TIMER, i as u64, kind.code(), 0);
                    }
                    _ => {
                        self.stats.delivered += 1;
                        self.note_event(
                            EV_DELIVER,
                            env.from.0 as u64,
                            env.to.0 as u64,
                            env.msg.content_hash(),
                        );
                    }
                }
                batch.push(env);
            }
            drained.push((NodeId(i), batch));
        }
        if saw_backpressure {
            self.stats.backpressure_ticks += 1;
        }
        drained
    }

    /// `true` when nothing is in flight or queued — the network is quiet.
    pub fn is_quiet(&self) -> bool {
        self.flights.is_empty() && self.inboxes.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_fates_are_deterministic_and_link_local() {
        let mk = || {
            let mut net = VirtualNet::new(3, SimConfig::lossy(7, 0.4, 8));
            for _ in 0..64 {
                net.send(NodeId(0), NodeId(1), Message::InvalidateAck { id: (NodeId(0), 1) });
            }
            (net.stats().dropped_lossy, net.trace_digest())
        };
        assert_eq!(mk(), mk());

        // Interleaving traffic on another link does not change 0→1 fates.
        let mut net = VirtualNet::new(3, SimConfig::lossy(7, 0.4, 8));
        for _ in 0..64 {
            net.send(NodeId(2), NodeId(1), Message::InvalidateAck { id: (NodeId(2), 1) });
            net.send(NodeId(0), NodeId(1), Message::InvalidateAck { id: (NodeId(0), 1) });
        }
        // Count 0→1 drops alone by replaying the pure per-link function.
        let solo = mk().0;
        let mixed = net.stats().dropped_lossy;
        // The 2→1 link has its own fate stream; total drops must contain
        // exactly `solo` drops from the 0→1 link (can't observe directly
        // here, but determinism of the combined run is still pinned).
        let mut net2 = VirtualNet::new(3, SimConfig::lossy(7, 0.4, 8));
        for _ in 0..64 {
            net2.send(NodeId(2), NodeId(1), Message::InvalidateAck { id: (NodeId(2), 1) });
            net2.send(NodeId(0), NodeId(1), Message::InvalidateAck { id: (NodeId(0), 1) });
        }
        assert_eq!(mixed, net2.stats().dropped_lossy);
        assert_eq!(net.trace_digest(), net2.trace_digest());
        assert!(solo <= mixed);
    }

    #[test]
    fn partition_blocks_at_arrival_and_heals() {
        let mut net = VirtualNet::new(2, SimConfig::fault_free(1));
        net.partition(&[NodeId(1)]);
        net.send(NodeId(0), NodeId(1), Message::Heartbeat { view: ClusterView::initial(2) });
        let delivered: usize = net.advance().iter().map(|(_, b)| b.len()).sum();
        assert_eq!(delivered, 0);
        assert_eq!(net.stats().dropped_partition, 1);

        net.heal();
        net.send(NodeId(0), NodeId(1), Message::Heartbeat { view: ClusterView::initial(2) });
        let delivered: usize = net.advance().iter().map(|(_, b)| b.len()).sum();
        assert_eq!(delivered, 1);
    }

    #[test]
    fn inbox_bound_defers_but_never_loses() {
        let mut net = VirtualNet::new(2, SimConfig::fault_free(1));
        for _ in 0..10 {
            net.send(NodeId(0), NodeId(1), Message::InvalidateAck { id: (NodeId(0), 9) });
        }
        let mut cfg = *net.config();
        cfg.inbox_capacity = 3;
        // Rebuild with the bound (config is fixed at construction).
        let mut net = VirtualNet::new(2, cfg);
        for _ in 0..10 {
            net.send(NodeId(0), NodeId(1), Message::InvalidateAck { id: (NodeId(0), 9) });
        }
        let mut total = 0;
        for _ in 0..6 {
            total += net.advance().iter().map(|(_, b)| b.len()).sum::<usize>();
        }
        assert_eq!(total, 10, "deferred messages must all drain");
        assert!(net.stats().backpressure_ticks >= 1);
    }
}
