//! [`DistributedEngine`]: the simulated cluster wrapped as a
//! [`RouterBackend`], the eighth backend of the fleet.
//!
//! A fault-free cluster is bit-identical to
//! [`ShardedEngine`](brsmn_core::ShardedEngine): batches stripe across the
//! nodes with the same `results[k + j * s]` interleave, every node routes
//! a full `n × n` fabric, and settings are a pure function of the
//! assignment — so neither the striping nor the per-node caches can move
//! a single output bit. What the wrapper adds is the control plane: each
//! `route_batch` also pumps one virtual tick so heartbeats, invalidation
//! floods, and anti-entropy keep flowing between data-plane calls, and the
//! cluster counters ride out on [`EngineStats`](brsmn_core::EngineStats).

use std::sync::Mutex;

use brsmn_core::{
    BatchOutput, CoreError, MulticastAssignment, RouterBackend, RoutingResult,
};

use crate::cluster::{Cluster, ClusterParams};
use crate::net::{BroadcastId, NodeId};

/// A cluster of simulated control-plane nodes behind the uniform backend
/// interface. Fault-free by default; the inner [`Cluster`] is reachable
/// for fault-injection tests via [`DistributedEngine::with_cluster`].
#[derive(Debug)]
pub struct DistributedEngine {
    inner: Mutex<Cluster>,
    n: usize,
    nodes: usize,
}

impl DistributedEngine {
    /// A fault-free cluster of `nodes` shard nodes of size `n`, seeded
    /// deterministically from the shape.
    pub fn new(n: usize, nodes: usize) -> Result<Self, CoreError> {
        let seed = 0xD15C_0000u64 ^ ((n as u64) << 8) ^ nodes as u64;
        DistributedEngine::with_params(ClusterParams::fault_free(n, nodes, seed))
    }

    /// A cluster with explicit parameters (lossy configurations included).
    pub fn with_params(params: ClusterParams) -> Result<Self, CoreError> {
        let n = params.n;
        let nodes = params.nodes;
        Ok(DistributedEngine {
            inner: Mutex::new(Cluster::new(params)?),
            n,
            nodes,
        })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of control-plane nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Runs `f` with the inner cluster locked — fault injection and
    /// invariant checks for tests and the CLI.
    pub fn with_cluster<T>(&self, f: impl FnOnce(&mut Cluster) -> T) -> T {
        let mut cluster = self.inner.lock().expect("cluster lock poisoned");
        f(&mut cluster)
    }

    /// Broadcasts a plan-cache invalidation from `origin` through the
    /// control plane.
    pub fn invalidate_from(&self, origin: NodeId, fp: u64) -> BroadcastId {
        self.with_cluster(|c| c.invalidate_from(origin, fp))
    }

    /// Routes a batch striped across the live members, pumping the control
    /// plane one tick so protocol traffic keeps moving under load.
    pub fn route_batch(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        self.with_cluster(|c| {
            c.tick();
            let live = c.live_members();
            if live.is_empty() || live.len() == c.num_nodes() {
                c.route_batch(batch)
            } else {
                c.route_batch_on(batch, &live)
            }
        })
    }
}

impl RouterBackend for DistributedEngine {
    fn name(&self) -> &'static str {
        "brsmn-cluster"
    }

    fn size(&self) -> usize {
        self.n
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        let mut out = self.route_batch(std::slice::from_ref(asg));
        out.results.remove(0)
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}
