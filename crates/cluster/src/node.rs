//! One control-plane node: a fabric shard plus its plan cache, driven as a
//! message-handling actor (the SNIPPETS `Actor`/`Network` idiom, grown a
//! control plane).
//!
//! Each node runs three protocols over the [`VirtualNet`](crate::net::VirtualNet):
//!
//! * **Paxos-style membership** — one decree per epoch decides the next
//!   [`ClusterView`] (leader + member set). Leadership is kept alive by
//!   heartbeats; a node whose leader goes quiet runs phase 1/2 with a
//!   ballot ordered by `(round, id)`. Scale-up/down and routing around a
//!   faulty shard are the *same* operation: decide a view with a different
//!   member set.
//! * **Reliable broadcast** of plan-cache invalidations — flood on first
//!   receipt, ack to the origin, origin retransmits until every current
//!   member acked. Applied invalidations are tombstoned so anti-entropy
//!   can never resurrect a stale plan.
//! * **Anti-entropy** — periodic pairwise reconciliation of plan-cache
//!   contents using the persistence snapshot wire format
//!   ([`PlanSnapshotEntry`]): digest → reply(entries + want + missed
//!   invalidations) → push. Two divergent caches converge to the union of
//!   their working sets minus tombstones.
//!
//! Handlers never touch the network directly; they stage sends, timer
//! arms, and trace notes in an [`Outbox`] the cluster loop flushes. That
//! keeps the actor pure over `(state, message) → (state, outbox)`, which
//! is what makes the whole simulation replayable.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use brsmn_core::{
    plan_fingerprint, CoreError, Engine, EngineConfig, MulticastAssignment, PlanCache,
    PlanCacheSnapshot, PlanSnapshotEntry, SNAPSHOT_VERSION,
};

use crate::net::{Ballot, BroadcastId, ClusterView, Message, NodeId, TimerKind};

/// Protocol timing knobs, in virtual ticks. Defaults keep heartbeats well
/// inside the election timeout even at 30% drop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Leader heartbeat period.
    pub heartbeat_every: u64,
    /// How often followers check leader liveness.
    pub election_check_every: u64,
    /// Heartbeat silence that triggers a candidacy.
    pub election_timeout: u64,
    /// Ticks before an unresolved candidacy retries with a higher round.
    pub candidacy_retry: u64,
    /// Re-flood period for unacked invalidations.
    pub retransmit_every: u64,
    /// Anti-entropy exchange period.
    pub anti_entropy_every: u64,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            heartbeat_every: 5,
            election_check_every: 7,
            election_timeout: 30,
            candidacy_retry: 40,
            retransmit_every: 11,
            anti_entropy_every: 17,
        }
    }
}

/// Trace-note tags (folded through `VirtualNet::note`).
pub(crate) const NOTE_DECIDED: u64 = 1;
pub(crate) const NOTE_APPLIED_INVAL: u64 = 2;
pub(crate) const NOTE_CANDIDACY: u64 = 3;
pub(crate) const NOTE_AE_LOADED: u64 = 4;

/// What a handler wants the cluster loop to do on its behalf.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to offer to the network.
    pub msgs: Vec<(NodeId, Message)>,
    /// Timers to arm: `(delay, kind)`.
    pub timers: Vec<(u64, TimerKind)>,
    /// Protocol milestones for the event trace: `(tag, value)`.
    pub notes: Vec<(u64, u64)>,
}

impl Outbox {
    fn send(&mut self, to: NodeId, msg: Message) {
        self.msgs.push((to, msg));
    }

    fn arm(&mut self, delay: u64, kind: TimerKind) {
        self.timers.push((delay, kind));
    }

    fn note(&mut self, tag: u64, value: u64) {
        self.notes.push((tag, value));
    }
}

/// An in-flight candidacy (Paxos proposer state for one decree).
#[derive(Debug, Clone)]
struct Candidacy {
    decree: u64,
    ballot: Ballot,
    proposal: ClusterView,
    promised_by: BTreeSet<NodeId>,
    /// Highest previously accepted value reported by a promiser.
    best_accepted: Option<(Ballot, ClusterView)>,
    /// Set once phase 2 started; the value actually proposed.
    chosen: Option<ClusterView>,
    accepted_by: BTreeSet<NodeId>,
    started_at: u64,
}

/// Per-node counters, reported through the campaign report and merged into
/// `EngineStats` by the distributed engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Candidacies this node started.
    pub elections_started: u64,
    /// Configurations this node decided or adopted.
    pub views_adopted: u64,
    /// Invalidations applied (own, flooded, or learned via anti-entropy).
    pub invalidations_applied: u64,
    /// Anti-entropy exchanges initiated.
    pub ae_initiated: u64,
    /// Plans loaded from peers via anti-entropy.
    pub ae_plans_loaded: u64,
    /// Frames routed on this node's shard engine.
    pub frames_routed: u64,
}

/// One simulated control-plane node owning one fabric shard.
#[derive(Debug)]
pub struct Node {
    id: NodeId,
    n: usize,
    engine: Engine,
    protocol: Protocol,

    /// Current agreed configuration.
    view: ClusterView,
    /// Every decree this node decided or adopted: `(epoch, view digest)`.
    /// The split-brain check compares these across nodes.
    pub(crate) decided_log: Vec<(u64, u64)>,
    /// Paxos acceptor state for decree `view.epoch + 1`.
    promised: Option<Ballot>,
    accepted: Option<(Ballot, ClusterView)>,
    candidacy: Option<Candidacy>,
    max_round: u64,
    last_heartbeat: u64,

    /// Applied invalidations (the tombstone set): id → fingerprint.
    seen_inval: BTreeMap<BroadcastId, u64>,
    /// Own broadcasts not yet acked by every member: seq → (fp, acked-by).
    unacked: BTreeMap<u64, (u64, BTreeSet<NodeId>)>,
    next_bcast_seq: u64,
    ae_cursor: usize,

    /// Cumulative counters.
    pub stats: NodeStats,
}

impl Node {
    /// A node owning one `n × n` fabric shard with a `plan_cache`-entry
    /// two-tier cache, booting into `view`.
    pub fn new(
        id: NodeId,
        n: usize,
        plan_cache: usize,
        protocol: Protocol,
        view: ClusterView,
    ) -> Result<Self, CoreError> {
        let engine = Engine::with_config(n, EngineConfig::batch(1).with_plan_cache(plan_cache))?;
        let digest = view.digest();
        Ok(Node {
            id,
            n,
            engine,
            protocol,
            view,
            decided_log: vec![(0, digest)],
            promised: None,
            accepted: None,
            candidacy: None,
            max_round: 0,
            last_heartbeat: 0,
            seen_inval: BTreeMap::new(),
            unacked: BTreeMap::new(),
            next_bcast_seq: 0,
            ae_cursor: 0,
            stats: NodeStats::default(),
        })
    }

    /// This node's address.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Network size of the shard.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shard's routing engine (one fabric, its own plan cache).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shard's plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        self.engine.plan_cache().expect("node engines always carry a cache")
    }

    /// The configuration this node currently follows.
    pub fn view(&self) -> &ClusterView {
        &self.view
    }

    /// `true` when this node believes it leads the current epoch.
    pub fn is_leader(&self) -> bool {
        self.view.leader == self.id
    }

    /// Applied invalidation ids (the tombstone set).
    pub fn seen_invalidations(&self) -> impl Iterator<Item = (&BroadcastId, &u64)> {
        self.seen_inval.iter()
    }

    /// `true` once `id` has been applied here.
    pub fn has_applied(&self, id: BroadcastId) -> bool {
        self.seen_inval.contains_key(&id)
    }

    /// Arms the initial timers; id-staggered so boots don't collide.
    pub fn on_start(&mut self, out: &mut Outbox) {
        let jitter = self.id.0 as u64;
        out.arm(self.protocol.heartbeat_every + jitter % 3, TimerKind::Heartbeat);
        out.arm(
            self.protocol.election_timeout + 3 * jitter,
            TimerKind::Election,
        );
        out.arm(self.protocol.retransmit_every + jitter, TimerKind::Retransmit);
        out.arm(
            self.protocol.anti_entropy_every + 2 * jitter,
            TimerKind::AntiEntropy,
        );
        self.last_heartbeat = 0;
    }

    /// Dispatches one delivered envelope.
    pub fn on_message(&mut self, from: NodeId, msg: Message, now: u64, out: &mut Outbox) {
        match msg {
            Message::Timer { kind } => self.on_timer(kind, now, out),
            Message::Prepare { decree, ballot } => self.on_prepare(from, decree, ballot, now, out),
            Message::Promise {
                decree,
                ballot,
                accepted,
            } => self.on_promise(from, decree, ballot, accepted, now, out),
            Message::Accept {
                decree,
                ballot,
                value,
            } => self.on_accept(from, decree, ballot, value, now, out),
            Message::Accepted { decree, ballot } => self.on_accepted(from, decree, ballot, now, out),
            Message::Decide { value } => self.adopt(value, now, out),
            Message::Heartbeat { view } => {
                let epoch = view.epoch;
                self.adopt(view, now, out);
                if epoch == self.view.epoch && from == self.view.leader {
                    self.last_heartbeat = now;
                }
            }
            Message::Invalidate { id, fp } => self.on_invalidate(from, id, fp, out),
            Message::InvalidateAck { id } => self.on_invalidate_ack(from, id),
            Message::SyncDigest { exact, inval } => self.on_sync_digest(from, exact, inval, out),
            Message::SyncReply {
                entries,
                want,
                inval,
            } => self.on_sync_reply(from, entries, want, inval, out),
            Message::SyncPush { entries } => {
                let loaded = self.load_entries(&entries);
                if loaded > 0 {
                    out.note(NOTE_AE_LOADED, loaded);
                }
            }
        }
    }

    // ---- timers ------------------------------------------------------

    fn on_timer(&mut self, kind: TimerKind, now: u64, out: &mut Outbox) {
        match kind {
            TimerKind::Heartbeat => {
                out.arm(self.protocol.heartbeat_every, TimerKind::Heartbeat);
                if self.is_leader() && self.view.has_member(self.id) {
                    for &m in &self.view.members {
                        if m != self.id {
                            out.send(m, Message::Heartbeat { view: self.view.clone() });
                        }
                    }
                }
            }
            TimerKind::Election => {
                out.arm(self.protocol.election_check_every, TimerKind::Election);
                if !self.view.has_member(self.id) || self.is_leader() {
                    return;
                }
                let stale = now.saturating_sub(self.last_heartbeat) > self.protocol.election_timeout;
                let retry = self
                    .candidacy
                    .as_ref()
                    .is_some_and(|c| now.saturating_sub(c.started_at) > self.protocol.candidacy_retry);
                if stale && (self.candidacy.is_none() || retry) {
                    let mut proposal = self.view.clone();
                    proposal.epoch = self.view.epoch + 1;
                    proposal.leader = self.id;
                    self.start_candidacy(proposal, now, out);
                }
            }
            TimerKind::Retransmit => {
                out.arm(self.protocol.retransmit_every, TimerKind::Retransmit);
                let members = self.view.members.clone();
                for (&seq, (fp, acked)) in &self.unacked {
                    for &m in &members {
                        if m != self.id && !acked.contains(&m) {
                            out.send(
                                m,
                                Message::Invalidate {
                                    id: (self.id, seq),
                                    fp: *fp,
                                },
                            );
                        }
                    }
                }
                // A membership change may have shrunk the member set below
                // an old ack set; re-check completion.
                self.gc_unacked();
            }
            TimerKind::AntiEntropy => {
                out.arm(self.protocol.anti_entropy_every, TimerKind::AntiEntropy);
                if !self.view.has_member(self.id) {
                    return;
                }
                let peers: Vec<NodeId> = self
                    .view
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m != self.id)
                    .collect();
                if peers.is_empty() {
                    return;
                }
                let peer = peers[self.ae_cursor % peers.len()];
                self.ae_cursor += 1;
                self.stats.ae_initiated += 1;
                out.send(
                    peer,
                    Message::SyncDigest {
                        exact: self.cache().resident_fingerprints(),
                        inval: self.inval_digest(),
                    },
                );
            }
        }
    }

    // ---- Paxos membership -------------------------------------------

    /// Starts a candidacy proposing `proposal` (whose epoch must be
    /// `view.epoch + 1`). Used by both leader-failure elections and
    /// explicit membership changes.
    pub fn start_candidacy(&mut self, proposal: ClusterView, now: u64, out: &mut Outbox) {
        debug_assert_eq!(proposal.epoch, self.view.epoch + 1);
        self.max_round += 1;
        let ballot = Ballot {
            round: self.max_round,
            node: self.id,
        };
        self.stats.elections_started += 1;
        out.note(NOTE_CANDIDACY, ballot.round);
        let decree = proposal.epoch;
        self.candidacy = Some(Candidacy {
            decree,
            ballot,
            proposal,
            promised_by: BTreeSet::new(),
            best_accepted: None,
            chosen: None,
            accepted_by: BTreeSet::new(),
            started_at: now,
        });
        // Voters are the members of the *current* view (self-delivery is
        // immediate: handle our own prepare inline).
        self.on_prepare(self.id, decree, ballot, now, out);
        for &m in &self.view.members.clone() {
            if m != self.id {
                out.send(m, Message::Prepare { decree, ballot });
            }
        }
    }

    fn on_prepare(&mut self, from: NodeId, decree: u64, ballot: Ballot, now: u64, out: &mut Outbox) {
        self.max_round = self.max_round.max(ballot.round);
        if decree <= self.view.epoch {
            // Already decided: help the stale candidate catch up.
            out.send(from, Message::Decide { value: self.view.clone() });
            return;
        }
        if decree > self.view.epoch + 1 {
            // Too far ahead to vote safely; heartbeats will catch us up.
            return;
        }
        if self.promised.is_none_or(|p| ballot > p) {
            self.promised = Some(ballot);
            let reply = Message::Promise {
                decree,
                ballot,
                accepted: self.accepted.clone(),
            };
            if from == self.id {
                // Self-promise, delivered inline.
                let (d, b, a) = match reply {
                    Message::Promise {
                        decree,
                        ballot,
                        accepted,
                    } => (decree, ballot, accepted),
                    _ => unreachable!(),
                };
                self.on_promise(self.id, d, b, a, now, out);
            } else {
                out.send(from, reply);
            }
        }
    }

    fn on_promise(
        &mut self,
        from: NodeId,
        decree: u64,
        ballot: Ballot,
        accepted: Option<(Ballot, ClusterView)>,
        now: u64,
        out: &mut Outbox,
    ) {
        let majority = self.view.majority();
        let Some(c) = self.candidacy.as_mut() else {
            return;
        };
        if c.decree != decree || c.ballot != ballot || c.chosen.is_some() {
            return;
        }
        c.promised_by.insert(from);
        if let Some((ab, av)) = accepted {
            if c.best_accepted.as_ref().is_none_or(|(b, _)| ab > *b) {
                c.best_accepted = Some((ab, av));
            }
        }
        if c.promised_by.len() >= majority {
            // Phase 2: propose the highest accepted value if any promiser
            // reported one (Paxos safety), else our own.
            let value = c
                .best_accepted
                .as_ref()
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| c.proposal.clone());
            c.chosen = Some(value.clone());
            let ballot = c.ballot;
            // Self-accept inline, then fan out.
            self.on_accept(self.id, decree, ballot, value.clone(), now, out);
            for &m in &self.view.members.clone() {
                if m != self.id {
                    out.send(
                        m,
                        Message::Accept {
                            decree,
                            ballot,
                            value: value.clone(),
                        },
                    );
                }
            }
        }
    }

    fn on_accept(
        &mut self,
        from: NodeId,
        decree: u64,
        ballot: Ballot,
        value: ClusterView,
        now: u64,
        out: &mut Outbox,
    ) {
        self.max_round = self.max_round.max(ballot.round);
        if decree <= self.view.epoch {
            out.send(from, Message::Decide { value: self.view.clone() });
            return;
        }
        if decree > self.view.epoch + 1 {
            return;
        }
        if self.promised.is_none_or(|p| ballot >= p) {
            self.promised = Some(ballot);
            self.accepted = Some((ballot, value));
            if from == self.id {
                self.on_accepted(self.id, decree, ballot, now, out);
            } else {
                out.send(from, Message::Accepted { decree, ballot });
            }
        }
    }

    fn on_accepted(&mut self, from: NodeId, decree: u64, ballot: Ballot, now: u64, out: &mut Outbox) {
        let majority = self.view.majority();
        let Some(c) = self.candidacy.as_mut() else {
            return;
        };
        if c.decree != decree || c.ballot != ballot || c.chosen.is_none() {
            return;
        }
        c.accepted_by.insert(from);
        if c.accepted_by.len() >= majority {
            let value = c.chosen.clone().expect("checked above");
            // Flood the decision to the members of both the old and the
            // new view (a removed node still learns it was removed).
            let mut audience: BTreeSet<NodeId> = self.view.members.iter().copied().collect();
            audience.extend(value.members.iter().copied());
            self.adopt(value.clone(), now, out);
            for m in audience {
                if m != self.id {
                    out.send(m, Message::Decide { value: value.clone() });
                }
            }
        }
    }

    /// Installs a decided configuration (from our own quorum, a `Decide`,
    /// or a newer heartbeat). Monotone in epoch; resets per-decree state.
    fn adopt(&mut self, value: ClusterView, now: u64, out: &mut Outbox) {
        if value.epoch <= self.view.epoch {
            return;
        }
        out.note(NOTE_DECIDED, value.digest());
        self.stats.views_adopted += 1;
        self.decided_log.push((value.epoch, value.digest()));
        self.view = value;
        self.promised = None;
        self.accepted = None;
        self.candidacy = None;
        self.last_heartbeat = now;
        self.gc_unacked();
        if self.is_leader() {
            // Announce immediately; the periodic timer keeps it alive.
            for &m in &self.view.members.clone() {
                if m != self.id {
                    out.send(m, Message::Heartbeat { view: self.view.clone() });
                }
            }
        }
    }

    // ---- reliable broadcast of invalidations ------------------------

    /// Originates an invalidation: applies it locally, floods it to the
    /// members, and tracks acks for retransmission.
    pub fn broadcast_invalidate(&mut self, fp: u64, out: &mut Outbox) -> BroadcastId {
        self.next_bcast_seq += 1;
        let seq = self.next_bcast_seq;
        let id = (self.id, seq);
        self.apply_invalidation(id, fp, out);
        let mut acked = BTreeSet::new();
        acked.insert(self.id);
        self.unacked.insert(seq, (fp, acked));
        for &m in &self.view.members.clone() {
            if m != self.id {
                out.send(m, Message::Invalidate { id, fp });
            }
        }
        id
    }

    fn on_invalidate(&mut self, from: NodeId, id: BroadcastId, fp: u64, out: &mut Outbox) {
        // Always (re-)ack: acks are idempotent and the origin may have
        // missed the first one.
        if id.0 == self.id {
            return; // our own flood came back
        }
        out.send(id.0, Message::InvalidateAck { id });
        if self.seen_inval.contains_key(&id) {
            return;
        }
        self.apply_invalidation(id, fp, out);
        // Flood on first receipt so the broadcast survives an origin that
        // crashes after one successful send.
        for &m in &self.view.members.clone() {
            if m != self.id && m != from && m != id.0 {
                out.send(m, Message::Invalidate { id, fp });
            }
        }
    }

    fn on_invalidate_ack(&mut self, from: NodeId, id: BroadcastId) {
        if id.0 != self.id {
            return;
        }
        if let Some((_, acked)) = self.unacked.get_mut(&id.1) {
            acked.insert(from);
        }
        self.gc_unacked();
    }

    fn apply_invalidation(&mut self, id: BroadcastId, fp: u64, out: &mut Outbox) {
        self.cache().invalidate(fp);
        self.seen_inval.insert(id, fp);
        self.stats.invalidations_applied += 1;
        out.note(NOTE_APPLIED_INVAL, crate::net::fold(fold_id(id), fp));
    }

    fn gc_unacked(&mut self) {
        let members = &self.view.members;
        self.unacked
            .retain(|_, (_, acked)| members.iter().any(|m| !acked.contains(m)));
    }

    /// `true` when some own broadcast still awaits acks.
    pub fn has_unacked(&self) -> bool {
        !self.unacked.is_empty()
    }

    // ---- anti-entropy ------------------------------------------------

    fn inval_digest(&self) -> Vec<(NodeId, u64, u64)> {
        self.seen_inval
            .iter()
            .map(|(&(o, s), &fp)| (o, s, fp))
            .collect()
    }

    fn apply_missing_invals(
        &mut self,
        theirs: &[(NodeId, u64, u64)],
        out: &mut Outbox,
    ) {
        for &(o, s, fp) in theirs {
            let id = (o, s);
            if !self.seen_inval.contains_key(&id) {
                self.apply_invalidation(id, fp, out);
            }
        }
    }

    fn tombstoned(&self, fp: u64) -> bool {
        self.seen_inval.values().any(|&t| t == fp)
    }

    /// Loads peer-sent snapshot entries, skipping tombstoned fingerprints;
    /// returns how many plans were installed.
    fn load_entries(&mut self, entries: &[PlanSnapshotEntry]) -> u64 {
        let keep: Vec<PlanSnapshotEntry> = entries
            .iter()
            .filter(|e| {
                MulticastAssignment::from_sets(e.n, e.sets.clone())
                    .map(|asg| !self.tombstoned(plan_fingerprint(&asg)))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        if keep.is_empty() {
            return 0;
        }
        let snap = PlanCacheSnapshot {
            version: SNAPSHOT_VERSION,
            entries: keep,
        };
        match self.cache().load_snapshot(&snap) {
            Ok(stats) => {
                self.stats.ae_plans_loaded += stats.loaded;
                stats.loaded
            }
            // A peer shipping an inconsistent plan degrades to "learned
            // nothing" — the fault model never lets it poison the cache.
            Err(_) => 0,
        }
    }

    fn on_sync_digest(
        &mut self,
        from: NodeId,
        their_exact: Vec<u64>,
        their_inval: Vec<(NodeId, u64, u64)>,
        out: &mut Outbox,
    ) {
        self.apply_missing_invals(&their_inval, out);
        let mine = self.cache().resident_fingerprints();
        let they_lack: Vec<u64> = mine
            .iter()
            .copied()
            .filter(|fp| their_exact.binary_search(fp).is_err())
            .filter(|&fp| !their_inval.iter().any(|&(_, _, t)| t == fp))
            .collect();
        let want: Vec<u64> = their_exact
            .iter()
            .copied()
            .filter(|fp| mine.binary_search(fp).is_err())
            .filter(|&fp| !self.tombstoned(fp))
            .collect();
        let inval_they_lack: Vec<(NodeId, u64, u64)> = self
            .inval_digest()
            .into_iter()
            .filter(|&(o, s, _)| !their_inval.iter().any(|&(to, ts, _)| (to, ts) == (o, s)))
            .collect();
        if they_lack.is_empty() && want.is_empty() && inval_they_lack.is_empty() {
            return; // already converged with this peer
        }
        out.send(
            from,
            Message::SyncReply {
                entries: self.cache().entries_for(&they_lack),
                want,
                inval: inval_they_lack,
            },
        );
    }

    fn on_sync_reply(
        &mut self,
        from: NodeId,
        entries: Vec<PlanSnapshotEntry>,
        want: Vec<u64>,
        inval: Vec<(NodeId, u64, u64)>,
        out: &mut Outbox,
    ) {
        self.apply_missing_invals(&inval, out);
        let loaded = self.load_entries(&entries);
        if loaded > 0 {
            out.note(NOTE_AE_LOADED, loaded);
        }
        if !want.is_empty() {
            let mut sorted = want;
            sorted.sort_unstable();
            out.send(
                from,
                Message::SyncPush {
                    entries: self.cache().entries_for(&sorted),
                },
            );
        }
    }

    // ---- data plane --------------------------------------------------

    /// Routes one stripe on this node's shard engine.
    pub fn route_stripe(&mut self, stripe: &[MulticastAssignment]) -> brsmn_core::BatchOutput {
        self.stats.frames_routed += stripe.len() as u64;
        self.engine.route_batch(stripe)
    }
}

fn fold_id(id: BroadcastId) -> u64 {
    crate::net::fold(id.0 .0 as u64, id.1)
}
