//! Message payload models for the two routing engines.
//!
//! The BRSMN is simulated with two interchangeable engines that must agree:
//!
//! * [`SemanticMsg`] — the *reference* engine: each message carries its
//!   absolute destination set; tags are recomputed from the set at every
//!   level. Easy to see correct, used as ground truth.
//! * [`SelfRoutedMsg`] — the *faithful* engine: each message carries only its
//!   `SEQ` routing-tag stream (Section 7.1); the network reads nothing but
//!   the head tag of each stream, exactly like the paper's hardware.
//!
//! The [`RoutePayload`] protocol: when a BSN over outputs `[lo, lo+size)`
//! processes a message, [`RoutePayload::entry_tag`] yields its four-value
//! tag; if the tag is `α`, a broadcast switch calls [`RoutePayload::split`]
//! to create the two copies (not yet descended); after the BSN completes,
//! every message is [`RoutePayload::descend`]ed into its half by its final
//! tag (`0` or `1`).

use crate::tags::{seq_for_dests, TagSeq};
use brsmn_switch::Tag;
use serde::{Deserialize, Serialize};

/// The message-model protocol used by the routing engines (see module docs).
pub trait RoutePayload: Sized + Clone {
    /// Originating network input.
    fn source(&self) -> usize;

    /// The four-value tag for entering the BSN over outputs
    /// `[lo, lo + size)`; never `ε` (empty lines have no payload at all).
    fn entry_tag(&self, lo: usize, size: usize) -> Tag;

    /// Produces the two copies created when an `α` is broadcast, in
    /// `(0-copy, 1-copy)` order. Copies are descended later like every other
    /// message.
    fn split(&self, lo: usize, size: usize) -> (Self, Self);

    /// Commits the message to the `branch` half (`0` = upper, `1` = lower)
    /// after the BSN over `[lo, lo + size)` has routed it.
    fn descend(self, branch: Tag, lo: usize, size: usize) -> Self;

    /// Whether the message, having reached output `o`, is the one that
    /// belongs there (used for end-to-end verification).
    fn delivered_ok(&self, o: usize) -> bool;
}

/// Reference payload: the absolute destination set travels with the message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemanticMsg {
    /// Originating input.
    pub source: usize,
    /// Remaining destinations (absolute output addresses, sorted).
    pub dests: Vec<usize>,
}

impl SemanticMsg {
    /// Creates the message injected at `source` with destination set `dests`
    /// (must be non-empty and sorted).
    pub fn new(source: usize, dests: Vec<usize>) -> Self {
        debug_assert!(!dests.is_empty());
        debug_assert!(dests.windows(2).all(|w| w[0] < w[1]));
        SemanticMsg { source, dests }
    }
}

impl RoutePayload for SemanticMsg {
    fn source(&self) -> usize {
        self.source
    }

    fn entry_tag(&self, lo: usize, size: usize) -> Tag {
        let mid = lo + size / 2;
        debug_assert!(
            self.dests.iter().all(|&d| d >= lo && d < lo + size),
            "message at block [{lo}, {}) holds out-of-block dest: {:?}",
            lo + size,
            self.dests
        );
        let has_low = self.dests.iter().any(|&d| d < mid);
        let has_high = self.dests.iter().any(|&d| d >= mid);
        match (has_low, has_high) {
            (true, false) => Tag::Zero,
            (false, true) => Tag::One,
            (true, true) => Tag::Alpha,
            (false, false) => unreachable!("dests are non-empty"),
        }
    }

    fn split(&self, lo: usize, size: usize) -> (Self, Self) {
        let mid = lo + size / 2;
        let (low, high): (Vec<usize>, Vec<usize>) =
            self.dests.iter().partition(|&&d| d < mid);
        debug_assert!(!low.is_empty() && !high.is_empty(), "split of a non-α");
        (
            SemanticMsg {
                source: self.source,
                dests: low,
            },
            SemanticMsg {
                source: self.source,
                dests: high,
            },
        )
    }

    fn descend(self, branch: Tag, lo: usize, size: usize) -> Self {
        // Destinations are absolute; nothing to rewrite. Assert consistency.
        let mid = lo + size / 2;
        debug_assert!(match branch {
            Tag::Zero => self.dests.iter().all(|&d| d >= lo && d < mid),
            Tag::One => self.dests.iter().all(|&d| d >= mid && d < lo + size),
            _ => false,
        });
        self
    }

    fn delivered_ok(&self, o: usize) -> bool {
        self.dests == [o]
    }
}

/// Faithful payload: only the `SEQ` tag stream travels with the message; the
/// network never sees the destination set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelfRoutedMsg {
    /// Originating input.
    pub source: usize,
    /// Remaining routing-tag stream (length `size − 1` on entering a BSN of
    /// size `size`).
    pub seq: TagSeq,
}

impl SelfRoutedMsg {
    /// Prepares the message for `source` targeting `dests` in an `n × n`
    /// network: builds the tag tree and serializes it (done *before* the
    /// message enters the network, Section 7.1).
    pub fn prepare(n: usize, source: usize, dests: &[usize]) -> Self {
        SelfRoutedMsg {
            source,
            seq: seq_for_dests(n, dests).expect("valid size"),
        }
    }
}

impl RoutePayload for SelfRoutedMsg {
    fn source(&self) -> usize {
        self.source
    }

    fn entry_tag(&self, _lo: usize, size: usize) -> Tag {
        debug_assert_eq!(self.seq.network_size(), size, "SEQ length drift");
        self.seq.head()
    }

    fn split(&self, _lo: usize, _size: usize) -> (Self, Self) {
        // Copies keep the full stream; `descend` selects each copy's
        // subsequence once its final tag is known.
        (self.clone(), self.clone())
    }

    fn descend(self, branch: Tag, _lo: usize, _size: usize) -> Self {
        SelfRoutedMsg {
            source: self.source,
            seq: self.seq.descend(branch),
        }
    }

    fn delivered_ok(&self, _o: usize) -> bool {
        // Delivery correctness of the self-routing engine is established by
        // comparing against the semantic engine; the stream itself retains no
        // destination information to check here.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_entry_tags() {
        let msg = SemanticMsg::new(3, vec![2, 5]);
        assert_eq!(msg.entry_tag(0, 8), Tag::Alpha);
        let low = SemanticMsg::new(3, vec![2]);
        assert_eq!(low.entry_tag(0, 8), Tag::Zero);
        assert_eq!(low.entry_tag(0, 4), Tag::One); // 2 is in the upper half's lower... range [0,4): mid=2, 2 >= mid
        let high = SemanticMsg::new(3, vec![5, 6, 7]);
        assert_eq!(high.entry_tag(0, 8), Tag::One);
        assert_eq!(high.entry_tag(4, 4), Tag::Alpha);
    }

    #[test]
    fn semantic_split_partitions() {
        let msg = SemanticMsg::new(0, vec![1, 4, 6]);
        let (a, b) = msg.split(0, 8);
        assert_eq!(a.dests, vec![1]);
        assert_eq!(b.dests, vec![4, 6]);
        assert_eq!(a.source, 0);
        assert_eq!(b.source, 0);
    }

    #[test]
    fn semantic_delivery_check() {
        assert!(SemanticMsg::new(0, vec![3]).delivered_ok(3));
        assert!(!SemanticMsg::new(0, vec![3]).delivered_ok(2));
        assert!(!SemanticMsg::new(0, vec![2, 3]).delivered_ok(3));
    }

    #[test]
    fn self_routed_head_matches_semantic_tag() {
        // For any destination set the SEQ head equals the semantic tag at
        // the top level.
        for dests in [vec![0usize], vec![7], vec![0, 7], vec![2, 3], vec![4, 5, 6]] {
            let sem = SemanticMsg::new(1, dests.clone());
            let sr = SelfRoutedMsg::prepare(8, 1, &dests);
            assert_eq!(sr.entry_tag(0, 8), sem.entry_tag(0, 8), "{dests:?}");
        }
    }

    #[test]
    fn self_routed_descend_tracks_subtrees() {
        let sr = SelfRoutedMsg::prepare(8, 2, &[3, 4, 7]);
        assert_eq!(sr.entry_tag(0, 8), Tag::Alpha);
        let (c0, c1) = sr.split(0, 8);
        let up = c0.descend(Tag::Zero, 0, 8);
        let down = c1.descend(Tag::One, 0, 8);
        // Upper copy now routes {3} within [0,8)/upper = outputs 0..4.
        assert_eq!(up.entry_tag(0, 4), Tag::One);
        // Lower copy routes {4,7} within outputs 4..8.
        assert_eq!(down.entry_tag(4, 4), Tag::Alpha);
    }
}
