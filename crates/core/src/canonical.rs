//! Canonicalization of multicast assignments up to input/output relabeling
//! — the equivalence the canonical plan-cache tier hits on.
//!
//! Two assignments are *relabeling-equivalent* when one maps onto the other
//! by composing [`crate::algebra::relabel_inputs`] and
//! [`crate::algebra::relabel_outputs`] with some pair of permutations: the
//! same multicast **shape** with different participants. Under churn-heavy
//! conference traffic that is exactly how frames recur — a session keeps its
//! fanout profile while members come and go — so a cache keyed on the
//! canonical representative hits where an exact-assignment key misses.
//!
//! # The canonical form
//!
//! [`canonicalize`] sorts the active inputs by fanout (descending, ties by
//! input index) and hands rank `r` the next run of consecutive outputs:
//! input 0 gets the largest destination set as `{0, …, f₀−1}`, input 1 the
//! next as `{f₀, …, f₀+f₁−1}`, and so on; idle inputs and unclaimed outputs
//! fill the remaining positions in index order. The result depends only on
//! the *multiset of fanouts* — which is invariant under any relabeling — so
//! equivalent assignments canonicalize to the identical representative (the
//! property `canonical_props` pins), and the representative of a canonical
//! form is itself (idempotence).
//!
//! The returned permutations satisfy, in `algebra` terms,
//!
//! ```text
//! relabel_inputs(&relabel_outputs(asg, &output_perm), &input_perm)
//!     == canonical
//! ```
//!
//! which is what lets a cached plan captured for *one* member of the class
//! serve *every* member: place each live source at the plan's corresponding
//! input position, execute the captured setting planes verbatim, and read
//! each live output from the plan's corresponding output position (see
//! `fastpath::route_assignment_replay_permuted`).

use crate::assignment::MulticastAssignment;

/// An assignment reduced to its relabeling-equivalence class: the canonical
/// representative plus the permutations mapping the live assignment onto it.
///
/// Produced by [`canonicalize`]; consumed by the canonical tier of
/// [`crate::PlanCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Canonicalized {
    /// The canonical representative of the equivalence class — identical
    /// for every relabeling of the same shape.
    pub canonical: MulticastAssignment,
    /// Input permutation: live input `i` occupies canonical position
    /// `input_perm[i]`.
    pub input_perm: Vec<usize>,
    /// Output permutation: live output `d` occupies canonical position
    /// `output_perm[d]`.
    pub output_perm: Vec<usize>,
}

impl Canonicalized {
    /// The canonical fingerprint — [`crate::plan_fingerprint`] of the
    /// representative, the key of the cache's canonical tier.
    pub fn fingerprint(&self) -> u64 {
        crate::plancache::plan_fingerprint(&self.canonical)
    }
}

/// Reduces `asg` to its canonical representative and the permutation pair
/// mapping `asg` onto it. Order-independent: any two
/// relabelings of one assignment produce the **same** `canonical` (their
/// permutations differ — each maps its own labels home).
///
/// ```
/// use brsmn_core::{canonicalize, relabel_outputs, MulticastAssignment};
///
/// let a = MulticastAssignment::from_sets(
///     4,
///     vec![vec![1, 3], vec![], vec![0], vec![]],
/// )
/// .unwrap();
/// // Relabel the outputs: same shape, different participants.
/// let b = relabel_outputs(&a, &[2, 0, 3, 1]);
///
/// let ca = canonicalize(&a);
/// let cb = canonicalize(&b);
/// assert_eq!(ca.canonical, cb.canonical, "one class, one representative");
/// // The canonical form packs the largest fanout first: {0,1}, then {2}.
/// assert_eq!(ca.canonical.dests(0), &[0, 1]);
/// assert_eq!(ca.canonical.dests(1), &[2]);
/// ```
pub fn canonicalize(asg: &MulticastAssignment) -> Canonicalized {
    let n = asg.n();
    // Rank the active inputs by fanout, largest first; ties break on the
    // input index purely to make *this member's* permutation deterministic
    // — any tie order yields the same canonical assignment.
    let mut order: Vec<usize> = (0..n).filter(|&i| !asg.dests(i).is_empty()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(asg.dests(i).len()), i));

    const UNSET: usize = usize::MAX;
    let mut input_perm = vec![UNSET; n];
    let mut output_perm = vec![UNSET; n];
    let mut sets = vec![Vec::new(); n];
    let mut next_out = 0usize;
    for (rank, &i) in order.iter().enumerate() {
        input_perm[i] = rank;
        let dests = asg.dests(i);
        // The k-th smallest live destination lands on the k-th slot of the
        // rank's consecutive output run.
        for (k, &d) in dests.iter().enumerate() {
            output_perm[d] = next_out + k;
        }
        sets[rank] = (next_out..next_out + dests.len()).collect();
        next_out += dests.len();
    }
    // Idle inputs and unclaimed outputs take the remaining positions in
    // index order — full bijections, so permuted replay can address every
    // line.
    let mut next_rank = order.len();
    for p in input_perm.iter_mut() {
        if *p == UNSET {
            *p = next_rank;
            next_rank += 1;
        }
    }
    for p in output_perm.iter_mut() {
        if *p == UNSET {
            *p = next_out;
            next_out += 1;
        }
    }
    let canonical = MulticastAssignment::from_sets(n, sets)
        .expect("consecutive disjoint runs form a valid assignment");
    Canonicalized {
        canonical,
        input_perm,
        output_perm,
    }
}

/// Inverts a permutation of `0..n`: `invert_permutation(p)[p[i]] == i`.
///
/// The canonical cache tier stores the *inverse* of the representative's
/// canonicalization permutations, so a hit composes "live → canonical →
/// representative" with two array reads per line.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p] = i;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{relabel_inputs, relabel_outputs};

    fn asg(n: usize, sets: Vec<Vec<usize>>) -> MulticastAssignment {
        MulticastAssignment::from_sets(n, sets).unwrap()
    }

    #[test]
    fn canonical_form_packs_fanouts_descending() {
        let a = asg(8, vec![
            vec![6],
            vec![],
            vec![0, 2, 5],
            vec![],
            vec![1, 7],
            vec![],
            vec![],
            vec![],
        ]);
        let c = canonicalize(&a);
        assert_eq!(c.canonical.dests(0), &[0, 1, 2]);
        assert_eq!(c.canonical.dests(1), &[3, 4]);
        assert_eq!(c.canonical.dests(2), &[5]);
        assert!(c.canonical.dests(3).is_empty());
        // Input 2 (fanout 3) ranks first; input 4 (fanout 2) second.
        assert_eq!(c.input_perm[2], 0);
        assert_eq!(c.input_perm[4], 1);
        assert_eq!(c.input_perm[0], 2);
        // The permutations really map the live assignment onto the form.
        let mapped = relabel_inputs(&relabel_outputs(&a, &c.output_perm), &c.input_perm);
        assert_eq!(mapped, c.canonical);
    }

    #[test]
    fn canonicalize_is_idempotent() {
        let a = asg(8, vec![
            vec![3, 4],
            vec![],
            vec![0],
            vec![],
            vec![1, 2, 6],
            vec![],
            vec![],
            vec![],
        ]);
        let c = canonicalize(&a);
        let cc = canonicalize(&c.canonical);
        assert_eq!(cc.canonical, c.canonical);
        let id: Vec<usize> = (0..8).collect();
        assert_eq!(cc.input_perm, id);
        assert_eq!(cc.output_perm, id);
    }

    #[test]
    fn relabelings_share_one_representative() {
        let a = asg(8, vec![
            vec![0, 5],
            vec![],
            vec![2],
            vec![],
            vec![1, 3, 7],
            vec![],
            vec![],
            vec![],
        ]);
        let rot_in: Vec<usize> = (0..8).map(|i| (i + 3) % 8).collect();
        let rot_out: Vec<usize> = (0..8).map(|d| (d + 5) % 8).collect();
        let b = relabel_inputs(&a, &rot_in);
        let c = relabel_outputs(&b, &rot_out);
        assert_ne!(a, c);
        assert_eq!(canonicalize(&a).canonical, canonicalize(&c).canonical);
        assert_eq!(
            canonicalize(&a).fingerprint(),
            canonicalize(&c).fingerprint()
        );
    }

    #[test]
    fn invert_permutation_round_trips() {
        let p = vec![3usize, 0, 2, 1];
        let inv = invert_permutation(&p);
        assert_eq!(inv, vec![1, 3, 2, 0]);
        for (i, &pi) in p.iter().enumerate() {
            assert_eq!(inv[pi], i);
        }
    }

    #[test]
    fn empty_assignment_canonicalizes_to_itself() {
        let a = MulticastAssignment::empty(4).unwrap();
        let c = canonicalize(&a);
        assert_eq!(c.canonical, a);
        assert_eq!(c.input_perm, vec![0, 1, 2, 3]);
        assert_eq!(c.output_perm, vec![0, 1, 2, 3]);
    }
}
