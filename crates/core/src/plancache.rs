//! Plan capture and replay: route an assignment once, snapshot every switch
//! setting the planner chose, and replay the snapshot for every later frame
//! carrying the same assignment — no sweeps, no planning, no allocation.
//!
//! # Why settings are assignment-pure
//!
//! The network is *self-routing* (Section 6, Tables 3–6): every switch
//! setting is computed bottom-up from the tag/`SEQ` words of the messages
//! entering its block, and those words are a pure function of the
//! destination-address sets — nothing else (no timestamps, no arrival
//! order, no global state). Two frames with equal [`MulticastAssignment`]s
//! therefore drive every 2×2 switch of every level to the *same* setting,
//! which is what makes capturing the full per-level/per-stage setting tensor
//! once and replaying it bit-identically sound.
//!
//! # Data flow
//!
//! ```text
//! assignment ──(plan_fingerprint: order-independent fold over the
//! │             per-input words SEQ derives from, Eqs. 11–12)──► u64 key
//! │
//! ├─ hit  ──► PlanCache shard (read lock + LRU stamp bump) ──► Arc<CapturedPlan>
//! │           └─► replay: decode 2-bit planes level by level through the
//! │               iterative router — bit-identical result/trace/settings
//! └─ miss ──► fast-path planner (fused sweeps) with capture hooks
//!             └─► CapturedPlan arena (one contiguous bit-packed allocation)
//!                 inserted under the fingerprint (full-equality checked)
//! ```
//!
//! A hit performs **zero** heap allocations (pinned by the `alloc-count`
//! test in `brsmn-bench`): the fingerprint is an arithmetic fold, the shard
//! probe takes a shared read lock, the LRU stamp is an atomic store, and the
//! plan travels as an [`Arc`] clone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::assignment::MulticastAssignment;
use crate::error::CoreError;
use brsmn_rbn::{PackedSettings, RbnSettings};
use brsmn_switch::SwitchSetting;
use brsmn_topology::{check_size, log2_exact};

/// splitmix64 finalizer — the mixing primitive of the fingerprint.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical fingerprint of a multicast assignment, computed from `(input,
/// destination-set)` pairs supplied **in any order**.
///
/// Each pair hashes to one word (inputs with empty destination sets
/// contribute nothing), and the per-input words are folded with two
/// commutative reductions (wrapping sum and xor), so the result is
/// independent of iteration order — the property the plan-cache proptests
/// pin. The per-input word is exactly the data the paper's `SEQ` words
/// (Eqs. 11–12) are derived from — `SEQ(n, I_i)` is a pure function of
/// `(n, i, I_i)` — so equal fingerprint inputs mean equal wire-level
/// routing requests. Collisions are still possible (it is a 64-bit hash);
/// [`PlanCache::lookup`] guards every hit with a full-equality check.
pub fn fingerprint_inputs<'a, I>(n: usize, inputs: I) -> u64
where
    I: IntoIterator<Item = (usize, &'a [usize])>,
{
    let mut sum = 0u64;
    let mut xor = 0u64;
    for (i, dests) in inputs {
        if dests.is_empty() {
            continue;
        }
        let mut h = mix(i as u64 ^ 0x9E37_79B9_7F4A_7C15);
        h = mix(h ^ dests.len() as u64);
        for &d in dests {
            h = mix(h ^ d as u64);
        }
        sum = sum.wrapping_add(h);
        xor ^= h;
    }
    mix(sum ^ xor.rotate_left(32) ^ (n as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// [`fingerprint_inputs`] over an assignment's canonical iteration — the key
/// under which the engines cache captured plans. Allocation-free.
pub fn plan_fingerprint(asg: &MulticastAssignment) -> u64 {
    fingerprint_inputs(asg.n(), asg.iter())
}

/// A captured routing plan: every switch setting the fast-path planner chose
/// for one assignment, bit-packed (2 bits per setting) into **one**
/// contiguous allocation.
///
/// Layout, in setting index order: for each BSN level `ℓ = 1 … m−1` (block
/// size `s = n >> (ℓ−1)`, `k = log₂ s` stages), the scatter phase's `k`
/// stage planes of `n/2` settings each, then the quasisort phase's `k`
/// planes; finally the `n/2` settings of the last 2×2 stage. Stage planes
/// are full network width — the blocks of a level tile `[0, n/2)`, so each
/// block's capture writes its own slice and a level's planes fill exactly.
///
/// For `n = 256` the whole tensor is 9,088 settings ≈ 2.3 KB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPlan {
    n: usize,
    planes: PackedSettings,
}

/// Phase index of the scatter RBN within a level's capture region.
pub(crate) const PHASE_SCATTER: usize = 0;
/// Phase index of the quasisort RBN within a level's capture region.
pub(crate) const PHASE_QUASISORT: usize = 1;

impl CapturedPlan {
    /// An all-[`SwitchSetting::Parallel`] plan sized for an `n × n` network,
    /// ready to be filled by a capture pass.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        Ok(CapturedPlan {
            n,
            planes: PackedSettings::with_len(Self::total_settings(n)),
        })
    }

    /// Network size this plan was captured for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of settings in the tensor for an `n × n` network.
    fn total_settings(n: usize) -> usize {
        let m = log2_exact(n) as usize;
        // Levels 1..m−1 store 2 phases × (m−ℓ+1) stages × n/2 switches, the
        // final stage stores n/2.
        let levels: usize = (1..m).map(|l| 2 * (m - l + 1) * (n / 2)).sum();
        levels + n / 2
    }

    /// Offset of the first setting of `(level, phase)`.
    fn phase_offset(&self, level: usize, phase: usize) -> usize {
        let m = log2_exact(self.n) as usize;
        debug_assert!((1..m).contains(&level) && phase < 2);
        let before: usize = (1..level).map(|l| 2 * (m - l + 1) * (self.n / 2)).sum();
        before + phase * (m - level + 1) * (self.n / 2)
    }

    /// Offset of the final-stage settings.
    fn final_offset(&self) -> usize {
        Self::total_settings(self.n) - self.n / 2
    }

    /// Captures the freshly planned stages of the block `[base, base+size)`
    /// at `(level, phase)` from the live settings table.
    pub(crate) fn store_phase(
        &mut self,
        level: usize,
        phase: usize,
        base: usize,
        size: usize,
        settings: &RbnSettings,
    ) {
        let k = log2_exact(size) as usize;
        let off = self.phase_offset(level, phase);
        for j in 0..k {
            let stage = &settings.stage(j)[base / 2..(base + size) / 2];
            self.planes.store_slice(off + j * (self.n / 2) + base / 2, stage);
        }
    }

    /// Restores the block's stages at `(level, phase)` into the live
    /// settings table — the inverse of [`CapturedPlan::store_phase`].
    pub(crate) fn load_phase(
        &self,
        level: usize,
        phase: usize,
        base: usize,
        size: usize,
        settings: &mut RbnSettings,
    ) {
        let k = log2_exact(size) as usize;
        let off = self.phase_offset(level, phase);
        for j in 0..k {
            let stage = &mut settings.stage_mut(j)[base / 2..(base + size) / 2];
            self.planes.load_slice(off + j * (self.n / 2) + base / 2, stage);
        }
    }

    /// Raw 2-bit code of switch `idx` in stage `j` of `(level, phase)` —
    /// the replay executor decodes settings straight from the packed words.
    #[inline]
    pub(crate) fn stage_code(&self, phase_off: usize, j: usize, idx: usize) -> u64 {
        self.planes.code(phase_off + j * (self.n / 2) + idx)
    }

    /// Precomputed phase offset for [`CapturedPlan::stage_code`] loops.
    #[inline]
    pub(crate) fn phase_base(&self, level: usize, phase: usize) -> usize {
        self.phase_offset(level, phase)
    }

    /// Records the final-stage setting of output pair `pair`.
    pub(crate) fn set_final(&mut self, pair: usize, s: SwitchSetting) {
        let off = self.final_offset();
        self.planes.set(off + pair, s);
    }

    /// The captured final-stage setting of output pair `pair`.
    pub(crate) fn final_setting(&self, pair: usize) -> SwitchSetting {
        self.planes.get(self.final_offset() + pair)
    }

    /// Heap bytes held by the packed arena.
    pub fn footprint_bytes(&self) -> usize {
        self.planes.footprint_bytes()
    }
}

/// One cached plan: the fingerprint, the full assignment for the
/// collision-proofing equality check, the shared plan, and its LRU stamp.
#[derive(Debug)]
struct Entry {
    fp: u64,
    asg: MulticastAssignment,
    plan: Arc<CapturedPlan>,
    stamp: AtomicU64,
}

/// One shard: a small linear-probed entry list with its own capacity slice.
#[derive(Debug)]
struct Shard {
    cap: usize,
    entries: Vec<Entry>,
}

/// Cumulative counters of a [`PlanCache`], readable at any time without
/// locking the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups that returned a plan (fingerprint *and* full assignment
    /// matched).
    pub hits: u64,
    /// Lookups that found nothing (or a fingerprint collision).
    pub misses: u64,
    /// Plans inserted.
    pub insertions: u64,
    /// Plans evicted to make room.
    pub evictions: u64,
}

/// A sharded LRU cache of captured plans, keyed by assignment fingerprint.
///
/// * **Reads take no exclusive lock**: a hit acquires only the shard's
///   shared read lock, bumps the entry's LRU stamp with one atomic store,
///   and clones the [`Arc`] — no allocation, no writer blocking readers.
/// * **Capacity** is a global bound split across `min(capacity, 8)` shards;
///   eviction is per-shard LRU (smallest stamp), so with multiple shards
///   the policy is approximate LRU. `capacity = 1` collapses to one shard
///   of one entry — exact LRU, which the eviction-boundary proptests use.
/// * **Collision-proof**: a hit requires the stored assignment to equal the
///   probe assignment, not just the 64-bit fingerprints.
///
/// Counters are interior [`AtomicU64`]s; [`PlanCache::stats`] reads them
/// relaxed (they are monotone tallies, not synchronization).
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<RwLock<Shard>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let nshards = capacity.min(8);
        let shards = (0..nshards)
            .map(|i| {
                let cap = capacity / nshards + usize::from(i < capacity % nshards);
                RwLock::new(Shard {
                    cap,
                    entries: Vec::with_capacity(cap.min(64)),
                })
            })
            .collect();
        PlanCache {
            shards,
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured global capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("plan-cache shard poisoned").entries.len())
            .sum()
    }

    /// `true` when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, fp: u64) -> usize {
        // High bits: the low bits feed nothing else, but mix() output is
        // uniform so any slice works; modulo keeps every shard reachable.
        (fp >> 32) as usize % self.shards.len()
    }

    /// Looks up the plan for `asg` under fingerprint `fp` (compute it with
    /// [`plan_fingerprint`]). A hit requires full assignment equality, not
    /// just the fingerprint; hits refresh the entry's LRU stamp.
    pub fn lookup(&self, fp: u64, asg: &MulticastAssignment) -> Option<Arc<CapturedPlan>> {
        let shard = self.shards[self.shard_of(fp)]
            .read()
            .expect("plan-cache shard poisoned");
        for e in &shard.entries {
            if e.fp == fp && e.asg == *asg {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                e.stamp.store(now, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(&e.plan));
            }
        }
        drop(shard);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or refreshes) the plan for `asg` under fingerprint `fp`,
    /// evicting the shard's least-recently-used entry if it is full.
    /// Returns `true` when an eviction happened.
    pub fn insert(&self, fp: u64, asg: &MulticastAssignment, plan: Arc<CapturedPlan>) -> bool {
        let mut shard = self.shards[self.shard_of(fp)]
            .write()
            .expect("plan-cache shard poisoned");
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.asg == *asg)
        {
            // A racing worker captured the same assignment first; keep the
            // resident plan (both are bit-identical) and refresh its stamp.
            e.stamp.store(now, Ordering::Relaxed);
            return false;
        }
        let mut evicted = false;
        if shard.entries.len() >= shard.cap {
            let victim = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("full shard has a victim");
            shard.entries.swap_remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        shard.entries.push(Entry {
            fp,
            asg: asg.clone(),
            plan,
            stamp: AtomicU64::new(now),
        });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Approximate heap bytes held by the cached plans and keys (the
    /// `scratch_bytes`-style accounting the engine reports).
    pub fn footprint_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let shard = s.read().expect("plan-cache shard poisoned");
                shard
                    .entries
                    .iter()
                    .map(|e| {
                        e.plan.footprint_bytes()
                            + e.asg.total_connections() * std::mem::size_of::<usize>()
                            + std::mem::size_of::<Entry>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(n: usize, sets: Vec<Vec<usize>>) -> MulticastAssignment {
        MulticastAssignment::from_sets(n, sets).unwrap()
    }

    #[test]
    fn fingerprint_ignores_input_order() {
        let a = asg(8, vec![
            vec![0, 1],
            vec![],
            vec![3, 4, 7],
            vec![2],
            vec![],
            vec![],
            vec![],
            vec![5, 6],
        ]);
        let fwd = plan_fingerprint(&a);
        let pairs: Vec<(usize, &[usize])> = a.iter().collect();
        let rev = fingerprint_inputs(8, pairs.into_iter().rev());
        assert_eq!(fwd, rev);
    }

    #[test]
    fn fingerprint_separates_near_misses() {
        let a = asg(4, vec![vec![0], vec![1], vec![], vec![]]);
        // Same multiset of destinations, different owners.
        let b = asg(4, vec![vec![1], vec![0], vec![], vec![]]);
        // Same pairs, different network size is impossible to confuse via n.
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
        let wide = fingerprint_inputs(8, a.iter());
        assert_ne!(plan_fingerprint(&a), wide);
    }

    #[test]
    fn captured_plan_layout_round_trips() {
        let n = 16;
        let mut plan = CapturedPlan::new(n).unwrap();
        let mut table = RbnSettings::identity(n);
        // Write a recognizable pattern into level 2's quasisort phase for
        // the block at base 8 (size 8, 3 stages).
        for j in 0..3 {
            for idx in 4..8 {
                table.stage_mut(j)[idx] = if (j + idx) % 2 == 0 {
                    SwitchSetting::Crossing
                } else {
                    SwitchSetting::UpperBroadcast
                };
            }
        }
        plan.store_phase(2, PHASE_QUASISORT, 8, 8, &table);
        let mut out = RbnSettings::identity(n);
        plan.load_phase(2, PHASE_QUASISORT, 8, 8, &mut out);
        for j in 0..3 {
            assert_eq!(&out.stage(j)[4..8], &table.stage(j)[4..8], "stage {j}");
            // The sibling block's slice stays untouched.
            assert_eq!(&out.stage(j)[..4], &[SwitchSetting::Parallel; 4]);
        }
        // Scatter phase of the same level is a distinct region.
        let mut other = RbnSettings::identity(n);
        plan.load_phase(2, PHASE_SCATTER, 8, 8, &mut other);
        assert_eq!(other, RbnSettings::identity(n));
        // Final settings live past every level region.
        plan.set_final(7, SwitchSetting::LowerBroadcast);
        assert_eq!(plan.final_setting(7), SwitchSetting::LowerBroadcast);
        assert_eq!(plan.final_setting(0), SwitchSetting::Parallel);
    }

    #[test]
    fn captured_plan_is_one_compact_allocation() {
        let plan = CapturedPlan::new(256).unwrap();
        // 9,088 settings at 2 bits: 284 words = 2,272 bytes.
        assert_eq!(CapturedPlan::total_settings(256), 9088);
        assert_eq!(plan.footprint_bytes(), 9088 / 32 * 8);
    }

    #[test]
    fn cache_hits_require_full_equality() {
        let cache = PlanCache::new(4);
        let a = asg(4, vec![vec![0, 1], vec![], vec![2], vec![3]]);
        let b = asg(4, vec![vec![2, 3], vec![], vec![0], vec![1]]);
        let fp = plan_fingerprint(&a);
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        assert!(cache.lookup(fp, &a).is_some());
        // Same fingerprint key, different assignment: must miss, not
        // misdeliver a foreign plan.
        assert!(cache.lookup(fp, &b).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let cache = PlanCache::new(1);
        assert_eq!(cache.capacity(), 1);
        let a = asg(4, vec![vec![0], vec![], vec![], vec![]]);
        let b = asg(4, vec![vec![1], vec![], vec![], vec![]]);
        let (fa, fb) = (plan_fingerprint(&a), plan_fingerprint(&b));
        assert!(!cache.insert(fa, &a, Arc::new(CapturedPlan::new(4).unwrap())));
        assert!(cache.insert(fb, &b, Arc::new(CapturedPlan::new(4).unwrap())));
        assert!(cache.lookup(fa, &a).is_none(), "a was evicted");
        assert!(cache.lookup(fb, &b).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_assignment_refreshes_instead_of_duplicating() {
        let cache = PlanCache::new(2);
        let a = asg(4, vec![vec![0], vec![], vec![], vec![]]);
        let fp = plan_fingerprint(&a);
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert!(cache.footprint_bytes() > 0);
    }
}
