//! Plan capture and replay: route an assignment once, snapshot every switch
//! setting the planner chose, and replay the snapshot for every later frame
//! carrying the same assignment — no sweeps, no planning, no allocation.
//!
//! # Why settings are assignment-pure
//!
//! The network is *self-routing* (Section 6, Tables 3–6): every switch
//! setting is computed bottom-up from the tag/`SEQ` words of the messages
//! entering its block, and those words are a pure function of the
//! destination-address sets — nothing else (no timestamps, no arrival
//! order, no global state). Two frames with equal [`MulticastAssignment`]s
//! therefore drive every 2×2 switch of every level to the *same* setting,
//! which is what makes capturing the full per-level/per-stage setting tensor
//! once and replaying it bit-identically sound.
//!
//! # Data flow: two lookup tiers
//!
//! ```text
//! assignment ──(plan_fingerprint: order-independent fold over the
//! │             per-input words SEQ derives from, Eqs. 11–12)──► u64 key
//! │
//! ├─ exact hit ──► exact shard (read lock + LRU stamp bump) ──► Arc<CapturedPlan>
//! │                └─► replay: decode 2-bit planes level by level through
//! │                    the iterative router — bit-identical
//! │                    result/trace/settings
//! ├─ exact miss ──► canonicalize (crate::canonical): reduce to the
//! │   │             relabeling-class representative + permutation pair
//! │   ├─ canonical hit ──► canonical shard ──► Arc<CapturedPlan> + the
//! │   │                    composed live→plan permutations; replayed via
//! │   │                    the permuted executor — result bit-identical
//! │   │                    to fresh planning of the live assignment
//! │   └─ canonical miss ──► fast-path planner (fused sweeps) with capture
//! │                         hooks ──► CapturedPlan arena inserted into
//! │                         *both* tiers (full-equality checked in each)
//! └─ snapshot ──► serialize every exact-tier (assignment, plan) pair;
//!                 loading re-inserts each pair into both tiers, so a
//!                 restarted engine replays its working set on first sight
//! ```
//!
//! An exact hit performs **zero** heap allocations (pinned by the
//! `alloc-count` test in `brsmn-bench`): the fingerprint is an arithmetic
//! fold, the shard probe takes a shared read lock, the LRU stamp is an
//! atomic store, and the plan travels as an [`Arc`] clone. A canonical hit
//! is *low*-allocation, not zero: it builds the probe's canonical form and
//! composes two permutation arrays (a few `O(n)` buffers — still no
//! planning sweeps, which is where the time goes).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::assignment::MulticastAssignment;
use crate::canonical::{invert_permutation, Canonicalized};
use crate::error::CoreError;
use brsmn_rbn::{PackedSettings, RbnSettings};
use brsmn_switch::SwitchSetting;
use brsmn_topology::{check_size, log2_exact};
use serde::{Deserialize, Serialize};

/// splitmix64 finalizer — the mixing primitive of the fingerprint.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical fingerprint of a multicast assignment, computed from `(input,
/// destination-set)` pairs supplied **in any order**.
///
/// Each pair hashes to one word (inputs with empty destination sets
/// contribute nothing), and the per-input words are folded with two
/// commutative reductions (wrapping sum and xor), so the result is
/// independent of iteration order — the property the plan-cache proptests
/// pin. The per-input word is exactly the data the paper's `SEQ` words
/// (Eqs. 11–12) are derived from — `SEQ(n, I_i)` is a pure function of
/// `(n, i, I_i)` — so equal fingerprint inputs mean equal wire-level
/// routing requests. Collisions are still possible (it is a 64-bit hash);
/// [`PlanCache::lookup`] guards every hit with a full-equality check.
pub fn fingerprint_inputs<'a, I>(n: usize, inputs: I) -> u64
where
    I: IntoIterator<Item = (usize, &'a [usize])>,
{
    let mut sum = 0u64;
    let mut xor = 0u64;
    for (i, dests) in inputs {
        if dests.is_empty() {
            continue;
        }
        let mut h = mix(i as u64 ^ 0x9E37_79B9_7F4A_7C15);
        h = mix(h ^ dests.len() as u64);
        for &d in dests {
            h = mix(h ^ d as u64);
        }
        sum = sum.wrapping_add(h);
        xor ^= h;
    }
    mix(sum ^ xor.rotate_left(32) ^ (n as u64).wrapping_mul(0xA24B_AED4_963E_E407))
}

/// [`fingerprint_inputs`] over an assignment's canonical iteration — the key
/// under which the engines cache captured plans. Allocation-free.
pub fn plan_fingerprint(asg: &MulticastAssignment) -> u64 {
    fingerprint_inputs(asg.n(), asg.iter())
}

/// A captured routing plan: every switch setting the fast-path planner chose
/// for one assignment, bit-packed (2 bits per setting) into **one**
/// contiguous allocation.
///
/// Layout, in setting index order: for each BSN level `ℓ = 1 … m−1` (block
/// size `s = n >> (ℓ−1)`, `k = log₂ s` stages), the scatter phase's `k`
/// stage planes of `n/2` settings each, then the quasisort phase's `k`
/// planes; finally the `n/2` settings of the last 2×2 stage. Stage planes
/// are full network width — the blocks of a level tile `[0, n/2)`, so each
/// block's capture writes its own slice and a level's planes fill exactly.
///
/// For `n = 256` the whole tensor is 9,088 settings ≈ 2.3 KB.
///
/// Serializes as the raw `(n, packed planes)` pair — the 2-bit setting
/// codes are pinned by `brsmn_rbn::setting_code`, which is what makes a
/// persisted plan portable across processes. A deserialized plan is only
/// trusted after [`PlanCache::load_snapshot`]'s consistency checks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapturedPlan {
    n: usize,
    planes: PackedSettings,
}

/// Phase index of the scatter RBN within a level's capture region.
pub(crate) const PHASE_SCATTER: usize = 0;
/// Phase index of the quasisort RBN within a level's capture region.
pub(crate) const PHASE_QUASISORT: usize = 1;

impl CapturedPlan {
    /// An all-[`SwitchSetting::Parallel`] plan sized for an `n × n` network,
    /// ready to be filled by a capture pass.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        Ok(CapturedPlan {
            n,
            planes: PackedSettings::with_len(Self::total_settings(n)),
        })
    }

    /// Network size this plan was captured for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of settings in the tensor for an `n × n` network.
    fn total_settings(n: usize) -> usize {
        let m = log2_exact(n) as usize;
        // Levels 1..m−1 store 2 phases × (m−ℓ+1) stages × n/2 switches, the
        // final stage stores n/2.
        let levels: usize = (1..m).map(|l| 2 * (m - l + 1) * (n / 2)).sum();
        levels + n / 2
    }

    /// Offset of the first setting of `(level, phase)`.
    fn phase_offset(&self, level: usize, phase: usize) -> usize {
        let m = log2_exact(self.n) as usize;
        debug_assert!((1..m).contains(&level) && phase < 2);
        let before: usize = (1..level).map(|l| 2 * (m - l + 1) * (self.n / 2)).sum();
        before + phase * (m - level + 1) * (self.n / 2)
    }

    /// Offset of the final-stage settings.
    fn final_offset(&self) -> usize {
        Self::total_settings(self.n) - self.n / 2
    }

    /// Captures the freshly planned stages of the block `[base, base+size)`
    /// at `(level, phase)` from the live settings table.
    pub(crate) fn store_phase(
        &mut self,
        level: usize,
        phase: usize,
        base: usize,
        size: usize,
        settings: &RbnSettings,
    ) {
        let k = log2_exact(size) as usize;
        let off = self.phase_offset(level, phase);
        for j in 0..k {
            let stage = &settings.stage(j)[base / 2..(base + size) / 2];
            self.planes.store_slice(off + j * (self.n / 2) + base / 2, stage);
        }
    }

    /// Restores the block's stages at `(level, phase)` into the live
    /// settings table — the inverse of [`CapturedPlan::store_phase`].
    pub(crate) fn load_phase(
        &self,
        level: usize,
        phase: usize,
        base: usize,
        size: usize,
        settings: &mut RbnSettings,
    ) {
        let k = log2_exact(size) as usize;
        let off = self.phase_offset(level, phase);
        for j in 0..k {
            let stage = &mut settings.stage_mut(j)[base / 2..(base + size) / 2];
            self.planes.load_slice(off + j * (self.n / 2) + base / 2, stage);
        }
    }

    /// Raw 2-bit code of switch `idx` in stage `j` of `(level, phase)` —
    /// the replay executor decodes settings straight from the packed words.
    #[inline]
    pub(crate) fn stage_code(&self, phase_off: usize, j: usize, idx: usize) -> u64 {
        self.planes.code(phase_off + j * (self.n / 2) + idx)
    }

    /// Precomputed phase offset for [`CapturedPlan::stage_code`] loops.
    #[inline]
    pub(crate) fn phase_base(&self, level: usize, phase: usize) -> usize {
        self.phase_offset(level, phase)
    }

    /// Records the final-stage setting of output pair `pair`.
    pub(crate) fn set_final(&mut self, pair: usize, s: SwitchSetting) {
        let off = self.final_offset();
        self.planes.set(off + pair, s);
    }

    /// The captured final-stage setting of output pair `pair`.
    pub(crate) fn final_setting(&self, pair: usize) -> SwitchSetting {
        self.planes.get(self.final_offset() + pair)
    }

    /// Heap bytes held by the packed arena.
    pub fn footprint_bytes(&self) -> usize {
        self.planes.footprint_bytes()
    }

    /// `true` when a (possibly deserialized) plan is internally consistent:
    /// `n` is a valid network size, the arena holds exactly the setting
    /// tensor for `n`, and the packed words are sized for it. Replaying a
    /// plan that fails this check could index out of bounds.
    fn is_consistent(&self) -> bool {
        check_size(self.n).is_ok()
            && self.planes.len() == Self::total_settings(self.n)
            && self.planes.invariants_ok()
    }
}

/// One cached plan: the fingerprint, the full assignment for the
/// collision-proofing equality check, the shared plan, and its LRU stamp.
#[derive(Debug)]
struct Entry {
    fp: u64,
    asg: MulticastAssignment,
    plan: Arc<CapturedPlan>,
    stamp: AtomicU64,
}

/// One canonical-tier entry: the class fingerprint, the canonical
/// representative (equality guard — the class identity), the
/// canonical-position → plan-position maps (inverses of the *stored
/// member's* canonicalization permutations), the member's plan, and the
/// LRU stamp.
#[derive(Debug)]
struct CanonEntry {
    fp: u64,
    canon: MulticastAssignment,
    from_canon_inputs: Vec<usize>,
    from_canon_outputs: Vec<usize>,
    plan: Arc<CapturedPlan>,
    stamp: AtomicU64,
}

/// One shard: a small linear-probed entry list with its own capacity slice.
#[derive(Debug)]
struct Shard<E> {
    cap: usize,
    entries: Vec<E>,
}

/// A canonical-tier hit: the stored member's plan plus the composed
/// live → plan-space permutations, ready for the permuted replay executor.
#[derive(Debug, Clone)]
pub struct CanonicalHit {
    /// The captured plan of the class's stored representative member.
    pub plan: Arc<CapturedPlan>,
    /// Live input `i` enters the plan at position `input_map[i]`.
    pub input_map: Vec<usize>,
    /// Live output `d` reads the plan's delivery at position
    /// `output_map[d]`.
    pub output_map: Vec<usize>,
}

/// Cumulative counters of a [`PlanCache`], readable at any time without
/// locking the shards. Each tier counts its own lookups: an engine frame
/// that replays canonically shows up as one `exact_misses` *and* one
/// `canonical_hits` (the exact tier is always probed first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Exact-tier lookups that returned a plan (fingerprint *and* full
    /// assignment matched).
    pub exact_hits: u64,
    /// Exact-tier lookups that found nothing (or a fingerprint collision).
    pub exact_misses: u64,
    /// Canonical-tier lookups that returned a plan (class fingerprint
    /// *and* full canonical-representative equality matched).
    pub canonical_hits: u64,
    /// Canonical-tier lookups that found nothing — for the engine's
    /// two-tier probe order, the frames that had to plan fresh.
    pub canonical_misses: u64,
    /// Plans inserted into the exact tier.
    pub insertions: u64,
    /// Class representatives inserted into the canonical tier.
    pub canonical_insertions: u64,
    /// Exact-tier entries evicted to make room.
    pub evictions: u64,
    /// Canonical-tier entries evicted to make room.
    pub canonical_evictions: u64,
    /// Plans re-inserted from a persisted snapshot
    /// ([`PlanCache::load_snapshot`]).
    pub snapshot_loaded: u64,
    /// Exact-tier plans dropped by [`PlanCache::invalidate`] (the
    /// distributed control plane's invalidation broadcast lands here).
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Total lookups served from either tier.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.canonical_hits
    }
}

/// A sharded LRU cache of captured plans, keyed by assignment fingerprint.
///
/// * **Reads take no exclusive lock**: a hit acquires only the shard's
///   shared read lock, bumps the entry's LRU stamp with one atomic store,
///   and clones the [`Arc`] — no allocation, no writer blocking readers.
/// * **Capacity** is a global bound split across `min(capacity, 8)` shards;
///   eviction is per-shard LRU (smallest stamp), so with multiple shards
///   the policy is approximate LRU. `capacity = 1` collapses to one shard
///   of one entry — exact LRU, which the eviction-boundary proptests use.
/// * **Collision-proof**: a hit requires the stored assignment to equal the
///   probe assignment, not just the 64-bit fingerprints.
///
/// Counters are interior [`AtomicU64`]s; [`PlanCache::stats`] reads them
/// relaxed (they are monotone tallies, not synchronization).
///
/// The **canonical tier** ([`PlanCache::lookup_canonical`] /
/// [`PlanCache::insert_canonical`]) lives in its own shard set with the
/// same capacity bound, keyed by the fingerprint of the
/// [`Canonicalized`] representative. Both tiers share the plan `Arc`s —
/// eviction from either tier never invalidates a replay in flight,
/// because a looked-up plan is an owned `Arc` clone that keeps the arena
/// alive until the replay drops it.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<RwLock<Shard<Entry>>>,
    canon_shards: Vec<RwLock<Shard<CanonEntry>>>,
    capacity: usize,
    clock: AtomicU64,
    exact_hits: AtomicU64,
    exact_misses: AtomicU64,
    canonical_hits: AtomicU64,
    canonical_misses: AtomicU64,
    insertions: AtomicU64,
    canonical_insertions: AtomicU64,
    evictions: AtomicU64,
    canonical_evictions: AtomicU64,
    snapshot_loaded: AtomicU64,
    invalidations: AtomicU64,
}

fn make_shards<E>(capacity: usize) -> Vec<RwLock<Shard<E>>> {
    let nshards = capacity.min(8);
    (0..nshards)
        .map(|i| {
            let cap = capacity / nshards + usize::from(i < capacity % nshards);
            RwLock::new(Shard {
                cap,
                entries: Vec::with_capacity(cap.min(64)),
            })
        })
        .collect()
}

impl PlanCache {
    /// A cache holding at most `capacity` plans per tier (clamped to at
    /// least 1): up to `capacity` exact entries plus `capacity` canonical
    /// class representatives.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PlanCache {
            shards: make_shards(capacity),
            canon_shards: make_shards(capacity),
            capacity,
            clock: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            exact_misses: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
            canonical_misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            canonical_insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            canonical_evictions: AtomicU64::new(0),
            snapshot_loaded: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// The configured global capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of plans currently cached in the exact tier.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("plan-cache shard poisoned").entries.len())
            .sum()
    }

    /// Number of class representatives currently cached in the canonical
    /// tier.
    pub fn canonical_len(&self) -> usize {
        self.canon_shards
            .iter()
            .map(|s| s.read().expect("plan-cache shard poisoned").entries.len())
            .sum()
    }

    /// `true` when no plans are cached in either tier.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.canonical_len() == 0
    }

    #[inline]
    fn shard_of(&self, fp: u64) -> usize {
        // High bits: the low bits feed nothing else, but mix() output is
        // uniform so any slice works; modulo keeps every shard reachable.
        (fp >> 32) as usize % self.shards.len()
    }

    /// Looks up the **exact-tier** plan for `asg` under fingerprint `fp`
    /// (compute it with [`plan_fingerprint`]). A hit requires full
    /// assignment equality, not just the fingerprint; hits refresh the
    /// entry's LRU stamp. Counted as `exact_hits`/`exact_misses`.
    pub fn lookup(&self, fp: u64, asg: &MulticastAssignment) -> Option<Arc<CapturedPlan>> {
        let shard = self.shards[self.shard_of(fp)]
            .read()
            .expect("plan-cache shard poisoned");
        for e in &shard.entries {
            if e.fp == fp && e.asg == *asg {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                e.stamp.store(now, Ordering::Relaxed);
                self.exact_hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(&e.plan));
            }
        }
        drop(shard);
        self.exact_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Looks up the **canonical tier** for the equivalence class of a
    /// canonicalized probe (build it with [`crate::canonicalize`]). A hit
    /// requires the stored canonical representative to equal the probe's —
    /// the same collision-proofing discipline as the exact tier — and
    /// returns the stored member's plan together with the composed
    /// live → plan-space permutations (probe's live→canonical maps chained
    /// through the entry's canonical→plan maps). Counted as
    /// `canonical_hits`/`canonical_misses`.
    pub fn lookup_canonical(&self, canon: &Canonicalized) -> Option<CanonicalHit> {
        let fp = canon.fingerprint();
        let shard = self.canon_shards[self.shard_of(fp)]
            .read()
            .expect("plan-cache shard poisoned");
        for e in &shard.entries {
            if e.fp == fp && e.canon == canon.canonical {
                let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                e.stamp.store(now, Ordering::Relaxed);
                self.canonical_hits.fetch_add(1, Ordering::Relaxed);
                return Some(CanonicalHit {
                    plan: Arc::clone(&e.plan),
                    input_map: canon
                        .input_perm
                        .iter()
                        .map(|&c| e.from_canon_inputs[c])
                        .collect(),
                    output_map: canon
                        .output_perm
                        .iter()
                        .map(|&c| e.from_canon_outputs[c])
                        .collect(),
                });
            }
        }
        drop(shard);
        self.canonical_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or refreshes) the plan for `asg` under fingerprint `fp`,
    /// evicting the shard's least-recently-used entry if it is full.
    /// Returns `true` when an eviction happened.
    pub fn insert(&self, fp: u64, asg: &MulticastAssignment, plan: Arc<CapturedPlan>) -> bool {
        let mut shard = self.shards[self.shard_of(fp)]
            .write()
            .expect("plan-cache shard poisoned");
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.asg == *asg)
        {
            // A racing worker captured the same assignment first; keep the
            // resident plan (both are bit-identical) and refresh its stamp.
            e.stamp.store(now, Ordering::Relaxed);
            return false;
        }
        let mut evicted = false;
        if shard.entries.len() >= shard.cap {
            let victim = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("full shard has a victim");
            shard.entries.swap_remove(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        shard.entries.push(Entry {
            fp,
            asg: asg.clone(),
            plan,
            stamp: AtomicU64::new(now),
        });
        self.insertions.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Inserts (or refreshes) `plan` as the stored member of `canon`'s
    /// equivalence class, evicting the canonical shard's least-recently-used
    /// entry if it is full. `canon` must be the canonicalization of the
    /// assignment `plan` was captured for — the entry keeps the *inverses*
    /// of its permutations so later members can be composed onto the plan.
    /// Returns `true` when an eviction happened.
    pub fn insert_canonical(&self, canon: &Canonicalized, plan: Arc<CapturedPlan>) -> bool {
        let fp = canon.fingerprint();
        let mut shard = self.canon_shards[self.shard_of(fp)]
            .write()
            .expect("plan-cache shard poisoned");
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(e) = shard
            .entries
            .iter_mut()
            .find(|e| e.fp == fp && e.canon == canon.canonical)
        {
            // Another member of the class is already resident; its plan
            // serves the whole class, so keep it and refresh the stamp.
            e.stamp.store(now, Ordering::Relaxed);
            return false;
        }
        let mut evicted = false;
        if shard.entries.len() >= shard.cap {
            let victim = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i)
                .expect("full shard has a victim");
            shard.entries.swap_remove(victim);
            self.canonical_evictions.fetch_add(1, Ordering::Relaxed);
            evicted = true;
        }
        shard.entries.push(CanonEntry {
            fp,
            canon: canon.canonical.clone(),
            from_canon_inputs: invert_permutation(&canon.input_perm),
            from_canon_outputs: invert_permutation(&canon.output_perm),
            plan,
            stamp: AtomicU64::new(now),
        });
        self.canonical_insertions.fetch_add(1, Ordering::Relaxed);
        evicted
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            exact_misses: self.exact_misses.load(Ordering::Relaxed),
            canonical_hits: self.canonical_hits.load(Ordering::Relaxed),
            canonical_misses: self.canonical_misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            canonical_insertions: self.canonical_insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            canonical_evictions: self.canonical_evictions.load(Ordering::Relaxed),
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Approximate heap bytes held by the cached plans and keys (the
    /// `scratch_bytes`-style accounting the engine reports). Plans shared
    /// between the tiers (one capture inserts its `Arc` into both) are
    /// counted once per tier — an upper bound, not an exact census.
    pub fn footprint_bytes(&self) -> usize {
        let exact: usize = self
            .shards
            .iter()
            .map(|s| {
                let shard = s.read().expect("plan-cache shard poisoned");
                shard
                    .entries
                    .iter()
                    .map(|e| {
                        e.plan.footprint_bytes()
                            + e.asg.total_connections() * std::mem::size_of::<usize>()
                            + std::mem::size_of::<Entry>()
                    })
                    .sum::<usize>()
            })
            .sum();
        let canonical: usize = self
            .canon_shards
            .iter()
            .map(|s| {
                let shard = s.read().expect("plan-cache shard poisoned");
                shard
                    .entries
                    .iter()
                    .map(|e| {
                        e.plan.footprint_bytes()
                            + e.canon.total_connections() * std::mem::size_of::<usize>()
                            + 2 * e.from_canon_inputs.len() * std::mem::size_of::<usize>()
                            + std::mem::size_of::<CanonEntry>()
                    })
                    .sum::<usize>()
            })
            .sum();
        exact + canonical
    }

    /// Drops the exact-tier plan with fingerprint `fp`, together with the
    /// canonical-tier representative of its relabeling class (but only when
    /// the class entry was seeded by this very assignment — a class entry
    /// captured from a *different* member stays, since its plan is still
    /// valid for the class). Returns `true` when an exact entry was
    /// removed. This is the hook the distributed control plane's
    /// invalidation broadcast calls into: a node that learns a cached plan
    /// is stale evicts it locally and gossips the fingerprint as a
    /// tombstone so anti-entropy never resurrects it.
    pub fn invalidate(&self, fp: u64) -> bool {
        let removed_asg = {
            let mut shard = self.shards[self.shard_of(fp)]
                .write()
                .expect("plan-cache shard poisoned");
            match shard.entries.iter().position(|e| e.fp == fp) {
                Some(i) => Some(shard.entries.swap_remove(i).asg),
                None => None,
            }
        };
        let Some(asg) = removed_asg else {
            return false;
        };
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        let canon = crate::canonical::canonicalize(&asg);
        let cfp = canon.fingerprint();
        let mut shard = self.canon_shards[self.shard_of(cfp)]
            .write()
            .expect("plan-cache shard poisoned");
        if let Some(i) = shard
            .entries
            .iter()
            .position(|e| e.fp == cfp && e.canon == canon.canonical)
        {
            // Same plan Arc ⇒ this class entry was seeded by the
            // invalidated capture; a different Arc means another member
            // re-captured the class and its plan is independently valid.
            let exact_gone = {
                let probe = &shard.entries[i];
                self.shards[self.shard_of(plan_fingerprint(&asg))]
                    .read()
                    .expect("plan-cache shard poisoned")
                    .entries
                    .iter()
                    .all(|e| !Arc::ptr_eq(&e.plan, &probe.plan))
            };
            if exact_gone {
                shard.entries.swap_remove(i);
            }
        }
        true
    }

    /// Fingerprints of every plan resident in the exact tier, sorted. This
    /// is the digest the distributed control plane's anti-entropy exchange
    /// compares between nodes: two caches with equal fingerprint sets hold
    /// the same working set (fingerprints are collision-checked against
    /// full assignments on every insert path).
    pub fn resident_fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("plan-cache shard poisoned")
                    .entries
                    .iter()
                    .map(|e| e.fp)
                    .collect::<Vec<_>>()
            })
            .collect();
        fps.sort_unstable();
        fps
    }

    /// Class fingerprints of every representative resident in the
    /// canonical tier, sorted — the second set anti-entropy convergence is
    /// judged on.
    pub fn resident_canonical_fingerprints(&self) -> Vec<u64> {
        let mut fps: Vec<u64> = self
            .canon_shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("plan-cache shard poisoned")
                    .entries
                    .iter()
                    .map(|e| e.fp)
                    .collect::<Vec<_>>()
            })
            .collect();
        fps.sort_unstable();
        fps
    }

    /// The resident `(assignment, plan)` pairs whose exact-tier
    /// fingerprints are in `want` (pass a sorted slice), encoded as
    /// snapshot entries — the unit of transfer of the anti-entropy
    /// protocol: a node answers a peer's digest diff with exactly the
    /// plans the peer lacks, in the same wire format the persistence
    /// snapshots use.
    pub fn entries_for(&self, want: &[u64]) -> Vec<PlanSnapshotEntry> {
        let mut out = Vec::new();
        for s in &self.shards {
            let shard = s.read().expect("plan-cache shard poisoned");
            for e in &shard.entries {
                if want.binary_search(&e.fp).is_ok() {
                    out.push(PlanSnapshotEntry {
                        n: e.asg.n(),
                        sets: (0..e.asg.n()).map(|i| e.asg.dests(i).to_vec()).collect(),
                        plan: (*e.plan).clone(),
                    });
                }
            }
        }
        out
    }

    /// Serializes the exact tier's working set: every resident
    /// `(assignment, plan)` pair, in shard order. The canonical tier is
    /// *not* written — [`PlanCache::load_snapshot`] re-derives it, since
    /// each exact pair doubles as its class representative.
    pub fn snapshot(&self) -> PlanCacheSnapshot {
        let mut entries = Vec::new();
        for s in &self.shards {
            let shard = s.read().expect("plan-cache shard poisoned");
            for e in &shard.entries {
                entries.push(PlanSnapshotEntry {
                    n: e.asg.n(),
                    sets: (0..e.asg.n()).map(|i| e.asg.dests(i).to_vec()).collect(),
                    plan: (*e.plan).clone(),
                });
            }
        }
        PlanCacheSnapshot {
            version: SNAPSHOT_VERSION,
            entries,
        }
    }

    /// Loads a snapshot, re-inserting every entry into **both** tiers so a
    /// restarted (or freshly provisioned) engine replays its working set on
    /// first sight — exact recurrences through the exact tier, relabeled
    /// recurrences through the canonical tier.
    ///
    /// Every entry is fully re-validated before anything is trusted: the
    /// assignment must pass `MulticastAssignment::from_sets` and the plan's
    /// packed arena must be exactly the setting tensor for its `n` — a
    /// corrupted or hand-edited file fails with a typed [`SnapshotError`],
    /// never a panic, and a failing entry aborts the load (earlier entries
    /// stay resident; the permuted replay's delivery verification would
    /// reject any plan these checks could miss). Loading into a smaller
    /// cache simply evicts as usual.
    pub fn load_snapshot(
        &self,
        snapshot: &PlanCacheSnapshot,
    ) -> Result<SnapshotLoadStats, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: snapshot.version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let mut stats = SnapshotLoadStats::default();
        for (index, e) in snapshot.entries.iter().enumerate() {
            let asg = MulticastAssignment::from_sets(e.n, e.sets.clone()).map_err(|err| {
                SnapshotError::Entry {
                    index,
                    reason: format!("invalid assignment: {err}"),
                }
            })?;
            if e.plan.n() != e.n || !e.plan.is_consistent() {
                return Err(SnapshotError::Entry {
                    index,
                    reason: format!(
                        "plan arena inconsistent (plan n = {}, entry n = {}, {} settings)",
                        e.plan.n(),
                        e.n,
                        e.plan.planes.len()
                    ),
                });
            }
            let plan = Arc::new(e.plan.clone());
            if self.insert(plan_fingerprint(&asg), &asg, Arc::clone(&plan)) {
                stats.evicted += 1;
            }
            if self.insert_canonical(&crate::canonical::canonicalize(&asg), plan) {
                stats.evicted += 1;
            }
            stats.loaded += 1;
        }
        self.snapshot_loaded
            .fetch_add(stats.loaded, Ordering::Relaxed);
        Ok(stats)
    }
}

/// Format version written by [`PlanCache::snapshot`]; bumped on any layout
/// change to the entry encoding or the packed-plane tensor.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One persisted plan: the raw `(n, destination sets)` of the assignment it
/// was captured for — re-validated through `from_sets` on load, so the
/// serialized form can never smuggle an invalid assignment past the
/// constructor — and the captured plan itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSnapshotEntry {
    /// Network size of the captured frame.
    pub n: usize,
    /// Destination sets, indexed by input.
    pub sets: Vec<Vec<usize>>,
    /// The captured bit-packed setting tensor.
    pub plan: CapturedPlan,
}

/// A persisted plan-cache working set: what [`PlanCache::snapshot`] writes
/// and [`PlanCache::load_snapshot`] restores. Serialize it with the compat
/// serde shims (the CLI stores it as JSON via `serde_json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCacheSnapshot {
    /// Format version ([`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The persisted `(assignment, plan)` pairs.
    pub entries: Vec<PlanSnapshotEntry>,
}

/// What a [`PlanCache::load_snapshot`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotLoadStats {
    /// Plans re-inserted (each lands in both tiers).
    pub loaded: u64,
    /// Evictions the re-insertions caused (nonzero when the snapshot
    /// exceeds the cache capacity).
    pub evicted: u64,
}

/// Why a snapshot failed to load — a typed error, never a panic, so a
/// corrupt or stale file degrades a warm start into a cold one instead of
/// taking the process down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file was written by an incompatible format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build reads.
        supported: u32,
    },
    /// An entry failed validation (invalid assignment or inconsistent
    /// plan arena).
    Entry {
        /// Index of the offending entry.
        index: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Version { found, supported } => write!(
                f,
                "snapshot version {found} is not supported (this build reads {supported})"
            ),
            SnapshotError::Entry { index, reason } => {
                write!(f, "snapshot entry {index}: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn asg(n: usize, sets: Vec<Vec<usize>>) -> MulticastAssignment {
        MulticastAssignment::from_sets(n, sets).unwrap()
    }

    #[test]
    fn fingerprint_ignores_input_order() {
        let a = asg(8, vec![
            vec![0, 1],
            vec![],
            vec![3, 4, 7],
            vec![2],
            vec![],
            vec![],
            vec![],
            vec![5, 6],
        ]);
        let fwd = plan_fingerprint(&a);
        let pairs: Vec<(usize, &[usize])> = a.iter().collect();
        let rev = fingerprint_inputs(8, pairs.into_iter().rev());
        assert_eq!(fwd, rev);
    }

    #[test]
    fn fingerprint_separates_near_misses() {
        let a = asg(4, vec![vec![0], vec![1], vec![], vec![]]);
        // Same multiset of destinations, different owners.
        let b = asg(4, vec![vec![1], vec![0], vec![], vec![]]);
        // Same pairs, different network size is impossible to confuse via n.
        assert_ne!(plan_fingerprint(&a), plan_fingerprint(&b));
        let wide = fingerprint_inputs(8, a.iter());
        assert_ne!(plan_fingerprint(&a), wide);
    }

    #[test]
    fn captured_plan_layout_round_trips() {
        let n = 16;
        let mut plan = CapturedPlan::new(n).unwrap();
        let mut table = RbnSettings::identity(n);
        // Write a recognizable pattern into level 2's quasisort phase for
        // the block at base 8 (size 8, 3 stages).
        for j in 0..3 {
            for idx in 4..8 {
                table.stage_mut(j)[idx] = if (j + idx) % 2 == 0 {
                    SwitchSetting::Crossing
                } else {
                    SwitchSetting::UpperBroadcast
                };
            }
        }
        plan.store_phase(2, PHASE_QUASISORT, 8, 8, &table);
        let mut out = RbnSettings::identity(n);
        plan.load_phase(2, PHASE_QUASISORT, 8, 8, &mut out);
        for j in 0..3 {
            assert_eq!(&out.stage(j)[4..8], &table.stage(j)[4..8], "stage {j}");
            // The sibling block's slice stays untouched.
            assert_eq!(&out.stage(j)[..4], &[SwitchSetting::Parallel; 4]);
        }
        // Scatter phase of the same level is a distinct region.
        let mut other = RbnSettings::identity(n);
        plan.load_phase(2, PHASE_SCATTER, 8, 8, &mut other);
        assert_eq!(other, RbnSettings::identity(n));
        // Final settings live past every level region.
        plan.set_final(7, SwitchSetting::LowerBroadcast);
        assert_eq!(plan.final_setting(7), SwitchSetting::LowerBroadcast);
        assert_eq!(plan.final_setting(0), SwitchSetting::Parallel);
    }

    #[test]
    fn captured_plan_is_one_compact_allocation() {
        let plan = CapturedPlan::new(256).unwrap();
        // 9,088 settings at 2 bits: 284 words = 2,272 bytes.
        assert_eq!(CapturedPlan::total_settings(256), 9088);
        assert_eq!(plan.footprint_bytes(), 9088 / 32 * 8);
    }

    #[test]
    fn cache_hits_require_full_equality() {
        let cache = PlanCache::new(4);
        let a = asg(4, vec![vec![0, 1], vec![], vec![2], vec![3]]);
        let b = asg(4, vec![vec![2, 3], vec![], vec![0], vec![1]]);
        let fp = plan_fingerprint(&a);
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        assert!(cache.lookup(fp, &a).is_some());
        // Same fingerprint key, different assignment: must miss, not
        // misdeliver a foreign plan.
        assert!(cache.lookup(fp, &b).is_none());
        let s = cache.stats();
        assert_eq!((s.exact_hits, s.exact_misses, s.insertions), (1, 1, 1));
        assert_eq!((s.canonical_hits, s.canonical_misses), (0, 0));
    }

    #[test]
    fn canonical_tier_hits_across_relabelings_and_counts_separately() {
        use crate::canonical::canonicalize;
        let cache = PlanCache::new(4);
        let a = asg(4, vec![vec![0, 1], vec![], vec![2], vec![]]);
        // Same shape (fanouts {2, 1}), entirely different labels.
        let b = asg(4, vec![vec![], vec![3], vec![], vec![1, 2]]);
        let plan = Arc::new(CapturedPlan::new(4).unwrap());
        cache.insert_canonical(&canonicalize(&a), Arc::clone(&plan));
        assert_eq!(cache.canonical_len(), 1);

        let hit = cache.lookup_canonical(&canonicalize(&b)).expect("class hit");
        assert!(Arc::ptr_eq(&hit.plan, &plan));
        // b's input 3 owns the fanout-2 set, which a stored at input 0.
        assert_eq!(hit.input_map[3], 0);
        // b's outputs {1, 2} land on a's canonical slots for {0, 1}.
        assert_eq!((hit.output_map[1], hit.output_map[2]), (0, 1));
        // A different shape misses.
        let c = asg(4, vec![vec![0], vec![1], vec![2], vec![]]);
        assert!(cache.lookup_canonical(&canonicalize(&c)).is_none());
        let s = cache.stats();
        assert_eq!((s.canonical_hits, s.canonical_misses), (1, 1));
        assert_eq!((s.exact_hits, s.exact_misses), (0, 0));
        assert_eq!(s.canonical_insertions, 1);
        assert_eq!(s.hits(), 1);
    }

    #[test]
    fn evicted_plan_stays_valid_while_a_replay_holds_its_arc() {
        // The Arc discipline the eviction audit pins: a plan looked up
        // before an eviction storm must stay usable afterwards.
        let cache = PlanCache::new(1);
        let a = asg(4, vec![vec![0, 1], vec![], vec![2], vec![]]);
        let ca = crate::canonical::canonicalize(&a);
        cache.insert_canonical(&ca, Arc::new(CapturedPlan::new(4).unwrap()));
        let held = cache.lookup_canonical(&ca).expect("resident");
        for k in 0..4usize {
            let other = asg(4, vec![vec![k], vec![], vec![], vec![]]);
            cache.insert_canonical(&crate::canonical::canonicalize(&other), Arc::new(CapturedPlan::new(4).unwrap()));
        }
        assert!(cache.stats().canonical_evictions > 0);
        // The held Arc still owns a full, consistent arena.
        assert!(held.plan.is_consistent());
        assert_eq!(held.plan.n(), 4);
    }

    #[test]
    fn snapshot_round_trips_through_both_tiers() {
        let cache = PlanCache::new(8);
        let a = asg(4, vec![vec![0, 1], vec![], vec![2], vec![]]);
        let fp = plan_fingerprint(&a);
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        let snap = cache.snapshot();
        assert_eq!(snap.version, SNAPSHOT_VERSION);
        assert_eq!(snap.entries.len(), 1);

        let warm = PlanCache::new(8);
        let loaded = warm.load_snapshot(&snap).unwrap();
        assert_eq!((loaded.loaded, loaded.evicted), (1, 0));
        assert!(warm.lookup(fp, &a).is_some(), "exact tier warm");
        let relabeled = asg(4, vec![vec![], vec![2, 3], vec![], vec![0]]);
        assert!(
            warm.lookup_canonical(&crate::canonical::canonicalize(&relabeled))
                .is_some(),
            "canonical tier warm"
        );
        assert_eq!(warm.stats().snapshot_loaded, 1);
    }

    #[test]
    fn corrupt_snapshots_fail_with_typed_errors() {
        let ok_plan = CapturedPlan::new(4).unwrap();
        // Wrong version.
        let snap = PlanCacheSnapshot {
            version: SNAPSHOT_VERSION + 1,
            entries: vec![],
        };
        assert_eq!(
            PlanCache::new(2).load_snapshot(&snap),
            Err(SnapshotError::Version {
                found: SNAPSHOT_VERSION + 1,
                supported: SNAPSHOT_VERSION
            })
        );
        // Invalid assignment (overlapping destinations).
        let snap = PlanCacheSnapshot {
            version: SNAPSHOT_VERSION,
            entries: vec![PlanSnapshotEntry {
                n: 4,
                sets: vec![vec![0], vec![0], vec![], vec![]],
                plan: ok_plan.clone(),
            }],
        };
        assert!(matches!(
            PlanCache::new(2).load_snapshot(&snap),
            Err(SnapshotError::Entry { index: 0, .. })
        ));
        // Plan sized for a different network than the entry claims.
        let snap = PlanCacheSnapshot {
            version: SNAPSHOT_VERSION,
            entries: vec![PlanSnapshotEntry {
                n: 8,
                sets: vec![vec![0], vec![], vec![], vec![], vec![], vec![], vec![], vec![]],
                plan: ok_plan,
            }],
        };
        let err = PlanCache::new(2).load_snapshot(&snap).unwrap_err();
        assert!(err.to_string().contains("entry 0"), "{err}");
    }

    #[test]
    fn capacity_one_evicts_lru() {
        let cache = PlanCache::new(1);
        assert_eq!(cache.capacity(), 1);
        let a = asg(4, vec![vec![0], vec![], vec![], vec![]]);
        let b = asg(4, vec![vec![1], vec![], vec![], vec![]]);
        let (fa, fb) = (plan_fingerprint(&a), plan_fingerprint(&b));
        assert!(!cache.insert(fa, &a, Arc::new(CapturedPlan::new(4).unwrap())));
        assert!(cache.insert(fb, &b, Arc::new(CapturedPlan::new(4).unwrap())));
        assert!(cache.lookup(fa, &a).is_none(), "a was evicted");
        assert!(cache.lookup(fb, &b).is_some());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_same_assignment_refreshes_instead_of_duplicating() {
        let cache = PlanCache::new(2);
        let a = asg(4, vec![vec![0], vec![], vec![], vec![]]);
        let fp = plan_fingerprint(&a);
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        cache.insert(fp, &a, Arc::new(CapturedPlan::new(4).unwrap()));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
        assert!(cache.footprint_bytes() > 0);
    }
}
