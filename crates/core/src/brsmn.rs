//! The binary radix sorting multicast network (BRSMN) — the paper's primary
//! contribution (Sections 2 and 7).
//!
//! An `n × n` BRSMN is an `n × n` BSN followed by two `n/2 × n/2` BRSMNs
//! (Fig. 1); unrolled, level `i` holds `2^{i−1}` BSNs of size `n/2^{i−1}`,
//! and the final level is `n/2` plain 2×2 switches that realize the last bit
//! of every destination address directly (Fig. 2).
//!
//! Two engines are provided over the same fabric code: the **semantic**
//! engine (destination sets as payloads — the correctness reference) and the
//! **self-routing** engine (messages carry only their `SEQ` tag streams; the
//! network reads nothing else — faithful to the paper's hardware). Tests
//! assert the two always agree.

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::bsn::{Bsn, BsnTrace};
use crate::engine::StageTimer;
use crate::error::CoreError;
use crate::fastpath::{self, with_thread_scratch, RouteScratch};
use crate::payload::{RoutePayload, SelfRoutedMsg, SemanticMsg};
use crate::plancache::CapturedPlan;
use brsmn_rbn::RbnWiring;
use brsmn_switch::{Line, SwitchSetting, Tag};
use brsmn_topology::{check_size, log2_exact};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Per-level trace of a routed assignment (drives the Fig. 2 / Fig. 4b
/// reproductions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelTrace {
    /// BSN level, 1-based (level `i` checks the `i`-th most significant
    /// address bit).
    pub level: usize,
    /// Size of each BSN at this level.
    pub block_size: usize,
    /// One BSN trace per block, left to right.
    pub blocks: Vec<BsnTrace>,
}

/// Full trace of one routed assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteTrace {
    /// Network size.
    pub n: usize,
    /// BSN levels `1 … log n − 1`.
    pub levels: Vec<LevelTrace>,
    /// Tags entering the final 2×2 switch stage.
    pub final_tags: Vec<Tag>,
    /// Settings chosen for the final 2×2 switches.
    pub final_settings: Vec<SwitchSetting>,
}

impl RouteTrace {
    pub(crate) fn new(n: usize) -> Self {
        let m = log2_exact(n) as usize;
        RouteTrace {
            n,
            levels: (1..m)
                .map(|i| LevelTrace {
                    level: i,
                    block_size: n >> (i - 1),
                    blocks: Vec::with_capacity(1 << (i - 1)),
                })
                .collect(),
            final_tags: vec![Tag::Eps; n],
            final_settings: vec![SwitchSetting::Parallel; n / 2],
        }
    }
}

/// The `n × n` binary radix sorting multicast network.
///
/// Construction precomputes the shuffle/exchange wiring of every level once
/// (shared via [`Arc`], so cloning a network for worker threads is cheap);
/// routing then never re-derives stage geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Brsmn {
    n: usize,
    m: usize,
    wiring: Arc<RbnWiring>,
}

impl Brsmn {
    /// Creates a BRSMN of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        Ok(Brsmn {
            n,
            m: log2_exact(n) as usize,
            wiring: Arc::new(RbnWiring::new(n)),
        })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Address width / number of levels.
    pub fn levels(&self) -> usize {
        self.m
    }

    /// The precomputed per-level shuffle/exchange wiring (a BSN at level `i`
    /// uses stages `[0, log2 size)` of this table over its block's switch
    /// index range).
    pub fn wiring(&self) -> &RbnWiring {
        &self.wiring
    }

    /// Routes `asg` with the semantic engine on the zero-allocation fast
    /// path, using this thread's scratch arena. Bit-identical to
    /// [`Brsmn::route_reference`] (the property tests in
    /// `tests/fastpath_equivalence.rs` pin this).
    pub fn route(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        with_thread_scratch(self.n, |s| self.route_buffered(asg, s))
    }

    /// Routes `asg` on the fast path, returning a full per-level trace.
    pub fn route_traced(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<(RoutingResult, RouteTrace), CoreError> {
        let mut trace = RouteTrace::new(self.n);
        let r = with_thread_scratch(self.n, |s| {
            fastpath::route_assignment_fast_buffered(
                self.n,
                &self.wiring,
                asg,
                s,
                Some(&mut trace),
                None,
                None,
            )
        })?;
        Ok((r, trace))
    }

    /// Routes `asg` into a caller-provided arena with zero steady-state heap
    /// allocation (after the arena's one-time warm-up at this size). Read
    /// the delivery via [`RouteScratch::output_sources`].
    pub fn route_into(
        &self,
        asg: &MulticastAssignment,
        scratch: &mut RouteScratch,
    ) -> Result<(), CoreError> {
        fastpath::route_assignment_fast(self.n, &self.wiring, asg, scratch, None, None, None)
    }

    /// [`Brsmn::route_into`] with per-stage instrumentation: the frame's
    /// level timings and per-op planning profile accumulate into `timer`
    /// (what the engine's workers record per frame). Heap-silent in steady
    /// state once `timer` has seen every level, like `route_into`.
    pub fn route_into_timed(
        &self,
        asg: &MulticastAssignment,
        scratch: &mut RouteScratch,
        timer: &mut StageTimer,
    ) -> Result<(), CoreError> {
        fastpath::route_assignment_fast(self.n, &self.wiring, asg, scratch, None, Some(timer), None)
    }

    /// [`Brsmn::route_into`] plus collecting the delivery into a fresh
    /// [`RoutingResult`] (exactly one allocation per call).
    pub fn route_buffered(
        &self,
        asg: &MulticastAssignment,
        scratch: &mut RouteScratch,
    ) -> Result<RoutingResult, CoreError> {
        fastpath::route_assignment_fast_buffered(
            self.n,
            &self.wiring,
            asg,
            scratch,
            None,
            None,
            None,
        )
    }

    /// Routes `asg` on the fast path while snapshotting every switch setting
    /// the planner chooses into a fresh [`CapturedPlan`]. The plan replays
    /// the same assignment later — through [`Brsmn::route_replay`] or an
    /// engine's [`crate::PlanCache`] — without re-running any planning
    /// sweep, bit-identically (sound because the self-routing construction
    /// makes every setting a pure function of the assignment; see
    /// [`crate::plancache`]).
    pub fn route_capture(
        &self,
        asg: &MulticastAssignment,
        scratch: &mut RouteScratch,
    ) -> Result<(RoutingResult, CapturedPlan), CoreError> {
        let mut plan = CapturedPlan::new(self.n)?;
        let r = fastpath::route_assignment_fast_buffered(
            self.n,
            &self.wiring,
            asg,
            scratch,
            None,
            None,
            Some(&mut plan),
        )?;
        Ok((r, plan))
    }

    /// Replays a captured plan for `asg`: executes the snapshotted setting
    /// planes through the iterative level-order router with **zero**
    /// planning and zero steady-state allocation beyond the result `Vec`.
    /// The result is bit-identical to fresh routing of the same assignment;
    /// replaying against a *different* assignment fails delivery
    /// verification rather than misrouting silently.
    pub fn route_replay(
        &self,
        asg: &MulticastAssignment,
        plan: &CapturedPlan,
        scratch: &mut RouteScratch,
    ) -> Result<RoutingResult, CoreError> {
        fastpath::route_assignment_replay_buffered(
            self.n,
            &self.wiring,
            asg,
            plan,
            scratch,
            None,
            None,
        )
    }

    /// [`Brsmn::route_replay`] without the result allocation: the delivery
    /// stays in `scratch` (read it via [`RouteScratch::output_sources`]).
    /// A warm replay performs **zero** heap allocations — the `alloc-count`
    /// test in `brsmn-bench` pins this end to end through the cache.
    pub fn route_replay_into(
        &self,
        asg: &MulticastAssignment,
        plan: &CapturedPlan,
        scratch: &mut RouteScratch,
    ) -> Result<(), CoreError> {
        fastpath::route_assignment_replay(self.n, &self.wiring, asg, plan, scratch, None, None)
    }

    /// [`Brsmn::route_replay`] with a full per-level trace. The trace (and
    /// the settings table left in `scratch`) is bit-identical to
    /// [`Brsmn::route_traced`] on the same assignment.
    pub fn route_replay_traced(
        &self,
        asg: &MulticastAssignment,
        plan: &CapturedPlan,
        scratch: &mut RouteScratch,
    ) -> Result<(RoutingResult, RouteTrace), CoreError> {
        let mut trace = RouteTrace::new(self.n);
        let r = fastpath::route_assignment_replay_buffered(
            self.n,
            &self.wiring,
            asg,
            plan,
            scratch,
            Some(&mut trace),
            None,
        )?;
        Ok((r, trace))
    }

    /// Replays a plan captured for a **relabeling** of `asg`: live input
    /// `i` enters the plan at `input_map[i]`, live output `d` reads its
    /// delivery from `output_map[d]` (both bijections on `0..n`, typically
    /// composed from two [`crate::canonicalize`] runs — see
    /// [`crate::PlanCache::lookup_canonical`], which hands back exactly
    /// these maps). The result is bit-identical to fresh planning of `asg`
    /// itself; an inconsistent plan/permutation combination fails delivery
    /// verification rather than misrouting silently.
    pub fn route_replay_permuted(
        &self,
        asg: &MulticastAssignment,
        plan: &CapturedPlan,
        input_map: &[usize],
        output_map: &[usize],
        scratch: &mut RouteScratch,
    ) -> Result<RoutingResult, CoreError> {
        for (name, map) in [("input_map", input_map), ("output_map", output_map)] {
            let mut seen = vec![false; self.n];
            if map.len() != self.n
                || !map.iter().all(|&p| {
                    p < self.n && !std::mem::replace(&mut seen[p.min(self.n - 1)], true)
                })
            {
                return Err(CoreError::Config(format!(
                    "{name} is not a permutation of 0..{}",
                    self.n
                )));
            }
        }
        fastpath::route_assignment_replay_permuted(
            self.n,
            &self.wiring,
            asg,
            plan,
            input_map,
            output_map,
            scratch,
            None,
        )
    }

    /// Routes `asg` with the PR-1 allocating reference engine (recursive,
    /// payload-splitting, array planners). Kept verbatim as the oracle for
    /// the fast path and as the engine's `--no-scratch` escape hatch.
    pub fn route_reference(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route_semantic_inner(asg, None).map(|(r, _)| r)
    }

    /// Routes `asg` with the reference engine, returning a full per-level
    /// trace.
    pub fn route_reference_traced(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<(RoutingResult, RouteTrace), CoreError> {
        let mut trace = RouteTrace::new(self.n);
        let (r, _) = self.route_semantic_inner(asg, Some(&mut trace))?;
        Ok((r, trace))
    }

    /// Routes `asg` with the **self-routing** engine: every message is
    /// reduced to its `SEQ` tag stream before entering the network, and all
    /// switch settings derive from stream heads alone.
    pub fn route_self_routing(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<RoutingResult, CoreError> {
        assert_eq!(asg.n(), self.n, "assignment size mismatch");
        let lines: Vec<Line<SelfRoutedMsg>> = (0..self.n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps, // set on BSN entry
                        payload: Some(SelfRoutedMsg::prepare(self.n, i, dests)),
                    }
                }
            })
            .collect();
        let out = self.route_lines(lines, None)?;
        self.extract(out)
    }

    fn route_semantic_inner(
        &self,
        asg: &MulticastAssignment,
        mut trace: Option<&mut RouteTrace>,
    ) -> Result<(RoutingResult, ()), CoreError> {
        assert_eq!(asg.n(), self.n, "assignment size mismatch");
        let lines: Vec<Line<SemanticMsg>> = (0..self.n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps,
                        payload: Some(SemanticMsg::new(i, dests.to_vec())),
                    }
                }
            })
            .collect();
        let out = route_block(lines, 0, 1, &mut trace)?;
        Ok((self.extract(out)?, ()))
    }

    /// Routes pre-built lines (exposed for the workload and timing crates).
    /// Thin wrapper over [`Brsmn::route_lines_into`] using this thread's
    /// scratch arena.
    pub fn route_lines<P: RoutePayload>(
        &self,
        mut lines: Vec<Line<P>>,
        mut trace: Option<&mut RouteTrace>,
    ) -> Result<Vec<Line<P>>, CoreError> {
        with_thread_scratch(self.n, |s| {
            self.route_lines_into(&mut lines, s, trace.as_deref_mut())
        })?;
        Ok(lines)
    }

    /// Routes pre-built lines in place, planning every BSN with the arena's
    /// packed scratch and the precomputed wiring. The only allocations are
    /// the payloads' own [`RoutePayload::split`]/[`RoutePayload::descend`]
    /// work (none for tag-only payloads) and, when tracing, the trace
    /// snapshots.
    pub fn route_lines_into<P: RoutePayload>(
        &self,
        lines: &mut [Line<P>],
        scratch: &mut RouteScratch,
        mut trace: Option<&mut RouteTrace>,
    ) -> Result<(), CoreError> {
        assert_eq!(lines.len(), self.n, "line count mismatch");
        scratch.ensure(self.n);
        let (sweep, settings) = scratch.planner_parts();

        // Levels 1 … m−1: BSNs of halving size, blocks left to right (the
        // order the reference's depth-first recursion fills trace levels).
        let mut size = self.n;
        let mut level = 1usize;
        while size > 2 {
            let bsn = Bsn::new(size)?;
            for b in 0..self.n / size {
                let base = b * size;
                let mut bt = trace.as_ref().map(|_| BsnTrace {
                    input_tags: Vec::new(),
                    after_scatter: Vec::new(),
                    output_tags: Vec::new(),
                });
                bsn.route_into(lines, base, base, sweep, settings, &self.wiring, bt.as_mut())?;
                if let (Some(t), Some(bt)) = (trace.as_deref_mut(), bt) {
                    t.levels[level - 1].blocks.push(bt);
                }
                // Hand each message to its half (consumes one SEQ tag in the
                // self-routing engine).
                for line in lines[base..base + size].iter_mut() {
                    if line.tag != Tag::Eps {
                        let branch = line.tag;
                        let payload = line.payload.take().expect("tagged line has a payload");
                        line.payload = Some(payload.descend(branch, base, size));
                    }
                }
            }
            size /= 2;
            level += 1;
        }

        // Final level: n/2 plain 2×2 switches.
        for lo in (0..self.n).step_by(2) {
            final_switch_into(lines, lo, &mut trace)?;
        }
        Ok(())
    }

    /// Collapses output lines into a [`RoutingResult`], verifying delivery.
    fn extract<P: RoutePayload>(&self, out: Vec<Line<P>>) -> Result<RoutingResult, CoreError> {
        extract_result(out)
    }
}

/// Collapses output lines into a [`RoutingResult`], verifying that every
/// delivered message belongs at its output.
pub(crate) fn extract_result<P: RoutePayload>(
    out: Vec<Line<P>>,
) -> Result<RoutingResult, CoreError> {
    let mut sources = Vec::with_capacity(out.len());
    for (o, line) in out.into_iter().enumerate() {
        match line.payload {
            Some(p) => {
                if !p.delivered_ok(o) {
                    return Err(CoreError::Internal(format!(
                        "message from input {} misdelivered to output {o}",
                        p.source()
                    )));
                }
                sources.push(Some(p.source()));
            }
            None => sources.push(None),
        }
    }
    Ok(RoutingResult::new(sources))
}

/// Recursive BRSMN routing over the block of outputs `[lo, lo + lines.len())`.
fn route_block<P: RoutePayload>(
    lines: Vec<Line<P>>,
    lo: usize,
    level: usize,
    trace: &mut Option<&mut RouteTrace>,
) -> Result<Vec<Line<P>>, CoreError> {
    let size = lines.len();
    if size == 2 {
        return final_switch(lines, lo, trace);
    }

    let bsn = Bsn::new(size)?;
    let (mut out, bsn_trace) = bsn.route_reference(lines, lo)?;
    if let Some(t) = trace {
        t.levels[level - 1].blocks.push(bsn_trace);
    }

    // Hand each message to its half (consumes one SEQ tag in the
    // self-routing engine).
    for line in out.iter_mut() {
        if line.tag != Tag::Eps {
            let branch = line.tag;
            let payload = line.payload.take().expect("tagged line has a payload");
            line.payload = Some(payload.descend(branch, lo, size));
        }
    }

    let lower = out.split_off(size / 2);
    let mut up = route_block(out, lo, level + 1, trace)?;
    let down = route_block(lower, lo + size / 2, level + 1, trace)?;
    up.extend(down);
    Ok(up)
}

/// The last level: one 2×2 switch realizing outputs `{lo, lo+1}` (the 2×2
/// BRSMN base case of Section 2).
pub(crate) fn final_switch<P: RoutePayload>(
    mut lines: Vec<Line<P>>,
    lo: usize,
    trace: &mut Option<&mut RouteTrace>,
) -> Result<Vec<Line<P>>, CoreError> {
    use SwitchSetting::*;
    debug_assert_eq!(lines.len(), 2);
    for line in lines.iter_mut() {
        line.tag = match &line.payload {
            Some(p) => p.entry_tag(lo, 2),
            None => Tag::Eps,
        };
    }
    let (tu, tl) = (lines[0].tag, lines[1].tag);
    let setting = match (tu, tl) {
        (Tag::Alpha, Tag::Eps) => UpperBroadcast,
        (Tag::Eps, Tag::Alpha) => LowerBroadcast,
        (Tag::Alpha, _) | (_, Tag::Alpha) => {
            return Err(CoreError::OutputConflict { output: lo });
        }
        (Tag::Zero, Tag::Zero) => return Err(CoreError::OutputConflict { output: lo }),
        (Tag::One, Tag::One) => return Err(CoreError::OutputConflict { output: lo + 1 }),
        (Tag::Zero, _) | (Tag::Eps, Tag::One) | (Tag::Eps, Tag::Eps) => Parallel,
        (Tag::One, _) | (Tag::Eps, Tag::Zero) => Crossing,
    };
    if let Some(t) = trace {
        t.final_tags[lo] = tu;
        t.final_tags[lo + 1] = tl;
        t.final_settings[lo / 2] = setting;
    }

    let mut it = lines.into_iter();
    let (upper, lower) = (it.next().unwrap(), it.next().unwrap());
    let out = match setting {
        Parallel => (upper, lower),
        Crossing => (lower, upper),
        UpperBroadcast | LowerBroadcast => {
            let alpha = if setting == UpperBroadcast {
                upper
            } else {
                lower
            };
            let p = alpha.payload.expect("α line has a payload");
            let (p0, p1) = p.split(lo, 2);
            (Line::with(Tag::Zero, p0), Line::with(Tag::One, p1))
        }
    };
    Ok(vec![out.0, out.1])
}

/// In-place variant of [`final_switch`] over `lines[lo]` / `lines[lo + 1]`:
/// identical setting table, errors and trace writes, no buffer churn.
fn final_switch_into<P: RoutePayload>(
    lines: &mut [Line<P>],
    lo: usize,
    trace: &mut Option<&mut RouteTrace>,
) -> Result<(), CoreError> {
    use SwitchSetting::*;
    for line in lines[lo..lo + 2].iter_mut() {
        line.tag = match &line.payload {
            Some(p) => p.entry_tag(lo, 2),
            None => Tag::Eps,
        };
    }
    let (tu, tl) = (lines[lo].tag, lines[lo + 1].tag);
    let setting = match (tu, tl) {
        (Tag::Alpha, Tag::Eps) => UpperBroadcast,
        (Tag::Eps, Tag::Alpha) => LowerBroadcast,
        (Tag::Alpha, _) | (_, Tag::Alpha) => {
            return Err(CoreError::OutputConflict { output: lo });
        }
        (Tag::Zero, Tag::Zero) => return Err(CoreError::OutputConflict { output: lo }),
        (Tag::One, Tag::One) => return Err(CoreError::OutputConflict { output: lo + 1 }),
        (Tag::Zero, _) | (Tag::Eps, Tag::One) | (Tag::Eps, Tag::Eps) => Parallel,
        (Tag::One, _) | (Tag::Eps, Tag::Zero) => Crossing,
    };
    if let Some(t) = trace {
        t.final_tags[lo] = tu;
        t.final_tags[lo + 1] = tl;
        t.final_settings[lo / 2] = setting;
    }
    match setting {
        Parallel => {}
        Crossing => lines.swap(lo, lo + 1),
        UpperBroadcast | LowerBroadcast => {
            let alpha = if setting == UpperBroadcast { lo } else { lo + 1 };
            let p = lines[alpha].payload.take().expect("α line has a payload");
            let (p0, p1) = p.split(lo, 2);
            lines[lo] = Line::with(Tag::Zero, p0);
            lines[lo + 1] = Line::with(Tag::One, p1);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig2_example_routes_exactly() {
        let net = Brsmn::new(8).unwrap();
        let asg = paper_assignment();
        let result = net.route(&asg).unwrap();
        assert!(result.realizes(&asg));
        assert_eq!(result.output_source(0), Some(0));
        assert_eq!(result.output_source(1), Some(0));
        assert_eq!(result.output_source(2), Some(3));
        assert_eq!(result.output_source(3), Some(2));
        assert_eq!(result.output_source(4), Some(2));
        assert_eq!(result.output_source(5), Some(7));
        assert_eq!(result.output_source(6), Some(7));
        assert_eq!(result.output_source(7), Some(2));
    }

    #[test]
    fn self_routing_engine_agrees_on_paper_example() {
        let net = Brsmn::new(8).unwrap();
        let asg = paper_assignment();
        let sem = net.route(&asg).unwrap();
        let slf = net.route_self_routing(&asg).unwrap();
        assert_eq!(sem, slf);
        assert!(slf.realizes(&asg));
    }

    #[test]
    fn n2_base_case() {
        let net = Brsmn::new(2).unwrap();
        for (sets, expect) in [
            (vec![vec![0usize, 1], vec![]], vec![Some(0), Some(0)]),
            (vec![vec![1], vec![0]], vec![Some(1), Some(0)]),
            (vec![vec![], vec![]], vec![None, None]),
            (vec![vec![], vec![0, 1]], vec![Some(1), Some(1)]),
        ] {
            let asg = MulticastAssignment::from_sets(2, sets).unwrap();
            let r = net.route(&asg).unwrap();
            assert!(r.realizes(&asg));
            assert_eq!(
                (0..2).map(|o| r.output_source(o)).collect::<Vec<_>>(),
                expect
            );
        }
    }

    #[test]
    fn single_input_broadcast() {
        let net = Brsmn::new(16).unwrap();
        let mut sets = vec![Vec::new(); 16];
        sets[5] = (0..16).collect();
        let asg = MulticastAssignment::from_sets(16, sets).unwrap();
        for r in [net.route(&asg).unwrap(), net.route_self_routing(&asg).unwrap()] {
            assert!(r.realizes(&asg));
            assert!((0..16).all(|o| r.output_source(o) == Some(5)));
        }
    }

    #[test]
    fn identity_permutation() {
        let net = Brsmn::new(8).unwrap();
        let asg =
            MulticastAssignment::from_permutation(&(0..8).map(Some).collect::<Vec<_>>()).unwrap();
        let r = net.route(&asg).unwrap();
        assert!(r.realizes(&asg));
    }

    #[test]
    fn reversal_permutation_both_engines() {
        let net = Brsmn::new(16).unwrap();
        let perm: Vec<Option<usize>> = (0..16).map(|i| Some(15 - i)).collect();
        let asg = MulticastAssignment::from_permutation(&perm).unwrap();
        assert_eq!(
            net.route(&asg).unwrap(),
            net.route_self_routing(&asg).unwrap()
        );
    }

    #[test]
    fn trace_shape() {
        let net = Brsmn::new(8).unwrap();
        let (_, trace) = net.route_traced(&paper_assignment()).unwrap();
        assert_eq!(trace.levels.len(), 2);
        assert_eq!(trace.levels[0].block_size, 8);
        assert_eq!(trace.levels[0].blocks.len(), 1);
        assert_eq!(trace.levels[1].block_size, 4);
        assert_eq!(trace.levels[1].blocks.len(), 2);
        assert_eq!(trace.final_tags.len(), 8);
        // The final stage sees one tag per message: the example's 8 covered
        // outputs arrive as 7 messages (outputs 0 and 1 share one α).
        assert_eq!(
            trace.final_tags.iter().filter(|&&t| t != Tag::Eps).count(),
            7
        );
        assert_eq!(
            trace
                .final_tags
                .iter()
                .filter(|&&t| t == Tag::Alpha)
                .count(),
            1
        );
    }

    #[test]
    fn empty_assignment_is_silent() {
        let net = Brsmn::new(32).unwrap();
        let asg = MulticastAssignment::empty(32).unwrap();
        let r = net.route(&asg).unwrap();
        assert!(r.realizes(&asg));
        assert_eq!(r.active_outputs(), 0);
    }
}
