//! Multicast assignments and routing results (Section 2 of the paper).
//!
//! A multicast assignment on an `n × n` network is a set `{I_0, …, I_{n−1}}`
//! of pairwise-disjoint *destination sets*: input `i` must be connected to
//! every output in `I_i`, over edge-disjoint trees. A permutation assignment
//! is the special case where every `I_i` has at most one element.

use brsmn_topology::{check_size, SizeError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Errors constructing a multicast assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignmentError {
    /// `n` is not a power of two.
    Size(SizeError),
    /// Wrong number of destination sets.
    WrongInputCount {
        /// Sets provided.
        got: usize,
        /// Sets expected (= n).
        expected: usize,
    },
    /// A destination address is out of range.
    DestOutOfRange {
        /// The input whose set contains it.
        input: usize,
        /// The offending destination.
        dest: usize,
    },
    /// Two inputs both claim the same output (destination sets must be
    /// disjoint: each output hears at most one input).
    OverlappingDest {
        /// The contested output.
        dest: usize,
        /// First input claiming it.
        first: usize,
        /// Second input claiming it.
        second: usize,
    },
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::Size(e) => e.fmt(f),
            AssignmentError::WrongInputCount { got, expected } => {
                write!(f, "expected {expected} destination sets, got {got}")
            }
            AssignmentError::DestOutOfRange { input, dest } => {
                write!(f, "input {input}: destination {dest} out of range")
            }
            AssignmentError::OverlappingDest {
                dest,
                first,
                second,
            } => write!(
                f,
                "output {dest} claimed by both input {first} and input {second}"
            ),
        }
    }
}

impl std::error::Error for AssignmentError {}

impl From<SizeError> for AssignmentError {
    fn from(e: SizeError) -> Self {
        AssignmentError::Size(e)
    }
}

/// A validated multicast assignment `{I_0, …, I_{n−1}}`.
///
/// Destination sets are pairwise disjoint and sorted; construction rejects
/// anything else, so every `MulticastAssignment` in the workspace is
/// routable by the nonblocking theorem.
///
/// ```
/// use brsmn_core::MulticastAssignment;
///
/// // The paper's running example (Fig. 2): input 2 multicasts to {3,4,7}.
/// let asg = MulticastAssignment::from_sets(8, vec![
///     vec![0, 1], vec![], vec![3, 4, 7], vec![2],
///     vec![],     vec![], vec![],        vec![5, 6],
/// ]).unwrap();
/// assert_eq!(asg.n(), 8);
/// assert_eq!(asg.dests(2), &[3, 4, 7]);
/// assert_eq!(asg.total_connections(), 8);
/// assert_eq!(asg.source_of_output(4), Some(2));
/// assert!(!asg.is_permutation()); // input 2 has fanout 3
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MulticastAssignment {
    n: usize,
    /// `dests[i]` is `I_i`, sorted ascending.
    dests: Vec<Vec<usize>>,
}

impl MulticastAssignment {
    /// Builds and validates an assignment from raw destination sets.
    /// Duplicate entries within one set are merged.
    pub fn from_sets(n: usize, sets: Vec<Vec<usize>>) -> Result<Self, AssignmentError> {
        check_size(n)?;
        if sets.len() != n {
            return Err(AssignmentError::WrongInputCount {
                got: sets.len(),
                expected: n,
            });
        }
        let mut claimed: Vec<Option<usize>> = vec![None; n];
        let mut dests = Vec::with_capacity(n);
        for (input, set) in sets.into_iter().enumerate() {
            let uniq: BTreeSet<usize> = set.into_iter().collect();
            for &d in &uniq {
                if d >= n {
                    return Err(AssignmentError::DestOutOfRange { input, dest: d });
                }
                if let Some(first) = claimed[d] {
                    return Err(AssignmentError::OverlappingDest {
                        dest: d,
                        first,
                        second: input,
                    });
                }
                claimed[d] = Some(input);
            }
            dests.push(uniq.into_iter().collect());
        }
        Ok(MulticastAssignment { n, dests })
    }

    /// The empty assignment (no input carries a message).
    pub fn empty(n: usize) -> Result<Self, AssignmentError> {
        Self::from_sets(n, vec![Vec::new(); n])
    }

    /// Builds a (partial) permutation assignment: `perm[i] = Some(o)` sends
    /// input `i` to output `o`.
    pub fn from_permutation(perm: &[Option<usize>]) -> Result<Self, AssignmentError> {
        let sets = perm
            .iter()
            .map(|p| p.map(|o| vec![o]).unwrap_or_default())
            .collect();
        Self::from_sets(perm.len(), sets)
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The destination set of input `i` (sorted ascending).
    pub fn dests(&self, i: usize) -> &[usize] {
        &self.dests[i]
    }

    /// Iterates `(input, destination set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.dests.iter().enumerate().map(|(i, d)| (i, d.as_slice()))
    }

    /// Number of inputs carrying a message.
    pub fn active_inputs(&self) -> usize {
        self.dests.iter().filter(|d| !d.is_empty()).count()
    }

    /// Total number of point-to-point connections (`Σ |I_i|`).
    pub fn total_connections(&self) -> usize {
        self.dests.iter().map(|d| d.len()).sum()
    }

    /// The *fanout* of the assignment: the largest destination-set size.
    pub fn max_fanout(&self) -> usize {
        self.dests.iter().map(|d| d.len()).max().unwrap_or(0)
    }

    /// `true` if every destination set has at most one element.
    pub fn is_permutation(&self) -> bool {
        self.max_fanout() <= 1
    }

    /// Which input (if any) must reach output `o`.
    pub fn source_of_output(&self, o: usize) -> Option<usize> {
        self.dests
            .iter()
            .position(|d| d.binary_search(&o).is_ok())
    }

    /// Renders the assignment in the paper's set notation, e.g.
    /// `{{0,1}, φ, {3,4,7}, {2}, φ, φ, φ, {5,6}}`.
    pub fn set_notation(&self) -> String {
        let parts: Vec<String> = self
            .dests
            .iter()
            .map(|d| {
                if d.is_empty() {
                    "φ".to_string()
                } else {
                    format!(
                        "{{{}}}",
                        d.iter()
                            .map(|x| x.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                }
            })
            .collect();
        format!("{{{}}}", parts.join(", "))
    }
}

impl fmt::Display for MulticastAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.set_notation())
    }
}

/// The outcome of routing an assignment through a network: which input's
/// message arrived at each output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingResult {
    n: usize,
    source_of: Vec<Option<usize>>,
}

impl RoutingResult {
    /// Builds a result from the per-output source table.
    pub fn new(source_of: Vec<Option<usize>>) -> Self {
        RoutingResult {
            n: source_of.len(),
            source_of,
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The input whose message arrived at output `o` (`None` = idle output).
    pub fn output_source(&self, o: usize) -> Option<usize> {
        self.source_of[o]
    }

    /// `true` iff this result realizes `asg` *exactly*: every output in `I_i`
    /// received input `i`'s message, and outputs in no destination set
    /// received nothing.
    pub fn realizes(&self, asg: &MulticastAssignment) -> bool {
        self.n == asg.n() && (0..self.n).all(|o| self.source_of[o] == asg.source_of_output(o))
    }

    /// Outputs that received a message.
    pub fn active_outputs(&self) -> usize {
        self.source_of.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_example_validates() {
        let asg = paper_example();
        assert_eq!(asg.n(), 8);
        assert_eq!(asg.active_inputs(), 4);
        assert_eq!(asg.total_connections(), 8);
        assert_eq!(asg.max_fanout(), 3);
        assert!(!asg.is_permutation());
    }

    #[test]
    fn set_notation_matches_paper() {
        assert_eq!(
            paper_example().set_notation(),
            "{{0,1}, φ, {3,4,7}, {2}, φ, φ, φ, {5,6}}"
        );
    }

    #[test]
    fn source_of_output_inverts_sets() {
        let asg = paper_example();
        assert_eq!(asg.source_of_output(0), Some(0));
        assert_eq!(asg.source_of_output(4), Some(2));
        assert_eq!(asg.source_of_output(5), Some(7));
        // No input owns... all outputs are claimed in this example:
        for o in 0..8 {
            assert!(asg.source_of_output(o).is_some());
        }
    }

    #[test]
    fn rejects_overlap() {
        let err = MulticastAssignment::from_sets(4, vec![vec![1], vec![1], vec![], vec![]])
            .unwrap_err();
        assert_eq!(
            err,
            AssignmentError::OverlappingDest {
                dest: 1,
                first: 0,
                second: 1
            }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let err =
            MulticastAssignment::from_sets(4, vec![vec![4], vec![], vec![], vec![]]).unwrap_err();
        assert_eq!(err, AssignmentError::DestOutOfRange { input: 0, dest: 4 });
    }

    #[test]
    fn rejects_wrong_count_and_bad_size() {
        assert!(matches!(
            MulticastAssignment::from_sets(4, vec![vec![]; 3]),
            Err(AssignmentError::WrongInputCount { got: 3, expected: 4 })
        ));
        assert!(matches!(
            MulticastAssignment::from_sets(6, vec![vec![]; 6]),
            Err(AssignmentError::Size(_))
        ));
    }

    #[test]
    fn duplicates_within_a_set_merge() {
        let asg =
            MulticastAssignment::from_sets(4, vec![vec![2, 2, 1], vec![], vec![], vec![]]).unwrap();
        assert_eq!(asg.dests(0), &[1, 2]);
    }

    #[test]
    fn permutation_constructor() {
        let asg =
            MulticastAssignment::from_permutation(&[Some(3), None, Some(0), Some(1)]).unwrap();
        assert!(asg.is_permutation());
        assert_eq!(asg.dests(0), &[3]);
        assert_eq!(asg.dests(1), &[] as &[usize]);
        assert_eq!(asg.active_inputs(), 3);
    }

    #[test]
    fn routing_result_realizes() {
        let asg = paper_example();
        let correct = RoutingResult::new(vec![
            Some(0),
            Some(0),
            Some(3),
            Some(2),
            Some(2),
            Some(7),
            Some(7),
            Some(2),
        ]);
        assert!(correct.realizes(&asg));
        assert_eq!(correct.active_outputs(), 8);

        let wrong = RoutingResult::new(vec![
            Some(0),
            Some(0),
            Some(3),
            Some(2),
            Some(2),
            Some(7),
            Some(7),
            None, // output 7 lost its message
        ]);
        assert!(!wrong.realizes(&asg));
    }

    #[test]
    fn empty_assignment() {
        let asg = MulticastAssignment::empty(8).unwrap();
        assert_eq!(asg.active_inputs(), 0);
        let idle = RoutingResult::new(vec![None; 8]);
        assert!(idle.realizes(&asg));
    }

    #[test]
    fn serde_round_trip() {
        let asg = paper_example();
        let json = serde_json::to_string(&asg).unwrap();
        let back: MulticastAssignment = serde_json::from_str(&json).unwrap();
        assert_eq!(asg, back);
    }
}
