//! ASCII rendering of networks and traces — a textual stand-in for the
//! paper's figures, used by the examples and handy when debugging switch
//! settings.

use crate::brsmn::RouteTrace;
use brsmn_rbn::RbnSettings;
use brsmn_switch::{SwitchSetting, Tag};
use brsmn_topology::ReverseBanyanTopology;

/// One display character per switch setting: `─` parallel, `╳` crossing,
/// `▲` upper broadcast, `▼` lower broadcast.
pub fn setting_char(s: SwitchSetting) -> char {
    match s {
        SwitchSetting::Parallel => '─',
        SwitchSetting::Crossing => '╳',
        SwitchSetting::UpperBroadcast => '▲',
        SwitchSetting::LowerBroadcast => '▼',
    }
}

/// Renders an RBN's switch settings as a grid: one row per line, one column
/// per stage; each cell shows the setting of the switch that line enters at
/// that stage, with `·` filler on the lower port (so each switch prints its
/// glyph once, on its upper line).
pub fn render_rbn(settings: &RbnSettings) -> String {
    let n = settings.n();
    let topo = ReverseBanyanTopology::new(n).expect("valid settings size");
    let m = settings.num_stages();
    let mut out = String::new();
    out.push_str(&format!("{n} × {n} reverse banyan network ({m} stages)\n"));
    out.push_str("line │");
    for j in 0..m {
        out.push_str(&format!(" s{j}"));
    }
    out.push('\n');
    out.push_str(&format!("─────┼{}\n", "───".repeat(m)));
    for line in 0..n {
        out.push_str(&format!("{line:4} │"));
        for j in 0..m {
            let (sw, lower) = topo.switch_at(j as u32, line);
            if lower {
                out.push_str("  ·");
            } else {
                out.push(' ');
                out.push(' ');
                out.push(setting_char(settings.stage(j)[sw.index]));
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a full BRSMN route trace: tag columns at each interface of each
/// level (the textual equivalent of Fig. 2).
pub fn render_trace(trace: &RouteTrace) -> String {
    let n = trace.n;
    let mut columns: Vec<(String, Vec<Tag>)> = Vec::new();
    for level in &trace.levels {
        let stitch = |f: &dyn Fn(&crate::bsn::BsnTrace) -> &Vec<Tag>| {
            let mut col = vec![Tag::Eps; n];
            for (b, bt) in level.blocks.iter().enumerate() {
                let base = b * level.block_size;
                col[base..base + level.block_size].copy_from_slice(f(bt));
            }
            col
        };
        columns.push((format!("L{} in", level.level), stitch(&|bt| &bt.input_tags)));
        columns.push((
            format!("L{} scat", level.level),
            stitch(&|bt| &bt.after_scatter),
        ));
        columns.push((
            format!("L{} sort", level.level),
            stitch(&|bt| &bt.output_tags),
        ));
    }
    columns.push(("final".to_string(), trace.final_tags.clone()));

    let mut out = String::new();
    out.push_str("line │");
    for (h, _) in &columns {
        out.push_str(&format!(" {h:>7}"));
    }
    out.push('\n');
    out.push_str(&format!("─────┼{}\n", "────────".repeat(columns.len())));
    for line in 0..n {
        out.push_str(&format!("{line:4} │"));
        for (_, col) in &columns {
            out.push_str(&format!(" {:>7}", col[line].to_string()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Brsmn, MulticastAssignment};
    use brsmn_rbn::plan_bitsort;

    #[test]
    fn setting_glyphs_distinct() {
        let glyphs: Vec<char> = [
            SwitchSetting::Parallel,
            SwitchSetting::Crossing,
            SwitchSetting::UpperBroadcast,
            SwitchSetting::LowerBroadcast,
        ]
        .iter()
        .map(|&s| setting_char(s))
        .collect();
        let mut dedup = glyphs.clone();
        dedup.dedup();
        assert_eq!(glyphs.len(), dedup.len());
    }

    #[test]
    fn rbn_grid_has_row_per_line() {
        let plan = plan_bitsort(&[true, false, true, false, false, true, true, false], 4);
        let s = render_rbn(&plan.settings);
        // Header + separator + 8 line rows.
        assert_eq!(s.lines().count(), 2 + 1 + 8);
        // Each stage column exists.
        assert!(s.contains("s0") && s.contains("s2"));
        // Crossing glyphs appear (a nontrivial sort must cross somewhere).
        assert!(s.contains('╳'));
    }

    #[test]
    fn trace_render_contains_all_levels() {
        let asg = MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap();
        let (_, trace) = Brsmn::new(8).unwrap().route_traced(&asg).unwrap();
        let s = render_trace(&trace);
        assert!(s.contains("L1 in"));
        assert!(s.contains("L2 sort"));
        assert!(s.contains("final"));
        assert!(s.contains('α'));
        assert_eq!(s.lines().count(), 2 + 8);
    }
}
