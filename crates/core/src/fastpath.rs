//! The zero-allocation routing fast path.
//!
//! [`crate::brsmn`]'s reference router allocates on every frame: fresh
//! `Vec<Line<P>>` buffers per level, `Vec<Vec<usize>>` sweep state per plan,
//! and a settings table per RBN. This module routes the **semantic** model
//! with none of that:
//!
//! * a message is a `FastLine` — just its current four-value tag and its
//!   source input. Destination sets never travel: the set of a message at a
//!   block `[lo, lo + size)` is implicitly `dests(src) ∩ [lo, lo + size)`,
//!   answered by binary search on the assignment, and a broadcast "split"
//!   is a plain `Copy` of the source id;
//! * all sweep planning runs through [`brsmn_rbn::bitplan::SweepScratch`]
//!   (packed words + popcount) writing into one persistent
//!   [`RbnSettings`] table;
//! * the per-level shuffle/exchange wiring comes precomputed from the
//!   [`Brsmn`](crate::brsmn::Brsmn)'s [`RbnWiring`].
//!
//! Everything lives in a [`RouteScratch`] arena sized once from `n`; after
//! the first frame at a given size, routing performs **zero** heap
//! allocations (pinned by the `alloc-count` test in `brsmn-bench`). The
//! result is bit-identical to the reference router — same routing result,
//! same trace, same final settings — which the equivalence property tests
//! in `brsmn-core/tests/fastpath_equivalence.rs` verify.

use std::cell::RefCell;
use std::time::Instant;

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::brsmn::RouteTrace;
use crate::bsn::BsnTrace;
use crate::engine::StageTimer;
use crate::error::CoreError;
use brsmn_rbn::bitplan::SweepScratch;
use brsmn_rbn::{RbnSettings, RbnWiring};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{SwitchError, SwitchSetting, Tag};
use brsmn_topology::{check_size, log2_exact};

/// Sentinel source id of an empty line.
const NO_SRC: u32 = u32::MAX;

/// One line of the fast path: the current tag plus the source input of the
/// message on it (`NO_SRC` when idle). `Copy`, so a broadcast split is two
/// struct writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FastLine {
    tag: Tag,
    src: u32,
}

impl FastLine {
    const EMPTY: FastLine = FastLine {
        tag: Tag::Eps,
        src: NO_SRC,
    };
}

/// Reusable routing arena: the line buffer, the packed sweep scratch, and the
/// persistent settings table, all sized from `n` on first use and never
/// reallocated while the size stays fixed.
///
/// Pass one to [`Brsmn::route_into`](crate::brsmn::Brsmn::route_into) /
/// [`Brsmn::route_buffered`](crate::brsmn::Brsmn::route_buffered), or let
/// [`with_thread_scratch`] manage a thread-local instance (what
/// [`Brsmn::route`](crate::brsmn::Brsmn::route) and the engine's workers do).
#[derive(Debug, Clone)]
pub struct RouteScratch {
    n: usize,
    lines: Vec<FastLine>,
    sweep: SweepScratch,
    settings: RbnSettings,
}

impl Default for RouteScratch {
    fn default() -> Self {
        RouteScratch::empty()
    }
}

impl RouteScratch {
    /// An arena pre-sized for an `n × n` network.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        let mut s = RouteScratch::empty();
        s.ensure(n);
        Ok(s)
    }

    /// An unsized arena; buffers grow on first use.
    pub fn empty() -> Self {
        RouteScratch {
            n: 0,
            lines: Vec::new(),
            sweep: SweepScratch::new(),
            // Placeholder with zero stages; replaced by `ensure`.
            settings: RbnSettings::identity(1),
        }
    }

    /// The network size this arena is currently sized for (`0` if unused).
    pub fn n(&self) -> usize {
        self.n
    }

    /// (Re)sizes the arena for an `n × n` network. A no-op at the current
    /// size — the warm-up allocation happens exactly once per size.
    pub fn ensure(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.lines.clear();
            self.lines.resize(n, FastLine::EMPTY);
            self.settings = RbnSettings::identity(n);
        }
    }

    /// Sources delivered to each output by the last successful
    /// [`Brsmn::route_into`](crate::brsmn::Brsmn::route_into) call.
    pub fn output_sources(&self) -> impl Iterator<Item = Option<usize>> + '_ {
        self.lines.iter().map(|l| {
            if l.src == NO_SRC {
                None
            } else {
                Some(l.src as usize)
            }
        })
    }

    /// Approximate heap bytes currently reserved by the arena.
    pub fn footprint_bytes(&self) -> usize {
        let settings_bytes: usize = (0..self.settings.num_stages())
            .map(|j| self.settings.stage(j).len() * std::mem::size_of::<SwitchSetting>())
            .sum();
        self.lines.capacity() * std::mem::size_of::<FastLine>()
            + self.sweep.footprint_bytes()
            + settings_bytes
    }

    /// Collects the delivered sources into a fresh [`RoutingResult`] (the
    /// one allocation of [`Brsmn::route_buffered`](crate::brsmn::Brsmn::route_buffered)).
    fn to_result(&self) -> RoutingResult {
        RoutingResult::new(self.output_sources().collect())
    }

    /// The planner halves of the arena (packed sweep scratch + settings
    /// table), borrowed together for the generic line-level router.
    pub(crate) fn planner_parts(&mut self) -> (&mut SweepScratch, &mut RbnSettings) {
        (&mut self.sweep, &mut self.settings)
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::empty());
}

/// Runs `f` with this thread's [`RouteScratch`], sized for `n`. The arena
/// persists for the life of the thread, so repeated calls at a fixed size
/// reuse all buffers — this is how each engine worker owns its scratch.
pub fn with_thread_scratch<R>(n: usize, f: impl FnOnce(&mut RouteScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.ensure(n);
        f(&mut s)
    })
}

/// Entry tag of the message `dests` (sorted, absolute) at the block
/// `[lo, lo + size)`: which halves of the block it still has to reach.
#[inline]
fn entry_tag_fast(dests: &[usize], lo: usize, size: usize) -> Tag {
    let mid = lo + size / 2;
    let i_lo = dests.partition_point(|&d| d < lo);
    let i_mid = dests.partition_point(|&d| d < mid);
    let i_hi = dests.partition_point(|&d| d < lo + size);
    match (i_mid > i_lo, i_hi > i_mid) {
        (true, false) => Tag::Zero,
        (false, true) => Tag::One,
        (true, true) => Tag::Alpha,
        (false, false) => unreachable!("dests are non-empty within the block"),
    }
}

/// Executes stages `[0, log2 size)` of the settings table on the fast lines
/// of `[base, base + size)`, walking the precomputed wiring. Splitting an α
/// copies the source id; the broadcast legality checks match
/// [`RbnSettings::run_block`] exactly.
fn run_block_fast(
    lines: &mut [FastLine],
    base: usize,
    size: usize,
    settings: &RbnSettings,
    wiring: &RbnWiring,
) -> Result<(), SwitchError> {
    let k = log2_exact(size) as usize;
    for j in 0..k {
        let stage = settings.stage(j);
        let pairs = wiring.stage(j);
        for idx in base / 2..(base + size) / 2 {
            let (u, l) = pairs[idx];
            let (u, l) = (u as usize, l as usize);
            match stage[idx] {
                SwitchSetting::Parallel => {}
                SwitchSetting::Crossing => lines.swap(u, l),
                setting @ SwitchSetting::UpperBroadcast => {
                    if lines[u].tag != Tag::Alpha || lines[l].tag != Tag::Eps {
                        return Err(SwitchError {
                            setting,
                            found: (lines[u].tag, lines[l].tag),
                        });
                    }
                    let src = lines[u].src;
                    lines[u] = FastLine {
                        tag: Tag::Zero,
                        src,
                    };
                    lines[l] = FastLine { tag: Tag::One, src };
                }
                setting @ SwitchSetting::LowerBroadcast => {
                    if lines[u].tag != Tag::Eps || lines[l].tag != Tag::Alpha {
                        return Err(SwitchError {
                            setting,
                            found: (lines[u].tag, lines[l].tag),
                        });
                    }
                    let src = lines[l].src;
                    lines[u] = FastLine {
                        tag: Tag::Zero,
                        src,
                    };
                    lines[l] = FastLine { tag: Tag::One, src };
                }
            }
        }
    }
    Ok(())
}

/// Routes one BSN block `[base, base + size)` in place: entry tags, capacity
/// check, packed scatter plan + run, packed quasisort plan + run,
/// postcondition check. Mirrors [`crate::bsn::Bsn::route`] step for step
/// (including its error values) without allocating.
#[allow(clippy::too_many_arguments)]
fn route_bsn_fast(
    asg: &MulticastAssignment,
    lines: &mut [FastLine],
    sweep: &mut SweepScratch,
    settings: &mut RbnSettings,
    wiring: &RbnWiring,
    base: usize,
    size: usize,
    level: usize,
    trace: Option<&mut RouteTrace>,
) -> Result<(), CoreError> {
    for line in lines[base..base + size].iter_mut() {
        line.tag = if line.src == NO_SRC {
            Tag::Eps
        } else {
            entry_tag_fast(asg.dests(line.src as usize), base, size)
        };
    }
    sweep.set_tags(size, |i| lines[base + i].tag);

    // Eq. (2): a realizable load never requests more than n/2 outputs per
    // half.
    let counts: TagCounts = sweep.counts();
    if !counts.satisfies_bsn_input_constraints() {
        return Err(CoreError::HalfCapacityExceeded {
            n: size,
            n0: counts.n0,
            n1: counts.n1,
            na: counts.na,
        });
    }

    let input_tags: Vec<Tag> = if trace.is_some() {
        lines[base..base + size].iter().map(|l| l.tag).collect()
    } else {
        Vec::new()
    };

    // Scatter network: eliminate αs (Theorem 2; nα ≤ nε by Eq. 3).
    sweep.plan_scatter(0, base, settings);
    run_block_fast(lines, base, size, settings, wiring)?;
    let after_scatter: Vec<Tag> = if trace.is_some() {
        lines[base..base + size].iter().map(|l| l.tag).collect()
    } else {
        Vec::new()
    };

    // Quasisorting network: ε-divide then bit-sort (unicast only).
    sweep.set_tags(size, |i| lines[base + i].tag);
    sweep.eps_divide()?;
    sweep.plan_bitsort(size / 2, base, settings);
    run_block_fast(lines, base, size, settings, wiring)?;

    // Eq. (4) postconditions, kept on in release builds like the reference.
    for (pos, line) in lines[base..base + size].iter().enumerate() {
        let t = line.tag;
        let ok = if pos < size / 2 {
            t != Tag::One && t != Tag::Alpha
        } else {
            t != Tag::Zero && t != Tag::Alpha
        };
        if !ok {
            return Err(CoreError::Internal(format!(
                "BSN postcondition violated: tag {t} at output {pos} of {size}"
            )));
        }
    }

    if let Some(t) = trace {
        t.levels[level - 1].blocks.push(BsnTrace {
            input_tags,
            after_scatter,
            output_tags: lines[base..base + size].iter().map(|l| l.tag).collect(),
        });
    }
    Ok(())
}

/// The final 2×2 switch over outputs `{lo, lo+1}`, in place. The setting
/// table and error values match [`crate::brsmn`]'s `final_switch` exactly.
fn final_switch_fast(
    asg: &MulticastAssignment,
    lines: &mut [FastLine],
    lo: usize,
    trace: &mut Option<&mut RouteTrace>,
) -> Result<(), CoreError> {
    use SwitchSetting::*;
    for line in lines[lo..lo + 2].iter_mut() {
        line.tag = if line.src == NO_SRC {
            Tag::Eps
        } else {
            entry_tag_fast(asg.dests(line.src as usize), lo, 2)
        };
    }
    let (tu, tl) = (lines[lo].tag, lines[lo + 1].tag);
    let setting = match (tu, tl) {
        (Tag::Alpha, Tag::Eps) => UpperBroadcast,
        (Tag::Eps, Tag::Alpha) => LowerBroadcast,
        (Tag::Alpha, _) | (_, Tag::Alpha) => {
            return Err(CoreError::OutputConflict { output: lo });
        }
        (Tag::Zero, Tag::Zero) => return Err(CoreError::OutputConflict { output: lo }),
        (Tag::One, Tag::One) => return Err(CoreError::OutputConflict { output: lo + 1 }),
        (Tag::Zero, _) | (Tag::Eps, Tag::One) | (Tag::Eps, Tag::Eps) => Parallel,
        (Tag::One, _) | (Tag::Eps, Tag::Zero) => Crossing,
    };
    if let Some(t) = trace {
        t.final_tags[lo] = tu;
        t.final_tags[lo + 1] = tl;
        t.final_settings[lo / 2] = setting;
    }
    match setting {
        Parallel => {}
        Crossing => lines.swap(lo, lo + 1),
        UpperBroadcast | LowerBroadcast => {
            let src = if setting == UpperBroadcast {
                lines[lo].src
            } else {
                lines[lo + 1].src
            };
            lines[lo] = FastLine {
                tag: Tag::Zero,
                src,
            };
            lines[lo + 1] = FastLine { tag: Tag::One, src };
        }
    }
    Ok(())
}

/// Routes `asg` end to end on the fast path, leaving the delivered lines in
/// `scratch` (read them via [`RouteScratch::output_sources`]). Optionally
/// fills a [`RouteTrace`] and/or a [`StageTimer`] (the timer records exactly
/// what the reference engine's instrumented recursion records).
pub(crate) fn route_assignment_fast(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    scratch: &mut RouteScratch,
    mut trace: Option<&mut RouteTrace>,
    mut timer: Option<&mut StageTimer>,
) -> Result<(), CoreError> {
    assert_eq!(asg.n(), n, "assignment size mismatch");
    scratch.ensure(n);
    let RouteScratch {
        lines,
        sweep,
        settings,
        ..
    } = scratch;

    for (i, line) in lines.iter_mut().enumerate() {
        *line = if asg.dests(i).is_empty() {
            FastLine::EMPTY
        } else {
            FastLine {
                tag: Tag::Eps,
                src: i as u32,
            }
        };
    }

    // Levels 1 … m−1: BSNs of halving size, blocks left to right (the same
    // order the reference's depth-first recursion pushes trace blocks).
    let mut size = n;
    let mut level = 1;
    while size > 2 {
        for b in 0..n / size {
            let t0 = timer.as_ref().map(|_| Instant::now());
            route_bsn_fast(
                asg,
                lines,
                sweep,
                settings,
                wiring,
                b * size,
                size,
                level,
                trace.as_deref_mut(),
            )?;
            if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
                tm.record_bsn(level, size, t0.elapsed());
            }
        }
        size /= 2;
        level += 1;
    }

    // Final level: n/2 plain 2×2 switches.
    for lo in (0..n).step_by(2) {
        let t0 = timer.as_ref().map(|_| Instant::now());
        final_switch_fast(asg, lines, lo, &mut trace)?;
        if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
            tm.record_final(t0.elapsed());
        }
    }

    // Delivery verification (the reference does this in `extract_result`).
    for (o, line) in lines.iter().enumerate() {
        if line.src != NO_SRC && asg.dests(line.src as usize).binary_search(&o).is_err() {
            return Err(CoreError::Internal(format!(
                "message from input {} misdelivered to output {o}",
                line.src
            )));
        }
    }
    Ok(())
}

/// Routes and collects the result (one `Vec` allocation for the result).
pub(crate) fn route_assignment_fast_buffered(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    scratch: &mut RouteScratch,
    trace: Option<&mut RouteTrace>,
    timer: Option<&mut StageTimer>,
) -> Result<RoutingResult, CoreError> {
    route_assignment_fast(n, wiring, asg, scratch, trace, timer)?;
    Ok(scratch.to_result())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_tag_matches_semantic() {
        use crate::payload::SemanticMsg;
        use crate::RoutePayload;
        let dests = vec![2usize, 5];
        let msg = SemanticMsg::new(0, dests.clone());
        assert_eq!(entry_tag_fast(&dests, 0, 8), msg.entry_tag(0, 8));
        // After a split the semantic message holds only the in-block subset;
        // the fast path intersects on the fly.
        assert_eq!(entry_tag_fast(&dests, 0, 4), Tag::One);
        assert_eq!(entry_tag_fast(&dests, 4, 4), Tag::Zero);
        assert_eq!(entry_tag_fast(&dests, 2, 2), Tag::Zero);
        assert_eq!(entry_tag_fast(&dests, 4, 2), Tag::One);
    }

    #[test]
    fn scratch_resizes_once_per_size() {
        let mut s = RouteScratch::new(8).unwrap();
        assert_eq!(s.n(), 8);
        let fp = s.footprint_bytes();
        s.ensure(8);
        assert_eq!(s.footprint_bytes(), fp);
        s.ensure(16);
        assert_eq!(s.n(), 16);
    }

    #[test]
    fn output_sources_reads_lines() {
        let mut s = RouteScratch::new(2).unwrap();
        s.lines[0] = FastLine {
            tag: Tag::Zero,
            src: 1,
        };
        let v: Vec<Option<usize>> = s.output_sources().collect();
        assert_eq!(v, vec![Some(1), None]);
    }
}
